//! Property-based tests of the curve bijections and their structural
//! invariants, across every curve in the workspace.

use onion_curve::baselines::{curve_2d, curve_3d, CURVE_NAMES};
use onion_curve::{OnionNd, Point, SpaceFillingCurve};
use proptest::prelude::*;

proptest! {
    /// index ∘ point = id for random indexes, every 2D curve, mixed sides.
    #[test]
    fn roundtrip_index_2d(name_idx in 0usize..CURVE_NAMES.len(), bits in 1u32..=9, seed in any::<u64>()) {
        let side = 1u32 << bits;
        let curve = curve_2d(CURVE_NAMES[name_idx], side).unwrap();
        let n = curve.universe().cell_count();
        let idx = seed % n;
        let p = curve.point_unchecked(idx);
        prop_assert!(curve.universe().contains(p));
        prop_assert_eq!(curve.index_unchecked(p), idx);
    }

    /// point ∘ index = id for random cells, every 3D curve.
    #[test]
    fn roundtrip_point_3d(name_idx in 0usize..CURVE_NAMES.len(), bits in 1u32..=6, x in any::<u32>(), y in any::<u32>(), z in any::<u32>()) {
        let side = 1u32 << bits;
        let curve = curve_3d(CURVE_NAMES[name_idx], side).unwrap();
        let p = Point::new([x % side, y % side, z % side]);
        let idx = curve.index_unchecked(p);
        prop_assert!(idx < curve.universe().cell_count());
        prop_assert_eq!(curve.point_unchecked(idx), p);
    }

    /// Continuous curves never jump: any two consecutive indexes map to
    /// grid neighbors.
    #[test]
    fn continuity_at_random_positions(name_idx in 0usize..CURVE_NAMES.len(), bits in 1u32..=10, seed in any::<u64>()) {
        let side = 1u32 << bits;
        let curve = curve_2d(CURVE_NAMES[name_idx], side).unwrap();
        prop_assume!(curve.is_continuous());
        let n = curve.universe().cell_count();
        prop_assume!(n >= 2);
        let idx = seed % (n - 1);
        let a = curve.point_unchecked(idx);
        let b = curve.point_unchecked(idx + 1);
        prop_assert!(a.is_neighbor(&b), "{} jumps at {idx}: {a} -> {b}", curve.name());
    }

    /// Odd sides work for the curves that support them.
    #[test]
    fn odd_sides_roundtrip(side in prop::sample::select(vec![1u32, 3, 5, 9, 15, 33]), x in any::<u32>(), y in any::<u32>()) {
        for name in ["onion", "onion-nd", "row-major", "column-major", "snake"] {
            let curve = curve_2d(name, side).unwrap();
            let p = Point::new([x % side, y % side]);
            prop_assert_eq!(curve.point_unchecked(curve.index_unchecked(p)), p);
        }
    }

    /// The onion order visits layers monotonically in every dimension count.
    #[test]
    fn onion_layer_monotone_4d(seed in any::<u64>()) {
        let curve = OnionNd::<4>::new(6).unwrap();
        let u = curve.universe();
        let n = u.cell_count();
        let idx = seed % (n - 1);
        let a = u.layer_of(curve.point_unchecked(idx));
        let b = u.layer_of(curve.point_unchecked(idx + 1));
        prop_assert!(a <= b, "layer decreased: {a} -> {b} at {idx}");
    }

    /// Distinct cells map to distinct indexes (injectivity spot check).
    #[test]
    fn injective_3d(name_idx in 0usize..CURVE_NAMES.len(), a in any::<(u32, u32, u32)>(), b in any::<(u32, u32, u32)>()) {
        let side = 16u32;
        let curve = curve_3d(CURVE_NAMES[name_idx], side).unwrap();
        let pa = Point::new([a.0 % side, a.1 % side, a.2 % side]);
        let pb = Point::new([b.0 % side, b.1 % side, b.2 % side]);
        prop_assume!(pa != pb);
        prop_assert_ne!(curve.index_unchecked(pa), curve.index_unchecked(pb));
    }
}

/// The 3D onion curve's declared jump targets are exactly its observed
/// discontinuities (exhaustive on a mid-size universe).
#[test]
fn onion3d_jump_targets_are_sound_and_complete() {
    use onion_core::curve::verify;
    for side in [2u32, 5, 10, 12] {
        let c = onion_curve::Onion3D::new(side).unwrap();
        verify::jump_targets_exact(&c).unwrap_or_else(|e| panic!("side {side}: {e}"));
    }
}

/// Curve starts: the onion family always starts at the origin corner.
#[test]
fn onion_starts_at_origin() {
    for side in [2u32, 7, 16] {
        assert_eq!(
            onion_curve::Onion2D::new(side).unwrap().start(),
            Point::new([0, 0])
        );
        assert_eq!(
            onion_curve::Onion3D::new(side).unwrap().start(),
            Point::new([0, 0, 0])
        );
    }
}
