//! The paper's headline claims, verified at test-friendly scale. (The
//! `exp_*` binaries in `crates/bench` regenerate the full tables/figures.)

use onion_curve::baselines::{curve_2d, CURVE_NAMES};
use onion_curve::clustering::{
    all_translations, average_clustering_bruteforce, clustering_number, columns, rows, RectQuery,
};
use onion_curve::theory;
use onion_curve::{Hilbert, Morton, Onion2D, SpaceFillingCurve};

/// Figure 1: there is a query where the Z curve needs twice the Hilbert
/// curve's clusters (2 vs 4 in the paper's instance).
#[test]
fn figure1_hilbert_beats_z_on_some_query() {
    let hilbert = Hilbert::<2>::new(8).unwrap();
    let z = Morton::<2>::new(8).unwrap();
    let mut found = false;
    for x in 0..5u32 {
        for y in 0..5u32 {
            let q = RectQuery::new([x, y], [3, 4]).unwrap();
            let ch = clustering_number(&hilbert, &q);
            let cz = clustering_number(&z, &q);
            if ch == 2 && cz == 4 {
                found = true;
            }
        }
    }
    assert!(found, "no (Hilbert 2, Z 4) query among 3x4 windows");
}

/// Figure 2: on the 8×8 universe there is a 7×7 placement that is a single
/// onion cluster, while some placement needs ≥5 Hilbert clusters; on
/// average the onion curve is far better.
#[test]
fn figure2_seven_by_seven() {
    let onion = Onion2D::new(8).unwrap();
    let hilbert = Hilbert::<2>::new(8).unwrap();
    let queries: Vec<RectQuery<2>> = all_translations(8, [7u32, 7]).unwrap().collect();
    let onion_counts: Vec<u64> = queries
        .iter()
        .map(|q| clustering_number(&onion, q))
        .collect();
    let hilbert_counts: Vec<u64> = queries
        .iter()
        .map(|q| clustering_number(&hilbert, q))
        .collect();
    assert_eq!(onion_counts.iter().min(), Some(&1));
    assert!(hilbert_counts.iter().max().unwrap() >= &5);
    let so: u64 = onion_counts.iter().sum();
    let sh: u64 = hilbert_counts.iter().sum();
    assert!(so * 2 < sh, "onion total {so}, hilbert total {sh}");
}

/// Table I, 2D: onion's ratio vs the general lower bound stays under 2.32
/// while Hilbert's clustering number scales with √n for near-full cubes.
#[test]
fn table1_2d_shape() {
    let gap = 9u32;
    for side in [32u32, 64, 128] {
        let l = side - gap;
        let onion = Onion2D::new(side).unwrap();
        let co = onion_curve::clustering::average_clustering_exact(&onion, [l, l]).unwrap();
        let lb = theory::general_lower_bound_2d(side, l, l);
        let eta = co / lb;
        assert!(
            eta <= theory::ETA_2D_CUBE_BOUND + 0.3,
            "side {side}: eta {eta:.3}"
        );
    }
}

/// Lemma 10: on rows ∪ columns every SFC averages at least √n/2 (the tight
/// constant implied by the paper's own derivation).
#[test]
fn lemma10_no_curve_wins_rows_and_columns() {
    let side = 32u32;
    let qr = rows(side);
    let qc = columns(side);
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        let cr = average_clustering_bruteforce(&curve, &qr);
        let cc = average_clustering_bruteforce(&curve, &qc);
        assert!(
            (cr + cc) / 2.0 >= f64::from(side) / 2.0 - 1e-9,
            "{name}: rows {cr} columns {cc}"
        );
        let _ = curve.universe();
    }
}

/// Lemma 11: a curve optimal on tall half-universe rectangles pays ~√n on
/// wide ones and vice versa, while the onion curve is balanced.
#[test]
fn lemma11_half_rectangles() {
    let side = 32u32;
    let tall: Vec<RectQuery<2>> = all_translations(side, [side / 2, side]).unwrap().collect();
    let wide: Vec<RectQuery<2>> = all_translations(side, [side, side / 2]).unwrap().collect();
    let rm = curve_2d("row-major", side).unwrap();
    assert_eq!(average_clustering_bruteforce(&rm, &wide), 1.0);
    assert!(average_clustering_bruteforce(&rm, &tall) >= f64::from(side) / 2.0);
    let onion = curve_2d("onion", side).unwrap();
    let t = average_clustering_bruteforce(&onion, &tall);
    let w = average_clustering_bruteforce(&onion, &wide);
    assert!((t - w).abs() < 3.0, "onion nearly symmetric: {t} vs {w}");
}

/// §VII-A (Fig 5b text): in 3D, for near-full cubes the onion curve is two
/// orders of magnitude better — spot-checked at reduced scale.
#[test]
fn three_d_near_full_cube_gap() {
    use onion_curve::Onion3D;
    let side = 64u32;
    let l = side - 5;
    let onion = Onion3D::new(side).unwrap();
    let hilbert = Hilbert::<3>::new(side).unwrap();
    let co = onion_curve::clustering::average_clustering_exact(&onion, [l, l, l]).unwrap();
    let ch = onion_curve::clustering::average_clustering_exact(&hilbert, [l, l, l]).unwrap();
    assert!(
        ch > 20.0 * co,
        "3D near-full gap should be large: onion {co:.1}, hilbert {ch:.1}"
    );
}

/// Table II row µ=0: for constant-size cubes the onion average approaches
/// the continuous lower bound (η → 1).
#[test]
fn mu_zero_is_near_optimal() {
    let side = 128u32;
    let onion = Onion2D::new(side).unwrap();
    let co = onion_curve::clustering::average_clustering_exact(&onion, [3, 3]).unwrap();
    let lb = theory::continuous_lower_bound_2d(side, 3, 3);
    let eta = co / lb;
    assert!(eta < 1.2, "eta {eta:.3} should be near 1");
}
