//! The paper's closed-form theorems against exact measured clustering
//! numbers — the strongest form of "the reproduction matches the paper".

use onion_curve::clustering::{average_clustering_exact, TranslationSet};
use onion_curve::theory;
use onion_curve::{Hilbert, Onion2D, Onion3D, SpaceFillingCurve};

/// Theorem 1, case ℓ2 ≤ m: the measured exact average of the onion curve
/// lies within the stated ε1 ≤ 5 of the closed form, across a sweep.
#[test]
fn theorem1_small_shapes_match_measurement() {
    let side = 128u32;
    let onion = Onion2D::new(side).unwrap();
    for (l1, l2) in [
        (4u32, 4u32),
        (8, 16),
        (16, 16),
        (16, 48),
        (32, 64),
        (64, 64),
    ] {
        let measured = average_clustering_exact(&onion, [l1, l2]).unwrap();
        let predicted = theory::onion2d_average_clustering(side, l1, l2);
        assert!(
            predicted.contains(measured, 0.5),
            "({l1},{l2}): measured {measured:.3}, predicted {:.3} +- {}",
            predicted.value,
            predicted.abs_err
        );
    }
}

/// Theorem 1, case ℓ1 > m: near-full rectangles.
#[test]
fn theorem1_large_shapes_match_measurement() {
    let side = 128u32;
    let onion = Onion2D::new(side).unwrap();
    for (l1, l2) in [(100u32, 100u32), (80, 120), (119, 119), (126, 70)] {
        let measured = average_clustering_exact(&onion, [l1, l2]).unwrap();
        let predicted = theory::onion2d_average_clustering(side, l1, l2);
        assert!(
            predicted.contains(measured, 0.5),
            "({l1},{l2}): measured {measured:.3}, predicted {:.3} +- {}",
            predicted.value,
            predicted.abs_err
        );
    }
}

/// Theorem 4: the 3D onion average for cube queries.
#[test]
fn theorem4_matches_measurement() {
    let side = 32u32;
    let onion = Onion3D::new(side).unwrap();
    for l in [2u32, 4, 8, 12, 16] {
        let measured = average_clustering_exact(&onion, [l, l, l]).unwrap();
        let predicted = theory::onion3d_average_clustering(side, l);
        assert!(
            predicted.contains(measured, 1.0),
            "l={l}: measured {measured:.3}, predicted {:.3} +- {:.1}",
            predicted.value,
            predicted.abs_err
        );
    }
    // Upper-bound branch (ℓ > side/2): measured must respect the bound.
    for l in [20u32, 24, 28, 31] {
        let measured = average_clustering_exact(&onion, [l, l, l]).unwrap();
        let bound = theory::onion3d_average_clustering(side, l).value;
        assert!(
            measured <= bound + 1.0,
            "l={l}: measured {measured:.3} above bound {bound:.3}"
        );
    }
}

/// Theorems 2/3: the lower bound is in fact below the measured average of
/// both curves — and the numeric λ-sum bound of Lemma 6 is too.
#[test]
fn lower_bounds_are_actually_lower_2d() {
    let side = 64u32;
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    for (l1, l2) in [
        (4u32, 4u32),
        (8, 24),
        (16, 16),
        (32, 32),
        (50, 60),
        (60, 60),
    ] {
        let ts = TranslationSet::new(side, [l1, l2]).unwrap();
        // Lemma 6 numeric bound for continuous curves:
        // c(Q, π) ≥ (Σ λ − λmax) / (2|Q|).
        let numeric_lb = ts.lambda_sum() as f64 / (2.0 * ts.num_queries() as f64) - 1.0;
        for curve_avg in [
            average_clustering_exact(&onion, [l1, l2]).unwrap(),
            average_clustering_exact(&hilbert, [l1, l2]).unwrap(),
        ] {
            assert!(
                numeric_lb <= curve_avg + 1e-9,
                "({l1},{l2}): numeric LB {numeric_lb:.3} above measured {curve_avg:.3}"
            );
        }
        // The closed-form general bound must sit below both too (within the
        // paper's O(side)/|Q| slack on the closed form).
        let general = theory::general_lower_bound_2d(side, l1, l2);
        let onion_avg = average_clustering_exact(&onion, [l1, l2]).unwrap();
        assert!(
            general <= onion_avg * 1.05 + 1.0,
            "({l1},{l2}): closed-form LB {general:.3} vs onion {onion_avg:.3}"
        );
    }
}

/// Lemma 7's λ formula agrees with the numeric crossing machinery on the
/// canonical quadrant (where the formula is exact away from the axes).
#[test]
fn lemma7_matches_numeric_lambda_in_quadrant_interior() {
    let side = 16u32;
    let m = side / 2;
    for (l1, l2) in [(2u32, 3u32), (3, 6), (4, 8), (8, 8)] {
        let ts = TranslationSet::new(side, [l1, l2]).unwrap();
        for i in 1..m {
            for j in 1..m {
                let formula = theory::lemma7_lambda(side, l1, l2, i, j);
                let numeric = ts.lambda(onion_curve::Point::new([i, j]));
                assert_eq!(
                    formula, numeric,
                    "({l1},{l2}) cell ({i},{j}): formula {formula} vs numeric {numeric}"
                );
            }
        }
    }
}

/// The λ-sum (Lemma 8's T) closed form tracks the numeric sum within the
/// paper's lower-order slack. For the ℓ > m branch the paper's expression
/// is asymptotic in L; there we bound the *per-query* deviation (which the
/// theorems absorb into their ε plus lower-order terms).
#[test]
fn lemma8_tracks_numeric_lambda_sum() {
    let side = 32u32;
    for (l1, l2) in [(4u32, 4u32), (4, 12), (8, 16), (16, 16)] {
        let ts = TranslationSet::new(side, [l1, l2]).unwrap();
        let numeric = ts.lambda_sum() as f64;
        let closed = theory::lemma8_t(side, l1.min(l2), l1.max(l2));
        let rel = (closed - numeric).abs() / numeric.max(1.0);
        assert!(
            rel < 0.25,
            "({l1},{l2}): closed {closed:.0} vs numeric {numeric:.0} (rel {rel:.3})"
        );
    }
    for (l1, l2) in [(20u32, 28u32), (28, 28), (18, 18)] {
        let ts = TranslationSet::new(side, [l1, l2]).unwrap();
        let q2 = 2.0 * ts.num_queries() as f64;
        let numeric_per_query = ts.lambda_sum() as f64 / q2;
        let closed_per_query = theory::lemma8_t(side, l1.min(l2), l1.max(l2)) / q2;
        assert!(
            (closed_per_query - numeric_per_query).abs() <= 2.5,
            "({l1},{l2}): closed/2|Q| {closed_per_query:.2} vs numeric {numeric_per_query:.2}"
        );
    }
}

/// Lemma 5's growth claim, measured: doubling the universe side roughly
/// doubles (2D) / quadruples-plus (3D) the Hilbert average for near-full
/// cubes, while the onion average stays exactly constant.
#[test]
fn hilbert_grows_onion_does_not() {
    let gap = 9u32;
    let mut hilbert_prev = 0.0;
    let mut onion_values = Vec::new();
    for side in [32u32, 64, 128] {
        let l = side - gap;
        let h = Hilbert::<2>::new(side).unwrap();
        let o = Onion2D::new(side).unwrap();
        let ch = average_clustering_exact(&h, [l, l]).unwrap();
        let co = average_clustering_exact(&o, [l, l]).unwrap();
        if hilbert_prev > 0.0 {
            let ratio = ch / hilbert_prev;
            assert!(
                ratio > 1.9,
                "Hilbert should roughly double per side doubling, got {ratio:.2}"
            );
        }
        hilbert_prev = ch;
        onion_values.push(co);
    }
    let spread = onion_values
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        - onion_values.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        spread < 0.5,
        "onion near-full-cube average must be side-independent, spread {spread}"
    );
}

/// The paper's headline constants drop out of the ratio formulas.
#[test]
fn headline_constants() {
    let (phi2, eta2) = theory::grid_max(1e-6, 0.5, 500_000, theory::eta_onion_2d_case3);
    assert!((eta2 - 2.3196).abs() < 1e-3, "2D max eta {eta2}");
    assert!((phi2 - 0.355).abs() < 2e-3);
    let (phi3, eta3) = theory::grid_max(1e-6, 0.5, 500_000, theory::eta_onion_3d_case3);
    assert!((eta3 - 3.3888).abs() < 1e-2, "3D max eta {eta3}");
    assert!((phi3 - 0.3967).abs() < 2e-3);
}

/// Onion 2D end-to-end sanity at paper scale: exact average for the
/// adversarial near-full cube is Θ(1) and within Theorem 1's envelope.
#[test]
fn near_full_cube_is_constant_at_scale() {
    let side = 1 << 9;
    let l = side - 9;
    let onion = Onion2D::new(side).unwrap();
    let measured = average_clustering_exact(&onion, [l, l]).unwrap();
    let predicted = theory::onion2d_average_clustering(side, l, l);
    assert!(predicted.contains(measured, 0.5));
    assert!(measured < 12.0, "L=10 near-full cube: measured {measured}");
    let _ = onion.universe();
}
