//! End-to-end index tests: rectangle queries through the B+-tree return
//! exactly the right records under every curve, and the I/O accounting
//! equals the clustering number.

use onion_curve::baselines::{curve_2d, CURVE_NAMES};
use onion_curve::clustering::{clustering_number, random_translations, RectQuery};
use onion_curve::index::{
    evaluate_partitioning, partition_universe, DiskModel, QueryOptions, SfcTable, ShardedTable,
};
use onion_curve::workloads::{clustered_points, grid_points, uniform_points, zipf_points};
use onion_curve::{Point, SpaceFillingCurve};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn brute_force_hits(records: &[(Point<2>, u64)], q: &RectQuery<2>) -> Vec<u64> {
    let mut out: Vec<u64> = records
        .iter()
        .filter(|(p, _)| q.contains(*p))
        .map(|&(_, v)| v)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn every_curve_answers_queries_identically() {
    let side = 64u32;
    let mut rng = StdRng::seed_from_u64(31);
    let mut records: Vec<(Point<2>, u64)> = Vec::new();
    for (i, p) in uniform_points::<2, _>(side, 3000, &mut rng)
        .points
        .into_iter()
        .enumerate()
    {
        records.push((p, i as u64));
    }
    let queries = random_translations(side, [13u32, 22], 25, &mut rng).unwrap();

    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        let table = SfcTable::build(curve, records.clone(), DiskModel::ssd()).unwrap();
        for q in &queries {
            let res = table.query_rect(q, &QueryOptions::default()).unwrap();
            let mut got: Vec<u64> = res.records.iter().map(|r| r.value).collect();
            got.sort_unstable();
            assert_eq!(got, brute_force_hits(&records, q), "{name} query {q:?}");
        }
    }
}

#[test]
fn seeks_equal_clustering_number_for_dense_tables() {
    // With one record per cell, every cluster range is non-empty, so the
    // seeks of a query equal the paper's clustering number exactly.
    let side = 32u32;
    let records: Vec<(Point<2>, u64)> = grid_points::<2>(side, 1)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let queries = random_translations(side, [9u32, 14], 20, &mut rng).unwrap();
    for name in ["onion", "hilbert", "z-order"] {
        let curve = curve_2d(name, side).unwrap();
        let table = SfcTable::build(curve, records.clone(), DiskModel::hdd()).unwrap();
        for q in &queries {
            let res = table.query_rect(q, &QueryOptions::default()).unwrap();
            let curve_again = curve_2d(name, side).unwrap();
            let expected = clustering_number(&curve_again, q);
            assert_eq!(res.io.seeks, expected, "{name} {q:?}");
            assert_eq!(res.records.len() as u64, q.volume());
        }
    }
}

#[test]
fn onion_needs_fewest_seeks_for_near_full_queries() {
    // The paper's adversarial regime, end to end through the index: a
    // near-full window on a dense table.
    let side = 64u32;
    let records: Vec<(Point<2>, u64)> = grid_points::<2>(side, 1)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let q = RectQuery::new([1, 1], [side - 9, side - 9]).unwrap();
    let mut seeks = std::collections::HashMap::new();
    for name in ["onion", "hilbert", "z-order", "row-major"] {
        let curve = curve_2d(name, side).unwrap();
        let table = SfcTable::build(curve, records.clone(), DiskModel::hdd()).unwrap();
        seeks.insert(
            name,
            table
                .query_rect(&q, &QueryOptions::default())
                .unwrap()
                .io
                .seeks,
        );
    }
    assert!(
        seeks["onion"] * 4 < seeks["hilbert"],
        "onion {} vs hilbert {}",
        seeks["onion"],
        seeks["hilbert"]
    );
    assert!(seeks["onion"] * 4 < seeks["row-major"]);
}

#[test]
fn partitioning_covers_and_balances_for_all_curves() {
    let side = 32u32;
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        for k in [2usize, 5, 16] {
            let parts = partition_universe(&curve, k);
            let total: u64 = parts.iter().map(|p| p.hi - p.lo + 1).sum();
            assert_eq!(total, curve.universe().cell_count(), "{name} k={k}");
            let m = evaluate_partitioning(&curve, &parts);
            assert!(m.imbalance <= 1, "{name} k={k}: imbalance {}", m.imbalance);
        }
    }
}

#[test]
fn buffer_pool_measures_page_working_sets() {
    // The buffer pool exposes a metric orthogonal to the clustering number:
    // the *distinct pages* a query workload touches. With 64-cell pages the
    // Z curve's pages are aligned 8×8 tiles, so window queries touch few
    // distinct pages (and its many tiny ranges re-hit them), while the
    // onion curve's ring-shaped runs spread across layers. Clustering
    // governs seeks, not working sets — another №VIII-style trade-off this
    // workspace makes measurable.
    use onion_curve::clustering::cluster_ranges;
    use onion_curve::index::LruBufferPool;
    let side = 64u32;
    let page = 64u64;
    let mut rng = StdRng::seed_from_u64(12);
    let queries = random_translations(side, [24u32, 24], 12, &mut rng).unwrap();
    let mut distinct_pages = std::collections::HashMap::new();
    for name in ["onion", "z-order", "hilbert"] {
        let curve = curve_2d(name, side).unwrap();
        // Pool big enough to never evict: misses == distinct pages.
        let mut pool = LruBufferPool::new(4096);
        for q in &queries {
            for (lo, hi) in cluster_ranges(&curve, q) {
                pool.access_range(lo, hi, page);
            }
        }
        distinct_pages.insert(name, pool.misses());
        // Replaying the identical workload hits the now-warm pool only.
        let before = pool.misses();
        for q in &queries {
            for (lo, hi) in cluster_ranges(&curve, q) {
                pool.access_range(lo, hi, page);
            }
        }
        assert_eq!(pool.misses(), before, "{name}: warm replay must not miss");
    }
    // The tiled Z layout has the smallest page working set at this page
    // size; the onion curve pays for its ring-shaped runs.
    assert!(
        distinct_pages["z-order"] <= distinct_pages["onion"],
        "z {} vs onion {}",
        distinct_pages["z-order"],
        distinct_pages["onion"]
    );
}

#[test]
fn sharded_engine_matches_single_table_end_to_end() {
    // The full pipeline through the facade: skewed data, every curve, the
    // sharded engine against the plain table, under mixed read traffic.
    let side = 64u32;
    let mut rng = StdRng::seed_from_u64(99);
    let records: Vec<(Point<2>, u64)> = zipf_points::<2, _>(side, 2500, 0.7, &mut rng)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let queries = random_translations(side, [17u32, 11], 15, &mut rng).unwrap();
    for name in ["onion", "hilbert", "z-order"] {
        let single = SfcTable::build(
            curve_2d(name, side).unwrap(),
            records.clone(),
            DiskModel::hdd(),
        )
        .unwrap();
        let sharded = ShardedTable::build(
            curve_2d(name, side).unwrap(),
            records.clone(),
            DiskModel::hdd(),
            6,
        )
        .unwrap();
        // Zipf skew shows up as record imbalance across equal cell ranges.
        let sizes = sharded.shard_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), records.len());
        for q in &queries {
            let a = single.query_rect(q, &QueryOptions::default()).unwrap();
            let b = sharded.query_rect(q, &QueryOptions::default()).unwrap();
            assert_eq!(a.records, b.records, "{name} {q:?}");
            // Splitting at shard boundaries never loses or duplicates I/O
            // entries, and total seeks can only grow.
            assert_eq!(a.io.entries, b.io.entries, "{name} {q:?}");
            assert!(b.io.seeks >= a.io.seeks, "{name} {q:?}");
        }
        let batch = sharded.query_rect_batch(&queries).unwrap();
        for (q, res) in queries.iter().zip(&batch) {
            assert_eq!(
                res.records,
                single
                    .query_rect(q, &QueryOptions::default())
                    .unwrap()
                    .records,
                "{name} batch {q:?}"
            );
        }
    }
}

#[test]
fn clustered_data_changes_volumes_not_correctness() {
    let side = 64u32;
    let mut rng = StdRng::seed_from_u64(77);
    let records: Vec<(Point<2>, u64)> = clustered_points::<2, _>(side, 4000, 6, 8, &mut rng)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let q = RectQuery::new([10, 10], [30, 30]).unwrap();
    let curve = curve_2d("onion", side).unwrap();
    let table = SfcTable::build(curve, records.clone(), DiskModel::hdd()).unwrap();
    let res = table.query_rect(&q, &QueryOptions::default()).unwrap();
    let mut got: Vec<u64> = res.records.iter().map(|r| r.value).collect();
    got.sort_unstable();
    assert_eq!(got, brute_force_hits(&records, &q));
    assert_eq!(res.io.entries as usize, got.len());
}
