//! Smoke tests of the `sfc` command-line tool.

use std::process::Command;

fn sfc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_sfc"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn lists_curves() {
    let (stdout, _, ok) = sfc(&["curves"]);
    assert!(ok);
    for name in ["onion", "hilbert", "z-order"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn index_and_point_roundtrip_2d() {
    let (stdout, _, ok) = sfc(&["index", "onion", "16", "3", "4"]);
    assert!(ok);
    let key = stdout.trim().to_string();
    let (back, _, ok) = sfc(&["point", "onion", "16", &key]);
    assert!(ok);
    assert_eq!(back.trim(), "(3, 4)");
}

#[test]
fn index_3d() {
    let (stdout, _, ok) = sfc(&["index", "onion", "8", "0", "0", "0"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "0");
    let (back, _, ok) = sfc(&["point", "hilbert", "8", "0", "--3d"]);
    assert!(ok);
    assert_eq!(back.trim(), "(0, 0, 0)");
}

#[test]
fn clusters_and_ranges_are_consistent() {
    let (count, _, ok) = sfc(&["clusters", "hilbert", "64", "5", "5", "20", "20"]);
    assert!(ok);
    let n: usize = count.trim().parse().unwrap();
    let (ranges, _, ok) = sfc(&["ranges", "hilbert", "64", "5", "5", "20", "20"]);
    assert!(ok);
    assert_eq!(ranges.lines().count(), n);
    // Ranges cover exactly the query volume.
    let cells: u64 = ranges
        .lines()
        .map(|l| {
            let (lo, hi) = l.split_once("..=").unwrap();
            hi.parse::<u64>().unwrap() - lo.parse::<u64>().unwrap() + 1
        })
        .sum();
    assert_eq!(cells, 400);
}

#[test]
fn grid_renders_small_universe() {
    let (stdout, _, ok) = sfc(&["grid", "onion", "4"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 4);
    assert!(stdout.contains("15"));
}

#[test]
fn rejects_bad_input() {
    let (_, _, ok) = sfc(&["index", "peano", "16", "0", "0"]);
    assert!(!ok);
    let (_, _, ok) = sfc(&["index", "onion", "16", "99", "0"]);
    assert!(!ok);
    let (_, _, ok) = sfc(&["nonsense"]);
    assert!(!ok);
    let (_, _, ok) = sfc(&["clusters", "onion", "16", "10", "10", "10", "10"]);
    assert!(!ok, "query outside the universe must fail");
}
