//! Cross-validation of the clustering algorithms: all methods must agree
//! with the sort-based reference for every curve and random queries, and
//! the Lemma 1 exact average must equal the brute-force average.

use onion_curve::baselines::{curve_2d, curve_3d, CURVE_NAMES};
use onion_curve::clustering::{
    all_translations, average_clustering_bruteforce, average_clustering_exact, cluster_ranges,
    clustering_number_with, ClusterMethod, RectQuery,
};
use onion_curve::SpaceFillingCurve;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sort, entry-scan and the automatic method agree on every 2D curve.
    #[test]
    fn methods_agree_2d(
        name_idx in 0usize..CURVE_NAMES.len(),
        x in 0u32..32, y in 0u32..32,
        w in 1u32..=32, h in 1u32..=32,
    ) {
        let side = 32u32;
        prop_assume!(x + w <= side && y + h <= side);
        let curve = curve_2d(CURVE_NAMES[name_idx], side).unwrap();
        let q = RectQuery::new([x, y], [w, h]).unwrap();
        let reference = clustering_number_with(&curve, &q, ClusterMethod::Sort);
        prop_assert_eq!(clustering_number_with(&curve, &q, ClusterMethod::EntryScan), reference);
        prop_assert_eq!(clustering_number_with(&curve, &q, ClusterMethod::Auto), reference);
        prop_assert_eq!(cluster_ranges(&curve, &q).len() as u64, reference);
    }

    /// Same in 3D, including the onion curve's jump-target boundary scan.
    #[test]
    fn methods_agree_3d(
        name_idx in 0usize..CURVE_NAMES.len(),
        lo in prop::array::uniform3(0u32..8),
        len in prop::array::uniform3(1u32..=8),
    ) {
        let side = 8u32;
        prop_assume!((0..3).all(|d| lo[d] + len[d] <= side));
        let curve = curve_3d(CURVE_NAMES[name_idx], side).unwrap();
        let q = RectQuery::new(lo, len).unwrap();
        let reference = clustering_number_with(&curve, &q, ClusterMethod::Sort);
        prop_assert_eq!(clustering_number_with(&curve, &q, ClusterMethod::Auto), reference);
    }

    /// The ranges returned by `cluster_ranges` partition exactly the query.
    #[test]
    fn ranges_partition_query(
        name_idx in 0usize..CURVE_NAMES.len(),
        x in 0u32..16, y in 0u32..16,
        w in 1u32..=16, h in 1u32..=16,
    ) {
        let side = 16u32;
        prop_assume!(x + w <= side && y + h <= side);
        let curve = curve_2d(CURVE_NAMES[name_idx], side).unwrap();
        let q = RectQuery::new([x, y], [w, h]).unwrap();
        let ranges = cluster_ranges(&curve, &q);
        let mut covered = 0u64;
        let mut prev_hi: Option<u64> = None;
        for &(lo, hi) in &ranges {
            prop_assert!(lo <= hi);
            if let Some(p) = prev_hi {
                prop_assert!(lo > p + 1, "ranges adjacent or out of order");
            }
            for idx in lo..=hi {
                prop_assert!(q.contains(curve.point_unchecked(idx)));
            }
            covered += hi - lo + 1;
            prev_hi = Some(hi);
        }
        prop_assert_eq!(covered, q.volume());
    }

    /// Lemma 1's exact average equals the brute-force average over all
    /// translations, for any curve (continuity not required).
    #[test]
    fn lemma1_exact_average_matches_bruteforce(
        name_idx in 0usize..CURVE_NAMES.len(),
        l1 in 1u32..=16, l2 in 1u32..=16,
    ) {
        let side = 16u32; // power of two so every curve constructs
        let curve = curve_2d(CURVE_NAMES[name_idx], side).unwrap();
        let qs: Vec<RectQuery<2>> = all_translations(side, [l1, l2]).unwrap().collect();
        let brute = average_clustering_bruteforce(&curve, &qs);
        let exact = average_clustering_exact(&curve, [l1, l2]).unwrap();
        prop_assert!((brute - exact).abs() < 1e-9, "{}: {brute} vs {exact}", curve.name());
    }
}

/// Clustering number is translation-bounded sanity: the whole universe is
/// always one cluster; disjoint single cells are each one cluster.
#[test]
fn degenerate_queries_across_curves() {
    for name in CURVE_NAMES {
        let curve = curve_2d(name, 16).unwrap();
        let full = RectQuery::new([0, 0], [16, 16]).unwrap();
        assert_eq!(
            clustering_number_with(&curve, &full, ClusterMethod::Auto),
            1,
            "{name}"
        );
        let cell = RectQuery::new([7, 9], [1, 1]).unwrap();
        assert_eq!(
            clustering_number_with(&curve, &cell, ClusterMethod::Auto),
            1,
            "{name}"
        );
        let _ = curve.universe();
    }
}

/// A row query has 1 cluster under row-major and `side` clusters under
/// column-major — the extremes of §V-C.
#[test]
fn row_query_extremes() {
    let side = 32u32;
    let row = RectQuery::new([0, 5], [side, 1]).unwrap();
    let rm = curve_2d("row-major", side).unwrap();
    let cm = curve_2d("column-major", side).unwrap();
    assert_eq!(clustering_number_with(&rm, &row, ClusterMethod::Sort), 1);
    assert_eq!(
        clustering_number_with(&cm, &row, ClusterMethod::Sort),
        u64::from(side)
    );
}
