//! # onion-curve
//!
//! Facade crate for the Onion Curve workspace — a full reproduction of
//! *Xu, Nguyen, Tirthapura, "Onion Curve: A Space Filling Curve with
//! Near-Optimal Clustering"* (ICDE 2018).
//!
//! Re-exports the public API of every workspace crate:
//!
//! * [`core`](onion_core) — [`Onion2D`], [`Onion3D`], [`OnionNd`], the
//!   [`SpaceFillingCurve`] trait, points and universes;
//! * [`baselines`] — Hilbert, Z-order, Gray-code, row/column-major, snake;
//! * [`clustering`] — clustering numbers, exact averages, query generators;
//! * [`theory`] — the paper's closed-form bounds (Theorems 1–6);
//! * [`index`] — an SFC-keyed spatial index with seek accounting;
//! * [`engine`] — the concurrent serving layer: op streams, epoch-batched
//!   writes, adaptive query planning;
//! * [`net`] — the wire protocol, blocking threaded server, dual-transport
//!   client, and epoch-streaming read replicas;
//! * [`workloads`] — deterministic spatial data generators and mixed
//!   read/write op streams.
//!
//! ## Quick start
//!
//! ```
//! use onion_curve::{Onion2D, Point, SpaceFillingCurve};
//! use onion_curve::clustering::{clustering_number, RectQuery};
//!
//! let onion = Onion2D::new(256).unwrap();
//! let query = RectQuery::new([100, 100], [40, 40]).unwrap();
//! let clusters = clustering_number(&onion, &query);
//! assert!(clusters >= 1);
//! ```

pub use onion_core::{
    edges, CurveWalk, Onion2D, Onion3D, OnionNd, Point, SfcError, SpaceFillingCurve, Universe,
};

/// Baseline curves (re-export of `sfc-baselines`).
pub mod baselines {
    pub use sfc_baselines::*;
}

/// Clustering analysis (re-export of `sfc-clustering`).
pub mod clustering {
    pub use sfc_clustering::*;
}

/// Closed-form bounds from the paper (re-export of `sfc-theory`).
pub mod theory {
    pub use sfc_theory::*;
}

/// SFC-backed spatial index (re-export of `sfc-index`).
pub mod index {
    pub use sfc_index::*;
}

/// Concurrent serving layer (re-export of `sfc-engine`).
pub mod engine {
    pub use sfc_engine::*;
}

/// Network layer: wire protocol, server, client, replicas (re-export of
/// `sfc-net`).
pub mod net {
    pub use sfc_net::*;
}

/// Spatial data generators (re-export of `sfc-workloads`).
pub mod workloads {
    pub use sfc_workloads::*;
}

pub use sfc_baselines::{GrayCode, Hilbert, Morton, RowMajor, Snake};
