//! `sfc` — command-line Swiss knife for the workspace's space-filling
//! curves.
//!
//! ```text
//! sfc index  <curve> <side> <x> <y> [z]        cell -> curve key
//! sfc point  <curve> <side> <key> [--3d]       curve key -> cell
//! sfc clusters <curve> <side> <x> <y> <w> <h>  clustering number of a rect
//! sfc ranges <curve> <side> <x> <y> <w> <h>    the cluster key ranges
//! sfc grid   <curve> <side>                    ASCII numbering (small grids)
//! sfc curves                                   list available curves
//! ```

use onion_curve::baselines::{curve_2d, curve_3d, CURVE_NAMES};
use onion_curve::clustering::{cluster_ranges, clustering_number, RectQuery};
use onion_curve::{Point, SpaceFillingCurve};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  sfc index  <curve> <side> <x> <y> [z]\n  sfc point  <curve> <side> <key> [--3d]\n  sfc clusters <curve> <side> <x> <y> <w> <h>\n  sfc ranges <curve> <side> <x> <y> <w> <h>\n  sfc grid   <curve> <side>\n  sfc curves"
    );
    exit(2);
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {what}: {s}");
        exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "curves" => {
            for name in CURVE_NAMES {
                println!("{name}");
            }
        }
        "index" => {
            if args.len() == 5 {
                let curve = build_2d(&args[1], parse(&args[2], "side"));
                let p = Point::new([parse(&args[3], "x"), parse(&args[4], "y")]);
                match curve.index_of(p) {
                    Ok(idx) => println!("{idx}"),
                    Err(e) => fail(&e),
                }
            } else if args.len() == 6 {
                let curve = build_3d(&args[1], parse(&args[2], "side"));
                let p = Point::new([
                    parse(&args[3], "x"),
                    parse(&args[4], "y"),
                    parse(&args[5], "z"),
                ]);
                match curve.index_of(p) {
                    Ok(idx) => println!("{idx}"),
                    Err(e) => fail(&e),
                }
            } else {
                usage();
            }
        }
        "point" => {
            if args.len() < 4 {
                usage();
            }
            let key: u64 = parse(&args[3], "key");
            if args.len() == 5 && args[4] == "--3d" {
                let curve = build_3d(&args[1], parse(&args[2], "side"));
                match curve.point_of(key) {
                    Ok(p) => println!("{p}"),
                    Err(e) => fail(&e),
                }
            } else {
                let curve = build_2d(&args[1], parse(&args[2], "side"));
                match curve.point_of(key) {
                    Ok(p) => println!("{p}"),
                    Err(e) => fail(&e),
                }
            }
        }
        "clusters" | "ranges" => {
            if args.len() != 7 {
                usage();
            }
            let curve = build_2d(&args[1], parse(&args[2], "side"));
            let q = RectQuery::new(
                [parse(&args[3], "x"), parse(&args[4], "y")],
                [parse(&args[5], "w"), parse(&args[6], "h")],
            )
            .unwrap_or_else(|e| fail(&e));
            if !q.fits_in(curve.universe().side()) {
                eprintln!("query does not fit in the universe");
                exit(1);
            }
            if cmd == "clusters" {
                println!("{}", clustering_number(&curve, &q));
            } else {
                for (lo, hi) in cluster_ranges(&curve, &q) {
                    println!("{lo}..={hi}");
                }
            }
        }
        "grid" => {
            if args.len() != 3 {
                usage();
            }
            let side: u32 = parse(&args[2], "side");
            if side > 32 {
                eprintln!("grid rendering is limited to side <= 32");
                exit(1);
            }
            let curve = build_2d(&args[1], side);
            for y in (0..side).rev() {
                let mut line = String::new();
                for x in 0..side {
                    line.push_str(&format!("{:>5}", curve.index_unchecked(Point::new([x, y]))));
                }
                println!("{line}");
            }
        }
        _ => usage(),
    }
}

fn build_2d(name: &str, side: u32) -> Box<dyn SpaceFillingCurve<2>> {
    curve_2d(name, side).unwrap_or_else(|e| fail(&e))
}

fn build_3d(name: &str, side: u32) -> Box<dyn SpaceFillingCurve<3>> {
    curve_3d(name, side).unwrap_or_else(|e| fail(&e))
}

fn fail(e: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    exit(1);
}
