//! Load balancing / distributed partitioning demo (§I of the paper cites
//! SFC-based partitioning of spatial data and load balancing in parallel
//! simulations).
//!
//! The universe is split into `k` contiguous curve ranges, one per worker.
//! A good curve keeps each worker's cells spatially coherent, minimizing
//! the neighbor edges that cross workers ("communication volume" in a
//! stencil/simulation workload).
//!
//! Run with `cargo run --release --example load_balancing`.

use onion_curve::index::{evaluate_partitioning, partition_universe};
use onion_curve::SpaceFillingCurve;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 256u32;
    let workers = 16usize;

    println!("partitioning the {side}x{side} grid among {workers} workers by curve order\n");
    println!(
        "{:<14} {:>10} {:>14} {:>10}",
        "curve", "cut edges", "surface cells", "imbalance"
    );

    let mut results = Vec::new();
    for name in ["onion", "hilbert", "z-order", "snake", "row-major"] {
        let curve = onion_curve::baselines::curve_2d(name, side)?;
        let parts = partition_universe(&curve, workers);
        let m = evaluate_partitioning(&curve, &parts);
        println!(
            "{name:<14} {:>10} {:>14} {:>10}",
            m.cut_edges, m.surface_cells, m.imbalance
        );
        results.push((name, m));
        let _ = curve.universe();
    }

    // Cell counts are balanced by construction; the interesting signal is
    // the cut — and it exposes the trade-off the paper itself concedes
    // (§VIII): clustering is not the only locality metric. The onion
    // curve's contiguous ranges are *rings*, whose perimeter is large, so
    // its partitions cut many more edges than the Hilbert curve's compact
    // quadrant-like territories. Onion wins range-query seeks (see the
    // `spatial_index` example); Hilbert wins partition compactness.
    let cut = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| m.cut_edges)
            .unwrap()
    };
    assert!(results.iter().all(|(_, m)| m.imbalance <= 1));
    assert!(
        cut("hilbert") < cut("onion"),
        "Hilbert's compact partitions should cut fewer edges than onion rings"
    );
    println!(
        "\ntrade-off (paper §VIII): onion cut = {}, hilbert cut = {} — \
         the onion curve optimizes query clustering, not partition \
         compactness; pick the curve for the workload.",
        cut("onion"),
        cut("hilbert")
    );
    Ok(())
}
