//! Similarity search demo — §I of the paper cites "multi-dimensional
//! similarity searching" as an SFC application. `SfcTable::knn` answers
//! k-nearest-neighbor queries with expanding window queries, each of which
//! costs one seek per cluster; a curve with better clustering explores the
//! neighborhood with less I/O.
//!
//! Run with `cargo run --release --example similarity_search`.

use onion_curve::index::{DiskModel, IoStats, QueryOptions, SfcTable};
use onion_curve::workloads::clustered_points;
use onion_curve::{Point, SpaceFillingCurve};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 512u32;
    let mut rng = StdRng::seed_from_u64(99);

    // A clustered point cloud, like a geo dataset of venues.
    let records: Vec<(Point<2>, u64)> = clustered_points::<2, _>(side, 80_000, 20, 18, &mut rng)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();

    let centers: Vec<Point<2>> = (0..50)
        .map(|_| Point::new([rng.random_range(0..side), rng.random_range(0..side)]))
        .collect();
    let k = 10usize;

    println!(
        "k-NN (k = {k}) over {} clustered records, 50 query points\n",
        records.len()
    );
    println!(
        "{:<14} {:>10} {:>10} {:>14}",
        "curve", "seeks", "pages", "sim time(ms)"
    );

    let mut reference: Option<Vec<Vec<u64>>> = None;
    for name in ["onion", "hilbert", "z-order", "row-major"] {
        let curve = onion_curve::baselines::curve_2d(name, side)?;
        let table = SfcTable::build(curve, records.clone(), DiskModel::hdd())?;
        let mut io = IoStats::default();
        let mut answers: Vec<Vec<u64>> = Vec::new();
        for &c in &centers {
            // Account the expanding-window queries by replaying them: knn
            // itself performs rect queries internally; measure one
            // equivalent final-window query for the I/O comparison.
            let hits = table.knn(c, k)?;
            answers.push(hits.iter().map(|&(_, d2)| d2).collect());
            let radius = hits
                .last()
                .map(|&(_, d2)| (d2 as f64).sqrt().ceil() as u32)
                .unwrap_or(1)
                .max(1);
            let lo = [c.0[0].saturating_sub(radius), c.0[1].saturating_sub(radius)];
            let len = [
                (c.0[0] + radius).min(side - 1) - lo[0] + 1,
                (c.0[1] + radius).min(side - 1) - lo[1] + 1,
            ];
            let q = onion_curve::clustering::RectQuery::new(lo, len)?;
            io.absorb(table.query_rect(&q, &QueryOptions::default())?.io);
        }
        println!(
            "{name:<14} {:>10} {:>10} {:>14.1}",
            io.seeks,
            io.pages,
            io.time_us(table.model()) / 1000.0
        );
        // Every curve must return identical k-NN distances.
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(r, &answers, "{name} returned different neighbors"),
        }
        let _ = table.curve().universe();
    }
    println!("\nAll curves agree on the neighbors; they differ only in I/O.");
    Ok(())
}
