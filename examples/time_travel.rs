//! Time travel: epoch MVCC, `as_of` reads, and the retention window.
//!
//! Every flush installs a new immutable table version stamped with its
//! epoch; the engine retains a bounded window of recent versions. This
//! example writes a short history, then reads the past three ways:
//!
//! 1. **Pinned snapshot** — `snapshot_at(e)` pins a retained version;
//!    reads through it keep answering epoch `e` while later epochs land.
//! 2. **`as_of` inside the window** — `Op::QueryAsOf` answers from the
//!    retained version with zero I/O.
//! 3. **`as_of` past the window** — the version is gone from memory, so
//!    the engine reconstructs the state by replaying the WAL prefix
//!    through epoch `e` (the same computation crash recovery runs),
//!    until a checkpoint compacts that history away and draws the
//!    horizon for how far back `as_of` can reach.
//!
//! Run with `cargo run --release --example time_travel`.

use onion_core::{Onion2D, Point};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op, Reply};
use sfc_index::{DiskModel, RetentionPolicy};

fn main() {
    let side = 1u32 << 6;
    let dir = std::env::temp_dir().join(format!("sfc-time-travel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine: Engine<Onion2D, u64, 2> = Engine::open(
        &dir,
        Onion2D::new(side).unwrap(),
        DiskModel::ssd(),
        4,
        EngineConfig {
            epoch_ops: 1 << 20, // flush manually: one epoch per "day" below
            // Keep only the last 3 epochs in memory; anything older must
            // come back through the WAL.
            retention: RetentionPolicy {
                epochs: 3,
                bytes: u64::MAX,
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();

    // --- A history: each epoch revalues one column of the grid. --------
    const EPOCHS: u64 = 8;
    for e in 1..=EPOCHS {
        for y in 0..side {
            engine
                .execute(Op::Update(Point::new([(e - 1) as u32, y]), e * 100))
                .unwrap();
        }
        engine.flush().unwrap(); // epoch e is now durable and versioned
    }
    println!(
        "wrote {EPOCHS} epochs; retained versions: {:?}",
        engine.table().retained_epochs()
    );

    // --- 1. A pinned snapshot is a stable past. ------------------------
    let pinned = engine.table().snapshot();
    let at = pinned.epoch();
    for y in 0..side {
        engine.execute(Op::Delete(Point::new([0, y]))).unwrap();
    }
    engine.flush().unwrap();
    let q = RectQuery::new([0, 0], [side, side]).unwrap();
    let now = engine.query(&q).unwrap().0.records.len();
    let then = pinned.query_rect(&q).unwrap().records.len();
    println!("after a deleting epoch: live={now} records, pinned@{at}={then} records");
    assert_eq!(then as u64, u64::from(side) * EPOCHS);

    // --- 2. as_of inside the retention window: memory, zero I/O. -------
    let warm = engine.epoch() - 1;
    assert!(engine.snapshot_at(warm).is_some(), "still retained");
    let Reply::Records(recs) = engine
        .execute(Op::QueryAsOf {
            epoch: warm,
            query: q,
        })
        .unwrap()
    else {
        unreachable!()
    };
    println!("as_of({warm}) from the window: {} records", recs.len());

    // --- 3. as_of past the window: eviction, then WAL replay. ----------
    let cold = 2u64;
    assert!(
        engine.snapshot_at(cold).is_none(),
        "epoch {cold} was evicted from the {:?}-epoch window",
        engine.table().retention().epochs
    );
    let recs = engine.query_as_of(cold, &q).unwrap().records;
    println!(
        "as_of({cold}) after eviction: {} records, reconstructed by WAL replay",
        recs.len()
    );
    assert_eq!(recs.len() as u64, u64::from(side) * cold);
    assert!(recs.iter().all(|r| r.value <= cold * 100));

    // --- The checkpoint horizon. ---------------------------------------
    // Compaction folds the WAL into a snapshot at the current epoch;
    // epochs before it are no longer reconstructible, and `as_of` says so.
    let horizon = engine.checkpoint().unwrap();
    let err = engine.query_as_of(cold, &q).unwrap_err();
    println!("after checkpoint at epoch {horizon}: as_of({cold}) -> {err}");
    assert!(engine.query_as_of(horizon, &q).is_ok());

    drop(engine);
    std::fs::remove_dir_all(&dir).unwrap();
}
