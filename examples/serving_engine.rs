//! The serving layer end to end: an `Engine` over a Zipf-skewed paged
//! sharded table, driven by concurrent mixed op-streams, with the adaptive
//! planner explaining its decisions as its live statistics warm up.
//!
//! Run with `cargo run --release --example serving_engine`.

use onion_curve::clustering::RectQuery;
use onion_curve::engine::{Engine, EngineConfig, Op};
use onion_curve::index::{DiskModel, ShardedTable};
use onion_curve::workloads::{mixed_op_stream, zipf_points, OpMix};
use onion_curve::{Onion2D, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let side = 1u32 << 8;
    let mut rng = StdRng::seed_from_u64(7);
    let records: Vec<(Point<2>, u64)> = zipf_points::<2, _>(side, 50_000, 0.8, &mut rng)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let table = ShardedTable::build_paged(
        Onion2D::new(side).unwrap(),
        records,
        DiskModel::hdd(),
        4,
        1 << 9,
    )
    .unwrap();
    println!(
        "engine over {} records, {} shards (sizes {:?})",
        table.len(),
        table.shard_count(),
        table.shard_sizes()
    );
    let engine = Engine::new(table, EngineConfig::with_epoch_ops(256));

    // A cold plan, before any feedback.
    let q = RectQuery::new([20, 20], [96, 96]).unwrap();
    println!("\ncold plan:  {}", engine.explain(&q).unwrap().explain());

    // Serve mixed traffic: 4 reader threads + 1 writer thread.
    let reader_streams: Vec<Vec<Op<2, u64>>> = (0..4)
        .map(|_| {
            mixed_op_stream::<2, _>(side, 500, &OpMix::read_only(), 0.8, 48, &mut rng)
                .into_iter()
                .map(Op::from)
                .collect()
        })
        .collect();
    let writer: Vec<Op<2, u64>> =
        mixed_op_stream::<2, _>(side, 1_000, &OpMix::write_only(), 0.8, 1, &mut rng)
            .into_iter()
            .map(Op::from)
            .collect();
    let engine_ref = &engine;
    std::thread::scope(|s| {
        for stream in &reader_streams {
            s.spawn(move || {
                for op in stream {
                    engine_ref.execute(op.clone()).unwrap();
                }
            });
        }
        s.spawn(move || {
            for op in &writer {
                engine_ref.execute(op.clone()).unwrap();
            }
        });
    });
    engine.flush().unwrap();

    let stats = engine.stats();
    println!(
        "\nserved: {} gets, {} rect queries, {} writes in {} epoch(s)",
        stats.gets, stats.queries, stats.writes, stats.epochs
    );
    println!(
        "planner: hit rate {:.2}, shard skew {:.2} after {} observed queries",
        engine.planner().hit_rate(),
        engine.planner().shard_skew(),
        engine.planner().observed()
    );
    // The same query, planned warm: the pool feedback discounts transfers,
    // so the plan leans further toward fewer seeks.
    println!("warm plan:  {}", engine.explain(&q).unwrap().explain());
}
