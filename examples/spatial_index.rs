//! Spatial indexing demo: the same records, the same queries, four
//! different curve orders — and the seek counts that follow.
//!
//! This is the application §I of the paper motivates: records keyed by
//! their curve index live in a B+-tree / on-disk pages; a rectangle query
//! becomes one range scan per cluster. Fewer clusters = fewer seeks.
//!
//! Run with `cargo run --release --example spatial_index`.

use onion_curve::clustering::RectQuery;
use onion_curve::index::{DiskModel, IoStats, QueryOptions, SfcTable};
use onion_curve::workloads::{clustered_points, uniform_points};
use onion_curve::{Point, SpaceFillingCurve};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_workload(
    curve_name: &str,
    side: u32,
    records: &[(Point<2>, u64)],
    queries: &[RectQuery<2>],
) -> Result<(IoStats, f64), Box<dyn std::error::Error>> {
    let curve = sfc_baselines_curve(curve_name, side)?;
    let model = DiskModel::hdd();
    let table = SfcTable::build(curve, records.to_vec(), model)?;
    let mut total = IoStats::default();
    for q in queries {
        let res = table.query_rect(q, &QueryOptions::default())?;
        total.absorb(res.io);
    }
    let time_ms = total.time_us(&model) / 1000.0;
    Ok((total, time_ms))
}

fn sfc_baselines_curve(
    name: &str,
    side: u32,
) -> Result<Box<dyn SpaceFillingCurve<2>>, Box<dyn std::error::Error>> {
    Ok(onion_curve::baselines::curve_2d(name, side)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 512u32;
    let mut rng = StdRng::seed_from_u64(2024);

    // 200k records: half uniform, half in Gaussian-ish clusters (a realistic
    // mixed spatial table).
    let mut records: Vec<(Point<2>, u64)> = Vec::new();
    for (i, p) in uniform_points::<2, _>(side, 100_000, &mut rng)
        .points
        .into_iter()
        .enumerate()
    {
        records.push((p, i as u64));
    }
    for (i, p) in clustered_points::<2, _>(side, 100_000, 12, 14, &mut rng)
        .points
        .into_iter()
        .enumerate()
    {
        records.push((p, 100_000 + i as u64));
    }

    // A mixed query workload: small, medium, and near-full windows.
    let mut queries = Vec::new();
    for &(l, count) in &[(16u32, 40usize), (64, 25), (192, 10), (side - 20, 5)] {
        queries.extend(onion_curve::clustering::random_translations(
            side,
            [l, l],
            count,
            &mut rng,
        )?);
    }

    println!(
        "{} records, {} rectangle queries, {}x{} universe, HDD cost model\n",
        records.len(),
        queries.len(),
        side,
        side
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12}",
        "curve", "seeks", "pages", "entries", "sim time(ms)"
    );
    let mut seeks_by_curve = Vec::new();
    for name in ["onion", "hilbert", "z-order", "row-major"] {
        let (io, ms) = run_workload(name, side, &records, &queries)?;
        println!(
            "{name:<14} {:>10} {:>10} {:>10} {:>12.1}",
            io.seeks, io.pages, io.entries, ms
        );
        seeks_by_curve.push((name, io.seeks));
    }

    // Every curve returns exactly the same entries; only the seek counts
    // (cluster counts) differ.
    let onion_seeks = seeks_by_curve[0].1;
    let row_major_seeks = seeks_by_curve[3].1;
    assert!(
        onion_seeks < row_major_seeks,
        "onion ordering should out-seek row-major"
    );
    println!(
        "\nonion performs {:.1}x fewer seeks than row-major on this workload.",
        row_major_seeks as f64 / onion_seeks as f64
    );
    Ok(())
}
