//! The network layer end to end: a durable transactor `Engine` behind
//! a `Server`, a `Client` writing over TCP loopback, and a read
//! `Replica` streaming the committed epochs — converging, reporting
//! lag, answering time-travel queries from its own retention window,
//! and (the finale) surviving a severed connection: killed mid-stream,
//! it reconnects, resumes from its applied epoch, and catches up the
//! missed epochs from the transactor's WAL.
//!
//! Run with `cargo run --release --example replicated_engine`.

use onion_curve::clustering::RectQuery;
use onion_curve::engine::{Engine, EngineConfig};
use onion_curve::index::DiskModel;
use onion_curve::net::{Client, Replica, ReplicaState, Server};
use onion_curve::workloads::{mixed_op_stream, ChaosInjector, ChaosProxy, OpMix};
use onion_curve::{Onion2D, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIDE: u32 = 1 << 6;

fn await_applied(replica: &Replica<Onion2D, u64, 2>, target: u64) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while replica.applied_epoch() < target {
        assert!(
            !replica.is_failed(),
            "replica fault: {:?}",
            replica.take_fault()
        );
        assert!(Instant::now() < deadline, "replica failed to converge");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn main() {
    // The transactor: a DURABLE engine on the onion curve — the WAL it
    // commits is also what lets a severed replica catch up later.
    // Manual epoch control so the example's flushes are the epochs.
    let dir = std::env::temp_dir().join(format!("onion-replicated-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let engine: Arc<Engine<Onion2D, u64, 2>> = Arc::new(
        Engine::open(
            &dir,
            Onion2D::new(SIDE).unwrap(),
            DiskModel::ssd(),
            2,
            EngineConfig::with_epoch_ops(1 << 20),
        )
        .unwrap(),
    );

    // Put it on the network: ephemeral loopback port.
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    println!("transactor serving on {addr}");

    // The replica subscribes THROUGH a chaos proxy — a deterministic
    // fault point we'll use to sever its connection later. It
    // re-partitions to 3 shards — like recovery, replication is
    // shard-count agnostic. `Replica::start` is self-healing by
    // default: connection loss means reconnect-and-resume, not death.
    let injector = ChaosInjector::new();
    let proxy = ChaosProxy::spawn(&addr, Arc::clone(&injector)).unwrap();
    let replica = Replica::<Onion2D, u64, 2>::start(
        &proxy.addr(),
        Onion2D::new(SIDE).unwrap(),
        DiskModel::ssd(),
        3,
        &EngineConfig::default(),
    )
    .unwrap();

    // A client drives writes over the wire: 4 epochs of mixed traffic.
    let mut client = Client::<Onion2D, u64, 2>::connect(&addr).unwrap();
    client.ping().unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    for epoch in 1..=4u64 {
        let ops = mixed_op_stream::<2, _>(SIDE, 250, &OpMix::balanced(), 0.7, 8, &mut rng);
        for op in ops {
            client.execute(op.into()).unwrap();
        }
        let applied = client.flush().unwrap();
        println!(
            "epoch {epoch}: committed {applied} ops; replica lag {} epoch(s)",
            replica.lag()
        );
    }
    let committed = engine.stats().epochs;

    // Convergence: wait (bounded) for the replica to drain the stream.
    await_applied(&replica, committed);
    println!(
        "\nreplica converged: applied epoch {} of {}, lag {}",
        replica.applied_epoch(),
        committed,
        replica.lag()
    );

    // The replica answers reads locally — no round-trip to the
    // transactor — and matches it record for record.
    let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
    let from_replica = replica.query(&q).unwrap().records;
    let from_transactor = client.query(q).unwrap();
    assert_eq!(from_replica, from_transactor);
    println!(
        "full-rectangle scan: {} records, identical on both sides",
        from_replica.len()
    );

    // Point reads too, straight off the replica's table.
    let p = Point::new([SIDE / 2, SIDE / 2]);
    println!("replica.get({p:?}) = {:?}", replica.get(p).unwrap());

    // Time travel on the replica: its retention window holds the same
    // recent epochs the transactor's does, so `query_as_of` answers for
    // any retained epoch without asking the transactor.
    for epoch in 1..=committed {
        match replica.query_as_of(epoch, &q) {
            Ok(result) => println!(
                "as of epoch {epoch}: {} records (answered by the replica)",
                result.records.len()
            ),
            Err(e) => println!("as of epoch {epoch}: {e}"),
        }
    }

    // Failover: sever the replica's subscription, then keep writing.
    // The replica reconnects under its backoff policy, re-subscribes
    // from its applied epoch, and the transactor's WAL serves exactly
    // the epochs it missed — exactly-once, no re-seeding.
    println!("\nsevering the replica's connection (proxy kill)...");
    proxy.kill_all();
    for _ in 0..2 {
        let ops = mixed_op_stream::<2, _>(SIDE, 250, &OpMix::balanced(), 0.7, 8, &mut rng);
        for op in ops {
            client.execute(op.into()).unwrap();
        }
        client.flush().unwrap();
    }
    let committed = engine.stats().epochs;
    await_applied(&replica, committed);
    let status = replica.status();
    assert_eq!(status.state, ReplicaState::Streaming);
    assert!(status.reconnects >= 1);
    println!(
        "replica healed: applied epoch {} of {}, lag {}, reconnects {}",
        status.applied, committed, status.lag, status.reconnects
    );
    let healed = replica.query(&q).unwrap().records;
    assert_eq!(healed, client.query(q).unwrap());
    println!(
        "post-failover scan: {} records, identical again",
        healed.len()
    );

    replica.stop();
    proxy.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nclean shutdown: replica stopped, proxy and server joined");
}
