//! The network layer end to end: a transactor `Engine` behind a
//! `Server`, a `Client` writing over TCP loopback, and a read
//! `Replica` streaming the committed epochs — converging, reporting
//! lag, and answering time-travel queries from its own retention
//! window.
//!
//! Run with `cargo run --release --example replicated_engine`.

use onion_curve::clustering::RectQuery;
use onion_curve::engine::{Engine, EngineConfig};
use onion_curve::index::{DiskModel, ShardedTable};
use onion_curve::net::{Client, Replica, Server};
use onion_curve::workloads::{mixed_op_stream, OpMix};
use onion_curve::{Onion2D, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIDE: u32 = 1 << 6;

fn main() {
    // The transactor: an in-memory engine on the onion curve, 2 shards,
    // manual epoch control so the example's flushes are the epochs.
    let curve = Onion2D::new(SIDE).unwrap();
    let table =
        ShardedTable::build(curve, Vec::<(Point<2>, u64)>::new(), DiskModel::ssd(), 2).unwrap();
    let engine = Arc::new(Engine::new(table, EngineConfig::with_epoch_ops(1 << 20)));

    // Put it on the network: ephemeral loopback port.
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    println!("transactor serving on {addr}");

    // A replica subscribes before any write lands, so it sees every
    // epoch live. It re-partitions to 3 shards — like recovery,
    // replication is shard-count agnostic.
    let replica = Replica::<Onion2D, u64, 2>::start(
        &addr,
        Onion2D::new(SIDE).unwrap(),
        DiskModel::ssd(),
        3,
        &EngineConfig::default(),
    )
    .unwrap();

    // A client drives writes over the wire: 4 epochs of mixed traffic.
    let mut client = Client::<Onion2D, u64, 2>::connect(&addr).unwrap();
    client.ping().unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    for epoch in 1..=4u64 {
        let ops = mixed_op_stream::<2, _>(SIDE, 250, &OpMix::balanced(), 0.7, 8, &mut rng);
        for op in ops {
            client.execute(op.into()).unwrap();
        }
        let applied = client.flush().unwrap();
        println!(
            "epoch {epoch}: committed {applied} ops; replica lag {} epoch(s)",
            replica.lag()
        );
    }
    let committed = engine.stats().epochs;

    // Convergence: wait (bounded) for the replica to drain the stream.
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.applied_epoch() < committed {
        assert!(
            !replica.is_failed(),
            "replica fault: {:?}",
            replica.take_fault()
        );
        assert!(Instant::now() < deadline, "replica failed to converge");
        std::thread::sleep(Duration::from_millis(2));
    }
    println!(
        "\nreplica converged: applied epoch {} of {}, lag {}",
        replica.applied_epoch(),
        committed,
        replica.lag()
    );

    // The replica answers reads locally — no round-trip to the
    // transactor — and matches it record for record.
    let q = RectQuery::new([0, 0], [SIDE, SIDE]).unwrap();
    let from_replica = replica.query(&q).unwrap().records;
    let from_transactor = client.query(q).unwrap();
    assert_eq!(from_replica, from_transactor);
    println!(
        "full-rectangle scan: {} records, identical on both sides",
        from_replica.len()
    );

    // Point reads too, straight off the replica's table.
    let p = Point::new([SIDE / 2, SIDE / 2]);
    println!("replica.get({p:?}) = {:?}", replica.get(p).unwrap());

    // Time travel on the replica: its retention window holds the same
    // recent epochs the transactor's does, so `query_as_of` answers for
    // any retained epoch without asking the transactor.
    for epoch in 1..=committed {
        match replica.query_as_of(epoch, &q) {
            Ok(result) => println!(
                "as of epoch {epoch}: {} records (answered by the replica)",
                result.records.len()
            ),
            Err(e) => println!("as of epoch {epoch}: {e}"),
        }
    }

    replica.stop();
    server.shutdown();
    println!("\nclean shutdown: replica stopped, server joined");
}
