//! ASCII gallery of every curve in the workspace: the cell numbering on a
//! small grid plus continuity/clustering fingerprints side by side.
//!
//! Run with `cargo run --release --example curve_gallery`.

use onion_curve::clustering::{clustering_number, RectQuery};
use onion_curve::{edges, Point, SpaceFillingCurve};

fn print_grid(curve: &dyn SpaceFillingCurve<2>) {
    let side = curve.universe().side();
    for y in (0..side).rev() {
        let mut line = String::new();
        for x in 0..side {
            line.push_str(&format!("{:>4}", curve.index_unchecked(Point::new([x, y]))));
        }
        println!("{line}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let side = 8u32;
    // A mid-grid query for the clustering fingerprint.
    let q = RectQuery::new([2, 3], [4, 3])?;

    for name in onion_curve::baselines::CURVE_NAMES {
        let curve = onion_curve::baselines::curve_2d(name, side)?;
        let jumps = edges(&curve).filter(|(a, b)| !a.is_neighbor(b)).count();
        println!(
            "\n== {name} (continuous: {}, discontinuities: {jumps}) ==",
            curve.is_continuous()
        );
        print_grid(curve.as_ref());
        println!(
            "clusters for the 4x3 query at (2,3): {}",
            clustering_number(&curve, &q)
        );
    }
    Ok(())
}
