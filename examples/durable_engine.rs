//! Durable serving: insert, crash, reopen, recover.
//!
//! Walks the whole durability story end to end: a WAL-backed engine
//! serves writes in epochs, the process "crashes" (the engine is dropped
//! cold, pending writes and all), and a reopened engine recovers exactly
//! the acknowledged epoch boundary — then compacts its log into a
//! snapshot and proves the state survives that too.
//!
//! Run with `cargo run --release --example durable_engine`.

use onion_core::{Onion2D, Point};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op, Reply, WAL_FILE};
use sfc_index::DiskModel;

fn main() {
    let side = 1u32 << 7;
    let dir = std::env::temp_dir().join(format!("sfc-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open = || -> Engine<Onion2D, u64, 2> {
        Engine::open(
            &dir,
            Onion2D::new(side).unwrap(),
            DiskModel::ssd(),
            4,
            EngineConfig { epoch_ops: 256 },
        )
        .unwrap()
    };

    // --- Run 1: serve writes, flush some epochs, crash. -----------------
    let engine = open();
    println!(
        "fresh engine: epoch {}, {} records",
        engine.epoch(),
        engine.table().len()
    );
    for i in 0..1000u64 {
        let p = Point::new([
            (i % u64::from(side)) as u32,
            (i / 8 % u64::from(side)) as u32,
        ]);
        engine.execute(Op::Insert(p, i)).unwrap();
    }
    engine.flush().unwrap(); // commit point: every insert above is durable
    let durable_count = engine.table().len();

    // These writes are admitted (acknowledged `Queued`) but never
    // flushed — the crash below takes them with it.
    for i in 0..100u64 {
        engine
            .execute(Op::Insert(Point::new([i as u32, 101]), 9_000_000 + i))
            .unwrap();
    }
    println!(
        "before crash: epoch {}, {} records durable, {} writes pending, WAL {} bytes",
        engine.epoch(),
        durable_count,
        engine.pending(),
        engine.wal_len().unwrap(),
    );
    drop(engine); // crash: no flush, no shutdown hook

    // --- Run 2: recover, verify, checkpoint. ----------------------------
    let engine = open();
    println!(
        "\nrecovered: epoch {}, {} records (pending writes lost, epochs kept)",
        engine.epoch(),
        engine.table().len()
    );
    assert_eq!(engine.table().len(), durable_count);
    let Reply::Value(v) = engine.execute(Op::Get(Point::new([5, 0]))).unwrap() else {
        unreachable!()
    };
    println!("point get after recovery: {v:?}");

    // Compact the log into a snapshot; recovery afterwards reads the
    // snapshot plus an empty WAL suffix.
    let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    let epoch = engine.checkpoint().unwrap();
    let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    println!("checkpoint at epoch {epoch}: WAL {before} -> {after} bytes");
    drop(engine);

    let engine = open();
    let q = RectQuery::new([0, 0], [side, side]).unwrap();
    let Reply::Records(recs) = engine.execute(Op::Query(q)).unwrap() else {
        unreachable!()
    };
    assert_eq!(recs.len(), durable_count);
    println!(
        "\nreopened from snapshot: epoch {}, {} records — identical state, instant log",
        engine.epoch(),
        recs.len()
    );
    drop(engine);
    std::fs::remove_dir_all(&dir).unwrap();
}
