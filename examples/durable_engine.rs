//! Durable serving: insert, crash, reopen, recover — and group commit.
//!
//! Walks the whole durability story end to end: a WAL-backed engine
//! serves writes in epochs, the process "crashes" (the engine is dropped
//! cold, pending writes and all), and a reopened engine recovers exactly
//! the acknowledged epoch boundary — then compacts its log into a
//! snapshot, proves the state survives that too, and finishes with a
//! multi-writer group commit: several threads flushing concurrently
//! coalesce into **one** epoch frame (and one fsync), observed via
//! `wal_len`.
//!
//! Run with `cargo run --release --example durable_engine`.

use onion_core::{Onion2D, Point};
use sfc_clustering::RectQuery;
use sfc_engine::{CommitPolicy, Engine, EngineConfig, Op, Reply, WAL_FILE};
use sfc_index::DiskModel;
use std::time::Duration;

fn main() {
    let side = 1u32 << 7;
    let dir = std::env::temp_dir().join(format!("sfc-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let open = || -> Engine<Onion2D, u64, 2> {
        Engine::open(
            &dir,
            Onion2D::new(side).unwrap(),
            DiskModel::ssd(),
            4,
            EngineConfig::with_epoch_ops(256),
        )
        .unwrap()
    };

    // --- Run 1: serve writes, flush some epochs, crash. -----------------
    let engine = open();
    println!(
        "fresh engine: epoch {}, {} records",
        engine.epoch(),
        engine.table().len()
    );
    for i in 0..1000u64 {
        let p = Point::new([
            (i % u64::from(side)) as u32,
            (i / 8 % u64::from(side)) as u32,
        ]);
        engine.execute(Op::Insert(p, i)).unwrap();
    }
    engine.flush().unwrap(); // commit point: every insert above is durable
    let durable_count = engine.table().len();

    // These writes are admitted (acknowledged `Queued`) but never
    // flushed — the crash below takes them with it.
    for i in 0..100u64 {
        engine
            .execute(Op::Insert(Point::new([i as u32, 101]), 9_000_000 + i))
            .unwrap();
    }
    println!(
        "before crash: epoch {}, {} records durable, {} writes pending, WAL {} bytes",
        engine.epoch(),
        durable_count,
        engine.pending(),
        engine.wal_len().unwrap(),
    );
    drop(engine); // crash: no flush, no shutdown hook

    // --- Run 2: recover, verify, checkpoint. ----------------------------
    let engine = open();
    println!(
        "\nrecovered: epoch {}, {} records (pending writes lost, epochs kept)",
        engine.epoch(),
        engine.table().len()
    );
    assert_eq!(engine.table().len(), durable_count);
    let Reply::Value(v) = engine.execute(Op::Get(Point::new([5, 0]))).unwrap() else {
        unreachable!()
    };
    println!("point get after recovery: {v:?}");

    // Compact the log into a snapshot; recovery afterwards reads the
    // snapshot plus an empty WAL suffix.
    let before = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    let epoch = engine.checkpoint().unwrap();
    let after = std::fs::metadata(dir.join(WAL_FILE)).unwrap().len();
    println!("checkpoint at epoch {epoch}: WAL {before} -> {after} bytes");
    drop(engine);

    let engine = open();
    let q = RectQuery::new([0, 0], [side, side]).unwrap();
    let Reply::Records(recs) = engine.execute(Op::Query(q)).unwrap() else {
        unreachable!()
    };
    assert_eq!(recs.len(), durable_count);
    println!(
        "\nreopened from snapshot: epoch {}, {} records — identical state, instant log",
        engine.epoch(),
        recs.len()
    );

    drop(engine);

    // --- Run 3: group commit — N writers, one epoch frame, one fsync. ---
    // Each thread admits its own writes and calls `flush` concurrently.
    // The commit queue elects one leader, and `max_delay` makes it linger
    // long enough for the other writers' admissions to land in its epoch
    // — so the WAL grows by a single coalesced frame (one fsync serves
    // every writer) instead of one frame per writer.
    let engine: Engine<Onion2D, u64, 2> = Engine::open(
        &dir,
        Onion2D::new(side).unwrap(),
        DiskModel::ssd(),
        4,
        EngineConfig {
            epoch_ops: 256,
            // A generous linger window so the demo coalesces even on a
            // loaded single-core host, where the writer threads may
            // otherwise get scheduled one after another.
            commit: CommitPolicy {
                max_epochs: 8,
                max_delay: Duration::from_millis(25),
            },
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let writers = 4u64;
    let per_writer = 32u64;
    let epoch_before = engine.epoch();
    let wal_before = engine.wal_len().unwrap();
    let engine_ref = &engine;
    std::thread::scope(|s| {
        for w in 0..writers {
            s.spawn(move || {
                for i in 0..per_writer {
                    let p = Point::new([(w * per_writer + i) as u32 % side, 120]);
                    engine_ref
                        .execute(Op::Update(p, 7_000_000 + w * 1000 + i))
                        .unwrap();
                }
                // Every thread asks for durability; one fsync serves all.
                engine_ref.flush().unwrap();
            });
        }
    });
    let frames = engine.epoch() - epoch_before;
    println!(
        "\ngroup commit: {writers} writers x {per_writer} ops flushed concurrently \
         -> {frames} epoch frame(s), WAL {wal_before} -> {} bytes, all durable \
         (durable epoch {})",
        engine.wal_len().unwrap(),
        engine.durable_epoch(),
    );
    assert!(
        frames < writers,
        "concurrent flushes must coalesce below one epoch per writer"
    );
    assert_eq!(engine.durable_epoch(), engine.epoch(), "flush acknowledged");
    drop(engine);
    std::fs::remove_dir_all(&dir).unwrap();
}
