//! Quickstart: build curves, map points both ways, and see why clustering
//! matters for range queries.
//!
//! Run with `cargo run --release --example quickstart`.

use onion_curve::clustering::{cluster_ranges, clustering_number, RectQuery};
use onion_curve::{Hilbert, Morton, Onion2D, Point, SpaceFillingCurve};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 256×256 discrete universe, three different linearizations.
    let side = 256u32;
    let onion = Onion2D::new(side)?;
    let hilbert = Hilbert::<2>::new(side)?;
    let z = Morton::<2>::new(side)?;

    // Every curve is a bijection between cells and [0, n).
    let p = Point::new([37, 201]);
    println!("cell {p}:");
    println!("  onion index   = {}", onion.index_of(p)?);
    println!("  hilbert index = {}", hilbert.index_of(p)?);
    println!("  z-order index = {}", z.index_of(p)?);
    assert_eq!(onion.point_of(onion.index_of(p)?)?, p);

    // A rectangular query maps to a set of contiguous index ranges; their
    // count is the paper's "clustering number" — the number of disk seeks a
    // curve-ordered table performs for this query.
    let query = RectQuery::new([10, 20], [100, 90])?;
    for (name, clusters) in [
        ("onion", clustering_number(&onion, &query)),
        ("hilbert", clustering_number(&hilbert, &query)),
        ("z-order", clustering_number(&z, &query)),
    ] {
        println!("query 100x90 at (10,20): {name:<8} -> {clusters} clusters");
    }

    // The ranges themselves (use them to drive your own storage layer).
    let ranges = cluster_ranges(&onion, &query);
    println!(
        "onion decomposition: {} ranges covering {} cells, first = {:?}",
        ranges.len(),
        query.volume(),
        ranges.first().unwrap()
    );

    // The onion curve's headline property: for near-full cube queries its
    // clustering number stays tiny while the Hilbert curve's blows up.
    let big = RectQuery::new([0, 1], [side - 9, side - 9])?;
    println!(
        "near-full query ({0}x{0}): onion {1} clusters, hilbert {2} clusters",
        side - 9,
        clustering_number(&onion, &big),
        clustering_number(&hilbert, &big),
    );
    Ok(())
}
