//! # sfc-clustering
//!
//! Clustering-number analysis for space-filling curves, implementing the
//! measurement machinery of the Onion Curve paper:
//!
//! * [`RectQuery`] — rectangular queries with fast boundary enumeration;
//! * [`clustering_number`] / [`cluster_ranges`] — exact per-query cluster
//!   counts and the actual index runs, with three cross-checked algorithms
//!   (sort, entry-scan, and the `O(surface)` boundary-scan for continuous /
//!   almost-continuous curves);
//! * [`TranslationSet`] — the paper's §II/§V counting machinery
//!   (`I(Q,α)`, `γ(Q,e)`, `λ(Q,α)`, `ω(Q,α)`);
//! * [`average_clustering_exact`] — Lemma 1 turned into an `O(n·D)` exact
//!   average over *all* translations of a query shape, for any curve;
//! * [`generator`] — the §VII workloads (random translations, Algorithm 1
//!   fixed-ratio rectangles, random-corner rectangles, rows/columns);
//! * [`Summary`] — the box-plot statistics the paper reports.
//!
//! ```
//! use onion_core::Onion2D;
//! use sfc_clustering::{clustering_number, RectQuery};
//!
//! let onion = Onion2D::new(8).unwrap();
//! // The 7×7 query of Figure 2b: a single cluster under the onion curve.
//! let q = RectQuery::new([0, 1], [7, 7]).unwrap();
//! assert_eq!(clustering_number(&onion, &q), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cluster;
mod crossing;
mod exact;
pub mod generator;
pub mod metrics;
mod query;
mod stats;

pub use cluster::{
    cluster_ranges, cluster_ranges_into, clustering_number, clustering_number_with,
    coalesce_ranges, coalesce_to_budget, covered_cells, gap_profile, ClusterMethod, ClusterScratch,
    PooledScratch, ScratchPool,
};
pub use crossing::TranslationSet;
pub use exact::{average_clustering_bruteforce, average_clustering_exact};
pub use generator::{
    all_translations, columns, fixed_ratio_set_2d, fixed_ratio_set_3d, random_corner_rects,
    random_translations, rows,
};
pub use metrics::{cluster_gap_stats, index_dilation, neighbor_stretch, GapStats};
pub use query::{RectCellIter, RectQuery};
pub use stats::{quantile, Summary};
