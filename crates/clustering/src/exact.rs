//! Exact average clustering numbers over full translation query sets, via
//! Lemma 1 of the paper:
//!
//! `c(Q, π) = (γ(Q, π) + I(Q, π_s) + I(Q, π_e)) / (2 |Q|)`
//!
//! where `γ(Q, π)` sums the crossing counts of all `n−1` curve edges. With
//! the `O(D)` per-edge counts of [`crate::crossing`], one walk of the curve
//! yields the *exact* average clustering number of **any** SFC (continuous
//! or not) for **all** translates of a query shape — no sampling error.

use crate::crossing::TranslationSet;
use onion_core::{CurveStepper, SfcError, SpaceFillingCurve};

/// Exact average clustering number `c(Q(shape), π)` over all translations.
///
/// Runs in `O(n · D)` time and `O(1)` memory (one curve walk).
///
/// ```
/// use onion_core::Onion2D;
/// use sfc_clustering::average_clustering_exact;
///
/// let onion = Onion2D::new(32).unwrap();
/// let avg = average_clustering_exact(&onion, [4, 4]).unwrap();
/// // Theorem 1: for ℓ ≤ m the average is close to (ℓ1 + ℓ2)/2 = 4.
/// assert!((avg - 4.0).abs() < 1.5, "avg = {avg}");
/// ```
pub fn average_clustering_exact<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    shape: [u32; D],
) -> Result<f64, SfcError> {
    let u = curve.universe();
    let ts = TranslationSet::new(u.side(), shape)?;
    let mut gamma_total: u128 = 0;
    // Walk the curve with the incremental stepper: one O(1) successor step
    // per edge for the onion curves, instead of one unrank per position.
    let mut stepper = CurveStepper::new(curve);
    let start = stepper.point();
    let mut prev = start;
    while stepper.advance() {
        let next = stepper.point();
        gamma_total += u128::from(ts.gamma_edge(prev, next));
        prev = next;
    }
    // `prev` now holds the final curve cell π_e; reuse it rather than
    // re-deriving `curve.end()` with another unrank.
    let ends = u128::from(ts.count_containing(start)) + u128::from(ts.count_containing(prev));
    Ok((gamma_total + ends) as f64 / (2.0 * ts.num_queries() as f64))
}

/// Exact average clustering number over an explicit query-set slice
/// (brute force: one clustering computation per query). Reference
/// implementation for tests and small universes.
pub fn average_clustering_bruteforce<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    queries: &[crate::query::RectQuery<D>],
) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    let total: u64 = queries
        .iter()
        .map(|q| crate::cluster::clustering_number(curve, q))
        .sum();
    total as f64 / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::all_translations;
    use onion_core::{Onion2D, Onion3D, OnionNd};

    #[test]
    fn lemma1_matches_bruteforce_onion_2d() {
        let o = Onion2D::new(10).unwrap();
        for shape in [[1u32, 1], [2, 3], [5, 5], [7, 4], [10, 10], [9, 1]] {
            let qs: Vec<_> = all_translations(10, shape).unwrap().collect();
            let brute = average_clustering_bruteforce(&o, &qs);
            let exact = average_clustering_exact(&o, shape).unwrap();
            assert!(
                (brute - exact).abs() < 1e-9,
                "shape {shape:?}: brute {brute} vs exact {exact}"
            );
        }
    }

    #[test]
    fn lemma1_matches_bruteforce_onion_3d() {
        let o = Onion3D::new(6).unwrap();
        for shape in [[1u32, 1, 1], [2, 3, 4], [3, 3, 3], [6, 6, 6], [5, 1, 2]] {
            let qs: Vec<_> = all_translations(6, shape).unwrap().collect();
            let brute = average_clustering_bruteforce(&o, &qs);
            let exact = average_clustering_exact(&o, shape).unwrap();
            assert!(
                (brute - exact).abs() < 1e-9,
                "shape {shape:?}: brute {brute} vs exact {exact}"
            );
        }
    }

    #[test]
    fn lemma1_matches_bruteforce_discontinuous_curve() {
        // Lemma 1 holds for any SFC; OnionNd is not continuous.
        let o = OnionNd::<2>::new(9).unwrap();
        for shape in [[2u32, 2], [4, 7], [9, 3]] {
            let qs: Vec<_> = all_translations(9, shape).unwrap().collect();
            let brute = average_clustering_bruteforce(&o, &qs);
            let exact = average_clustering_exact(&o, shape).unwrap();
            assert!(
                (brute - exact).abs() < 1e-9,
                "shape {shape:?}: brute {brute} vs exact {exact}"
            );
        }
    }

    #[test]
    fn full_universe_average_is_one() {
        let o = Onion2D::new(8).unwrap();
        let avg = average_clustering_exact(&o, [8, 8]).unwrap();
        assert_eq!(avg, 1.0);
    }

    #[test]
    fn unit_query_average_is_one() {
        // Every single-cell query is exactly one cluster.
        let o = Onion3D::new(4).unwrap();
        let avg = average_clustering_exact(&o, [1, 1, 1]).unwrap();
        assert_eq!(avg, 1.0);
    }
}
