//! Crossing-number machinery over translation query sets (§II and §V of the
//! paper): the quantities `I(Q, α)`, `γ(Q, e)`, `λ(Q, α)` and `ω(Q, α)`.
//!
//! The query set `Q = Q(ℓ_1, …, ℓ_D)` is the set of all translations of a
//! fixed rectangular shape that fit inside the universe. All counts here are
//! exact and run in `O(D)` per cell/edge — the foundation of the exact
//! average-clustering computation (Lemma 1) in [`crate::exact`].

use onion_core::{Point, SfcError};

/// The set of all translations of a rectangle of side lengths `shape` inside
/// a universe of side `side` (the paper's `Q(ℓ_1, …, ℓ_d)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranslationSet<const D: usize> {
    side: u32,
    shape: [u32; D],
}

impl<const D: usize> TranslationSet<D> {
    /// Creates the translation set. Every `shape[d]` must satisfy
    /// `1 ≤ shape[d] ≤ side`.
    pub fn new(side: u32, shape: [u32; D]) -> Result<Self, SfcError> {
        if side == 0 {
            return Err(SfcError::ZeroSide);
        }
        for d in 0..D {
            if shape[d] == 0 {
                return Err(SfcError::ZeroSide);
            }
            if shape[d] > side {
                return Err(SfcError::PointOutOfBounds {
                    point: Point::new(shape).to_string(),
                    side,
                });
            }
        }
        Ok(TranslationSet { side, shape })
    }

    /// Universe side length.
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Query shape `ℓ_1, …, ℓ_D`.
    #[inline]
    pub fn shape(&self) -> [u32; D] {
        self.shape
    }

    /// `|Q| = Π (side − ℓ_d + 1)`.
    #[inline]
    pub fn num_queries(&self) -> u64 {
        (0..D)
            .map(|d| u64::from(self.side - self.shape[d] + 1))
            .product()
    }

    /// Number of feasible offsets along dimension `d` whose translate covers
    /// coordinate `x`: `|[max(0, x−ℓ+1), min(x, side−ℓ)]|`.
    #[inline]
    fn covering_offsets(&self, d: usize, x: u32) -> u64 {
        let l = self.shape[d];
        let lo = (i64::from(x) - i64::from(l) + 1).max(0);
        let hi = i64::from(x.min(self.side - l));
        (hi - lo + 1).max(0) as u64
    }

    /// Offsets along `d` covering both coordinates `x` and `y`.
    #[inline]
    fn covering_offsets_pair(&self, d: usize, x: u32, y: u32) -> u64 {
        let l = self.shape[d];
        let lo = (i64::from(x.max(y)) - i64::from(l) + 1).max(0);
        let hi = i64::from(x.min(y).min(self.side - l));
        (hi - lo + 1).max(0) as u64
    }

    /// The paper's `I(Q, α)`: how many queries of `Q` contain cell `α`.
    #[inline]
    pub fn count_containing(&self, p: Point<D>) -> u64 {
        (0..D).map(|d| self.covering_offsets(d, p.0[d])).product()
    }

    /// How many queries contain *both* cells.
    #[inline]
    pub fn count_containing_both(&self, a: Point<D>, b: Point<D>) -> u64 {
        (0..D)
            .map(|d| self.covering_offsets_pair(d, a.0[d], b.0[d]))
            .product()
    }

    /// The paper's `γ(Q, e)` for the directed edge `e = (a, b)`: the number
    /// of `(query, crossing)` incidences, i.e. queries containing exactly
    /// one endpoint. Valid for *any* pair of cells, not only grid neighbors:
    /// `γ = I(a) + I(b) − 2·I(a ∧ b)`.
    #[inline]
    pub fn gamma_edge(&self, a: Point<D>, b: Point<D>) -> u64 {
        self.count_containing(a) + self.count_containing(b) - 2 * self.count_containing_both(a, b)
    }

    /// The paper's `λ(Q, α)` (Definition 2): the minimum `γ(Q, (α, β))` over
    /// grid neighbors `β` of `α`.
    #[inline]
    pub fn lambda(&self, p: Point<D>) -> u64 {
        p.neighbors(self.side)
            .map(|nb| self.gamma_edge(p, nb))
            .min()
            .unwrap_or(0)
    }

    /// The paper's `ω(Q, α)` (Definition 3): the minimum `γ(Q, (α, β))` over
    /// *all* cells `β ≠ α`. Brute force `O(n·D)` — use only on small
    /// universes (it exists to validate Lemma 9: `ω ≥ λ/2`).
    pub fn omega_bruteforce(&self, p: Point<D>) -> u64 {
        let u = onion_core::Universe::<D>::new(self.side).expect("valid side");
        u.iter_cells()
            .filter(|&b| b != p)
            .map(|b| self.gamma_edge(p, b))
            .min()
            .unwrap_or(0)
    }

    /// `T = Σ_α λ(Q, α)` over the whole universe — the quantity of Lemma 8,
    /// computed numerically in `O(n · D)`.
    pub fn lambda_sum(&self) -> u64 {
        let u = onion_core::Universe::<D>::new(self.side).expect("valid side");
        u.iter_cells().map(|p| self.lambda(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RectQuery;

    /// Brute-force reference: enumerate all translates.
    fn all_translates<const D: usize>(ts: &TranslationSet<D>) -> Vec<RectQuery<D>> {
        let mut out = Vec::new();
        let ranges: Vec<u32> = (0..D).map(|d| ts.side() - ts.shape()[d] + 1).collect();
        let mut offs = [0u32; D];
        loop {
            out.push(RectQuery::new(offs, ts.shape()).unwrap());
            let mut d = 0;
            loop {
                if d == D {
                    return out;
                }
                offs[d] += 1;
                if offs[d] < ranges[d] {
                    break;
                }
                offs[d] = 0;
                d += 1;
            }
        }
    }

    #[test]
    fn num_queries_matches_enumeration() {
        let ts = TranslationSet::<2>::new(6, [3, 2]).unwrap();
        assert_eq!(ts.num_queries(), all_translates(&ts).len() as u64);
        let ts3 = TranslationSet::<3>::new(4, [2, 3, 4]).unwrap();
        assert_eq!(ts3.num_queries(), all_translates(&ts3).len() as u64);
    }

    #[test]
    fn count_containing_matches_enumeration() {
        let ts = TranslationSet::<2>::new(7, [3, 5]).unwrap();
        let qs = all_translates(&ts);
        for x in 0..7 {
            for y in 0..7 {
                let p = Point::new([x, y]);
                let expect = qs.iter().filter(|q| q.contains(p)).count() as u64;
                assert_eq!(ts.count_containing(p), expect, "{p}");
            }
        }
    }

    #[test]
    fn gamma_matches_enumeration_for_neighbors_and_jumps() {
        let ts = TranslationSet::<2>::new(6, [2, 4]).unwrap();
        let qs = all_translates(&ts);
        let pairs = [
            (Point::new([0, 0]), Point::new([1, 0])), // neighbor
            (Point::new([2, 3]), Point::new([2, 4])), // neighbor
            (Point::new([1, 1]), Point::new([4, 5])), // long jump
            (Point::new([5, 0]), Point::new([0, 5])), // corner to corner
        ];
        for (a, b) in pairs {
            let expect = qs.iter().filter(|q| q.contains(a) != q.contains(b)).count() as u64;
            assert_eq!(ts.gamma_edge(a, b), expect, "({a},{b})");
        }
    }

    #[test]
    fn lambda_is_min_over_neighbors() {
        let ts = TranslationSet::<2>::new(8, [3, 3]).unwrap();
        for x in 0..8 {
            for y in 0..8 {
                let p = Point::new([x, y]);
                let expect = p.neighbors(8).map(|nb| ts.gamma_edge(p, nb)).min().unwrap();
                assert_eq!(ts.lambda(p), expect);
            }
        }
    }

    #[test]
    fn lemma9_omega_at_least_half_lambda() {
        // Lemma 9 of the paper: ω(Q, α) ≥ λ(Q, α) / 2.
        let ts = TranslationSet::<2>::new(6, [3, 2]).unwrap();
        for x in 0..6 {
            for y in 0..6 {
                let p = Point::new([x, y]);
                let omega = ts.omega_bruteforce(p);
                let lambda = ts.lambda(p);
                assert!(2 * omega >= lambda, "{p}: ω={omega} λ={lambda}");
            }
        }
    }

    #[test]
    fn lambda_symmetry_of_lemma7_setup() {
        // λ(i,j) = λ(j,i) = λ(i, side−1−j) = … for square shapes (§V-A).
        let side = 8;
        let ts = TranslationSet::<2>::new(side, [3, 3]).unwrap();
        for i in 0..side {
            for j in 0..side {
                let base = ts.lambda(Point::new([i, j]));
                assert_eq!(base, ts.lambda(Point::new([j, i])));
                assert_eq!(base, ts.lambda(Point::new([i, side - 1 - j])));
                assert_eq!(base, ts.lambda(Point::new([side - 1 - i, j])));
            }
        }
    }

    #[test]
    fn rejects_invalid_shapes() {
        assert!(TranslationSet::<2>::new(4, [0, 2]).is_err());
        assert!(TranslationSet::<2>::new(4, [5, 2]).is_err());
        assert!(TranslationSet::<2>::new(0, [1, 1]).is_err());
    }
}
