//! Distribution summaries for clustering experiments.
//!
//! The paper's box plots report "the 25 percentile and 75 percentile within
//! the box, as well as the median, minimum, and maximum" (Figure 5 caption);
//! [`Summary`] carries exactly those five numbers plus the mean.

use std::fmt;

/// Five-number summary (plus mean) of a sample of clustering numbers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// First quartile (linear interpolation between order statistics).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarizes a non-empty sample. Returns `None` on an empty slice.
    pub fn from_values(values: &[u64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        Some(Summary {
            count,
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[count - 1],
            mean: sum as f64 / count as f64,
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {} | q1 {:.1} | med {:.1} | q3 {:.1} | max {} | mean {:.2}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

/// Quantile with linear interpolation between closest ranks ("type 7", the
/// convention of R, NumPy and Excel). `sorted` must be ascending, non-empty.
pub fn quantile(sorted: &[u64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0] as f64;
    }
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_summary() {
        assert_eq!(Summary::from_values(&[]), None);
    }

    #[test]
    fn single_value_summary() {
        let s = Summary::from_values(&[7]).unwrap();
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn known_quartiles() {
        // 1..=5: q1 = 2, median = 3, q3 = 4 under type-7 interpolation.
        let s = Summary::from_values(&[5, 3, 1, 4, 2]).unwrap();
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn interpolated_median_for_even_count() {
        let s = Summary::from_values(&[1, 2, 3, 10]).unwrap();
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 4.0);
    }

    #[test]
    fn quantile_endpoints() {
        let v = [2, 4, 9];
        assert_eq!(quantile(&v, 0.0), 2.0);
        assert_eq!(quantile(&v, 1.0), 9.0);
        assert_eq!(quantile(&v, 0.5), 4.0);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = Summary::from_values(&[9, 1, 5, 5, 2]).unwrap();
        let b = Summary::from_values(&[5, 5, 9, 2, 1]).unwrap();
        assert_eq!(a, b);
    }
}
