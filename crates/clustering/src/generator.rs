//! Query-set generators matching §VII of the paper: exhaustive translations,
//! uniformly random translations (Figures 5a/5b), fixed side-ratio
//! rectangles (Algorithm 1, Figures 6a/6b), random-corner rectangles
//! (Figures 7a/7b), and the row/column sets of §V-C.

use crate::query::RectQuery;
use onion_core::{Point, SfcError};
use rand::Rng;

/// Iterates over *all* translations of `shape` inside a universe of side
/// `side` (the paper's query set `Q(ℓ_1, …, ℓ_d)`).
pub fn all_translations<const D: usize>(
    side: u32,
    shape: [u32; D],
) -> Result<impl Iterator<Item = RectQuery<D>>, SfcError> {
    for d in 0..D {
        if shape[d] == 0 {
            return Err(SfcError::ZeroSide);
        }
        if shape[d] > side {
            return Err(SfcError::PointOutOfBounds {
                point: Point::new(shape).to_string(),
                side,
            });
        }
    }
    let limit: [u32; D] = std::array::from_fn(|d| side - shape[d] + 1);
    let mut offs = Some([0u32; D]);
    Ok(std::iter::from_fn(move || {
        let current = offs?;
        let q = RectQuery::new(current, shape).expect("validated shape");
        let mut next = current;
        let mut d = 0;
        loop {
            if d == D {
                offs = None;
                break;
            }
            next[d] += 1;
            if next[d] < limit[d] {
                offs = Some(next);
                break;
            }
            next[d] = 0;
            d += 1;
        }
        Some(q)
    }))
}

/// Samples `count` uniformly random translations of `shape` (the Figure 5
/// workload: "choose the lower left endpoint uniformly among all feasible
/// positions").
pub fn random_translations<const D: usize, R: Rng>(
    side: u32,
    shape: [u32; D],
    count: usize,
    rng: &mut R,
) -> Result<Vec<RectQuery<D>>, SfcError> {
    for d in 0..D {
        if shape[d] == 0 {
            return Err(SfcError::ZeroSide);
        }
        if shape[d] > side {
            return Err(SfcError::PointOutOfBounds {
                point: Point::new(shape).to_string(),
                side,
            });
        }
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let lo: [u32; D] = std::array::from_fn(|d| rng.random_range(0..=side - shape[d]));
        out.push(RectQuery::new(lo, shape).expect("validated shape"));
    }
    Ok(out)
}

/// Algorithm 1 of the paper (d = 2): a set of random rectangles with fixed
/// side-length ratio `ρ = ℓ2 / ℓ1`.
///
/// Starting from `ℓ2 = side`, and stepping `ℓ2` down by `step` (the paper
/// uses 50), set `ℓ1 = ⌊ℓ2 / ρ⌋`; whenever `1 ≤ ℓ1 ≤ side`, sample
/// `per_step` (the paper uses 20) uniform placements. Degenerate shapes
/// (`ℓ1 = 0` or `ℓ2 = 0`) are skipped, as a zero-width rectangle contains
/// no cells.
pub fn fixed_ratio_set_2d<R: Rng>(
    side: u32,
    rho: f64,
    step: u32,
    per_step: usize,
    rng: &mut R,
) -> Vec<RectQuery<2>> {
    assert!(rho > 0.0, "side ratio must be positive");
    assert!(step > 0, "step must be positive");
    let mut out = Vec::new();
    let mut l2 = side;
    loop {
        let l1 = (f64::from(l2) / rho).floor() as u64;
        if l1 >= 1 && l1 <= u64::from(side) && l2 >= 1 {
            let shape = [l1 as u32, l2];
            out.extend(random_translations(side, shape, per_step, rng).expect("validated shape"));
        }
        if l2 < step {
            break;
        }
        l2 -= step;
    }
    out
}

/// The 3D analogue of Algorithm 1 used for Figure 6b. The paper states the
/// experiment is "similar" without spelling out the third side; we take
/// `ℓ3 = ℓ2` (documented in EXPERIMENTS.md).
pub fn fixed_ratio_set_3d<R: Rng>(
    side: u32,
    rho: f64,
    step: u32,
    per_step: usize,
    rng: &mut R,
) -> Vec<RectQuery<3>> {
    assert!(rho > 0.0, "side ratio must be positive");
    assert!(step > 0, "step must be positive");
    let mut out = Vec::new();
    let mut l2 = side;
    loop {
        let l1 = (f64::from(l2) / rho).floor() as u64;
        if l1 >= 1 && l1 <= u64::from(side) && l2 >= 1 {
            let shape = [l1 as u32, l2, l2];
            out.extend(random_translations(side, shape, per_step, rng).expect("validated shape"));
        }
        if l2 < step {
            break;
        }
        l2 -= step;
    }
    out
}

/// The Figure 7 workload: rectangles spanned by two independent uniformly
/// random corner cells ("the smallest rectangle that contains both the
/// chosen points").
pub fn random_corner_rects<const D: usize, R: Rng>(
    side: u32,
    count: usize,
    rng: &mut R,
) -> Vec<RectQuery<D>> {
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let a: [u32; D] = std::array::from_fn(|_| rng.random_range(0..side));
        let b: [u32; D] = std::array::from_fn(|_| rng.random_range(0..side));
        out.push(RectQuery::from_corners(Point::new(a), Point::new(b)));
    }
    out
}

/// §V-C's `Q_R`: every full row of a 2D universe (`√n` queries of shape
/// `side × 1`).
pub fn rows(side: u32) -> Vec<RectQuery<2>> {
    (0..side)
        .map(|y| RectQuery::new([0, y], [side, 1]).expect("valid row"))
        .collect()
}

/// §V-C's `Q_C`: every full column of a 2D universe.
pub fn columns(side: u32) -> Vec<RectQuery<2>> {
    (0..side)
        .map(|x| RectQuery::new([x, 0], [1, side]).expect("valid column"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_translations_counts_match_formula() {
        let qs: Vec<_> = all_translations(8, [3u32, 5]).unwrap().collect();
        assert_eq!(qs.len(), (8 - 3 + 1) * (8 - 5 + 1));
        assert!(qs.iter().all(|q| q.fits_in(8)));
        // All distinct.
        let mut lows: Vec<_> = qs.iter().map(|q| q.lo()).collect();
        lows.sort();
        lows.dedup();
        assert_eq!(lows.len(), qs.len());
    }

    #[test]
    fn all_translations_rejects_oversized_shape() {
        assert!(all_translations(4, [5u32, 1]).is_err());
        assert!(all_translations(4, [0u32, 1]).is_err());
    }

    #[test]
    fn random_translations_fit_and_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let qs = random_translations(64, [10u32, 20], 100, &mut rng).unwrap();
        assert_eq!(qs.len(), 100);
        assert!(qs
            .iter()
            .all(|q| q.fits_in(64) && q.side_lengths() == [10, 20]));
        let mut rng2 = StdRng::seed_from_u64(42);
        let qs2 = random_translations(64, [10u32, 20], 100, &mut rng2).unwrap();
        assert_eq!(qs, qs2);
    }

    #[test]
    fn full_size_shape_has_single_translation() {
        let qs = random_translations(16, [16u32, 16], 5, &mut StdRng::seed_from_u64(0)).unwrap();
        assert!(qs.iter().all(|q| q.lo() == [0, 0]));
    }

    #[test]
    fn fixed_ratio_respects_rho() {
        let mut rng = StdRng::seed_from_u64(7);
        let qs = fixed_ratio_set_2d(1024, 4.0, 50, 20, &mut rng);
        assert!(!qs.is_empty());
        for q in &qs {
            let [l1, l2] = q.side_lengths();
            assert_eq!(u64::from(l1), u64::from(l2) / 4, "ℓ1 = ⌊ℓ2/ρ⌋");
            assert!(q.fits_in(1024));
        }
        // ρ < 1 gives wide rectangles; oversized ℓ1 are skipped.
        let qs = fixed_ratio_set_2d(1024, 0.5, 50, 20, &mut rng);
        for q in &qs {
            let [l1, l2] = q.side_lengths();
            assert_eq!(u64::from(l1), u64::from(l2) * 2);
        }
    }

    #[test]
    fn fixed_ratio_3d_sets_third_side() {
        let mut rng = StdRng::seed_from_u64(3);
        let qs = fixed_ratio_set_3d(512, 2.0, 50, 5, &mut rng);
        for q in &qs {
            let [l1, l2, l3] = q.side_lengths();
            assert_eq!(l2, l3);
            assert_eq!(u64::from(l1), u64::from(l2) / 2);
        }
    }

    #[test]
    fn random_corner_rects_cover_both_corners() {
        let mut rng = StdRng::seed_from_u64(11);
        let qs: Vec<RectQuery<3>> = random_corner_rects(32, 50, &mut rng);
        assert_eq!(qs.len(), 50);
        assert!(qs.iter().all(|q| q.fits_in(32)));
    }

    #[test]
    fn rows_and_columns_cover_universe() {
        let r = rows(6);
        let c = columns(6);
        assert_eq!(r.len(), 6);
        assert_eq!(c.len(), 6);
        let total: u64 = r.iter().map(|q| q.volume()).sum();
        assert_eq!(total, 36);
        assert!(r.iter().all(|q| q.side_lengths() == [6, 1]));
        assert!(c.iter().all(|q| q.side_lengths() == [1, 6]));
    }
}
