//! Clustering-number computation.
//!
//! The clustering number `c(q, π)` (§I of the paper) is the minimum number
//! of contiguous index runs ("clusters") that the image `π(q)` of a query
//! decomposes into. If data is laid out on disk in curve order, it is the
//! number of disk seeks needed to retrieve `q`.

use crate::query::RectQuery;
use onion_core::{Point, SpaceFillingCurve};
use std::sync::Mutex;

/// Strategy for computing the clustering number.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ClusterMethod {
    /// Pick the fastest exact method for the given curve and query:
    /// boundary-scan when the curve's jump targets are enumerable, entry-scan
    /// otherwise.
    #[default]
    Auto,
    /// Map every cell, sort, count runs. `O(|q| log |q|)`, any curve.
    Sort,
    /// Count cells whose curve predecessor lies outside the query.
    /// `O(|q|)` inverse-mapping calls, no allocation, any curve.
    EntryScan,
    /// Like entry-scan but only visits the query's inner boundary plus the
    /// curve's declared jump targets. `O(surface)` — requires
    /// [`SpaceFillingCurve::jump_targets`] to return `Some`.
    BoundaryScan,
}

/// Computes `c(q, π)` with the default (automatic) method.
pub fn clustering_number<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
) -> u64 {
    clustering_number_with(curve, q, ClusterMethod::Auto)
}

/// Computes `c(q, π)` with an explicit method.
///
/// # Panics
/// With [`ClusterMethod::BoundaryScan`] if the curve does not enumerate its
/// jump targets, or (in debug builds) if `q` does not fit in the universe.
pub fn clustering_number_with<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
    method: ClusterMethod,
) -> u64 {
    debug_assert!(
        q.fits_in(curve.universe().side()),
        "query {:?} outside universe of side {}",
        q,
        curve.universe().side()
    );
    match method {
        ClusterMethod::Auto => {
            if curve.jump_targets().is_some() {
                by_boundary_scan(curve, q)
            } else {
                by_entry_scan(curve, q)
            }
        }
        ClusterMethod::Sort => count_runs(sorted_indices(curve, q, &mut ClusterScratch::new())),
        ClusterMethod::EntryScan => by_entry_scan(curve, q),
        ClusterMethod::BoundaryScan => by_boundary_scan(curve, q),
    }
}

/// Reusable buffers for range decomposition. Holding one of these across
/// calls makes [`cluster_ranges_into`] allocation-free per query once the
/// buffers have grown to the working-set size — the index crate pools them
/// (see [`ScratchPool`]) so every rectangle query reuses warm memory.
#[derive(Clone, Debug, Default)]
pub struct ClusterScratch<const D: usize> {
    /// Staging buffer for batched forward mapping.
    points: Vec<Point<D>>,
    /// Curve indices of staged points.
    indices: Vec<u64>,
    /// Candidate first-cells of clusters.
    entries: Vec<u64>,
    /// Candidate last-cells of clusters.
    exits: Vec<u64>,
    /// Owned output buffer for [`Self::ranges_of`].
    ranges: Vec<(u64, u64)>,
}

impl<const D: usize> ClusterScratch<D> {
    /// Fresh (empty) scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decomposes `q` into its cluster ranges, storing them in this
    /// scratch's owned output buffer and returning a view of it.
    ///
    /// Equivalent to [`cluster_ranges_into`] with an internally-owned `out`
    /// vector: callers that hold scratch (directly or through a
    /// [`ScratchPool`]) get allocation-free decomposition without managing a
    /// second buffer.
    pub fn ranges_of<C: SpaceFillingCurve<D>>(
        &mut self,
        curve: &C,
        q: &RectQuery<D>,
    ) -> &[(u64, u64)] {
        // Detach the output buffer so `self` can be borrowed as scratch.
        let mut out = std::mem::take(&mut self.ranges);
        cluster_ranges_into(curve, q, self, &mut out);
        self.ranges = out;
        &self.ranges
    }

    /// Like [`Self::ranges_of`], but caps the decomposition at `budget`
    /// pieces via [`coalesce_to_budget`]: the full cluster decomposition is
    /// computed first (so the merge picks the globally smallest gaps), then
    /// reduced in place. The returned ranges cover every query cell plus
    /// the absorbed gap cells.
    pub fn ranges_within_budget<C: SpaceFillingCurve<D>>(
        &mut self,
        curve: &C,
        q: &RectQuery<D>,
        budget: usize,
    ) -> &[(u64, u64)] {
        self.ranges_of(curve, q);
        if self.ranges.len() > budget.max(1) {
            self.ranges = coalesce_to_budget(&self.ranges, budget);
        }
        &self.ranges
    }
}

/// A thread-safe pool of [`ClusterScratch`] buffers.
///
/// Concurrent queries each check out a scratch, decompose their rectangle,
/// and return the buffers on drop, so a table shared across threads keeps
/// the allocation-free hot path without interior-mutability hazards: the
/// lock is held only to pop/push the pool, never across a decomposition.
#[derive(Debug, Default)]
pub struct ScratchPool<const D: usize> {
    pool: Mutex<Vec<ClusterScratch<D>>>,
}

impl<const D: usize> ScratchPool<D> {
    /// An empty pool; scratches are created lazily on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a scratch out of the pool (or makes a fresh one). The guard
    /// derefs to [`ClusterScratch`] and returns the buffers when dropped.
    pub fn checkout(&self) -> PooledScratch<'_, D> {
        let scratch = self
            .pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Number of idle scratches currently in the pool.
    pub fn idle(&self) -> usize {
        self.pool.lock().expect("scratch pool poisoned").len()
    }
}

/// Checkout guard of a [`ScratchPool`]; derefs to the pooled
/// [`ClusterScratch`].
#[derive(Debug)]
pub struct PooledScratch<'a, const D: usize> {
    pool: &'a ScratchPool<D>,
    scratch: Option<ClusterScratch<D>>,
}

impl<const D: usize> std::ops::Deref for PooledScratch<'_, D> {
    type Target = ClusterScratch<D>;
    fn deref(&self) -> &ClusterScratch<D> {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl<const D: usize> std::ops::DerefMut for PooledScratch<'_, D> {
    fn deref_mut(&mut self) -> &mut ClusterScratch<D> {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl<const D: usize> Drop for PooledScratch<'_, D> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            // A poisoned pool just drops the buffers instead of recycling.
            if let Ok(mut pool) = self.pool.pool.lock() {
                pool.push(scratch);
            }
        }
    }
}

/// The clusters themselves: inclusive index ranges `[a, b]`, sorted
/// ascending. `cluster_ranges(..).len()` equals the clustering number.
///
/// This is the range-decomposition primitive used by the `sfc-index` crate
/// to turn a rectangle query into B+-tree range scans. Convenience wrapper
/// over [`cluster_ranges_into`]; hot paths should hold a
/// [`ClusterScratch`] and call that directly.
pub fn cluster_ranges<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
) -> Vec<(u64, u64)> {
    let mut scratch = ClusterScratch::new();
    let mut out = Vec::new();
    cluster_ranges_into(curve, q, &mut scratch, &mut out);
    out
}

/// Computes the cluster ranges of `q` into `out` (cleared first), reusing
/// `scratch` buffers so repeated queries allocate nothing once warm.
pub fn cluster_ranges_into<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
    scratch: &mut ClusterScratch<D>,
    out: &mut Vec<(u64, u64)>,
) {
    out.clear();
    if curve.jump_targets().is_some() {
        ranges_by_boundary_scan(curve, q, scratch, out);
    } else {
        ranges_by_sort(curve, q, scratch, out);
    }
}

/// Merges consecutive ranges separated by gaps of at most `max_gap` cells.
///
/// This trades read amplification for seeks — the approach of Asano et al.
/// (paper reference \[15\], §I-B): a query processor may fetch a small
/// superset of the query if that reduces the number of contiguous pieces.
/// Returns the coalesced ranges; the number of extra (non-query) cells read
/// is the sum of the absorbed gaps.
///
/// `ranges` must be sorted and disjoint — what [`cluster_ranges`]
/// produces. Adjacent ranges (gap 0) are merged for any `max_gap`.
///
/// # Panics
/// On unsorted or overlapping input, in all build profiles — the previous
/// `lo - prev.1 - 1` silently wrapped in release builds, coalescing
/// everything into one bogus range.
pub fn coalesce_ranges(ranges: &[(u64, u64)], max_gap: u64) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for &(lo, hi) in ranges {
        assert!(lo <= hi, "coalesce_ranges: malformed range ({lo}, {hi})");
        match out.last_mut() {
            Some(prev) => {
                let gap = lo.checked_sub(prev.1 + 1).unwrap_or_else(|| {
                    panic!(
                        "coalesce_ranges: ranges must be sorted and disjoint, \
                         but ({lo}, {hi}) overlaps or precedes (.., {})",
                        prev.1
                    )
                });
                if gap <= max_gap {
                    prev.1 = prev.1.max(hi);
                } else {
                    out.push((lo, hi));
                }
            }
            None => out.push((lo, hi)),
        }
    }
    out
}

/// Coalesces sorted, disjoint `ranges` down to at most `budget` pieces by
/// merging across the smallest gaps first.
///
/// Where [`coalesce_ranges`] takes a *gap* threshold (absorb every gap of at
/// most `max_gap` cells), this takes a *seek* budget: the decomposition is
/// reduced to exactly `max(budget, 1)` ranges (or fewer, if the input is
/// already smaller) by repeatedly merging the pair of neighbors separated by
/// the fewest non-query cells — the cheapest possible read amplification for
/// that seek count. This is the decomposition knob a query planner turns:
/// Haverkort & van Walderveen observe that realized range-query cost is
/// dominated by how many pieces the curve image is fetched in, and the gap
/// distribution of a clustering decides how cheap each drop in piece count
/// is.
///
/// Returns the merged ranges; the total number of absorbed non-query cells
/// is recoverable as the difference of [`covered_cells`] before and after.
/// An input already within budget is returned *unchanged* — adjacent
/// (gap-zero) ranges are not merged opportunistically, so the output's
/// length only drops when the budget forces it.
///
/// # Panics
/// On unsorted or overlapping input, in all build profiles (same contract
/// as [`coalesce_ranges`]).
pub fn coalesce_to_budget(ranges: &[(u64, u64)], budget: usize) -> Vec<(u64, u64)> {
    let budget = budget.max(1);
    if ranges.len() <= budget {
        // Pass through unchanged — but still validate, since callers rely
        // on the panic contract (coalesce_ranges would merge gap-zero
        // neighbors, silently shrinking an in-budget input).
        for w in ranges.windows(2) {
            let ((lo, hi), (nlo, nhi)) = (w[0], w[1]);
            assert!(
                lo <= hi && nlo <= nhi,
                "coalesce_to_budget: malformed range"
            );
            assert!(
                nlo > hi,
                "coalesce_to_budget: ranges must be sorted and disjoint, \
                 but ({nlo}, {nhi}) overlaps or precedes (.., {hi})"
            );
        }
        if let Some(&(lo, hi)) = ranges.last() {
            assert!(lo <= hi, "coalesce_to_budget: malformed range ({lo}, {hi})");
        }
        return ranges.to_vec();
    }
    // Gap before range i+1 (validated non-negative like coalesce_ranges).
    let mut gaps: Vec<(u64, usize)> = Vec::with_capacity(ranges.len() - 1);
    for (i, w) in ranges.windows(2).enumerate() {
        let ((lo, hi), (nlo, nhi)) = (w[0], w[1]);
        assert!(
            lo <= hi && nlo <= nhi,
            "coalesce_to_budget: malformed range"
        );
        let gap = nlo.checked_sub(hi + 1).unwrap_or_else(|| {
            panic!(
                "coalesce_to_budget: ranges must be sorted and disjoint, \
                 but ({nlo}, {nhi}) overlaps or precedes (.., {hi})"
            )
        });
        gaps.push((gap, i));
    }
    // Merge across the `len - budget` smallest gaps (ties by position, so
    // the result is deterministic).
    gaps.sort_unstable();
    let mut merge_after = vec![false; ranges.len() - 1];
    for &(_, i) in gaps.iter().take(ranges.len() - budget) {
        merge_after[i] = true;
    }
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(budget);
    let mut current = ranges[0];
    for (i, &r) in ranges.iter().enumerate().skip(1) {
        if merge_after[i - 1] {
            current.1 = r.1;
        } else {
            out.push(current);
            current = r;
        }
    }
    out.push(current);
    debug_assert_eq!(out.len(), budget);
    out
}

/// Total number of cells covered by sorted, disjoint inclusive ranges — the
/// query volume for an exact decomposition, query volume plus absorbed gap
/// cells after coalescing.
pub fn covered_cells(ranges: &[(u64, u64)]) -> u64 {
    ranges.iter().map(|&(lo, hi)| hi - lo + 1).sum()
}

/// Prefix sums of the sorted gap sizes of a sorted, disjoint decomposition:
/// `prefix[k]` is the fewest non-query cells a caller must absorb to reduce
/// the decomposition by `k` pieces (merge the `k` smallest gaps). This is
/// the exact trade-off curve a cost-based planner evaluates without
/// re-running the decomposition per candidate budget.
///
/// `ranges` must be sorted and disjoint — what [`cluster_ranges`] produces.
///
/// # Panics
/// On unsorted or overlapping input, in all build profiles (the same
/// contract as [`coalesce_ranges`] — a silent release-mode wrap here would
/// feed a garbage trade-off curve to the planner).
pub fn gap_profile(ranges: &[(u64, u64)]) -> Vec<u64> {
    let mut gaps: Vec<u64> = ranges
        .windows(2)
        .map(|w| {
            let ((_, hi), (nlo, _)) = (w[0], w[1]);
            nlo.checked_sub(hi + 1).unwrap_or_else(|| {
                panic!(
                    "gap_profile: ranges must be sorted and disjoint, \
                     but ({nlo}, ..) overlaps or precedes (.., {hi})"
                )
            })
        })
        .collect();
    gaps.sort_unstable();
    let mut prefix = Vec::with_capacity(gaps.len() + 1);
    let mut acc = 0u64;
    prefix.push(0);
    for g in gaps {
        acc += g;
        prefix.push(acc);
    }
    prefix
}

/// Cells are staged and mapped in blocks of this size, bounding scratch
/// memory while amortizing one (virtual) batch call over many cells.
const BATCH: usize = 4096;

/// Fills `scratch.indices` with the curve indices of every query cell,
/// sorted ascending, via chunked [`SpaceFillingCurve::fill_indices`] calls.
fn sorted_indices<'s, const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
    scratch: &'s mut ClusterScratch<D>,
) -> &'s [u64] {
    scratch.indices.clear();
    let mut cells = q.cells();
    loop {
        scratch.points.clear();
        scratch.points.extend(cells.by_ref().take(BATCH));
        if scratch.points.is_empty() {
            break;
        }
        curve.fill_indices(&scratch.points, &mut scratch.indices);
    }
    scratch.indices.sort_unstable();
    &scratch.indices
}

fn count_runs(sorted: &[u64]) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    1 + sorted.windows(2).filter(|w| w[1] != w[0] + 1).count() as u64
}

fn ranges_by_sort<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
    scratch: &mut ClusterScratch<D>,
    out: &mut Vec<(u64, u64)>,
) {
    let idx = sorted_indices(curve, q, scratch);
    let mut iter = idx.iter().copied();
    let Some(first) = iter.next() else {
        return;
    };
    let (mut lo, mut hi) = (first, first);
    for v in iter {
        if v == hi + 1 {
            hi = v;
        } else {
            out.push((lo, hi));
            lo = v;
            hi = v;
        }
    }
    out.push((lo, hi));
}

/// Is the cell an *entry*: the first cell of a cluster, i.e. its curve
/// predecessor is absent or outside `q`?
///
/// Uses [`SpaceFillingCurve::predecessor_unchecked`], so for the onion
/// curves the probe is an `O(1)` perimeter step instead of a full
/// (`isqrt`-carrying) unrank.
#[inline]
fn is_entry<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
    p: Point<D>,
) -> bool {
    let idx = curve.index_unchecked(p);
    if idx == 0 {
        return true;
    }
    !q.contains(curve.predecessor_unchecked(p, idx))
}

fn by_entry_scan<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, q: &RectQuery<D>) -> u64 {
    q.cells().filter(|&p| is_entry(curve, q, p)).count() as u64
}

/// Entries can only occur (a) on the inner boundary of `q` — a predecessor
/// that is a grid neighbor of an interior cell is still inside `q` — or
/// (b) at declared jump targets, or (c) at the curve start.
fn by_boundary_scan<const D: usize, C: SpaceFillingCurve<D>>(curve: &C, q: &RectQuery<D>) -> u64 {
    let jumps = curve
        .jump_targets()
        .expect("boundary scan requires enumerable jump targets");
    let mut count = 0u64;
    q.for_each_boundary_cell(|p| {
        if is_entry(curve, q, p) {
            count += 1;
        }
    });
    let interior = |p: Point<D>| q.contains(p) && !on_boundary(q, p);
    for p in jumps {
        if interior(p) && is_entry(curve, q, p) {
            count += 1;
        }
    }
    // The curve start has no predecessor: if it sits strictly inside q it is
    // an entry the boundary loop cannot see. (Jump targets never include the
    // start.)
    let start = curve.start();
    if interior(start) {
        count += 1;
    }
    count
}

fn ranges_by_boundary_scan<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
    scratch: &mut ClusterScratch<D>,
    out: &mut Vec<(u64, u64)>,
) {
    let jumps = curve
        .jump_targets()
        .expect("boundary scan requires enumerable jump targets");
    let n = curve.universe().cell_count();
    let ClusterScratch { entries, exits, .. } = scratch;
    entries.clear();
    exits.clear();
    // An *exit* is the last cell of a cluster: its successor is absent or
    // outside q. Exits occur on the boundary, at predecessors of jump
    // targets ("jump sources"), or at the curve end. Both probes step from
    // the already-known cell, so onion curves pay O(1) geometry per probe
    // instead of a full unrank.
    q.for_each_boundary_cell(|p| {
        let idx = curve.index_unchecked(p);
        if idx == 0 || !q.contains(curve.predecessor_unchecked(p, idx)) {
            entries.push(idx);
        }
        if idx + 1 >= n || !q.contains(curve.successor_unchecked(p, idx)) {
            exits.push(idx);
        }
    });
    let interior = |p: Point<D>| q.contains(p) && !on_boundary(q, p);
    for p in &jumps {
        let tgt_idx = curve.index_unchecked(*p);
        debug_assert!(tgt_idx > 0, "jump targets never include the curve start");
        // The jump source is the target's curve predecessor; its successor
        // is the target itself, so both tests below reuse the pair.
        let src = curve.predecessor_unchecked(*p, tgt_idx);
        if interior(*p) && !q.contains(src) {
            entries.push(tgt_idx); // interior jump target starts a cluster
        }
        // The jump source may end a cluster even while interior.
        if interior(src) && !q.contains(*p) {
            exits.push(tgt_idx - 1);
        }
    }
    let start = curve.start();
    if interior(start) {
        entries.push(0);
    }
    let end = curve.end();
    if interior(end) {
        exits.push(n - 1);
    }
    entries.sort_unstable();
    entries.dedup();
    exits.sort_unstable();
    exits.dedup();
    debug_assert_eq!(entries.len(), exits.len(), "unbalanced cluster boundaries");
    out.extend(entries.iter().copied().zip(exits.iter().copied()));
}

#[inline]
fn on_boundary<const D: usize>(q: &RectQuery<D>, p: Point<D>) -> bool {
    let lo = q.lo();
    let hi = q.hi();
    (0..D).any(|d| p.0[d] == lo[d] || p.0[d] == hi[d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::{Onion2D, Onion3D};

    #[test]
    fn full_universe_is_one_cluster() {
        let o = Onion2D::new(8).unwrap();
        let q = RectQuery::new([0, 0], [8, 8]).unwrap();
        for m in [
            ClusterMethod::Sort,
            ClusterMethod::EntryScan,
            ClusterMethod::BoundaryScan,
        ] {
            assert_eq!(clustering_number_with(&o, &q, m), 1, "{m:?}");
        }
        assert_eq!(cluster_ranges(&o, &q), vec![(0, 63)]);
    }

    #[test]
    fn single_cell_is_one_cluster() {
        let o = Onion2D::new(8).unwrap();
        let q = RectQuery::new([3, 5], [1, 1]).unwrap();
        assert_eq!(clustering_number(&o, &q), 1);
        let idx = o.index_unchecked(Point::new([3, 5]));
        assert_eq!(cluster_ranges(&o, &q), vec![(idx, idx)]);
    }

    #[test]
    fn methods_agree_on_onion_2d() {
        let o = Onion2D::new(16).unwrap();
        for (lo, len) in [
            ([0, 0], [5, 7]),
            ([3, 2], [9, 9]),
            ([10, 0], [6, 16]),
            ([7, 7], [2, 2]),
            ([0, 15], [16, 1]),
        ] {
            let q = RectQuery::new(lo, len).unwrap();
            let a = clustering_number_with(&o, &q, ClusterMethod::Sort);
            let b = clustering_number_with(&o, &q, ClusterMethod::EntryScan);
            let c = clustering_number_with(&o, &q, ClusterMethod::BoundaryScan);
            assert_eq!(a, b, "{q:?}");
            assert_eq!(a, c, "{q:?}");
            assert_eq!(cluster_ranges(&o, &q).len() as u64, a, "{q:?}");
        }
    }

    #[test]
    fn methods_agree_on_onion_3d_with_jumps() {
        let o = Onion3D::new(8).unwrap();
        for (lo, len) in [
            ([0, 0, 0], [8, 8, 8]),
            ([1, 1, 1], [6, 6, 6]),
            ([0, 2, 3], [5, 4, 3]),
            ([2, 2, 2], [4, 4, 4]),
            ([3, 0, 0], [2, 8, 5]),
        ] {
            let q = RectQuery::new(lo, len).unwrap();
            let a = clustering_number_with(&o, &q, ClusterMethod::Sort);
            let c = clustering_number_with(&o, &q, ClusterMethod::BoundaryScan);
            assert_eq!(a, c, "{q:?}");
            assert_eq!(cluster_ranges(&o, &q).len() as u64, a, "{q:?}");
        }
    }

    #[test]
    fn ranges_cover_exactly_the_query() {
        let o = Onion3D::new(6).unwrap();
        let q = RectQuery::new([1, 0, 2], [3, 4, 3]).unwrap();
        let ranges = cluster_ranges(&o, &q);
        // Ranges are sorted, disjoint, and cover exactly |q| cells.
        let mut covered = 0u64;
        let mut last_hi: Option<u64> = None;
        for &(lo, hi) in &ranges {
            assert!(lo <= hi);
            if let Some(prev) = last_hi {
                assert!(lo > prev + 1, "ranges must not be adjacent or overlap");
            }
            covered += hi - lo + 1;
            for idx in lo..=hi {
                assert!(q.contains(o.point_unchecked(idx)), "index {idx} outside q");
            }
            last_hi = Some(hi);
        }
        assert_eq!(covered, q.volume());
    }

    #[test]
    fn count_runs_handles_gaps() {
        assert_eq!(count_runs(&[]), 0);
        assert_eq!(count_runs(&[5]), 1);
        assert_eq!(count_runs(&[1, 2, 3]), 1);
        assert_eq!(count_runs(&[1, 3, 4, 9]), 3);
    }

    #[test]
    fn coalesce_merges_only_small_gaps() {
        let ranges = [(0u64, 5u64), (8, 10), (20, 21), (23, 30)];
        assert_eq!(coalesce_ranges(&ranges, 0), ranges.to_vec());
        assert_eq!(
            coalesce_ranges(&ranges, 2),
            vec![(0, 10), (20, 30)] // gaps of 2 and 1 absorbed, 9 kept
        );
        assert_eq!(coalesce_ranges(&ranges, 100), vec![(0, 30)]);
        assert_eq!(coalesce_ranges(&[], 5), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn ranges_of_matches_cluster_ranges() {
        let o = Onion2D::new(16).unwrap();
        let mut scratch = ClusterScratch::new();
        for (lo, len) in [([0, 0], [5, 7]), ([3, 2], [9, 9]), ([7, 7], [2, 2])] {
            let q = RectQuery::new(lo, len).unwrap();
            assert_eq!(scratch.ranges_of(&o, &q), cluster_ranges(&o, &q), "{q:?}");
        }
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let pool: ScratchPool<2> = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        let o = Onion2D::new(8).unwrap();
        let q = RectQuery::new([1, 1], [4, 5]).unwrap();
        {
            let mut a = pool.checkout();
            let mut b = pool.checkout();
            assert_eq!(a.ranges_of(&o, &q), cluster_ranges(&o, &q));
            assert_eq!(b.ranges_of(&o, &q), cluster_ranges(&o, &q));
        }
        assert_eq!(pool.idle(), 2, "both guards returned their scratch");
        let _again = pool.checkout();
        assert_eq!(pool.idle(), 1, "checkout reuses a pooled scratch");
    }

    #[test]
    fn budget_coalescing_merges_smallest_gaps_first() {
        let ranges = [(0u64, 5u64), (8, 10), (20, 21), (23, 30)];
        // Gaps: 2 (after r0), 9 (after r1), 1 (after r2).
        assert_eq!(coalesce_to_budget(&ranges, 4), ranges.to_vec());
        assert_eq!(coalesce_to_budget(&ranges, 9), ranges.to_vec());
        assert_eq!(
            coalesce_to_budget(&ranges, 3),
            vec![(0, 5), (8, 10), (20, 30)],
            "smallest gap (1) merged first"
        );
        assert_eq!(coalesce_to_budget(&ranges, 2), vec![(0, 10), (20, 30)]);
        assert_eq!(coalesce_to_budget(&ranges, 1), vec![(0, 30)]);
        assert_eq!(coalesce_to_budget(&ranges, 0), vec![(0, 30)], "0 acts as 1");
        assert_eq!(coalesce_to_budget(&[], 3), Vec::<(u64, u64)>::new());
        // Absorbed cells are exactly the merged gaps.
        assert_eq!(covered_cells(&ranges), 19);
        assert_eq!(covered_cells(&coalesce_to_budget(&ranges, 2)), 19 + 2 + 1);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn budget_coalescing_rejects_overlap() {
        let _ = coalesce_to_budget(&[(0u64, 10u64), (5, 20), (30, 40)], 1);
    }

    #[test]
    #[should_panic(expected = "sorted and disjoint")]
    fn gap_profile_rejects_overlap() {
        let _ = gap_profile(&[(0u64, 10u64), (5, 20)]);
    }

    #[test]
    fn in_budget_input_passes_through_even_when_adjacent() {
        // Gap-zero neighbors are valid disjoint input; within budget they
        // must come back unchanged (no opportunistic merging — the caller
        // asked for a budget, not a normalization).
        let adjacent = [(0u64, 1u64), (2, 3), (10, 11)];
        assert_eq!(coalesce_to_budget(&adjacent, 3), adjacent.to_vec());
        assert_eq!(coalesce_to_budget(&adjacent, 99), adjacent.to_vec());
        // Forced below budget, the zero gaps merge first.
        assert_eq!(coalesce_to_budget(&adjacent, 2), vec![(0, 3), (10, 11)]);
    }

    #[test]
    fn gap_profile_is_the_merge_cost_curve() {
        let ranges = [(0u64, 5u64), (8, 10), (20, 21), (23, 30)];
        assert_eq!(gap_profile(&ranges), vec![0, 1, 3, 12]);
        assert_eq!(gap_profile(&[(4u64, 9u64)]), vec![0]);
        assert_eq!(gap_profile(&[]), vec![0]);
        // prefix[k] matches what coalesce_to_budget actually absorbs.
        let profile = gap_profile(&ranges);
        for budget in 1..=ranges.len() {
            let merged = coalesce_to_budget(&ranges, budget);
            let absorbed = covered_cells(&merged) - covered_cells(&ranges);
            assert_eq!(absorbed, profile[ranges.len() - budget], "budget {budget}");
        }
    }

    #[test]
    fn budgeted_scratch_ranges_cover_the_query() {
        let o = Onion2D::new(16).unwrap();
        let q = RectQuery::new([3, 2], [9, 9]).unwrap();
        let full = cluster_ranges(&o, &q);
        let mut scratch = ClusterScratch::new();
        for budget in [1usize, 2, full.len(), full.len() + 5] {
            let got = scratch.ranges_within_budget(&o, &q, budget).to_vec();
            assert_eq!(got.len(), budget.min(full.len()));
            for p in q.cells() {
                let idx = o.index_unchecked(p);
                assert!(
                    got.iter().any(|&(lo, hi)| lo <= idx && idx <= hi),
                    "cell {p} lost at budget {budget}"
                );
            }
        }
    }

    #[test]
    fn coalesce_preserves_query_coverage() {
        let o = Onion2D::new(16).unwrap();
        let q = RectQuery::new([3, 2], [9, 9]).unwrap();
        let ranges = cluster_ranges(&o, &q);
        let merged = coalesce_ranges(&ranges, 4);
        assert!(merged.len() <= ranges.len());
        // Every query cell remains covered.
        for p in q.cells() {
            let idx = o.index_unchecked(p);
            assert!(
                merged.iter().any(|&(lo, hi)| lo <= idx && idx <= hi),
                "cell {p} lost in coalescing"
            );
        }
    }
}
