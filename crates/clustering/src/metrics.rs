//! Locality metrics beyond the clustering number.
//!
//! * [`cluster_gap_stats`] — the paper's §VIII future work: "the distance
//!   between different clusters of the same query region, which tends to be
//!   important in fetching data from the disk".
//! * [`neighbor_stretch`] / [`index_dilation`] — the two directions of the
//!   Gotsman–Lindenbaum "stretch" metric cited in §I-B: how far consecutive
//!   curve positions are in space, and how far grid neighbors are on the
//!   curve.

use crate::cluster::cluster_ranges;
use crate::query::RectQuery;
use onion_core::SpaceFillingCurve;

/// Gap structure of a query's cluster decomposition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GapStats {
    /// Number of clusters (the clustering number).
    pub clusters: u64,
    /// Mean index gap between consecutive clusters (0 when one cluster).
    pub mean_gap: f64,
    /// Largest index gap between consecutive clusters.
    pub max_gap: u64,
    /// Total key span `last − first + 1` touched by the query.
    pub span: u64,
    /// Cells in the query.
    pub cells: u64,
}

impl GapStats {
    /// Fraction of the touched span occupied by the query's own cells
    /// (1.0 means perfectly dense; low values mean long inter-cluster
    /// seeks).
    pub fn density(&self) -> f64 {
        self.cells as f64 / self.span as f64
    }
}

/// Computes the inter-cluster gap statistics of a query (§VIII).
pub fn cluster_gap_stats<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    q: &RectQuery<D>,
) -> GapStats {
    let ranges = cluster_ranges(curve, q);
    debug_assert!(!ranges.is_empty());
    let clusters = ranges.len() as u64;
    let mut total_gap = 0u64;
    let mut max_gap = 0u64;
    for w in ranges.windows(2) {
        let gap = w[1].0 - w[0].1 - 1;
        total_gap += gap;
        max_gap = max_gap.max(gap);
    }
    let span = ranges.last().unwrap().1 - ranges[0].0 + 1;
    GapStats {
        clusters,
        mean_gap: if clusters > 1 {
            total_gap as f64 / (clusters - 1) as f64
        } else {
            0.0
        },
        max_gap,
        span,
        cells: q.volume(),
    }
}

/// Average and maximum L1 (grid) distance between consecutive curve
/// positions — the "stretch" of the curve in the space direction.
/// Continuous curves score exactly (1.0, 1).
///
/// `O(n)` walk; intended for moderate universes.
pub fn neighbor_stretch<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> (f64, u64) {
    let n = curve.universe().cell_count();
    debug_assert!(n >= 2);
    let mut total = 0u128;
    let mut max = 0u64;
    let mut prev = curve.point_unchecked(0);
    for idx in 1..n {
        let next = curve.point_unchecked(idx);
        let d: u64 = (0..D)
            .map(|k| u64::from(prev.0[k].abs_diff(next.0[k])))
            .sum();
        total += u128::from(d);
        max = max.max(d);
        prev = next;
    }
    (total as f64 / (n - 1) as f64, max)
}

/// Average |π(a) − π(b)| over all grid-neighbor pairs `(a, b)` — the
/// "index dilation": how far apart the curve stores spatially adjacent
/// cells. Lower is better for nearest-neighbor workloads.
///
/// `O(n · D)`; intended for moderate universes.
pub fn index_dilation<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> f64 {
    let u = curve.universe();
    let side = u.side();
    let mut total = 0u128;
    let mut pairs = 0u64;
    for p in u.iter_cells() {
        let ip = curve.index_unchecked(p);
        for d in 0..D {
            if let Some(nb) = p.step(d, 1, side) {
                let inb = curve.index_unchecked(nb);
                total += u128::from(ip.abs_diff(inb));
                pairs += 1;
            }
        }
    }
    total as f64 / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::{Onion2D, OnionNd, Point};

    #[test]
    fn gap_stats_single_cluster() {
        let o = Onion2D::new(8).unwrap();
        let q = RectQuery::new([0, 0], [8, 8]).unwrap();
        let g = cluster_gap_stats(&o, &q);
        assert_eq!(g.clusters, 1);
        assert_eq!(g.mean_gap, 0.0);
        assert_eq!(g.max_gap, 0);
        assert_eq!(g.span, 64);
        assert_eq!(g.density(), 1.0);
    }

    #[test]
    fn gap_stats_account_for_holes() {
        let o = Onion2D::new(8).unwrap();
        // A 2x2 corner query: layer-1 cells (keys 0,1 and 27) plus layer-2
        // cell 28 — clusters {0,1}, {27,28}; gap = 25.
        let q = RectQuery::new([0, 0], [2, 2]).unwrap();
        let g = cluster_gap_stats(&o, &q);
        assert_eq!(g.clusters, 2);
        assert_eq!(g.max_gap, 25);
        assert_eq!(g.mean_gap, 25.0);
        assert_eq!(g.span, 29);
        assert_eq!(g.cells, 4);
    }

    #[test]
    fn stretch_of_continuous_curve_is_one() {
        let o = Onion2D::new(10).unwrap();
        let (avg, max) = neighbor_stretch(&o);
        assert_eq!(avg, 1.0);
        assert_eq!(max, 1);
    }

    #[test]
    fn stretch_of_layered_lex_curve_exceeds_one() {
        let o = OnionNd::<2>::new(8).unwrap();
        let (avg, max) = neighbor_stretch(&o);
        assert!(avg > 1.0);
        assert!(max > 1);
    }

    #[test]
    fn dilation_is_positive_and_at_least_one() {
        let o = Onion2D::new(8).unwrap();
        let d = index_dilation(&o);
        assert!(d >= 1.0, "every neighbor pair differs by at least 1: {d}");
    }

    #[test]
    fn row_major_dilation_known_value() {
        // Row-major on side s: horizontal neighbors differ by 1, vertical
        // ones by s. Average = (h·1 + v·s)/(h+v) with h = v = s(s−1).
        struct Rm {
            u: onion_core::Universe<2>,
        }
        impl SpaceFillingCurve<2> for Rm {
            fn universe(&self) -> onion_core::Universe<2> {
                self.u
            }
            fn index_unchecked(&self, p: Point<2>) -> u64 {
                u64::from(p.0[1]) * u64::from(self.u.side()) + u64::from(p.0[0])
            }
            fn point_unchecked(&self, idx: u64) -> Point<2> {
                let s = u64::from(self.u.side());
                Point::new([(idx % s) as u32, (idx / s) as u32])
            }
            fn name(&self) -> &str {
                "rm"
            }
        }
        let side = 6u32;
        let c = Rm {
            u: onion_core::Universe::new(side).unwrap(),
        };
        let expect = (1.0 + f64::from(side)) / 2.0;
        assert!((index_dilation(&c) - expect).abs() < 1e-12);
    }
}
