//! Rectangular queries — the paper's query model (§I): subsets of the
//! universe formed by intersections of halfspaces.

use onion_core::{Point, SfcError};

/// An axis-aligned rectangular query: the cells `lo[d] ..= lo[d]+len[d]-1`
/// along each dimension.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct RectQuery<const D: usize> {
    lo: [u32; D],
    len: [u32; D],
}

impl<const D: usize> RectQuery<D> {
    /// Creates a query with lower corner `lo` and side lengths `len`
    /// (every `len[d] ≥ 1`).
    pub fn new(lo: [u32; D], len: [u32; D]) -> Result<Self, SfcError> {
        for d in 0..D {
            if len[d] == 0 {
                return Err(SfcError::ZeroSide);
            }
            if u64::from(lo[d]) + u64::from(len[d]) > u64::from(u32::MAX) {
                return Err(SfcError::PointOutOfBounds {
                    point: Point::new(lo).to_string(),
                    side: u32::MAX,
                });
            }
        }
        Ok(RectQuery { lo, len })
    }

    /// The smallest query covering both corner cells `a` and `b`
    /// (the Figure 7 experiment's construction).
    pub fn from_corners(a: Point<D>, b: Point<D>) -> Self {
        let mut lo = [0u32; D];
        let mut len = [0u32; D];
        for d in 0..D {
            lo[d] = a.0[d].min(b.0[d]);
            len[d] = a.0[d].abs_diff(b.0[d]) + 1;
        }
        RectQuery { lo, len }
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> [u32; D] {
        self.lo
    }

    /// Inclusive upper corner.
    #[inline]
    pub fn hi(&self) -> [u32; D] {
        let mut hi = self.lo;
        for (h, l) in hi.iter_mut().zip(self.len) {
            *h += l - 1;
        }
        hi
    }

    /// Side lengths (the paper's `ℓ_1, …, ℓ_d`).
    ///
    /// Named `side_lengths` rather than `len` because a `RectQuery` is not
    /// a container: clippy's `len_without_is_empty` pairing makes no sense
    /// for a shape that is never empty (every side is ≥ 1 by
    /// construction).
    #[inline]
    pub fn side_lengths(&self) -> [u32; D] {
        self.len
    }

    /// Number of cells `|q| = Π ℓ_d`.
    #[inline]
    pub fn volume(&self) -> u64 {
        self.len.iter().map(|&l| u64::from(l)).product()
    }

    /// Whether `p` lies inside the query.
    #[inline]
    pub fn contains(&self, p: Point<D>) -> bool {
        for d in 0..D {
            let c = p.0[d];
            if c < self.lo[d] || c - self.lo[d] >= self.len[d] {
                return false;
            }
        }
        true
    }

    /// Whether the query lies fully inside a universe of side `side`.
    #[inline]
    pub fn fits_in(&self, side: u32) -> bool {
        (0..D).all(|d| u64::from(self.lo[d]) + u64::from(self.len[d]) <= u64::from(side))
    }

    /// Whether the query is a cube (`ℓ_i = ℓ_j` for all i, j — §I).
    #[inline]
    pub fn is_cube(&self) -> bool {
        self.len.iter().all(|&l| l == self.len[0])
    }

    /// Iterates every cell of the query in row-major order.
    pub fn cells(&self) -> RectCellIter<D> {
        RectCellIter {
            q: *self,
            next: Some(Point::new(self.lo)),
        }
    }

    /// Visits every *inner boundary* cell of the query — the cells with at
    /// least one extremal coordinate — exactly once.
    ///
    /// Runs in time proportional to the number of boundary cells (the
    /// query's surface), not its volume; this is what makes the
    /// boundary-scan clustering algorithm fast for large queries.
    pub fn for_each_boundary_cell<F: FnMut(Point<D>)>(&self, mut f: F) {
        let mut coords = self.lo;
        shell_recurse(&self.lo, &self.len, 0, &mut coords, &mut f);
    }

    /// Collects the inner boundary cells (convenience for tests).
    pub fn boundary_cells(&self) -> Vec<Point<D>> {
        let mut out = Vec::new();
        self.for_each_boundary_cell(|p| out.push(p));
        out
    }
}

/// Recursive shell enumeration: dimension `d` is split into the low face,
/// the high face (full sub-rectangles), and interior slabs (recursing on the
/// remaining dimensions' shell).
fn shell_recurse<const D: usize, F: FnMut(Point<D>)>(
    lo: &[u32; D],
    len: &[u32; D],
    d: usize,
    coords: &mut [u32; D],
    f: &mut F,
) {
    if d == D {
        // Reached only through interior slab choices in every dimension —
        // such a cell is interior, not boundary.
        return;
    }
    let first = lo[d];
    let last = lo[d] + len[d] - 1;
    // Low face: everything below is free.
    coords[d] = first;
    full_recurse(lo, len, d + 1, coords, f);
    if last != first {
        // High face.
        coords[d] = last;
        full_recurse(lo, len, d + 1, coords, f);
        // Interior slabs: must touch the boundary in a later dimension.
        for x in (first + 1)..last {
            coords[d] = x;
            shell_recurse(lo, len, d + 1, coords, f);
        }
    }
}

/// Enumerates the full sub-rectangle over dimensions `d..`.
fn full_recurse<const D: usize, F: FnMut(Point<D>)>(
    lo: &[u32; D],
    len: &[u32; D],
    d: usize,
    coords: &mut [u32; D],
    f: &mut F,
) {
    if d == D {
        f(Point::new(*coords));
        return;
    }
    for x in lo[d]..lo[d] + len[d] {
        coords[d] = x;
        full_recurse(lo, len, d + 1, coords, f);
    }
}

/// Row-major iterator over the cells of a query. See [`RectQuery::cells`].
#[derive(Clone, Debug)]
pub struct RectCellIter<const D: usize> {
    q: RectQuery<D>,
    next: Option<Point<D>>,
}

impl<const D: usize> Iterator for RectCellIter<D> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        let current = self.next?;
        let mut succ = current;
        let mut dim = 0;
        loop {
            if dim == D {
                self.next = None;
                break;
            }
            if succ.0[dim] + 1 < self.q.lo[dim] + self.q.len[dim] {
                succ.0[dim] += 1;
                self.next = Some(succ);
                break;
            }
            succ.0[dim] = self.q.lo[dim];
            dim += 1;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_length() {
        assert!(RectQuery::new([0, 0], [3, 0]).is_err());
    }

    #[test]
    fn contains_and_corners() {
        let q = RectQuery::new([2, 3], [4, 2]).unwrap();
        assert_eq!(q.hi(), [5, 4]);
        assert!(q.contains(Point::new([2, 3])));
        assert!(q.contains(Point::new([5, 4])));
        assert!(!q.contains(Point::new([6, 4])));
        assert!(!q.contains(Point::new([1, 3])));
        assert_eq!(q.volume(), 8);
    }

    #[test]
    fn from_corners_is_order_independent() {
        let a = Point::new([5, 1, 9]);
        let b = Point::new([2, 7, 9]);
        let q = RectQuery::from_corners(a, b);
        let r = RectQuery::from_corners(b, a);
        assert_eq!(q, r);
        assert_eq!(q.lo(), [2, 1, 9]);
        assert_eq!(q.side_lengths(), [4, 7, 1]);
        assert!(q.contains(a) && q.contains(b));
    }

    #[test]
    fn fits_in_checks_upper_corner() {
        let q = RectQuery::new([6, 0], [2, 8]).unwrap();
        assert!(q.fits_in(8));
        assert!(!q.fits_in(7));
    }

    #[test]
    fn cells_iterates_volume_cells() {
        let q = RectQuery::new([1, 2], [3, 2]).unwrap();
        let cells: Vec<_> = q.cells().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], Point::new([1, 2]));
        assert_eq!(cells[1], Point::new([2, 2]));
        assert_eq!(cells[3], Point::new([1, 3]));
        assert!(cells.iter().all(|&p| q.contains(p)));
    }

    #[test]
    fn boundary_matches_bruteforce_2d_and_3d() {
        let q2 = RectQuery::new([1, 1], [5, 4]).unwrap();
        check_boundary(&q2);
        let q3 = RectQuery::new([0, 2, 1], [4, 3, 5]).unwrap();
        check_boundary(&q3);
        // Thin queries: everything is boundary.
        let thin = RectQuery::new([0, 0], [1, 7]).unwrap();
        check_boundary(&thin);
        let thin3 = RectQuery::new([0, 0, 0], [2, 2, 6]).unwrap();
        check_boundary(&thin3);
        let single = RectQuery::new([3, 4], [1, 1]).unwrap();
        check_boundary(&single);
    }

    fn check_boundary<const D: usize>(q: &RectQuery<D>) {
        let mut expected: Vec<Point<D>> = q
            .cells()
            .filter(|p| {
                (0..D).any(|d| p.0[d] == q.lo()[d] || p.0[d] == q.lo()[d] + q.side_lengths()[d] - 1)
            })
            .collect();
        let mut got = q.boundary_cells();
        expected.sort();
        got.sort();
        let dedup_len = {
            let mut g = got.clone();
            g.dedup();
            g.len()
        };
        assert_eq!(dedup_len, got.len(), "boundary cells visited twice");
        assert_eq!(got, expected);
    }

    #[test]
    fn cube_detection() {
        assert!(RectQuery::new([0, 0], [5, 5]).unwrap().is_cube());
        assert!(!RectQuery::new([0, 0], [5, 6]).unwrap().is_cube());
        assert!(RectQuery::new([0, 0, 0], [2, 2, 2]).unwrap().is_cube());
    }
}
