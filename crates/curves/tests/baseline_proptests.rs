//! Property tests of the baseline curves' structural guarantees.

use onion_core::{Point, SpaceFillingCurve};
use proptest::prelude::*;
use sfc_baselines::bits::{gray_decode, gray_encode, interleave};
use sfc_baselines::{GrayCode, Hilbert, Morton, RowMajor, Snake};

proptest! {
    /// Hilbert: continuity at random positions on large universes.
    #[test]
    fn hilbert_continuous_2d(bits in 1u32..=12, seed in any::<u64>()) {
        let h = Hilbert::<2>::new(1 << bits).unwrap();
        let n = h.universe().cell_count();
        prop_assume!(n >= 2);
        let idx = seed % (n - 1);
        prop_assert!(h.point_unchecked(idx).is_neighbor(&h.point_unchecked(idx + 1)));
    }

    /// Hilbert 3D: continuity at random positions.
    #[test]
    fn hilbert_continuous_3d(bits in 1u32..=8, seed in any::<u64>()) {
        let h = Hilbert::<3>::new(1 << bits).unwrap();
        let n = h.universe().cell_count();
        prop_assume!(n >= 2);
        let idx = seed % (n - 1);
        prop_assert!(h.point_unchecked(idx).is_neighbor(&h.point_unchecked(idx + 1)));
    }

    /// Hilbert: round-trips on random cells, 2D and 3D, large sides.
    #[test]
    fn hilbert_roundtrip(bits2 in 1u32..=15, bits3 in 1u32..=10, c in any::<(u32, u32, u32)>()) {
        let s2 = 1u32 << bits2;
        let h2 = Hilbert::<2>::new(s2).unwrap();
        let p2 = Point::new([c.0 % s2, c.1 % s2]);
        prop_assert_eq!(h2.point_unchecked(h2.index_unchecked(p2)), p2);
        let s3 = 1u32 << bits3;
        let h3 = Hilbert::<3>::new(s3).unwrap();
        let p3 = Point::new([c.0 % s3, c.1 % s3, c.2 % s3]);
        prop_assert_eq!(h3.point_unchecked(h3.index_unchecked(p3)), p3);
    }

    /// Hilbert's self-similarity: the first quarter of indices fills one
    /// quadrant (each quadrant of the grid is one contiguous index block).
    #[test]
    fn hilbert_quadrant_block(bits in 2u32..=10, seed in any::<u64>()) {
        let side = 1u32 << bits;
        let h = Hilbert::<2>::new(side).unwrap();
        let n = h.universe().cell_count();
        let idx = seed % (n / 4);
        let p = h.point_unchecked(idx);
        // First quarter: one quadrant, whichever orientation.
        let half = side / 2;
        let quad = (p.0[0] < half, p.0[1] < half);
        let q0 = h.point_unchecked(0);
        prop_assert_eq!(quad, (q0.0[0] < half, q0.0[1] < half));
    }

    /// Morton: the index is exactly the bit interleave (definitional), and
    /// the curve's quadrant blocks follow the z-shape.
    #[test]
    fn morton_matches_interleave(bits in 1u32..=10, x in any::<u32>(), y in any::<u32>()) {
        let side = 1u32 << bits;
        let z = Morton::<2>::new(side).unwrap();
        let p = Point::new([x % side, y % side]);
        prop_assert_eq!(z.index_unchecked(p), interleave(p, bits));
    }

    /// Gray curve: consecutive codes differ in one bit (definitional).
    #[test]
    fn gray_adjacent_codes(v in 0u64..u64::MAX) {
        prop_assert_eq!((gray_encode(v) ^ gray_encode(v + 1)).count_ones(), 1);
        prop_assert_eq!(gray_decode(gray_encode(v)), v);
    }

    /// Gray curve positions differ in exactly one coordinate.
    #[test]
    fn gray_one_axis_moves(bits in 1u32..=9, seed in any::<u64>()) {
        let side = 1u32 << bits;
        let g = GrayCode::<2>::new(side).unwrap();
        let n = g.universe().cell_count();
        prop_assume!(n >= 2);
        let idx = seed % (n - 1);
        let a = g.point_unchecked(idx);
        let b = g.point_unchecked(idx + 1);
        let changed = (0..2).filter(|&d| a.0[d] != b.0[d]).count();
        prop_assert_eq!(changed, 1);
    }

    /// Snake: continuity for arbitrary (non power-of-two) sides.
    #[test]
    fn snake_continuous_any_side(side in 2u32..=700, seed in any::<u64>()) {
        let s = Snake::<2>::new(side).unwrap();
        let n = s.universe().cell_count();
        let idx = seed % (n - 1);
        prop_assert!(s.point_unchecked(idx).is_neighbor(&s.point_unchecked(idx + 1)));
    }

    /// Row-major and column-major agree through transposition.
    #[test]
    fn row_column_transpose(side in 1u32..=500, x in any::<u32>(), y in any::<u32>()) {
        let r = RowMajor::<2>::new(side).unwrap();
        let c = RowMajor::<2>::column_major(side).unwrap();
        let p = Point::new([x % side, y % side]);
        let q = Point::new([p.0[1], p.0[0]]);
        prop_assert_eq!(r.index_unchecked(p), c.index_unchecked(q));
    }

    /// Every curve maps the full index range onto in-bounds cells.
    #[test]
    fn indices_map_in_bounds(bits in 1u32..=8, seed in any::<u64>()) {
        let side = 1u32 << bits;
        for name in sfc_baselines::CURVE_NAMES {
            let curve = sfc_baselines::curve_2d(name, side).unwrap();
            let n = curve.universe().cell_count();
            let p = curve.point_unchecked(seed % n);
            prop_assert!(curve.universe().contains(p), "{name}: {p}");
        }
    }
}
