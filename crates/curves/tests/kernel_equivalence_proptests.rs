//! Equivalence properties for the bit-manipulation kernels: every tier of
//! every kernel must be byte-identical to its pinned per-bit reference.
//!
//! * `interleave` / `deinterleave` (portable magic-mask) == `*_reference`,
//! * `interleave_batch_portable` / `deinterleave_batch_portable` == the
//!   reference map,
//! * `interleave_batch_accelerated` / `deinterleave_batch_accelerated`
//!   (BMI2 `pdep`/`pext`, when the host supports it) == the reference map,
//! * `gray_decode` / `gray_decode32` (log-step fold) == the shift-loop
//!   reference, and `gray_encode` round-trips,
//! * every registry curve's `fill_indices` / `fill_points` == the scalar
//!   `index_unchecked` / `point_unchecked` loops under **both** dispatch
//!   arms, toggled via [`force_portable_kernels`].
//!
//! The dispatch override is process-wide, so the tests that toggle it
//! serialize behind a mutex. This file is its own test binary; the flips
//! cannot leak into other test binaries.

use onion_core::{Point, SpaceFillingCurve};
use proptest::prelude::*;
use sfc_baselines::bits::{
    accelerated_kernels_active, deinterleave, deinterleave_batch_accelerated,
    deinterleave_batch_portable, force_portable_kernels, gray_decode, gray_decode32,
    gray_decode_reference, gray_encode, interleave, interleave_batch_accelerated,
    interleave_batch_portable, interleave_reference,
};
use sfc_baselines::{curve_2d, curve_3d, CURVE_NAMES};
use std::sync::Mutex;

/// Serializes every test that flips the process-wide kernel dispatch.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic coordinate spray derived from a seed (splitmix-style LCG,
/// matching the other proptest files).
fn spray(seed: u64, len: usize) -> Vec<u64> {
    let mut probe = seed;
    (0..len)
        .map(|_| {
            probe = probe
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            probe
        })
        .collect()
}

/// Checks all three tiers of the interleave/deinterleave kernels against the
/// pinned reference on seeded coordinates masked to `bits` bits per
/// dimension.
fn check_interleave_tiers<const D: usize>(seed: u64, bits: u32) -> Result<(), String> {
    let mask = ((1u64 << bits) - 1) as u32;
    let raw = spray(seed, 32 * D);
    let mut points: Vec<Point<D>> = raw
        .chunks_exact(D)
        .map(|c| {
            let mut coords = [0u32; D];
            for (x, r) in coords.iter_mut().zip(c) {
                *x = (*r as u32) & mask;
            }
            Point::new(coords)
        })
        .collect();
    // Pin the extremes alongside the random spray.
    points.push(Point::new([0u32; D]));
    points.push(Point::new([mask; D]));
    let expected: Vec<u64> = points
        .iter()
        .map(|&p| interleave_reference(p, bits))
        .collect();

    // Single-cell portable kernels.
    for (&p, &idx) in points.iter().zip(&expected) {
        prop_assert_eq!(interleave(p, bits), idx);
        prop_assert_eq!(deinterleave::<D>(idx, bits), p);
    }

    // Portable batch arm.
    let mut got = Vec::new();
    interleave_batch_portable(&points, bits, &mut got);
    prop_assert_eq!(&got, &expected);
    let mut back = Vec::new();
    deinterleave_batch_portable(&expected, bits, &mut back);
    prop_assert_eq!(&back, &points);

    // Accelerated batch arm — exercised whenever the host has BMI2; the
    // arm reports unavailability instead of silently falling back, so a
    // BMI2 host cannot skip this check by accident.
    let mut got = Vec::new();
    if interleave_batch_accelerated(&points, bits, &mut got) {
        prop_assert_eq!(&got, &expected);
    } else {
        prop_assert!(got.is_empty());
    }
    let mut back = Vec::new();
    if deinterleave_batch_accelerated(&expected, bits, &mut back) {
        prop_assert_eq!(&back, &points);
    } else {
        prop_assert!(back.is_empty());
    }
    Ok(())
}

/// Checks a curve's batch mappings against the scalar loops under both
/// dispatch arms (portable forced, then re-detected).
fn check_curve_both_arms<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    seed: u64,
) -> Result<(), String> {
    let n = curve.universe().cell_count();
    let mut indices: Vec<u64> = spray(seed, 32).into_iter().map(|p| p % n).collect();
    indices.push(0);
    indices.push(n - 1);

    // Scalar ground truth, computed before any dispatch games.
    let scalar_points: Vec<Point<D>> = indices.iter().map(|&i| curve.point_unchecked(i)).collect();

    let _guard = DISPATCH_LOCK.lock().unwrap();
    for forced_portable in [true, false] {
        force_portable_kernels(forced_portable);
        if forced_portable {
            prop_assert!(!accelerated_kernels_active());
        }
        let mut points = Vec::new();
        curve.fill_points(&indices, &mut points);
        prop_assert_eq!(
            &points,
            &scalar_points,
            "fill_points diverged (forced={forced_portable})"
        );
        let mut back = Vec::new();
        curve.fill_indices(&points, &mut back);
        prop_assert_eq!(
            &back,
            &indices,
            "fill_indices diverged (forced={forced_portable})"
        );
    }
    force_portable_kernels(false);
    Ok(())
}

proptest! {
    /// Interleave tiers in 2D across the full 32-bit coordinate range.
    #[test]
    fn interleave_tiers_2d(seed in any::<u64>(), bits in 1u32..=32) {
        let res = check_interleave_tiers::<2>(seed, bits);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Interleave tiers in 3D (bits capped so 3·bits ≤ 64).
    #[test]
    fn interleave_tiers_3d(seed in any::<u64>(), bits in 1u32..=21) {
        let res = check_interleave_tiers::<3>(seed, bits);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Interleave tiers in 4D (bits capped so 4·bits ≤ 64).
    #[test]
    fn interleave_tiers_4d(seed in any::<u64>(), bits in 1u32..=16) {
        let res = check_interleave_tiers::<4>(seed, bits);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Log-step Gray decode == shift-loop reference; encode round-trips.
    #[test]
    fn gray_kernels_match_reference(v in any::<u64>()) {
        prop_assert_eq!(gray_decode(v), gray_decode_reference(v));
        prop_assert_eq!(gray_decode(gray_encode(v)), v);
        let g = v as u32;
        prop_assert_eq!(u64::from(gray_decode32(g)), gray_decode_reference(u64::from(g)));
    }

    /// Every registered 2D curve under both dispatch arms.
    #[test]
    fn registry_2d_both_dispatch_arms(
        bits in 1u32..=8,
        name_idx in 0usize..CURVE_NAMES.len(),
        seed in any::<u64>(),
    ) {
        let curve = curve_2d(CURVE_NAMES[name_idx], 1 << bits).unwrap();
        let res = check_curve_both_arms(&curve, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Every registered 3D curve under both dispatch arms.
    #[test]
    fn registry_3d_both_dispatch_arms(
        bits in 1u32..=5,
        name_idx in 0usize..CURVE_NAMES.len(),
        seed in any::<u64>(),
    ) {
        let curve = curve_3d(CURVE_NAMES[name_idx], 1 << bits).unwrap();
        let res = check_curve_both_arms(&curve, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }
}
