//! Equivalence properties for the batch and incremental-stepping APIs:
//! for every curve in the registry (and the ND onion curve beyond it),
//!
//! * `fill_indices` == the scalar `index_unchecked` loop,
//! * `fill_points` == the scalar `point_unchecked` loop,
//! * a [`CurveStepper`] walk == per-index `point_unchecked`,
//! * `fill_walk` over a window == the per-index `point_unchecked` loop,
//! * `predecessor_unchecked` == `point_unchecked(idx − 1)`,
//!
//! across even and odd sides, in 2D, 3D, and (for the layered curve) 4D.

use onion_core::{CurveStepper, OnionNd, Point, SpaceFillingCurve};
use proptest::prelude::*;
use sfc_baselines::{curve_2d, curve_3d, CURVE_NAMES};

/// Curves that accept any side length; the rest require powers of two.
const ANY_SIDE: [&str; 4] = ["onion", "row-major", "column-major", "snake"];

fn check_batch_and_stepping<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    seed: u64,
) -> Result<(), String> {
    let n = curve.universe().cell_count();
    let side = curve.universe().side();
    // A deterministic spray of probe indices derived from the seed.
    let mut probe = seed;
    let mut indices: Vec<u64> = Vec::with_capacity(32);
    for _ in 0..32 {
        probe = probe
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        indices.push(probe % n);
    }
    indices.push(0);
    indices.push(n - 1);

    // Batch inverse == scalar inverse.
    let mut points: Vec<Point<D>> = Vec::new();
    curve.fill_points(&indices, &mut points);
    let scalar_points: Vec<Point<D>> = indices.iter().map(|&i| curve.point_unchecked(i)).collect();
    if points != scalar_points {
        return Err(format!("{}: fill_points != scalar", curve.name()));
    }

    // Batch forward == scalar forward (and round-trips).
    let mut back: Vec<u64> = Vec::new();
    curve.fill_indices(&points, &mut back);
    if back != indices {
        return Err(format!(
            "{}: fill_indices != scalar roundtrip",
            curve.name()
        ));
    }

    // Stepper == per-index unrank over a window, from a random start.
    let start = seed % n;
    let mut stepper = CurveStepper::starting_at(curve, start);
    for idx in start..n.min(start + 256) {
        if stepper.point() != curve.point_unchecked(idx) {
            return Err(format!(
                "{}: stepper diverged at index {idx} (side {side})",
                curve.name()
            ));
        }
        stepper.advance();
    }

    // Run-emitting walk over the same window == per-index unrank. Covers
    // both the curve-specific overrides (onion 2D/3D) and the stepper-loop
    // default every other curve inherits.
    let len = (n - start).min(256) as usize;
    let mut walked: Vec<Point<D>> = Vec::new();
    curve.fill_walk(start, len, &mut walked);
    if walked.len() != len {
        return Err(format!(
            "{}: fill_walk appended {} cells, expected {len}",
            curve.name(),
            walked.len()
        ));
    }
    for (off, &p) in walked.iter().enumerate() {
        if p != curve.point_unchecked(start + off as u64) {
            return Err(format!(
                "{}: fill_walk diverged at offset {off} from start {start} (side {side})",
                curve.name()
            ));
        }
    }

    // Predecessor == unrank of idx − 1.
    for &idx in &indices {
        if idx == 0 {
            continue;
        }
        let p = curve.point_unchecked(idx);
        if curve.predecessor_unchecked(p, idx) != curve.point_unchecked(idx - 1) {
            return Err(format!(
                "{}: predecessor diverged at index {idx} (side {side})",
                curve.name()
            ));
        }
    }
    Ok(())
}

proptest! {
    /// Every registered 2D curve at power-of-two sides.
    #[test]
    fn registry_2d_pow2(bits in 1u32..=9, name_idx in 0usize..CURVE_NAMES.len(), seed in any::<u64>()) {
        let curve = curve_2d(CURVE_NAMES[name_idx], 1 << bits).unwrap();
        let res = check_batch_and_stepping(&curve, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Any-side 2D curves at odd and otherwise non-power-of-two sides.
    #[test]
    fn registry_2d_any_side(side in 1u32..=600, name_idx in 0usize..ANY_SIDE.len(), seed in any::<u64>()) {
        let curve = curve_2d(ANY_SIDE[name_idx], side).unwrap();
        let res = check_batch_and_stepping(&curve, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Every registered 3D curve at power-of-two sides.
    #[test]
    fn registry_3d_pow2(bits in 1u32..=6, name_idx in 0usize..CURVE_NAMES.len(), seed in any::<u64>()) {
        let curve = curve_3d(CURVE_NAMES[name_idx], 1 << bits).unwrap();
        let res = check_batch_and_stepping(&curve, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// Any-side 3D curves, even and odd.
    #[test]
    fn registry_3d_any_side(side in 1u32..=80, name_idx in 0usize..ANY_SIDE.len(), seed in any::<u64>()) {
        let curve = curve_3d(ANY_SIDE[name_idx], side).unwrap();
        let res = check_batch_and_stepping(&curve, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// The generalized layered curve beyond the registry: 2D–4D, odd/even.
    #[test]
    fn onion_nd_2d_3d_4d(side in 1u32..=40, seed in any::<u64>()) {
        let c2 = OnionNd::<2>::new(side).unwrap();
        let res = check_batch_and_stepping(&c2, seed);
        prop_assert!(res.is_ok(), "{res:?}");
        let c3 = OnionNd::<3>::new(side.min(24)).unwrap();
        let res = check_batch_and_stepping(&c3, seed);
        prop_assert!(res.is_ok(), "{res:?}");
        let c4 = OnionNd::<4>::new(side.min(12)).unwrap();
        let res = check_batch_and_stepping(&c4, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }

    /// The onion-nd alias registered name also round-trips (2D).
    #[test]
    fn onion_nd_registry_alias(side in 1u32..=300, seed in any::<u64>()) {
        let curve = curve_2d("onion-nd", side).unwrap();
        let res = check_batch_and_stepping(&curve, seed);
        prop_assert!(res.is_ok(), "{res:?}");
    }
}
