//! The Gray-code curve, suggested by Faloutsos for partial-match and range
//! queries (paper references [8], [9]).

use crate::bits::{
    deinterleave, deinterleave_batch, gray_decode, gray_encode, interleave, interleave_batch,
};
use onion_core::{Point, SfcError, SpaceFillingCurve, Universe};

/// The `D`-dimensional Gray-code curve: a cell's interleaved bit string is
/// interpreted as a binary-reflected Gray codeword, and the cell's position
/// on the curve is that codeword's rank.
///
/// Equivalently `π(p) = gray_decode(morton(p))`. Consecutive positions
/// differ in exactly one interleaved bit, but that bit can be a high bit of
/// a coordinate, so the curve is not continuous in the grid sense.
#[derive(Clone, Copy, Debug)]
pub struct GrayCode<const D: usize> {
    universe: Universe<D>,
    bits: u32,
}

impl<const D: usize> GrayCode<D> {
    /// Creates the Gray-code curve for a `side^D` universe. `side` must be a
    /// power of two.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        let universe = Universe::new(side)?;
        if !universe.side_is_power_of_two() {
            return Err(SfcError::SideNotPowerOfTwo { side });
        }
        Ok(GrayCode {
            universe,
            bits: universe.side_bits(),
        })
    }
}

impl<const D: usize> SpaceFillingCurve<D> for GrayCode<D> {
    fn universe(&self) -> Universe<D> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        gray_decode(interleave(p, self.bits))
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<D> {
        deinterleave(gray_encode(idx), self.bits)
    }

    fn name(&self) -> &str {
        "gray-code"
    }

    /// Batch keying: one batch interleave (BMI2 when available), then the
    /// O(log bits) Gray fold applied in place over the appended region.
    fn fill_indices(&self, points: &[Point<D>], out: &mut Vec<u64>) {
        let start = out.len();
        interleave_batch(points, self.bits, out);
        for v in &mut out[start..] {
            *v = gray_decode(*v);
        }
    }

    /// Batch unranking: Gray-encode indices into a stack chunk, then batch
    /// deinterleave the whole chunk.
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<D>>) {
        let bits = self.bits;
        out.reserve(indices.len());
        let mut buf = [0u64; 128];
        for chunk in indices.chunks(128) {
            for (slot, &idx) in buf.iter_mut().zip(chunk) {
                *slot = gray_encode(idx);
            }
            deinterleave_batch(&buf[..chunk.len()], bits, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::curve::verify;

    #[test]
    fn bijective_small_sides() {
        verify::bijection(&GrayCode::<2>::new(16).unwrap()).unwrap();
        verify::bijection(&GrayCode::<3>::new(8).unwrap()).unwrap();
    }

    #[test]
    fn consecutive_positions_differ_in_one_interleaved_bit() {
        let g = GrayCode::<2>::new(16).unwrap();
        for idx in 1..g.universe().cell_count() {
            let a = interleave(g.point_unchecked(idx - 1), 4);
            let b = interleave(g.point_unchecked(idx), 4);
            assert_eq!((a ^ b).count_ones(), 1, "at index {idx}");
        }
    }

    #[test]
    fn consecutive_positions_differ_in_one_coordinate() {
        // One interleaved bit = one coordinate changes (by a power of two).
        let g = GrayCode::<3>::new(8).unwrap();
        for idx in 1..g.universe().cell_count() {
            let a = g.point_unchecked(idx - 1);
            let b = g.point_unchecked(idx);
            let changed = (0..3).filter(|&d| a.0[d] != b.0[d]).count();
            assert_eq!(changed, 1, "at index {idx}");
        }
    }

    #[test]
    fn gray_is_not_grid_continuous() {
        let g = GrayCode::<2>::new(8).unwrap();
        assert!(verify::discontinuities(&g) > 0);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(GrayCode::<2>::new(10).is_err());
    }
}
