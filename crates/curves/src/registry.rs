//! Construction of curves by name, for experiment binaries and examples.

use crate::{GrayCode, Hilbert, Morton, RowMajor, Snake};
use onion_core::{Onion2D, Onion3D};
use onion_core::{OnionNd, SfcError, SpaceFillingCurve};

/// Names of every curve this workspace provides, in presentation order.
pub const CURVE_NAMES: [&str; 7] = [
    "onion",
    "hilbert",
    "z-order",
    "gray-code",
    "row-major",
    "column-major",
    "snake",
];

/// A boxed curve as the registry hands it out: thread-safe, so registry
/// curves can order tables shared (or sharded) across threads.
pub type DynCurve<const D: usize> = Box<dyn SpaceFillingCurve<D> + Send + Sync>;

/// Builds a 2D curve by name. The onion curve name maps to the paper's
/// [`Onion2D`]; `"onion-nd"` selects the generalized layered curve.
pub fn curve_2d(name: &str, side: u32) -> Result<DynCurve<2>, SfcError> {
    Ok(match name {
        "onion" => Box::new(Onion2D::new(side)?),
        "onion-nd" => Box::new(OnionNd::<2>::new(side)?),
        "hilbert" => Box::new(Hilbert::<2>::new(side)?),
        "z-order" => Box::new(Morton::<2>::new(side)?),
        "gray-code" => Box::new(GrayCode::<2>::new(side)?),
        "row-major" => Box::new(RowMajor::<2>::new(side)?),
        "column-major" => Box::new(RowMajor::<2>::column_major(side)?),
        "snake" => Box::new(Snake::<2>::new(side)?),
        _ => return Err(SfcError::DimensionUnsupported { dims: 2 }),
    })
}

/// Builds a 3D curve by name (see [`curve_2d`]).
pub fn curve_3d(name: &str, side: u32) -> Result<DynCurve<3>, SfcError> {
    Ok(match name {
        "onion" => Box::new(Onion3D::new(side)?),
        "onion-nd" => Box::new(OnionNd::<3>::new(side)?),
        "hilbert" => Box::new(Hilbert::<3>::new(side)?),
        "z-order" => Box::new(Morton::<3>::new(side)?),
        "gray-code" => Box::new(GrayCode::<3>::new(side)?),
        "row-major" => Box::new(RowMajor::<3>::new(side)?),
        "column-major" => Box::new(RowMajor::<3>::column_major(side)?),
        "snake" => Box::new(Snake::<3>::new(side)?),
        _ => return Err(SfcError::DimensionUnsupported { dims: 3 }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::curve::verify;

    #[test]
    fn every_registered_curve_constructs_and_is_bijective_2d() {
        for name in CURVE_NAMES {
            let c = curve_2d(name, 8).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(c.name(), name);
            verify::bijection(&c).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn every_registered_curve_constructs_and_is_bijective_3d() {
        for name in CURVE_NAMES {
            let c = curve_3d(name, 4).unwrap_or_else(|e| panic!("{name}: {e}"));
            verify::bijection(&c).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn unknown_name_is_an_error() {
        assert!(curve_2d("peano", 9).is_err());
    }
}
