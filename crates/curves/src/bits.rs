//! Bit-interleaving helpers shared by the Morton, Gray-code, and Hilbert
//! curves.

use onion_core::Point;

/// Interleaves the low `bits` bits of each coordinate into a single index.
///
/// Bit `b` of dimension `d` lands at position `b * D + d`, so dimension 0
/// provides the least significant bit of each group — the classic Morton
/// layout, `D * bits ≤ 63`.
#[inline]
pub fn interleave<const D: usize>(p: Point<D>, bits: u32) -> u64 {
    let mut out = 0u64;
    for b in 0..bits {
        for d in 0..D {
            let bit = u64::from((p.0[d] >> b) & 1);
            out |= bit << (b as usize * D + d);
        }
    }
    out
}

/// Inverse of [`interleave`].
#[inline]
pub fn deinterleave<const D: usize>(idx: u64, bits: u32) -> Point<D> {
    let mut coords = [0u32; D];
    for b in 0..bits {
        for (d, c) in coords.iter_mut().enumerate() {
            let bit = ((idx >> (b as usize * D + d)) & 1) as u32;
            *c |= bit << b;
        }
    }
    Point::new(coords)
}

/// Binary-reflected Gray code of `v`.
#[inline]
pub fn gray_encode(v: u64) -> u64 {
    v ^ (v >> 1)
}

/// Inverse of [`gray_encode`].
#[inline]
pub fn gray_decode(mut g: u64) -> u64 {
    let mut v = g;
    while g > 0 {
        g >>= 1;
        v ^= g;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_known_pattern_2d() {
        // x = 0b11, y = 0b01 → bits: y1 x1 y0 x0 = 0 1 1 1 = 7.
        assert_eq!(interleave(Point::new([0b11u32, 0b01]), 2), 0b0111);
        // x provides even bit positions, y odd ones.
        assert_eq!(interleave(Point::new([1u32, 0]), 1), 1);
        assert_eq!(interleave(Point::new([0u32, 1]), 1), 2);
    }

    #[test]
    fn interleave_roundtrip_3d() {
        for v in 0..512u64 {
            let p: Point<3> = deinterleave(v, 3);
            assert_eq!(interleave(p, 3), v);
        }
    }

    #[test]
    fn gray_code_is_bijective_and_unit_distance() {
        for v in 0..1024u64 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
        for v in 1..1024u64 {
            let diff = gray_encode(v) ^ gray_encode(v - 1);
            assert_eq!(diff.count_ones(), 1, "gray codes differ in exactly one bit");
        }
    }
}
