//! Bit-interleaving kernels shared by the Morton, Gray-code, and Hilbert
//! curves.
//!
//! Three tiers, all byte-identical on every input:
//!
//! * **pinned references** ([`interleave_reference`], [`deinterleave_reference`],
//!   [`gray_decode_reference`]) — the original per-bit loops, kept as the
//!   ground truth for equivalence tests and bench baselines;
//! * **portable branch-free kernels** ([`interleave`], [`deinterleave`]) —
//!   magic-mask spread/compact with log-step doubling, ~4-8x over per-bit,
//!   pure safe code, used for all single-cell calls;
//! * **BMI2 batch kernels** ([`interleave_batch`], [`deinterleave_batch`]) —
//!   `pdep`/`pext` behind runtime feature detection on x86-64, falling back
//!   to the portable kernels everywhere else.
//!
//! Dispatch is decided once per process (and once per batch thereafter via a
//! relaxed atomic load). Set the `SFC_PORTABLE_KERNELS` environment variable
//! to a non-empty value other than `0` — or call [`force_portable_kernels`]
//! from a test — to pin the portable path regardless of CPU support.

use onion_core::Point;
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Runtime dispatch
// ---------------------------------------------------------------------------

const DISPATCH_UNDECIDED: u8 = 0;
const DISPATCH_ACCELERATED: u8 = 1;
const DISPATCH_PORTABLE: u8 = 2;

/// Process-wide dispatch decision for the batch kernels.
static DISPATCH: AtomicU8 = AtomicU8::new(DISPATCH_UNDECIDED);

#[cold]
fn decide_dispatch() -> u8 {
    let forced =
        std::env::var_os("SFC_PORTABLE_KERNELS").is_some_and(|v| !v.is_empty() && v != *"0");
    let state = if !forced && accel::available() {
        DISPATCH_ACCELERATED
    } else {
        DISPATCH_PORTABLE
    };
    DISPATCH.store(state, Ordering::Relaxed);
    state
}

#[inline]
fn kernels_accelerated() -> bool {
    match DISPATCH.load(Ordering::Relaxed) {
        DISPATCH_ACCELERATED => true,
        DISPATCH_PORTABLE => false,
        _ => decide_dispatch() == DISPATCH_ACCELERATED,
    }
}

/// Whether the batch kernels currently dispatch to the BMI2 `pdep`/`pext`
/// path (true only on x86-64 CPUs with BMI2, and only when the portable
/// override is not in force).
pub fn accelerated_kernels_active() -> bool {
    kernels_accelerated()
}

/// Test-only override pinning the batch kernels to the portable fallback.
///
/// `force_portable_kernels(false)` re-runs feature detection (honouring the
/// `SFC_PORTABLE_KERNELS` environment variable). The override is process-wide;
/// tests that toggle it should compare the explicit `*_portable` kernels
/// instead when running in a shared process.
pub fn force_portable_kernels(on: bool) {
    let state = if on {
        DISPATCH_PORTABLE
    } else {
        DISPATCH_UNDECIDED
    };
    DISPATCH.store(state, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Pinned per-bit references
// ---------------------------------------------------------------------------

/// Pinned per-bit reference for [`interleave`]; ground truth for tests and
/// the scalar baseline in `bench_hotpath`.
pub fn interleave_reference<const D: usize>(p: Point<D>, bits: u32) -> u64 {
    let mut out = 0u64;
    for b in 0..bits {
        for d in 0..D {
            let bit = u64::from((p.0[d] >> b) & 1);
            out |= bit << (b as usize * D + d);
        }
    }
    out
}

/// Pinned per-bit reference for [`deinterleave`].
pub fn deinterleave_reference<const D: usize>(idx: u64, bits: u32) -> Point<D> {
    let mut coords = [0u32; D];
    for b in 0..bits {
        for (d, c) in coords.iter_mut().enumerate() {
            let bit = ((idx >> (b as usize * D + d)) & 1) as u32;
            *c |= bit << b;
        }
    }
    Point::new(coords)
}

/// Pinned per-bit reference for [`gray_decode`].
pub fn gray_decode_reference(mut g: u64) -> u64 {
    let mut v = g;
    while g > 0 {
        g >>= 1;
        v ^= g;
    }
    v
}

// ---------------------------------------------------------------------------
// Portable branch-free magic-mask kernels
// ---------------------------------------------------------------------------

/// Spreads the low 32 bits of `x` to even bit positions (stride 2).
#[inline]
fn spread2(mut x: u64) -> u64 {
    x &= 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    (x | (x << 1)) & 0x5555_5555_5555_5555
}

/// Inverse of [`spread2`]: compacts even bit positions into the low 32 bits.
#[inline]
fn compact2(mut x: u64) -> u64 {
    x &= 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF
}

/// Spreads the low 21 bits of `x` to every third bit position (stride 3).
#[inline]
fn spread3(mut x: u64) -> u64 {
    x &= 0x001F_FFFF;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    (x | (x << 2)) & 0x1249_2492_4924_9249
}

/// Inverse of [`spread3`].
#[inline]
fn compact3(mut x: u64) -> u64 {
    x &= 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    (x | (x >> 32)) & 0x001F_FFFF
}

/// Spreads the low 16 bits of `x` to every fourth bit position (stride 4).
#[inline]
fn spread4(mut x: u64) -> u64 {
    x &= 0xFFFF;
    x = (x | (x << 24)) & 0x0000_00FF_0000_00FF;
    x = (x | (x << 12)) & 0x000F_000F_000F_000F;
    x = (x | (x << 6)) & 0x0303_0303_0303_0303;
    (x | (x << 3)) & 0x1111_1111_1111_1111
}

/// Inverse of [`spread4`].
#[inline]
fn compact4(mut x: u64) -> u64 {
    x &= 0x1111_1111_1111_1111;
    x = (x | (x >> 3)) & 0x0303_0303_0303_0303;
    x = (x | (x >> 6)) & 0x000F_000F_000F_000F;
    x = (x | (x >> 12)) & 0x0000_00FF_0000_00FF;
    (x | (x >> 24)) & 0xFFFF
}

/// `bits` consecutive low one-bits, saturating at all ones for `bits >= 64`.
#[inline]
fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        !0
    } else {
        (1u64 << bits) - 1
    }
}

/// Interleaves the low `bits` bits of each coordinate into a single index.
///
/// Bit `b` of dimension `d` lands at position `b * D + d`, so dimension 0
/// provides the least significant bit of each group — the classic Morton
/// layout, `D * bits ≤ 63`. Branch-free magic-mask kernel for `D ∈ {2, 3, 4}`
/// (per-bit reference beyond), byte-identical to [`interleave_reference`].
#[inline]
pub fn interleave<const D: usize>(p: Point<D>, bits: u32) -> u64 {
    // Runtime-index the coordinates so unused match arms never instantiate an
    // out-of-bounds constant index for small D.
    let c = |d: usize| u64::from(p.0[d]) & low_mask(bits);
    match D {
        2 => spread2(c(0)) | (spread2(c(1)) << 1),
        3 => spread3(c(0)) | (spread3(c(1)) << 1) | (spread3(c(2)) << 2),
        4 => spread4(c(0)) | (spread4(c(1)) << 1) | (spread4(c(2)) << 2) | (spread4(c(3)) << 3),
        _ => interleave_reference(p, bits),
    }
}

/// Inverse of [`interleave`]; byte-identical to [`deinterleave_reference`].
#[inline]
pub fn deinterleave<const D: usize>(idx: u64, bits: u32) -> Point<D> {
    let masked = idx & low_mask(bits.saturating_mul(D as u32));
    let mut coords = [0u32; D];
    match D {
        2 => {
            for (d, c) in coords.iter_mut().enumerate() {
                *c = compact2(masked >> d) as u32;
            }
        }
        3 => {
            for (d, c) in coords.iter_mut().enumerate() {
                *c = compact3(masked >> d) as u32;
            }
        }
        4 => {
            for (d, c) in coords.iter_mut().enumerate() {
                *c = compact4(masked >> d) as u32;
            }
        }
        _ => return deinterleave_reference(idx, bits),
    }
    Point::new(coords)
}

// ---------------------------------------------------------------------------
// Gray code
// ---------------------------------------------------------------------------

/// Binary-reflected Gray code of `v`.
#[inline]
pub fn gray_encode(v: u64) -> u64 {
    v ^ (v >> 1)
}

/// Inverse of [`gray_encode`]: O(log bits) prefix-XOR fold (six doubling
/// steps instead of the per-bit loop pinned in [`gray_decode_reference`]).
#[inline]
pub fn gray_decode(mut g: u64) -> u64 {
    g ^= g >> 1;
    g ^= g >> 2;
    g ^= g >> 4;
    g ^= g >> 8;
    g ^= g >> 16;
    g ^= g >> 32;
    g
}

/// 32-bit variant of [`gray_decode`], used by the Hilbert transform fold.
#[inline]
pub fn gray_decode32(mut g: u32) -> u32 {
    g ^= g >> 1;
    g ^= g >> 2;
    g ^= g >> 4;
    g ^= g >> 8;
    g ^= g >> 16;
    g
}

// ---------------------------------------------------------------------------
// Batch kernels with BMI2 dispatch
// ---------------------------------------------------------------------------

/// The `pdep`/`pext` deposit masks for each dimension: bits `b * D + d` for
/// `b < bits`.
#[inline]
fn morton_masks<const D: usize>(bits: u32) -> [u64; D] {
    let mut masks = [0u64; D];
    for (d, m) in masks.iter_mut().enumerate() {
        for b in 0..bits as usize {
            *m |= 1u64 << (b * D + d);
        }
    }
    masks
}

/// Appends `interleave(p, bits)` for every point, deciding the dispatch arm
/// (BMI2 `pdep` or portable magic masks) once for the whole batch.
pub fn interleave_batch<const D: usize>(points: &[Point<D>], bits: u32, out: &mut Vec<u64>) {
    out.reserve(points.len());
    if kernels_accelerated() {
        let masks = morton_masks::<D>(bits);
        if accel::interleave_batch(points, &masks, out) {
            return;
        }
    }
    interleave_batch_portable(points, bits, out);
}

/// Appends `deinterleave(idx, bits)` for every index, deciding the dispatch
/// arm (BMI2 `pext` or portable magic masks) once for the whole batch.
pub fn deinterleave_batch<const D: usize>(indices: &[u64], bits: u32, out: &mut Vec<Point<D>>) {
    out.reserve(indices.len());
    if kernels_accelerated() {
        let masks = morton_masks::<D>(bits);
        if accel::deinterleave_batch(indices, &masks, out) {
            return;
        }
    }
    deinterleave_batch_portable(indices, bits, out);
}

/// The portable arm of [`interleave_batch`], exposed so equivalence tests can
/// exercise it explicitly even on BMI2 hosts.
pub fn interleave_batch_portable<const D: usize>(
    points: &[Point<D>],
    bits: u32,
    out: &mut Vec<u64>,
) {
    out.reserve(points.len());
    for &p in points {
        out.push(interleave(p, bits));
    }
}

/// The portable arm of [`deinterleave_batch`], exposed so equivalence tests
/// can exercise it explicitly even on BMI2 hosts.
pub fn deinterleave_batch_portable<const D: usize>(
    indices: &[u64],
    bits: u32,
    out: &mut Vec<Point<D>>,
) {
    out.reserve(indices.len());
    for &idx in indices {
        out.push(deinterleave(idx, bits));
    }
}

/// The accelerated arm of [`interleave_batch`]; returns `false` (appending
/// nothing) when BMI2 is unavailable, letting tests compare both arms.
pub fn interleave_batch_accelerated<const D: usize>(
    points: &[Point<D>],
    bits: u32,
    out: &mut Vec<u64>,
) -> bool {
    let masks = morton_masks::<D>(bits);
    accel::interleave_batch(points, &masks, out)
}

/// The accelerated arm of [`deinterleave_batch`]; returns `false` (appending
/// nothing) when BMI2 is unavailable, letting tests compare both arms.
pub fn deinterleave_batch_accelerated<const D: usize>(
    indices: &[u64],
    bits: u32,
    out: &mut Vec<Point<D>>,
) -> bool {
    let masks = morton_masks::<D>(bits);
    accel::deinterleave_batch(indices, &masks, out)
}

/// BMI2 `pdep`/`pext` kernels — the only unsafe code in the crate, confined
/// to this module. The intrinsics cannot fault; the only precondition is
/// that the CPU supports BMI2, which every entry point verifies via
/// `is_x86_feature_detected!` before entering the `#[target_feature]` fns.
#[cfg(target_arch = "x86_64")]
mod accel {
    #![allow(unsafe_code)]

    use onion_core::Point;

    #[inline]
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("bmi2")
    }

    /// # Safety
    /// The CPU must support BMI2.
    #[target_feature(enable = "bmi2")]
    unsafe fn interleave_bmi2<const D: usize>(
        points: &[Point<D>],
        masks: &[u64; D],
        out: &mut Vec<u64>,
    ) {
        use core::arch::x86_64::_pdep_u64;
        for p in points {
            let mut idx = 0u64;
            for (coord, mask) in p.0.iter().zip(masks) {
                idx |= _pdep_u64(u64::from(*coord), *mask);
            }
            out.push(idx);
        }
    }

    /// # Safety
    /// The CPU must support BMI2.
    #[target_feature(enable = "bmi2")]
    unsafe fn deinterleave_bmi2<const D: usize>(
        indices: &[u64],
        masks: &[u64; D],
        out: &mut Vec<Point<D>>,
    ) {
        use core::arch::x86_64::_pext_u64;
        for &idx in indices {
            let mut coords = [0u32; D];
            for (c, mask) in coords.iter_mut().zip(masks) {
                *c = _pext_u64(idx, *mask) as u32;
            }
            out.push(Point::new(coords));
        }
    }

    pub fn interleave_batch<const D: usize>(
        points: &[Point<D>],
        masks: &[u64; D],
        out: &mut Vec<u64>,
    ) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: BMI2 support verified above.
        unsafe { interleave_bmi2(points, masks, out) };
        true
    }

    pub fn deinterleave_batch<const D: usize>(
        indices: &[u64],
        masks: &[u64; D],
        out: &mut Vec<Point<D>>,
    ) -> bool {
        if !available() {
            return false;
        }
        // SAFETY: BMI2 support verified above.
        unsafe { deinterleave_bmi2(indices, masks, out) };
        true
    }
}

/// Non-x86-64 stub: the accelerated arm never engages.
#[cfg(not(target_arch = "x86_64"))]
mod accel {
    use onion_core::Point;

    #[inline]
    pub fn available() -> bool {
        false
    }

    pub fn interleave_batch<const D: usize>(
        _points: &[Point<D>],
        _masks: &[u64; D],
        _out: &mut Vec<u64>,
    ) -> bool {
        false
    }

    pub fn deinterleave_batch<const D: usize>(
        _indices: &[u64],
        _masks: &[u64; D],
        _out: &mut Vec<Point<D>>,
    ) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_known_pattern_2d() {
        // x = 0b11, y = 0b01 → bits: y1 x1 y0 x0 = 0 1 1 1 = 7.
        assert_eq!(interleave(Point::new([0b11u32, 0b01]), 2), 0b0111);
        // x provides even bit positions, y odd ones.
        assert_eq!(interleave(Point::new([1u32, 0]), 1), 1);
        assert_eq!(interleave(Point::new([0u32, 1]), 1), 2);
    }

    #[test]
    fn interleave_roundtrip_3d() {
        for v in 0..512u64 {
            let p: Point<3> = deinterleave(v, 3);
            assert_eq!(interleave(p, 3), v);
        }
    }

    #[test]
    fn gray_code_is_bijective_and_unit_distance() {
        for v in 0..1024u64 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
        for v in 1..1024u64 {
            let diff = gray_encode(v) ^ gray_encode(v - 1);
            assert_eq!(diff.count_ones(), 1, "gray codes differ in exactly one bit");
        }
    }

    #[test]
    fn gray_decode_matches_reference_fold() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..4096 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            assert_eq!(gray_decode(x), gray_decode_reference(x));
            assert_eq!(
                u64::from(gray_decode32(x as u32)),
                gray_decode_reference(u64::from(x as u32))
            );
        }
        assert_eq!(gray_decode(0), 0);
        assert_eq!(gray_decode(u64::MAX), gray_decode_reference(u64::MAX));
    }

    /// The magic-mask kernels are byte-identical to the pinned per-bit
    /// reference on random inputs, including coordinates with garbage above
    /// the `bits` cut-off.
    #[test]
    fn portable_kernels_match_reference() {
        let mut x = 1u64;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..2048 {
            let raw = [next() as u32, next() as u32, next() as u32, next() as u32];
            for bits in [1u32, 5, 15, 21, 31] {
                let p2 = Point::new([raw[0], raw[1]]);
                assert_eq!(interleave(p2, bits), interleave_reference(p2, bits));
                let idx = next();
                assert_eq!(
                    deinterleave::<2>(idx, bits),
                    deinterleave_reference(idx, bits)
                );
            }
            for bits in [1u32, 7, 21] {
                let p3 = Point::new([raw[0], raw[1], raw[2]]);
                assert_eq!(interleave(p3, bits), interleave_reference(p3, bits));
                let idx = next();
                assert_eq!(
                    deinterleave::<3>(idx, bits),
                    deinterleave_reference(idx, bits)
                );
            }
            for bits in [1u32, 9, 15] {
                let p4 = Point::new(raw);
                assert_eq!(interleave(p4, bits), interleave_reference(p4, bits));
                let idx = next();
                assert_eq!(
                    deinterleave::<4>(idx, bits),
                    deinterleave_reference(idx, bits)
                );
            }
        }
    }

    /// Both dispatch arms of the batch kernels agree with the reference; the
    /// accelerated arm is exercised explicitly whenever the host has BMI2.
    #[test]
    fn batch_arms_match_reference() {
        let mut x = 42u64;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x
        };
        let points: Vec<Point<3>> = (0..257)
            .map(|_| Point::new([next() as u32, next() as u32, next() as u32]))
            .collect();
        let indices: Vec<u64> = (0..257).map(|_| next()).collect();
        for bits in [1u32, 8, 21] {
            let expect_idx: Vec<u64> = points
                .iter()
                .map(|&p| interleave_reference(p, bits))
                .collect();
            let expect_pts: Vec<Point<3>> = indices
                .iter()
                .map(|&i| deinterleave_reference(i, bits))
                .collect();

            let mut got = Vec::new();
            interleave_batch(&points, bits, &mut got);
            assert_eq!(got, expect_idx);
            got.clear();
            interleave_batch_portable(&points, bits, &mut got);
            assert_eq!(got, expect_idx);
            got.clear();
            if interleave_batch_accelerated(&points, bits, &mut got) {
                assert_eq!(got, expect_idx, "BMI2 interleave diverged (bits {bits})");
            }

            let mut gotp = Vec::new();
            deinterleave_batch(&indices, bits, &mut gotp);
            assert_eq!(gotp, expect_pts);
            gotp.clear();
            deinterleave_batch_portable(&indices, bits, &mut gotp);
            assert_eq!(gotp, expect_pts);
            gotp.clear();
            if deinterleave_batch_accelerated(&indices, bits, &mut gotp) {
                assert_eq!(gotp, expect_pts, "BMI2 deinterleave diverged (bits {bits})");
            }
        }
    }

    /// The forced-portable override flips the reported dispatch arm off and
    /// back on (re-detection), without changing results.
    #[test]
    fn portable_override_controls_dispatch() {
        let points = [Point::new([3u32, 5]), Point::new([1024u32, 65535])];
        let mut baseline = Vec::new();
        interleave_batch(&points, 16, &mut baseline);

        force_portable_kernels(true);
        assert!(!accelerated_kernels_active());
        let mut forced = Vec::new();
        interleave_batch(&points, 16, &mut forced);
        assert_eq!(forced, baseline);
        force_portable_kernels(false);
    }
}
