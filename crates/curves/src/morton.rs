//! The Z curve (Morton order), suggested by Orenstein and Merrett for range
//! queries (paper reference [1]).

use crate::bits::{deinterleave, deinterleave_batch, interleave, interleave_batch};
use onion_core::{Point, SfcError, SpaceFillingCurve, Universe};

/// The `D`-dimensional Z curve: cell index = bit-interleaving of the
/// coordinates. Requires a power-of-two side length.
///
/// Not continuous — consecutive indices can be far apart in space (the
/// "jumps" visible in Figure 1 of the paper, where the Z curve needs 4
/// clusters on a query the Hilbert curve covers with 2).
#[derive(Clone, Copy, Debug)]
pub struct Morton<const D: usize> {
    universe: Universe<D>,
    bits: u32,
}

impl<const D: usize> Morton<D> {
    /// Creates the Z curve for a `side^D` universe. `side` must be a power
    /// of two.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        let universe = Universe::new(side)?;
        if !universe.side_is_power_of_two() {
            return Err(SfcError::SideNotPowerOfTwo { side });
        }
        Ok(Morton {
            universe,
            bits: universe.side_bits(),
        })
    }
}

impl<const D: usize> SpaceFillingCurve<D> for Morton<D> {
    fn universe(&self) -> Universe<D> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        interleave(p, self.bits)
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<D> {
        deinterleave(idx, self.bits)
    }

    fn name(&self) -> &str {
        "z-order"
    }

    /// Batch interleave: one virtual call per batch for `dyn` callers, with
    /// the BMI2-vs-portable dispatch decided once for the whole batch.
    fn fill_indices(&self, points: &[Point<D>], out: &mut Vec<u64>) {
        interleave_batch(points, self.bits, out);
    }

    /// Batch deinterleave (see [`Self::fill_indices`]).
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<D>>) {
        deinterleave_batch(indices, self.bits, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::curve::verify;

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            Morton::<2>::new(12),
            Err(SfcError::SideNotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn z_pattern_on_2x2() {
        let z = Morton::<2>::new(2).unwrap();
        assert_eq!(z.index_unchecked(Point::new([0, 0])), 0);
        assert_eq!(z.index_unchecked(Point::new([1, 0])), 1);
        assert_eq!(z.index_unchecked(Point::new([0, 1])), 2);
        assert_eq!(z.index_unchecked(Point::new([1, 1])), 3);
    }

    #[test]
    fn bijective_small_sides() {
        for bits in 0..=4 {
            verify::bijection(&Morton::<2>::new(1 << bits).unwrap()).unwrap();
        }
        verify::bijection(&Morton::<3>::new(8).unwrap()).unwrap();
        verify::bijection(&Morton::<4>::new(4).unwrap()).unwrap();
    }

    #[test]
    fn is_not_continuous() {
        let z = Morton::<2>::new(8).unwrap();
        assert!(!z.is_continuous());
        assert!(verify::discontinuities(&z) > 0);
        assert_eq!(z.jump_targets(), None);
    }

    #[test]
    fn quadrant_recursive_structure() {
        // The first quarter of the curve fills the low quadrant entirely.
        let z = Morton::<2>::new(8).unwrap();
        for idx in 0..16 {
            let p = z.point_unchecked(idx);
            assert!(p.0[0] < 4 && p.0[1] < 4, "index {idx} at {p}");
        }
    }
}
