//! # sfc-baselines
//!
//! Baseline space-filling curves the Onion Curve paper compares against or
//! discusses: the **Hilbert curve** (§IV, the main baseline), the **Z
//! (Morton) curve** and **Gray-code curve** (§I related work, Figure 1), and
//! the **row-major / column-major** curves (§V-C's impossibility argument
//! for general rectangles), plus a continuous **snake** curve for universes
//! of arbitrary side length.
//!
//! All curves implement [`onion_core::SpaceFillingCurve`] and are built from
//! scratch with plain bit manipulation — no external dependencies.
//!
//! ```
//! use onion_core::{Point, SpaceFillingCurve};
//! use sfc_baselines::Hilbert;
//!
//! let h = Hilbert::<2>::new(256).unwrap();
//! let idx = h.index_of(Point::new([10, 200])).unwrap();
//! assert_eq!(h.point_of(idx).unwrap(), Point::new([10, 200]));
//! ```

#![warn(missing_docs)]
// Unsafe is denied crate-wide except for the BMI2 `pdep`/`pext` kernels in
// `bits::accel`, which carry a scoped `allow` and verify CPU support at
// runtime before entering any `#[target_feature]` function.
#![deny(unsafe_code)]

pub mod bits;
mod gray;
mod hilbert;
mod linear;
mod morton;
pub mod registry;

pub use gray::GrayCode;
pub use hilbert::Hilbert;
pub use linear::{RowMajor, Snake};
pub use morton::Morton;
pub use registry::{curve_2d, curve_3d, DynCurve, CURVE_NAMES};
