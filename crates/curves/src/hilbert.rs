//! The Hilbert curve — the paper's main baseline (§IV), long considered the
//! "gold standard" SFC for clustering.
//!
//! Implemented with Skilling's transpose algorithm (J. Skilling, *Programming
//! the Hilbert curve*, AIP Conf. Proc. 707, 2004): coordinates are converted
//! to/from a "transposed" Hilbert index held as `D` interleavable words, in
//! `O(D · bits)` time, for any dimension `D ≥ 2` and power-of-two side.

use crate::bits::{deinterleave, deinterleave_batch, gray_decode32, interleave, interleave_batch};
use onion_core::{Point, SfcError, SpaceFillingCurve, Universe};

/// The `D`-dimensional Hilbert curve over a power-of-two universe.
///
/// Continuous for every `D`: consecutive indices are always grid neighbors,
/// which this crate's tests verify exhaustively on small universes.
#[derive(Clone, Copy, Debug)]
pub struct Hilbert<const D: usize> {
    universe: Universe<D>,
    bits: u32,
}

impl<const D: usize> Hilbert<D> {
    /// Creates the Hilbert curve for a `side^D` universe. `side` must be a
    /// power of two and `D ≥ 2`.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        if D < 2 {
            return Err(SfcError::DimensionUnsupported { dims: D });
        }
        let universe = Universe::new(side)?;
        if !universe.side_is_power_of_two() {
            return Err(SfcError::SideNotPowerOfTwo { side });
        }
        Ok(Hilbert {
            universe,
            bits: universe.side_bits(),
        })
    }
}

/// One branch-free step of Skilling's per-scale update: when bit `sh` of
/// `x[i]` is set, invert the low `p` bits of `x[0]`; otherwise exchange the
/// low `p` bits of `x[0]` and `x[i]`. Both outcomes are computed as masked
/// XORs and selected with an all-ones/all-zeros mask, so the data-dependent
/// branch of the textbook formulation disappears.
#[inline(always)]
fn scale_step(x0: &mut u32, xi: &mut u32, sh: u32, p: u32) {
    let set = ((*xi >> sh) & 1).wrapping_neg();
    let swap = (*x0 ^ *xi) & p & !set;
    *x0 ^= swap ^ (p & set);
    *xi ^= swap;
}

/// Converts grid axes to the transposed Hilbert index, in place
/// (Skilling's `AxestoTranspose`), with branch-free scale steps and the
/// trailing Gray fold collapsed to O(log bits) via [`gray_decode32`].
fn axes_to_transpose<const D: usize>(x: &mut [u32; D], bits: u32) {
    if bits == 0 {
        return;
    }
    // Inverse undo: scales m, m/2, …, 2 (bit positions bits−1 … 1).
    for sh in (1..bits).rev() {
        let p = (1u32 << sh) - 1;
        // The i == 0 step self-aliases: the swap arm is a no-op and the
        // invert arm flips the low bits of x[0].
        let set = ((x[0] >> sh) & 1).wrapping_neg();
        x[0] ^= p & set;
        for i in 1..D {
            let (x0, rest) = x.split_first_mut().expect("D >= 1");
            scale_step(x0, &mut rest[i - 1], sh, p);
        }
    }
    // Gray encode.
    for i in 1..D {
        x[i] ^= x[i - 1];
    }
    // t = XOR of (q−1) over set bits q of x[D−1] above bit 0, which is
    // exactly the suffix-parity fold gray_decode(x[D−1]) >> 1.
    let t = gray_decode32(x[D - 1]) >> 1;
    for v in x.iter_mut() {
        *v ^= t;
    }
}

/// Converts a transposed Hilbert index back to grid axes, in place
/// (Skilling's `TransposetoAxes`), with branch-free scale steps.
fn transpose_to_axes<const D: usize>(x: &mut [u32; D], bits: u32) {
    if bits == 0 {
        return;
    }
    // Gray decode by H ^ (H/2).
    let t = x[D - 1] >> 1;
    for i in (1..D).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work: scales 2, 4, …, m (bit positions 1 … bits−1).
    for sh in 1..bits {
        let p = (1u32 << sh) - 1;
        for i in (1..D).rev() {
            let (x0, rest) = x.split_first_mut().expect("D >= 1");
            scale_step(x0, &mut rest[i - 1], sh, p);
        }
        // The i == 0 step self-aliases: the swap arm is a no-op and the
        // invert arm flips the low bits of x[0].
        let set = ((x[0] >> sh) & 1).wrapping_neg();
        x[0] ^= p & set;
    }
}

impl<const D: usize> SpaceFillingCurve<D> for Hilbert<D> {
    fn universe(&self) -> Universe<D> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        let mut x = p.0;
        axes_to_transpose(&mut x, self.bits);
        // In the transposed form, bit b of word d is bit (b*D + D-1-d) of
        // the Hilbert index: word 0 carries the most significant bit of
        // each group.
        let mut rev = [0u32; D];
        for (d, r) in rev.iter_mut().enumerate() {
            *r = x[D - 1 - d];
        }
        interleave(Point::new(rev), self.bits)
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<D> {
        let rev: Point<D> = deinterleave(idx, self.bits);
        let mut x = [0u32; D];
        for (d, v) in x.iter_mut().enumerate() {
            *v = rev.0[D - 1 - d];
        }
        transpose_to_axes(&mut x, self.bits);
        Point::new(x)
    }

    fn name(&self) -> &str {
        "hilbert"
    }

    fn is_continuous(&self) -> bool {
        true
    }

    /// Batch transpose+interleave: the branch-free Skilling kernel runs per
    /// point into a stack chunk, then the whole chunk is interleaved through
    /// the batch kernel (BMI2 `pdep` when available).
    fn fill_indices(&self, points: &[Point<D>], out: &mut Vec<u64>) {
        let bits = self.bits;
        out.reserve(points.len());
        let mut buf = [Point::new([0u32; D]); 64];
        for chunk in points.chunks(64) {
            for (slot, &p) in buf.iter_mut().zip(chunk) {
                let mut x = p.0;
                axes_to_transpose(&mut x, bits);
                let mut rev = [0u32; D];
                for (d, r) in rev.iter_mut().enumerate() {
                    *r = x[D - 1 - d];
                }
                *slot = Point::new(rev);
            }
            interleave_batch(&buf[..chunk.len()], bits, out);
        }
    }

    /// Batch deinterleave+transpose (see [`Self::fill_indices`]): one batch
    /// deinterleave pass, then the inverse transform fixes points in place.
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<D>>) {
        let bits = self.bits;
        let start = out.len();
        deinterleave_batch(indices, bits, out);
        for pt in &mut out[start..] {
            let mut x = [0u32; D];
            for (d, v) in x.iter_mut().enumerate() {
                *v = pt.0[D - 1 - d];
            }
            transpose_to_axes(&mut x, bits);
            *pt = Point::new(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::curve::verify;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(matches!(
            Hilbert::<2>::new(12),
            Err(SfcError::SideNotPowerOfTwo { .. })
        ));
        assert!(matches!(
            Hilbert::<1>::new(8),
            Err(SfcError::DimensionUnsupported { .. })
        ));
    }

    #[test]
    fn bijective_2d_3d_4d() {
        for bits in 0..=4 {
            verify::bijection(&Hilbert::<2>::new(1 << bits).unwrap()).unwrap();
        }
        for bits in 0..=2 {
            verify::bijection(&Hilbert::<3>::new(1 << bits).unwrap()).unwrap();
        }
        verify::bijection(&Hilbert::<4>::new(4).unwrap()).unwrap();
    }

    #[test]
    fn continuous_2d_3d_4d() {
        assert_eq!(verify::discontinuities(&Hilbert::<2>::new(16).unwrap()), 0);
        assert_eq!(verify::discontinuities(&Hilbert::<3>::new(8).unwrap()), 0);
        assert_eq!(verify::discontinuities(&Hilbert::<4>::new(4).unwrap()), 0);
    }

    #[test]
    fn first_quadrant_is_filled_first_2d() {
        // Self-similarity: the first quarter of the indices fills exactly
        // one quadrant of the grid.
        let h = Hilbert::<2>::new(16).unwrap();
        let q: Vec<_> = (0..64).map(|i| h.point_unchecked(i)).collect();
        let x_hi = q.iter().map(|p| p.0[0]).max().unwrap();
        let y_hi = q.iter().map(|p| p.0[1]).max().unwrap();
        assert!(x_hi < 8 && y_hi < 8, "first quarter spans ({x_hi},{y_hi})");
    }

    #[test]
    fn start_is_origin() {
        assert_eq!(Hilbert::<2>::new(8).unwrap().start(), Point::new([0, 0]));
        assert_eq!(Hilbert::<3>::new(8).unwrap().start(), Point::new([0, 0, 0]));
    }

    #[test]
    fn ends_adjacent_to_start_axis_2d() {
        // The 2D Hilbert curve ends at the corner adjacent to its start
        // along one axis (e.g. (side-1, 0)).
        let h = Hilbert::<2>::new(16).unwrap();
        let end = h.end();
        assert!(
            end == Point::new([15, 0]) || end == Point::new([0, 15]),
            "end {end}"
        );
    }

    #[test]
    fn roundtrip_on_large_side() {
        let h = Hilbert::<2>::new(1 << 15).unwrap();
        let n = h.universe().cell_count();
        for idx in [0u64, 1, 987_654_321 % n, n / 2, n - 1] {
            assert_eq!(h.index_unchecked(h.point_unchecked(idx)), idx);
        }
        let h3 = Hilbert::<3>::new(512).unwrap();
        let n3 = h3.universe().cell_count();
        for idx in [0u64, 7, n3 / 3, n3 - 1] {
            assert_eq!(h3.index_unchecked(h3.point_unchecked(idx)), idx);
        }
    }

    #[test]
    fn trivial_one_cell_universe() {
        let h = Hilbert::<2>::new(1).unwrap();
        assert_eq!(h.index_unchecked(Point::new([0, 0])), 0);
        assert_eq!(h.point_unchecked(0), Point::new([0, 0]));
    }
}
