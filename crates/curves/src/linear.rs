//! Row-major, column-major, and snake (boustrophedon) orders.
//!
//! Row-major and column-major are the curves of §V-C of the paper: each is
//! optimal on one of the row/column query sets `QR` / `QC` and pessimal on
//! the other, which is the paper's impossibility argument for general
//! rectangular queries (Lemma 10).

use onion_core::{Point, SfcError, SpaceFillingCurve, Universe};

/// Row-major order with a configurable axis significance permutation.
///
/// `order[0]` is the *least* significant (fastest varying) axis. The default
/// [`RowMajor::new`] uses axis 0 fastest; [`RowMajor::column_major`]
/// reverses the significance, giving the column-major curve.
#[derive(Clone, Copy, Debug)]
pub struct RowMajor<const D: usize> {
    universe: Universe<D>,
    /// Axis significance order, least significant first.
    order: [usize; D],
    name: &'static str,
}

impl<const D: usize> RowMajor<D> {
    /// Standard row-major order (axis 0 varies fastest). Any side length.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        let mut order = [0usize; D];
        for (d, o) in order.iter_mut().enumerate() {
            *o = d;
        }
        Ok(RowMajor {
            universe: Universe::new(side)?,
            order,
            name: "row-major",
        })
    }

    /// Column-major order (axis `D−1` varies fastest).
    pub fn column_major(side: u32) -> Result<Self, SfcError> {
        let mut order = [0usize; D];
        for (d, o) in order.iter_mut().enumerate() {
            *o = D - 1 - d;
        }
        Ok(RowMajor {
            universe: Universe::new(side)?,
            order,
            name: "column-major",
        })
    }
}

impl<const D: usize> SpaceFillingCurve<D> for RowMajor<D> {
    fn universe(&self) -> Universe<D> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        let side = u64::from(self.universe.side());
        let mut idx = 0u64;
        for d in (0..D).rev() {
            idx = idx * side + u64::from(p.0[self.order[d]]);
        }
        idx
    }

    #[inline]
    fn point_unchecked(&self, mut idx: u64) -> Point<D> {
        let side = u64::from(self.universe.side());
        let mut coords = [0u32; D];
        for d in 0..D {
            coords[self.order[d]] = (idx % side) as u32;
            idx /= side;
        }
        Point::new(coords)
    }

    fn name(&self) -> &str {
        self.name
    }
}

/// The snake (boustrophedon) curve: row-major with every other row
/// traversed in reverse, recursively in all dimensions. Continuous, works
/// for any side length — a useful minimal continuous baseline.
#[derive(Clone, Copy, Debug)]
pub struct Snake<const D: usize> {
    universe: Universe<D>,
}

impl<const D: usize> Snake<D> {
    /// Creates the snake curve for a `side^D` universe (any side).
    pub fn new(side: u32) -> Result<Self, SfcError> {
        Ok(Snake {
            universe: Universe::new(side)?,
        })
    }
}

impl<const D: usize> SpaceFillingCurve<D> for Snake<D> {
    fn universe(&self) -> Universe<D> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        let side = u64::from(self.universe.side());
        // Process from the most significant axis down; a coordinate is
        // reflected when the sum of the more significant coordinates is odd.
        let mut idx = 0u64;
        let mut parity = 0u32;
        for d in (0..D).rev() {
            let c = u64::from(if parity.is_multiple_of(2) {
                p.0[d]
            } else {
                self.universe.side() - 1 - p.0[d]
            });
            idx = idx * side + c;
            parity += p.0[d];
        }
        idx
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<D> {
        let side = u64::from(self.universe.side());
        // Extract digits most significant first, tracking reflection parity.
        let mut digits = [0u64; D];
        let mut rem = idx;
        for digit in digits.iter_mut() {
            *digit = rem % side;
            rem /= side;
        }
        let mut coords = [0u32; D];
        let mut parity = 0u32;
        for d in (0..D).rev() {
            let c = if parity.is_multiple_of(2) {
                digits[d] as u32
            } else {
                self.universe.side() - 1 - digits[d] as u32
            };
            coords[d] = c;
            parity += c;
        }
        Point::new(coords)
    }

    fn name(&self) -> &str {
        "snake"
    }

    fn is_continuous(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::curve::verify;

    #[test]
    fn row_major_2d_layout() {
        let c = RowMajor::<2>::new(4).unwrap();
        assert_eq!(c.index_unchecked(Point::new([3, 0])), 3);
        assert_eq!(c.index_unchecked(Point::new([0, 1])), 4);
        verify::bijection(&c).unwrap();
    }

    #[test]
    fn column_major_2d_layout() {
        let c = RowMajor::<2>::column_major(4).unwrap();
        assert_eq!(c.index_unchecked(Point::new([0, 3])), 3);
        assert_eq!(c.index_unchecked(Point::new([1, 0])), 4);
        verify::bijection(&c).unwrap();
    }

    #[test]
    fn row_and_column_major_are_transposes() {
        let r = RowMajor::<2>::new(5).unwrap();
        let c = RowMajor::<2>::column_major(5).unwrap();
        for p in r.universe().iter_cells() {
            let q = Point::new([p.0[1], p.0[0]]);
            assert_eq!(r.index_unchecked(p), c.index_unchecked(q));
        }
    }

    #[test]
    fn snake_is_continuous_any_side() {
        for side in 1..=7 {
            let s = Snake::<2>::new(side).unwrap();
            verify::bijection(&s).unwrap();
            assert_eq!(verify::discontinuities(&s), 0, "side {side}");
        }
        let s3 = Snake::<3>::new(4).unwrap();
        verify::bijection(&s3).unwrap();
        assert_eq!(verify::discontinuities(&s3), 0);
    }

    #[test]
    fn snake_2d_reverses_odd_rows() {
        let s = Snake::<2>::new(4).unwrap();
        assert_eq!(s.index_unchecked(Point::new([3, 0])), 3);
        assert_eq!(s.index_unchecked(Point::new([3, 1])), 4); // row 1 reversed
        assert_eq!(s.index_unchecked(Point::new([0, 1])), 7);
        assert_eq!(s.index_unchecked(Point::new([0, 2])), 8);
    }

    #[test]
    fn row_major_bijective_3d_odd_side() {
        verify::bijection(&RowMajor::<3>::new(5).unwrap()).unwrap();
        verify::bijection(&RowMajor::<3>::column_major(5).unwrap()).unwrap();
    }
}
