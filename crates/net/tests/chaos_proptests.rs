//! Network-chaos proptests: the headline self-healing invariant.
//!
//! A durable transactor serves its epoch feed through a
//! [`ChaosProxy`](sfc_workloads::ChaosProxy) that kills, stalls, and
//! splits the replica's subscription at schedule points drawn from the
//! proptest seed. Under *every* such schedule:
//!
//! 1. the replica reconverges to a byte-identical copy of the
//!    transactor (reconnect → re-subscribe from its applied epoch →
//!    WAL catch-up — exactly-once, no skips, no double-applies);
//! 2. every intermediate state it ever serves is a committed epoch
//!    prefix of the transactor (the mid-stream probes);
//! 3. chaos is never terminal: the replica ends in a non-`Failed`
//!    state with its fault slot empty.
//!
//! The kill/stall *schedule* is exactly reproducible from the seed
//! (the injector's op clock counts forwarded chunks); thread
//! interleaving is not, so these invariants are ones that must hold
//! under *all* interleavings of a given schedule. Set `SFC_CHAOS_SEED`
//! to pin every case to one schedule when chasing a failure, e.g.
//! `SFC_CHAOS_SEED=123456 cargo test -p sfc-net --test chaos_proptests`.
//!
//! The transactor must be durable (disk WAL): an in-memory transactor
//! cannot serve catch-up for epochs shipped while a replica was away —
//! it answers the resume with a typed
//! [`EpochTruncated`](onion_core::SfcError::EpochTruncated), the
//! *correct* terminal fault for that topology, pinned in
//! `replication.rs`. Healing needs history.

use proptest::{prop_assert, prop_assert_eq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::{curve_2d, DynCurve, CURVE_NAMES};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op, Reply};
use sfc_index::DiskModel;
use sfc_net::{Client, NetConfig, Replica, ReplicaConfig, ReplicaState, RetryPolicy, Server};
use sfc_workloads::{mixed_op_stream, ChaosInjector, ChaosProxy, NetFault, OpMix, StreamOp};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIDE: u32 = 16;
const FULL: ([u32; 2], [u32; 2]) = ([0, 0], [SIDE, SIDE]);

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn full_rect() -> RectQuery<2> {
    RectQuery::new(FULL.0, FULL.1).unwrap()
}

/// Each real-socket chaos case is ~100× the cost of a pure in-memory
/// proptest case, so run 1/8th of the requested budget (`PROPTEST_CASES`,
/// the knob CI and the nightly cron already set), floored at one case
/// per registry curve.
fn chaos_cases() -> u64 {
    let floor = CURVE_NAMES.len() as u64;
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(|n| (n / 8).clamp(floor, 128))
        .unwrap_or(floor)
}

/// `SFC_CHAOS_SEED` overrides the proptest-drawn seed, pinning every
/// case to one reproducible fault schedule.
fn chaos_seed(drawn: u64) -> u64 {
    std::env::var("SFC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(drawn)
}

/// An aggressive self-healing config for loopback chaos: reconnect
/// fast, retry practically forever (the proxy always comes back —
/// terminal faults would be a bug here, not patience running out).
fn healing_config() -> ReplicaConfig {
    ReplicaConfig {
        net: NetConfig {
            connect_timeout: Duration::from_secs(2),
            request_deadline: Some(Duration::from_secs(5)),
            retry: RetryPolicy::none(),
        },
        reconnect: RetryPolicy {
            max_retries: 500,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(20),
        },
    }
}

/// Draws a fault schedule from the seed: 3–9 faults at chunk counts
/// inside the window a ~120-op replication stream actually spans, mixed
/// across kills, stalls, and split writes.
fn schedule_faults(injector: &ChaosInjector, rng: &mut StdRng) -> usize {
    let n = rng.random_range(3usize..10);
    for _ in 0..n {
        let at_op = rng.random_range(0u64..300);
        let fault = match rng.random_range(0u8..4) {
            0 | 1 => NetFault::Kill, // kills carry the invariant's weight
            2 => NetFault::Stall(Duration::from_millis(rng.random_range(5u64..40))),
            _ => NetFault::Split,
        };
        injector.schedule(at_op, fault);
    }
    n
}

/// Starts a replica through the proxy, riding out any scheduled fault
/// that strikes the initial connect itself (each fault fires exactly
/// once, so retrying the start drains them).
fn start_replica(
    proxy_addr: &str,
    curve_name: &str,
    shards: usize,
) -> Replica<DynCurve<2>, u64, 2> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Replica::<DynCurve<2>, u64, 2>::start_with(
            proxy_addr,
            curve_2d(curve_name, SIDE).unwrap(),
            DiskModel::ssd(),
            shards,
            &EngineConfig::default(),
            healing_config(),
        ) {
            Ok(r) => return r,
            Err(e) => {
                assert!(
                    Instant::now() < deadline,
                    "replica never got through the initial connect: {e:?}"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn transactor_records(engine: &Engine<DynCurve<2>, u64, 2>) -> Vec<(onion_core::Point<2>, u64)> {
    match engine.execute(Op::Query(full_rect())).unwrap() {
        Reply::Records(rs) => rs.into_iter().map(|r| (r.point, r.value)).collect(),
        other => panic!("query answered with {other:?}"),
    }
}

fn replica_records(replica: &Replica<DynCurve<2>, u64, 2>) -> Vec<(onion_core::Point<2>, u64)> {
    replica
        .query(&full_rect())
        .unwrap()
        .records
        .into_iter()
        .map(|r| (r.point, r.value))
        .collect()
}

/// One full chaos case: durable transactor, proxied replica, seeded
/// fault schedule, mid-stream prefix probes, final byte-identity.
fn chaos_case(seed: u64, curve_name: &str, t_shards: usize, r_shards: usize) -> Result<(), String> {
    let dir = test_dir(&format!("chaos_{curve_name}_{t_shards}_{r_shards}_{seed}"));
    let engine = Arc::new(
        Engine::open(
            &dir,
            curve_2d(curve_name, SIDE).unwrap(),
            DiskModel::ssd(),
            t_shards,
            EngineConfig::with_epoch_ops(1 << 20), // manual flushes only
        )
        .unwrap(),
    );
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    let injector = ChaosInjector::new();
    let scheduled = schedule_faults(&injector, &mut rng);
    let proxy = ChaosProxy::spawn(&server.local_addr().to_string(), Arc::clone(&injector)).unwrap();

    // The replica subscribes THROUGH the chaos; the writer goes direct.
    let replica = start_replica(&proxy.addr(), curve_name, r_shards);
    let mut client =
        Client::<DynCurve<2>, u64, 2>::connect(&server.local_addr().to_string()).unwrap();

    let stream: Vec<StreamOp<2>> =
        mixed_op_stream::<2, _>(SIDE, 120, &OpMix::write_only(), 0.5, 4, &mut rng);
    let q = full_rect();
    for (i, op) in stream.into_iter().enumerate() {
        client.execute(op.into()).unwrap();
        if i % 15 == 14 {
            client.flush().unwrap();
            // Chaos must never be terminal in this topology.
            prop_assert!(
                !replica.is_failed(),
                "replica parked a terminal fault mid-chaos: {:?}",
                replica.take_fault()
            );
            // Prefix probe: whatever epoch the replica has applied, its
            // pinned state there is the transactor's state there —
            // served-while-healing reads are still committed prefixes.
            let applied = replica.applied_epoch();
            if applied > 0 {
                if let Ok(replica_view) = replica.query_as_of(applied, &q) {
                    if let Ok(Reply::Records(transactor_view)) = engine.execute(Op::QueryAsOf {
                        epoch: applied,
                        query: q,
                    }) {
                        prop_assert_eq!(
                            replica_view.records,
                            transactor_view,
                            "epoch-{} state served under chaos is not a committed prefix",
                            applied
                        );
                    }
                }
            }
        }
    }
    client.flush().unwrap();

    // Reconvergence: generous deadline — the schedule may sever the
    // feed right at the end and the replica must reconnect, resume from
    // its applied epoch, and drain the WAL catch-up.
    let committed = engine.stats().epochs;
    let deadline = Instant::now() + Duration::from_secs(30);
    while replica.applied_epoch() < committed {
        prop_assert!(
            !replica.is_failed(),
            "replica gave up instead of healing: {:?}",
            replica.take_fault()
        );
        prop_assert!(
            Instant::now() < deadline,
            "replica stuck at epoch {} of {committed} (reconnects: {})",
            replica.applied_epoch(),
            replica.reconnects()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    prop_assert_eq!(replica_records(&replica), transactor_records(&engine));
    let status = replica.status();
    prop_assert_eq!(status.applied, committed);
    prop_assert_eq!(status.lag, 0);
    prop_assert!(
        status.state != ReplicaState::Failed,
        "converged byte-identically yet parked as failed: {:?}",
        status.last_error
    );
    // Telemetry sanity: the injector fired real faults (schedules are
    // drawn inside the stream's chunk window, so at least one lands),
    // and every reconnect was counted.
    prop_assert!(scheduled > 0);

    replica.stop();
    proxy.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// The headline invariant, across the whole curve registry and the
/// 1/2/5-shard matrix on both sides. A hand-rolled case loop (rather
/// than the `proptest!` macro) so the real-socket budget scales as
/// `PROPTEST_CASES / 8` — each chaos case spins a disk WAL, a server,
/// a proxy, and a replica; running it at the full in-memory case count
/// would dominate the suite. Every case is fully determined by its
/// index, and `SFC_CHAOS_SEED` pins all cases to one fault schedule.
#[test]
fn self_healing_replica_reconverges_under_arbitrary_schedules() {
    let shard_matrix = [1usize, 2, 5];
    let cases = chaos_cases();
    for i in 0..cases {
        let mut rng = StdRng::seed_from_u64(0x0520_CA05 ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seed = chaos_seed(rng.random_range(0u64..1_000_000));
        // Walk the registry in order so the default budget (one case
        // per curve) covers every curve; shards come from the seed.
        let curve_name = CURVE_NAMES[(i as usize) % CURVE_NAMES.len()];
        let t_shards = shard_matrix[rng.random_range(0..shard_matrix.len())];
        let r_shards = shard_matrix[rng.random_range(0..shard_matrix.len())];
        if let Err(msg) = chaos_case(seed, curve_name, t_shards, r_shards) {
            panic!(
                "chaos case {i}/{cases} failed \
                 [SFC_CHAOS_SEED={seed}, curve {curve_name}, \
                 {t_shards}→{r_shards} shards]: {msg}"
            );
        }
    }
}

/// A deterministic kill-heavy schedule: the replica is severed early
/// (mid-catch-up) and repeatedly, and must still reconverge — with the
/// reconnects visible in its status.
#[test]
fn killed_mid_catchup_replica_resumes_from_its_applied_epoch() {
    let dir = test_dir("chaos_kill_mid_catchup");
    let engine = Arc::new(
        Engine::open(
            &dir,
            curve_2d("onion", SIDE).unwrap(),
            DiskModel::ssd(),
            2,
            EngineConfig::with_epoch_ops(1 << 20),
        )
        .unwrap(),
    );
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();

    // Ten committed epochs BEFORE the replica exists: it must catch up
    // from the WAL, through a proxy that kills it every few chunks.
    let mut client =
        Client::<DynCurve<2>, u64, 2>::connect(&server.local_addr().to_string()).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let stream: Vec<StreamOp<2>> =
        mixed_op_stream::<2, _>(SIDE, 100, &OpMix::write_only(), 0.5, 4, &mut rng);
    for (i, op) in stream.into_iter().enumerate() {
        client.execute(op.into()).unwrap();
        if i % 10 == 9 {
            client.flush().unwrap();
        }
    }
    let committed = engine.stats().epochs;
    assert_eq!(committed, 10);

    // Catch up cleanly first, so the kills strike an established,
    // streaming subscription — not the initial connect (whose own
    // retries are a different path, already chaos-swept above).
    let injector = ChaosInjector::new();
    let proxy = ChaosProxy::spawn(&server.local_addr().to_string(), Arc::clone(&injector)).unwrap();
    let replica = start_replica(&proxy.addr(), "onion", 5);
    let deadline = Instant::now() + Duration::from_secs(30);
    while replica.applied_epoch() < committed {
        assert!(
            !replica.is_failed(),
            "replica failed during clean catch-up: {:?}",
            replica.take_fault()
        );
        assert!(Instant::now() < deadline, "clean catch-up never completed");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        replica.reconnects(),
        0,
        "the clean phase must not reconnect"
    );

    // Now sever the live feed repeatedly while ten more epochs ship.
    // Each kill forces: reconnect → re-subscribe from applied → WAL
    // catch-up of exactly the missed suffix.
    let base = injector.op_count();
    for gap in [2u64, 8, 14, 20] {
        injector.schedule(base + gap, NetFault::Kill);
    }
    let stream: Vec<StreamOp<2>> =
        mixed_op_stream::<2, _>(SIDE, 100, &OpMix::write_only(), 0.5, 4, &mut rng);
    for (i, op) in stream.into_iter().enumerate() {
        client.execute(op.into()).unwrap();
        if i % 10 == 9 {
            client.flush().unwrap();
        }
    }
    let committed = engine.stats().epochs;
    assert_eq!(committed, 20);

    let deadline = Instant::now() + Duration::from_secs(30);
    while replica.applied_epoch() < committed {
        assert!(
            !replica.is_failed(),
            "replica failed instead of resuming: {:?}",
            replica.take_fault()
        );
        assert!(
            Instant::now() < deadline,
            "post-kill catch-up never completed"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(replica_records(&replica), transactor_records(&engine));
    assert!(
        injector.injected() > 0,
        "the kill schedule never fired — the test proved nothing"
    );
    assert!(
        replica.reconnects() >= 1,
        "kills fired ({}) but the replica never counted a reconnect",
        injector.injected()
    );

    replica.stop();
    proxy.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// When the far side is genuinely gone (proxy torn down, nothing
/// listening), the reconnect budget runs out and the replica parks a
/// typed terminal fault — self-healing is bounded, not an infinite
/// retry loop.
#[test]
fn reconnect_budget_exhaustion_parks_a_typed_fault() {
    let dir = test_dir("chaos_budget_exhaustion");
    let engine: Arc<Engine<DynCurve<2>, u64, 2>> = Arc::new(
        Engine::open(
            &dir,
            curve_2d("onion", SIDE).unwrap(),
            DiskModel::ssd(),
            1,
            EngineConfig::with_epoch_ops(1 << 20),
        )
        .unwrap(),
    );
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let injector = ChaosInjector::new();
    let proxy = ChaosProxy::spawn(&server.local_addr().to_string(), Arc::clone(&injector)).unwrap();

    let config = ReplicaConfig {
        net: NetConfig {
            connect_timeout: Duration::from_millis(500),
            request_deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy::none(),
        },
        reconnect: RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
        },
    };
    let replica = Replica::<DynCurve<2>, u64, 2>::start_with(
        &proxy.addr(),
        curve_2d("onion", SIDE).unwrap(),
        DiskModel::ssd(),
        1,
        &EngineConfig::default(),
        config,
    )
    .unwrap();
    assert_eq!(replica.state(), ReplicaState::Streaming);

    // Tear the proxy down entirely: every reconnect now meets a dead
    // address. The budget (3 attempts) must exhaust into Failed.
    proxy.shutdown();
    let deadline = Instant::now() + Duration::from_secs(15);
    while !replica.is_failed() {
        assert!(
            Instant::now() < deadline,
            "replica never parked despite a dead upstream (state: {:?})",
            replica.state()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let status = replica.status();
    assert_eq!(status.state, ReplicaState::Failed);
    let fault = replica
        .take_fault()
        .expect("a parked replica names its fault");
    assert!(
        matches!(
            fault,
            onion_core::SfcError::ConnectionLost { .. }
                | onion_core::SfcError::DeadlineExceeded { .. }
                | onion_core::SfcError::Unavailable { .. }
        ),
        "the terminal fault is a typed transport-layer error, got {fault:?}"
    );
    // The prefix it DID apply is still served.
    let _ = replica.query(&full_rect()).unwrap();

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
