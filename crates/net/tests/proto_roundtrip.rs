//! Wire-codec round trips, pinned by property tests:
//!
//! * **Every `Request` variant** and **every `Response` variant**
//!   survives encode → decode bit-exactly, including back-to-back in one
//!   buffer (no variant over- or under-reads its encoding);
//! * **Every `SfcError` variant** survives the wire with its stable
//!   numeric code intact — a remote caller sees the same typed error a
//!   local caller would;
//! * **Truncation safety:** every strict prefix of a valid encoding
//!   decodes to `None` (never panics, never mis-decodes), and unknown
//!   tags are rejected.

use onion_core::{Point, SfcError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_clustering::RectQuery;
use sfc_engine::{Admitted, EngineStats};
use sfc_index::{BatchOp, QueryPlan, Record, WalCodec, WalCursor};
use sfc_net::{Request, Response};

const SIDE: u32 = 64;

fn arb_point(rng: &mut StdRng) -> Point<2> {
    Point::new([rng.random_range(0..SIDE), rng.random_range(0..SIDE)])
}

fn arb_query(rng: &mut StdRng) -> RectQuery<2> {
    let len = [rng.random_range(1..=8u32), rng.random_range(1..=8u32)];
    let lo = [
        rng.random_range(0..SIDE - len[0]),
        rng.random_range(0..SIDE - len[1]),
    ];
    RectQuery::new(lo, len).expect("in-universe query")
}

fn arb_string(rng: &mut StdRng) -> String {
    let n = rng.random_range(0..40usize);
    (0..n)
        .map(|_| char::from(rng.random_range(b' '..=b'~')))
        .collect()
}

/// Every [`SfcError`] variant, with randomized fields.
fn arb_error(rng: &mut StdRng, variant: usize) -> SfcError {
    match variant {
        0 => SfcError::ZeroSide,
        1 => SfcError::UniverseTooLarge {
            side: rng.random_range(0..u32::MAX),
            dims: rng.random_range(0..64),
        },
        2 => SfcError::SideNotPowerOfTwo {
            side: rng.random_range(0..u32::MAX),
        },
        3 => SfcError::PointOutOfBounds {
            point: arb_string(rng),
            side: rng.random_range(0..u32::MAX),
        },
        4 => SfcError::IndexOutOfBounds {
            index: rng.random_range(0..u64::MAX),
            cells: rng.random_range(0..u64::MAX),
        },
        5 => SfcError::DimensionUnsupported {
            dims: rng.random_range(0..64),
        },
        6 => SfcError::Storage {
            context: arb_string(rng),
        },
        7 => SfcError::Unavailable {
            context: arb_string(rng),
        },
        8 => SfcError::DeadlineExceeded {
            context: arb_string(rng),
        },
        9 => SfcError::ConnectionLost {
            context: arb_string(rng),
        },
        10 => SfcError::TornFrame {
            context: arb_string(rng),
        },
        11 => SfcError::AmbiguousWrite {
            context: arb_string(rng),
        },
        _ => SfcError::EpochTruncated {
            requested: rng.random_range(0..u64::MAX),
            horizon: rng.random_range(0..u64::MAX),
        },
    }
}

const ERROR_VARIANTS: usize = 13;

fn arb_records(rng: &mut StdRng) -> Vec<Record<2, u64>> {
    (0..rng.random_range(0..12usize))
        .map(|_| Record {
            point: arb_point(rng),
            value: rng.random_range(0..u64::MAX),
        })
        .collect()
}

fn arb_batch(rng: &mut StdRng) -> Vec<BatchOp<2, u64>> {
    (0..rng.random_range(0..12usize))
        .map(|_| match rng.random_range(0..3u8) {
            0 => BatchOp::Insert(arb_point(rng), rng.random_range(0..u64::MAX)),
            1 => BatchOp::Update(arb_point(rng), rng.random_range(0..u64::MAX)),
            _ => BatchOp::Delete(arb_point(rng)),
        })
        .collect()
}

fn arb_plan(rng: &mut StdRng) -> QueryPlan {
    QueryPlan {
        ranges: (0..rng.random_range(1..6usize))
            .map(|_| {
                let lo: u64 = rng.random_range(0..1 << 20);
                (lo, lo + rng.random_range(0..64u64))
            })
            .collect(),
        clusters: rng.random_range(1..32),
        extra_cells: rng.random_range(0..1000),
        hit_rate: rng.random_range(0..=1000) as f64 / 1000.0,
        est_full_us: rng.random_range(0..1_000_000) as f64 / 7.0,
        est_chosen_us: rng.random_range(0..1_000_000) as f64 / 7.0,
        shard_skew: 1.0 + rng.random_range(0..5000) as f64 / 1000.0,
    }
}

fn arb_stats(rng: &mut StdRng) -> EngineStats {
    EngineStats {
        gets: rng.random_range(0..u64::MAX),
        queries: rng.random_range(0..u64::MAX),
        writes: rng.random_range(0..u64::MAX),
        epochs: rng.random_range(0..u64::MAX),
        pending: rng.random_range(0..u64::MAX),
        flush_failures: rng.random_range(0..u64::MAX),
        durable_epochs: rng.random_range(0..u64::MAX),
    }
}

/// Every [`Request`] variant, in tag order.
fn arb_request(rng: &mut StdRng, variant: usize) -> Request<2, u64> {
    match variant {
        0 => Request::Ping,
        1 => Request::Get(arb_point(rng)),
        2 => Request::Query(arb_query(rng)),
        3 => Request::QueryAsOf {
            epoch: rng.random_range(0..u64::MAX),
            query: arb_query(rng),
        },
        4 => Request::Insert(arb_point(rng), rng.random_range(0..u64::MAX)),
        5 => Request::Update(arb_point(rng), rng.random_range(0..u64::MAX)),
        6 => Request::Delete(arb_point(rng)),
        7 => Request::Flush,
        8 => Request::Checkpoint,
        9 => Request::Stats,
        10 => Request::Explain(arb_query(rng)),
        _ => Request::SubscribeEpochs {
            from: rng.random_range(0..u64::MAX),
        },
    }
}

const REQUEST_VARIANTS: usize = 12;

/// Every [`Response`] variant, in tag order.
fn arb_response(rng: &mut StdRng, variant: usize) -> Response<2, u64> {
    match variant {
        0 => Response::Pong,
        1 => Response::Value(if rng.random_bool(0.5) {
            Some(rng.random_range(0..u64::MAX))
        } else {
            None
        }),
        2 => Response::Records(arb_records(rng)),
        3 => Response::Admitted(Admitted {
            epoch: rng.random_range(0..u64::MAX),
        }),
        4 => Response::Flushed {
            applied: rng.random_range(0..u64::MAX),
        },
        5 => Response::Checkpointed {
            epoch: rng.random_range(0..u64::MAX),
        },
        6 => Response::Stats(arb_stats(rng)),
        7 => Response::Explained(arb_plan(rng)),
        8 => Response::Epoch {
            epoch: rng.random_range(0..u64::MAX),
            durable_epoch: rng.random_range(0..u64::MAX),
            ops: arb_batch(rng),
        },
        9 => Response::Lagged,
        10 => {
            let v = rng.random_range(0..ERROR_VARIANTS);
            Response::Error(arb_error(rng, v))
        }
        _ => Response::Subscribed {
            start_epoch: rng.random_range(0..u64::MAX),
        },
    }
}

const RESPONSE_VARIANTS: usize = 12;

/// Round-trips `value` alone and back-to-back with `next` in one buffer:
/// decoding must consume exactly the encoding (no over- or under-read).
fn roundtrip<T: WalCodec + PartialEq + std::fmt::Debug>(value: &T, next: &T) {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    let solo_len = buf.len();
    next.encode(&mut buf);
    let mut cur = WalCursor::new(&buf);
    assert_eq!(T::decode(&mut cur).as_ref(), Some(value), "first decode");
    assert_eq!(T::decode(&mut cur).as_ref(), Some(next), "second decode");

    // Every strict prefix of the first encoding is rejected cleanly.
    for cut in 0..solo_len {
        let mut cur = WalCursor::new(&buf[..cut]);
        assert!(
            T::decode(&mut cur).is_none(),
            "prefix of {cut}/{solo_len} bytes must not decode"
        );
    }
}

proptest! {
    /// Every `Request` variant round-trips, back-to-back, truncation-safe.
    #[test]
    fn every_request_variant_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        for variant in 0..REQUEST_VARIANTS {
            let value = arb_request(&mut rng, variant);
            let next_variant = rng.random_range(0..REQUEST_VARIANTS);
            let next = arb_request(&mut rng, next_variant);
            roundtrip(&value, &next);
        }
    }

    /// Every `Response` variant round-trips, back-to-back, truncation-safe.
    #[test]
    fn every_response_variant_roundtrips(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        for variant in 0..RESPONSE_VARIANTS {
            let value = arb_response(&mut rng, variant);
            let next_variant = rng.random_range(0..RESPONSE_VARIANTS);
            let next = arb_response(&mut rng, next_variant);
            roundtrip(&value, &next);
        }
    }

    /// Every `SfcError` variant survives the wire with its stable code —
    /// both standalone and wrapped in `Response::Error`.
    #[test]
    fn every_error_variant_survives_the_wire(seed in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        for variant in 0..ERROR_VARIANTS {
            let err = arb_error(&mut rng, variant);
            let mut buf = Vec::new();
            err.encode(&mut buf);
            let decoded = SfcError::decode(&mut WalCursor::new(&buf))
                .expect("error must decode");
            prop_assert_eq!(&decoded, &err);
            prop_assert_eq!(decoded.code(), err.code());
            roundtrip(
                &Response::<2, u64>::Error(err),
                &Response::<2, u64>::Error({
                    let v = rng.random_range(0..ERROR_VARIANTS);
                    arb_error(&mut rng, v)
                }),
            );
        }
    }
}

#[test]
fn error_codes_are_pinned() {
    // The wire contract: codes never change meaning across releases.
    let mut rng = StdRng::seed_from_u64(0);
    let codes: Vec<u16> = (0..ERROR_VARIANTS)
        .map(|v| arb_error(&mut rng, v).code())
        .collect();
    assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
}

#[test]
fn unknown_tags_are_rejected() {
    for tag in [REQUEST_VARIANTS as u8, 0x7f, 0xff] {
        let buf = [tag, 0, 0, 0];
        assert!(Request::<2, u64>::decode(&mut WalCursor::new(&buf)).is_none());
    }
    for tag in [RESPONSE_VARIANTS as u8, 0x7f, 0xff] {
        let buf = [tag, 0, 0, 0];
        assert!(Response::<2, u64>::decode(&mut WalCursor::new(&buf)).is_none());
    }
    assert!(Request::<2, u64>::decode(&mut WalCursor::new(&[])).is_none());
    assert!(Response::<2, u64>::decode(&mut WalCursor::new(&[])).is_none());
}

#[test]
fn op_and_reply_map_one_to_one() {
    use sfc_engine::{Op, Reply};
    let p = Point::new([3, 4]);
    let q = RectQuery::new([1, 1], [2, 2]).unwrap();
    let cases: Vec<(Op<2, u64>, Request<2, u64>)> = vec![
        (Op::Get(p), Request::Get(p)),
        (Op::Query(q), Request::Query(q)),
        (Op::Insert(p, 9), Request::Insert(p, 9)),
        (Op::Update(p, 9), Request::Update(p, 9)),
        (Op::Delete(p), Request::Delete(p)),
        (
            Op::QueryAsOf { epoch: 5, query: q },
            Request::QueryAsOf { epoch: 5, query: q },
        ),
    ];
    for (op, expect) in cases {
        assert_eq!(Request::from(op), expect);
    }
    let reply: Reply<2, u64> = Reply::Value(Some(7));
    assert_eq!(
        Response::from(reply.clone()).into_reply().unwrap(),
        Some(reply)
    );
    assert_eq!(
        Response::<2, u64>::Error(SfcError::ZeroSide).into_reply(),
        Err(SfcError::ZeroSide)
    );
    assert_eq!(Response::<2, u64>::Pong.into_reply(), Ok(None));
}
