//! Transactor → replica replication, pinned end to end:
//!
//! * **Convergence:** a replica subscribed to a live transactor applies
//!   every committed epoch and converges to query-identical state,
//!   reporting zero lag at quiescence;
//! * **WAL catch-up:** a replica that connects *after* epochs committed
//!   replays them from the transactor's WAL, then hands off to the live
//!   feed without a gap (the exactly-once delivery protocol);
//! * **Time travel:** a replica's retention window answers `query_as_of`
//!   for the same epochs the transactor can;
//! * **Epoch-prefix consistency (proptest):** any state a replica ever
//!   exposes equals the transactor's state at the replica's applied
//!   epoch — never a torn batch, never a reordering — across random
//!   curves, shard counts, and flush schedules.

use onion_core::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::{curve_2d, DynCurve, CURVE_NAMES};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op, Reply};
use sfc_index::{DiskModel, ShardedTable};
use sfc_net::{Client, Replica, Server};
use sfc_workloads::{mixed_op_stream, OpMix, StreamOp};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIDE: u32 = 16;
const FULL: ([u32; 2], [u32; 2]) = ([0, 0], [SIDE, SIDE]);

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mk_memory_engine(curve_name: &str, shards: usize) -> Engine<DynCurve<2>, u64, 2> {
    let curve = curve_2d(curve_name, SIDE).unwrap();
    let table = ShardedTable::build(curve, Vec::new(), DiskModel::ssd(), shards).unwrap();
    Engine::new(table, EngineConfig::with_epoch_ops(1 << 20))
}

fn full_rect() -> RectQuery<2> {
    RectQuery::new(FULL.0, FULL.1).unwrap()
}

/// Waits until the replica has applied `epoch` (bounded; replication is
/// asynchronous but must converge quickly on loopback).
fn await_applied(replica: &Replica<DynCurve<2>, u64, 2>, epoch: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.applied_epoch() < epoch {
        assert!(
            !replica.is_failed(),
            "replica failed while catching up: {:?}",
            replica.take_fault()
        );
        assert!(
            Instant::now() < deadline,
            "replica stuck at epoch {} (want {epoch})",
            replica.applied_epoch()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn transactor_records(engine: &Engine<DynCurve<2>, u64, 2>) -> Vec<(Point<2>, u64)> {
    match engine.execute(Op::Query(full_rect())).unwrap() {
        Reply::Records(rs) => rs.into_iter().map(|r| (r.point, r.value)).collect(),
        other => panic!("query answered with {other:?}"),
    }
}

fn replica_records(replica: &Replica<DynCurve<2>, u64, 2>) -> Vec<(Point<2>, u64)> {
    replica
        .query(&full_rect())
        .unwrap()
        .records
        .into_iter()
        .map(|r| (r.point, r.value))
        .collect()
}

/// Live replication: subscribe first, then write — the replica applies
/// every epoch, converges to query-identical state, and reports lag 0.
#[test]
fn replica_converges_and_reports_lag() {
    let engine = Arc::new(mk_memory_engine("onion", 2));
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    // Replica re-partitions: 3 shards against the transactor's 2.
    let replica = Replica::<DynCurve<2>, u64, 2>::start(
        &addr,
        curve_2d("onion", SIDE).unwrap(),
        DiskModel::ssd(),
        3,
        &EngineConfig::default(),
    )
    .unwrap();
    assert_eq!(replica.applied_epoch(), 0);
    assert!(replica.is_empty());

    let mut client = Client::<DynCurve<2>, u64, 2>::connect(&addr).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let stream = mixed_op_stream::<2, _>(SIDE, 200, &OpMix::balanced(), 0.6, 5, &mut rng);
    let mut epochs = 0;
    for (i, op) in stream.into_iter().enumerate() {
        client.execute(op.into()).unwrap();
        if i % 40 == 39 {
            client.flush().unwrap();
            epochs += 1;
        }
    }
    client.flush().unwrap(); // flush the tail (may be a no-op epoch)
    let committed = engine.stats().epochs;
    assert!(committed >= epochs, "at least every forced flush committed");

    await_applied(&replica, committed);
    assert_eq!(replica.applied_epoch(), committed);
    assert_eq!(replica.lag(), 0, "quiescent replica must report zero lag");
    assert_eq!(replica_records(&replica), transactor_records(&engine));
    assert_eq!(replica.len(), transactor_records(&engine).len());
    assert!(!replica.is_failed());

    replica.stop();
    server.shutdown();
}

/// A replica that connects late replays committed epochs from the WAL,
/// then switches to the live feed with no gap and no duplicate.
#[test]
fn late_replica_catches_up_from_the_wal_and_hands_off_live() {
    let dir = test_dir("net-wal-catchup");
    let engine = Arc::new(
        Engine::<DynCurve<2>, u64, 2>::open(
            &dir,
            curve_2d("hilbert", SIDE).unwrap(),
            DiskModel::ssd(),
            2,
            EngineConfig::with_epoch_ops(1 << 20),
        )
        .unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(21);
    let stream = mixed_op_stream::<2, _>(SIDE, 120, &OpMix::write_only(), 0.5, 4, &mut rng);
    let (before, after) = stream.split_at(80);

    // Commit four epochs before any replica exists.
    for (i, op) in before.iter().enumerate() {
        engine.execute(op.clone().into()).unwrap();
        if i % 20 == 19 {
            engine.flush().unwrap();
        }
    }
    let committed_before = engine.stats().epochs;
    assert_eq!(committed_before, 4);

    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let replica = Replica::<DynCurve<2>, u64, 2>::start(
        &server.local_addr().to_string(),
        curve_2d("hilbert", SIDE).unwrap(),
        DiskModel::ssd(),
        5,
        &EngineConfig::default(),
    )
    .unwrap();
    await_applied(&replica, committed_before);

    // Now keep committing: the stream must hand off to the live feed.
    for (i, op) in after.iter().enumerate() {
        engine.execute(op.clone().into()).unwrap();
        if i % 20 == 19 {
            engine.flush().unwrap();
        }
    }
    let committed = engine.stats().epochs;
    await_applied(&replica, committed);
    assert_eq!(replica_records(&replica), transactor_records(&engine));
    assert_eq!(replica.lag(), 0);
    assert!(!replica.is_failed(), "{:?}", replica.take_fault());

    replica.stop();
    server.shutdown();
    drop(engine);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The replica's retention window answers the same time-travel reads the
/// transactor can, epoch for epoch.
#[test]
fn replica_time_travel_matches_the_transactor() {
    let engine = Arc::new(mk_memory_engine("z-order", 1));
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let replica = Replica::<DynCurve<2>, u64, 2>::start(
        &server.local_addr().to_string(),
        curve_2d("z-order", SIDE).unwrap(),
        DiskModel::ssd(),
        2,
        &EngineConfig::default(),
    )
    .unwrap();

    let mut client =
        Client::<DynCurve<2>, u64, 2>::connect(&server.local_addr().to_string()).unwrap();
    for epoch in 0..5u64 {
        for i in 0..6u32 {
            client
                .update(
                    Point::new([i, epoch as u32 % SIDE]),
                    epoch * 100 + u64::from(i),
                )
                .unwrap();
        }
        client.flush().unwrap();
    }
    let committed = engine.stats().epochs;
    await_applied(&replica, committed);

    let q = full_rect();
    for epoch in 1..=committed {
        let from_replica = replica.query_as_of(epoch, &q).unwrap().records;
        let from_transactor = match engine.execute(Op::QueryAsOf { epoch, query: q }).unwrap() {
            Reply::Records(rs) => rs,
            other => panic!("QueryAsOf answered with {other:?}"),
        };
        assert_eq!(
            from_replica, from_transactor,
            "epoch {epoch} time-travel diverged"
        );
    }
    // An unretained epoch is a typed error, not a wrong answer.
    assert!(replica.query_as_of(committed + 10, &q).is_err());

    replica.stop();
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Epoch-prefix consistency: whatever epoch the replica reports
    /// having applied, its pinned state at that epoch is byte-for-byte
    /// the transactor's state at the same epoch — sampled mid-stream,
    /// while epochs are still in flight.
    #[test]
    fn replica_state_is_always_an_epoch_prefix_of_the_transactor(
        seed in 0u64..1_000_000,
        curve_idx in 0usize..CURVE_NAMES.len(),
        t_shards in prop::sample::select(vec![1usize, 2, 5]),
        r_shards in prop::sample::select(vec![1usize, 2, 5]),
    ) {
        let curve_name = CURVE_NAMES[curve_idx];
        let engine = Arc::new(mk_memory_engine(curve_name, t_shards));
        let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let replica = Replica::<DynCurve<2>, u64, 2>::start(
            &server.local_addr().to_string(),
            curve_2d(curve_name, SIDE).unwrap(),
            DiskModel::ssd(),
            r_shards,
            &EngineConfig::default(),
        )
        .unwrap();

        let mut client =
            Client::<DynCurve<2>, u64, 2>::connect(&server.local_addr().to_string()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let stream: Vec<StreamOp<2>> =
            mixed_op_stream::<2, _>(SIDE, 120, &OpMix::write_only(), 0.5, 4, &mut rng);
        let q = full_rect();
        for (i, op) in stream.into_iter().enumerate() {
            client.execute(op.into()).unwrap();
            if i % 15 == 14 {
                client.flush().unwrap();
                // Mid-stream probe: pin whatever epoch the replica has
                // applied and compare it to the transactor AT THAT EPOCH
                // (the live heads may already disagree — that is lag,
                // not inconsistency).
                let applied = replica.applied_epoch();
                if applied > 0 {
                    if let Ok(replica_view) = replica.query_as_of(applied, &q) {
                        let transactor_view = match engine
                            .execute(Op::QueryAsOf { epoch: applied, query: q })
                        {
                            Ok(Reply::Records(rs)) => rs,
                            // The transactor's retention may have evicted
                            // this epoch already; skip the probe then.
                            _ => continue,
                        };
                        prop_assert_eq!(
                            replica_view.records,
                            transactor_view,
                            "replica's epoch-{} state is not the transactor's prefix",
                            applied
                        );
                    }
                }
            }
        }
        client.flush().unwrap();
        let committed = engine.stats().epochs;
        await_applied(&replica, committed);
        prop_assert_eq!(replica_records(&replica), transactor_records(&engine));
        prop_assert_eq!(replica.lag(), 0);

        replica.stop();
        server.shutdown();
    }
}
