//! Client deadline/retry semantics and server overload protection,
//! pinned on loopback:
//!
//! * a connect to a peer that accepts but never speaks fails within the
//!   connect budget, not forever;
//! * a stalled handler trips the per-request deadline with a typed
//!   [`SfcError::DeadlineExceeded`];
//! * idempotent requests retry through a severed connection to success;
//!   writes never auto-retry — an orphaned write surfaces the typed
//!   [`SfcError::AmbiguousWrite`];
//! * a server over its admission cap answers with a typed
//!   [`SfcError::Unavailable`] busy frame (pre-execution: nothing ran);
//! * a clean close and a torn frame are distinct error classes;
//! * idle connections are reaped, and shutdown drains within its
//!   deadline even with connections open.

use onion_core::{Point, SfcError};
use sfc_baselines::{curve_2d, DynCurve};
use sfc_engine::{Engine, EngineConfig};
use sfc_index::{DiskModel, ShardedTable};
use sfc_net::{Client, NetConfig, RetryPolicy, Server, ServerConfig, NET_MAGIC, PROTOCOL_VERSION};
use sfc_workloads::{ChaosInjector, ChaosProxy};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SIDE: u32 = 16;

fn mk_engine(shards: usize) -> Arc<Engine<DynCurve<2>, u64, 2>> {
    let curve = curve_2d("onion", SIDE).unwrap();
    let table = ShardedTable::build(curve, Vec::new(), DiskModel::ssd(), shards).unwrap();
    Arc::new(Engine::new(table, EngineConfig::with_epoch_ops(1 << 20)))
}

fn fast_net() -> NetConfig {
    NetConfig {
        connect_timeout: Duration::from_millis(500),
        request_deadline: Some(Duration::from_millis(500)),
        retry: RetryPolicy {
            max_retries: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
        },
    }
}

/// The 10-byte preamble both sides exchange.
fn hello_bytes() -> [u8; 10] {
    let mut hello = [0u8; 10];
    hello[..8].copy_from_slice(&NET_MAGIC);
    hello[8..].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    hello
}

/// A raw fake server for protocol-edge tests: accepts one connection
/// and hands it to `serve`.
fn fake_server(
    serve: impl FnOnce(TcpStream) + Send + 'static,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            serve(stream);
        }
    });
    (addr, handle)
}

#[test]
fn connect_to_a_silent_peer_fails_within_the_budget() {
    // Accepts, then says nothing: no hello, ever.
    let (addr, handle) = fake_server(|stream| {
        std::thread::sleep(Duration::from_millis(600));
        drop(stream);
    });
    let start = Instant::now();
    let err = match Client::<DynCurve<2>, u64, 2>::connect_with(
        &addr,
        NetConfig {
            connect_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        },
    ) {
        Ok(_) => panic!("connect to a silent peer must fail"),
        Err(e) => e,
    };
    assert!(
        matches!(err, SfcError::DeadlineExceeded { .. }),
        "silent peer must trip the connect budget, got {err:?}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "connect returned in {:?}, not within the budget",
        start.elapsed()
    );
    handle.join().unwrap();
}

#[test]
fn stalled_handler_trips_the_request_deadline() {
    // Speaks the preamble, then swallows every request without
    // answering — on every connection, so the deadline-poisoned
    // client's reconnect meets the same stall.
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.set_nonblocking(true).unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let handle = std::thread::spawn(move || {
        let mut handlers = Vec::new();
        while !stop2.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    let stop = Arc::clone(&stop2);
                    handlers.push(std::thread::spawn(move || {
                        stream.set_nonblocking(false).unwrap();
                        let mut buf = [0u8; 1024];
                        if stream.read_exact(&mut buf[..10]).is_err() {
                            return;
                        }
                        stream.write_all(&hello_bytes()).unwrap();
                        stream
                            .set_read_timeout(Some(Duration::from_millis(20)))
                            .unwrap();
                        while !stop.load(Ordering::Acquire) {
                            let _ = stream.read(&mut buf); // consume, never reply
                        }
                    }));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        for h in handlers {
            let _ = h.join();
        }
    });
    let mut client = Client::<DynCurve<2>, u64, 2>::connect_with(
        &addr,
        NetConfig {
            connect_timeout: Duration::from_millis(500),
            request_deadline: Some(Duration::from_millis(150)),
            retry: RetryPolicy::none(),
        },
    )
    .unwrap();
    let start = Instant::now();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, SfcError::DeadlineExceeded { .. }),
        "stalled handler must trip the deadline, got {err:?}"
    );
    assert!(start.elapsed() >= Duration::from_millis(150));
    assert!(start.elapsed() < Duration::from_secs(2));

    // The same stall under a *write* is an ambiguous outcome: the bytes
    // left, the response never came — the client must say so, typed.
    let err = client.insert(Point::new([1, 1]), 7).unwrap_err();
    assert!(
        matches!(err, SfcError::AmbiguousWrite { .. }),
        "a write that failed after send must be ambiguous, got {err:?}"
    );
    stop.store(true, Ordering::Release);
    handle.join().unwrap();
}

#[test]
fn idempotent_requests_retry_through_a_severed_connection() {
    let engine = mk_engine(2);
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let inj = ChaosInjector::new();
    let proxy = ChaosProxy::spawn(&server.local_addr().to_string(), Arc::clone(&inj)).unwrap();
    let mut client =
        Client::<DynCurve<2>, u64, 2>::connect_with(&proxy.addr(), fast_net()).unwrap();
    client.update(Point::new([2, 3]), 42).unwrap();
    client.flush().unwrap();

    // Sever the live connection; the next read must heal transparently.
    assert_eq!(proxy.kill_all(), 1);
    assert_eq!(
        client.get(Point::new([2, 3])).unwrap(),
        Some(42),
        "an idempotent request must retry through the blip"
    );

    // And again for a query-class verb.
    proxy.kill_all();
    assert_eq!(client.stats().unwrap().epochs, 1);

    proxy.shutdown();
    server.shutdown();
}

#[test]
fn writes_never_auto_retry() {
    let engine = mk_engine(1);
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let inj = ChaosInjector::new();
    let proxy = ChaosProxy::spawn(&server.local_addr().to_string(), Arc::clone(&inj)).unwrap();
    let mut client =
        Client::<DynCurve<2>, u64, 2>::connect_with(&proxy.addr(), fast_net()).unwrap();
    client.ping().unwrap();

    // Sever, then write: the generous retry policy must NOT apply — the
    // failure surfaces as a typed ambiguous outcome on the first error.
    proxy.kill_all();
    let err = client.insert(Point::new([5, 5]), 99).unwrap_err();
    assert!(
        matches!(err, SfcError::AmbiguousWrite { .. }),
        "a write through a severed connection must be ambiguous, got {err:?}"
    );
    let text = err.to_string();
    assert!(text.contains("Insert"), "the verb is named: {text}");

    // The caller decides: a re-read shows the write did not land, and an
    // explicit re-issue succeeds over the healed connection.
    assert_eq!(client.get(Point::new([5, 5])).unwrap(), None);
    client.insert(Point::new([5, 5]), 99).unwrap();
    client.flush().unwrap();
    assert_eq!(client.get(Point::new([5, 5])).unwrap(), Some(99));

    proxy.shutdown();
    server.shutdown();
}

#[test]
fn admission_cap_answers_busy_typed_and_recovers() {
    let engine = mk_engine(1);
    let server = Server::spawn_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut first = Client::<DynCurve<2>, u64, 2>::connect(&addr).unwrap();
    first.ping().unwrap();
    assert_eq!(server.active_connections(), 1);

    // Over the cap: the refusal is a typed, pre-execution busy error.
    let mut second = Client::<DynCurve<2>, u64, 2>::connect_with(
        &addr,
        NetConfig {
            retry: RetryPolicy::none(),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let err = second.ping().unwrap_err();
    assert!(
        matches!(err, SfcError::Unavailable { .. }),
        "over-cap connections get the typed busy error, got {err:?}"
    );
    assert!(err.is_pre_execution(), "busy is safe to retry for any verb");

    // A busy write was never admitted either — same typed refusal, not
    // an ambiguous outcome.
    let mut third = Client::<DynCurve<2>, u64, 2>::connect_with(
        &addr,
        NetConfig {
            retry: RetryPolicy::none(),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let err = third.insert(Point::new([1, 2]), 3).unwrap_err();
    assert!(
        matches!(err, SfcError::Unavailable { .. }),
        "a refused write is Unavailable (pre-execution), got {err:?}"
    );

    // Free the slot; an idempotent client with retries rides it out.
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut probe = Client::<DynCurve<2>, u64, 2>::connect_with(&addr, fast_net()).unwrap();
        if probe.ping().is_ok() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after the first client left"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn clean_close_and_torn_frame_are_distinct() {
    // Clean: hello, then close at a frame boundary.
    let (addr, handle) = fake_server(|mut stream| {
        let mut buf = [0u8; 10];
        stream.read_exact(&mut buf).unwrap();
        stream.write_all(&hello_bytes()).unwrap();
        // Read the request frame so the close happens after the send.
        let mut req = [0u8; 256];
        let _ = stream.read(&mut req);
    });
    let mut client = Client::<DynCurve<2>, u64, 2>::connect_with(
        &addr,
        NetConfig {
            connect_timeout: Duration::from_millis(500),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, SfcError::ConnectionLost { .. }),
        "a close at a frame boundary is ConnectionLost, got {err:?}"
    );
    assert!(err.is_transport());
    handle.join().unwrap();

    // Torn: hello, then half a response frame, then close.
    let (addr, handle) = fake_server(|mut stream| {
        let mut buf = [0u8; 10];
        stream.read_exact(&mut buf).unwrap();
        stream.write_all(&hello_bytes()).unwrap();
        let mut req = [0u8; 256];
        let _ = stream.read(&mut req);
        // A frame header promising 100 payload bytes, then only 10.
        let mut torn = Vec::new();
        torn.extend_from_slice(&100u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(&[0u8; 10]);
        stream.write_all(&torn).unwrap();
    });
    let mut client = Client::<DynCurve<2>, u64, 2>::connect_with(
        &addr,
        NetConfig {
            connect_timeout: Duration::from_millis(500),
            ..NetConfig::default()
        },
    )
    .unwrap();
    let err = client.ping().unwrap_err();
    assert!(
        matches!(err, SfcError::TornFrame { .. }),
        "a close mid-frame is TornFrame, got {err:?}"
    );
    assert!(err.is_transport());
    handle.join().unwrap();
}

#[test]
fn idle_connections_are_reaped_and_clients_heal() {
    let engine = mk_engine(1);
    let server = Server::spawn_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(120)),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::<DynCurve<2>, u64, 2>::connect_with(&addr, fast_net()).unwrap();
    client.ping().unwrap();
    assert_eq!(server.active_connections(), 1);

    // Go idle past the deadline: the server reaps the slot.
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.active_connections() > 0 {
        assert!(Instant::now() < deadline, "idle connection never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The reconnecting client heals on its next idempotent request.
    client.ping().unwrap();
    assert_eq!(server.active_connections(), 1);
    server.shutdown();
}

#[test]
fn shutdown_drains_within_its_deadline_with_connections_open() {
    let engine = mk_engine(1);
    let server = Server::spawn_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            drain_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    // Three idle-but-open connections, one of them a subscriber stream.
    let mut a = Client::<DynCurve<2>, u64, 2>::connect(&addr).unwrap();
    let mut b = Client::<DynCurve<2>, u64, 2>::connect(&addr).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();
    let _stream = Client::<DynCurve<2>, u64, 2>::connect(&addr)
        .unwrap()
        .subscribe_epochs(0)
        .unwrap();
    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with open connections",
        start.elapsed()
    );
}
