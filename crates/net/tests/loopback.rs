//! Loopback integration: the remote transport is invisible.
//!
//! * **Byte identity, every curve, 1/2/5 shards:** a remote [`Client`]
//!   driving a server over TCP and an in-process twin engine driven
//!   through [`respond`] produce byte-identical `Response` encodings for
//!   an entire mixed op stream — data plane, admin verbs, and errors
//!   alike — for every curve in the baseline registry;
//! * **Typed error transport:** an out-of-bounds op fails remotely with
//!   exactly the `SfcError` a local caller gets;
//! * **Concurrent clients:** N connections hammer one engine and every
//!   admitted write lands exactly once;
//! * **Protocol hygiene:** a garbage preamble is rejected; a corrupt
//!   frame poisons only its own connection; the next connection works.

use onion_core::Point;
use rand::SeedableRng;
use sfc_baselines::{curve_2d, DynCurve, CURVE_NAMES};
use sfc_clustering::RectQuery;
use sfc_engine::{Engine, EngineConfig, Op};
use sfc_index::{DiskModel, WalCodec};
use sfc_net::{respond, Client, Request, Response, Server};
use sfc_workloads::{mixed_op_stream, OpMix};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const SIDE: u32 = 16;

fn mk_engine(curve_name: &str, shards: usize) -> Engine<DynCurve<2>, u64, 2> {
    let curve = curve_2d(curve_name, SIDE).unwrap();
    let initial = (0..SIDE)
        .map(|i| (Point::new([i, (i * 7) % SIDE]), u64::from(i)))
        .collect();
    let table = sfc_index::ShardedTable::build(curve, initial, DiskModel::ssd(), shards).unwrap();
    // Manual flushes only: both twins must flush at identical stream
    // positions for their epochs (and Admitted receipts) to line up.
    Engine::new(table, EngineConfig::with_epoch_ops(1 << 20))
}

fn encoded<const D: usize, V: WalCodec>(resp: &Response<D, V>) -> Vec<u8> {
    let mut buf = Vec::new();
    resp.encode(&mut buf);
    buf
}

/// Remote client and in-process twin answer every request with the same
/// bytes — the loopback pin of "the transport is invisible".
#[test]
fn remote_replies_are_byte_identical_to_in_process_execution() {
    for curve_name in CURVE_NAMES {
        for shards in [1usize, 2, 5] {
            let local = mk_engine(curve_name, shards);
            let remote_engine = Arc::new(mk_engine(curve_name, shards));
            let server = Server::spawn(Arc::clone(&remote_engine), "127.0.0.1:0").unwrap();
            let mut client =
                Client::<DynCurve<2>, u64, 2>::connect(&server.local_addr().to_string()).unwrap();

            let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE ^ shards as u64);
            let stream = mixed_op_stream::<2, _>(SIDE, 150, &OpMix::balanced(), 0.7, 6, &mut rng);
            let admin_q = RectQuery::new([2, 2], [5, 5]).unwrap();
            for (i, stream_op) in stream.into_iter().enumerate() {
                let op: Op<2, u64> = stream_op.into();
                let request = Request::from(op);
                check_identical(&local, &mut client, request, curve_name, shards, i);
                if i % 25 == 24 {
                    // Admin verbs ride along at fixed stream positions.
                    for request in [
                        Request::Flush,
                        Request::Stats,
                        Request::Explain(admin_q),
                        Request::Ping,
                        Request::Checkpoint, // in-memory: identical typed error
                    ] {
                        check_identical(&local, &mut client, request, curve_name, shards, i);
                    }
                }
            }
            server.shutdown();
        }
    }
}

fn check_identical(
    local: &Engine<DynCurve<2>, u64, 2>,
    client: &mut Client<DynCurve<2>, u64, 2>,
    request: Request<2, u64>,
    curve_name: &str,
    shards: usize,
    i: usize,
) {
    let local_resp = respond(local, request.clone());
    let remote_resp = client.request(request).unwrap();
    assert_eq!(
        local_resp, remote_resp,
        "[{curve_name}/{shards} shards, op {i}] remote response diverged"
    );
    assert_eq!(
        encoded(&local_resp),
        encoded(&remote_resp),
        "[{curve_name}/{shards} shards, op {i}] encodings diverged"
    );
}

/// A remote failure is the same typed error a local caller gets.
#[test]
fn errors_travel_typed() {
    let local = mk_engine("onion", 2);
    let engine = Arc::new(mk_engine("onion", 2));
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let mut client =
        Client::<DynCurve<2>, u64, 2>::connect(&server.local_addr().to_string()).unwrap();

    let outside = Point::new([SIDE + 3, 1]);
    let local_err = local.execute(Op::Get(outside)).unwrap_err();
    let remote_err = client.execute(Op::Get(outside)).unwrap_err();
    assert_eq!(local_err, remote_err);
    assert_eq!(local_err.code(), remote_err.code());

    // The connection survives the error: the next request is served.
    assert_eq!(client.get(Point::new([1, 1])).unwrap(), None);
    server.shutdown();
}

/// N concurrent connections: every admitted write lands exactly once.
#[test]
fn concurrent_clients_land_every_write_exactly_once() {
    const CLIENTS: usize = 4;
    const WRITES: u32 = 40;
    let engine = Arc::new(mk_engine("onion", 2));
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::<DynCurve<2>, u64, 2>::connect(&addr).unwrap();
                for i in 0..WRITES {
                    // Disjoint points per client: no cross-client dupes.
                    let p = Point::new([(c as u32 * 4) % SIDE + i % 4, i * 4 / SIDE]);
                    client.insert(p, (c as u64) << 32 | u64::from(i)).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut client = Client::<DynCurve<2>, u64, 2>::connect(&addr).unwrap();
    client.flush().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.writes, CLIENTS as u64 * u64::from(WRITES));
    assert_eq!(stats.pending, 0);
    let all = client
        .query(RectQuery::new([0, 0], [SIDE, SIDE]).unwrap())
        .unwrap();
    // Initial seed records + every concurrent insert.
    assert_eq!(all.len(), SIDE as usize + CLIENTS * WRITES as usize);
    server.shutdown();
}

/// A peer speaking the wrong protocol is rejected at the preamble, and a
/// frame with a corrupt checksum poisons only its own connection.
#[test]
fn bad_preambles_and_corrupt_frames_poison_only_their_connection() {
    let engine = Arc::new(mk_engine("onion", 1));
    let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Garbage preamble: the server hangs up without serving frames.
    let mut bad = TcpStream::connect(&addr).unwrap();
    bad.write_all(b"HTTP/1.1 GET / plz").unwrap();
    let mut sink = Vec::new();
    let n = bad.read_to_end(&mut sink).unwrap_or(0);
    // The server may send its own hello before noticing; it must not
    // send any frame beyond it.
    assert!(n <= 10, "server leaked {n} bytes to a bad-magic peer");
    drop(bad);

    // Correct preamble, then a frame whose checksum lies.
    let mut torn = TcpStream::connect(&addr).unwrap();
    let mut hello = [0u8; 10];
    hello[..8].copy_from_slice(&sfc_net::NET_MAGIC);
    hello[8..].copy_from_slice(&sfc_net::PROTOCOL_VERSION.to_le_bytes());
    torn.write_all(&hello).unwrap();
    torn.read_exact(&mut [0u8; 10]).unwrap(); // server hello
    let payload = b"\x00"; // would be Request::Ping...
    let mut frame = Vec::new();
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes()); // ...but the CRC lies
    frame.extend_from_slice(payload);
    torn.write_all(&frame).unwrap();
    let mut sink = Vec::new();
    assert_eq!(
        torn.read_to_end(&mut sink).unwrap_or(0),
        0,
        "a corrupt frame must poison the connection, not be answered"
    );
    drop(torn);

    // The engine is unharmed and the next well-behaved client is served.
    let mut client = Client::<DynCurve<2>, u64, 2>::connect(&addr).unwrap();
    assert!(client.ping().is_ok());
    server.shutdown();
}
