//! The wire envelope: a connection preamble plus length-prefixed,
//! checksummed frames — the WAL's `SFCWAL01` framing idiom
//! ([`sfc_index::wal`]) lifted onto a socket.
//!
//! # Connection preamble
//!
//! Each side sends 10 bytes on connect — the magic [`NET_MAGIC`]
//! (`SFCNET01`) followed by [`PROTOCOL_VERSION`] as a little-endian
//! `u16` — and validates the peer's before any frame is exchanged, so a
//! mistyped port or an incompatible peer fails immediately and legibly
//! instead of desynchronizing mid-stream.
//!
//! # Frames
//!
//! ```text
//! [payload_len: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! — byte-for-byte the WAL's frame layout, with the same slicing-by-8
//! [`crc32`] over the payload. Payloads are [`WalCodec`](sfc_index::WalCodec)-encoded
//! [`Request`](crate::Request)/[`Response`](crate::Response) values. A
//! frame longer than [`MAX_FRAME`] is rejected before allocation (a
//! corrupt or hostile length prefix cannot balloon memory), and a
//! checksum mismatch poisons the connection — unlike the WAL's torn
//! *tail*, a torn *middle* of a live stream has no honest recovery.

use onion_core::SfcError;
use sfc_index::crc32;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Connection preamble magic; the peer must present it verbatim.
pub const NET_MAGIC: [u8; 8] = *b"SFCNET01";

/// Protocol revision sent in the preamble. Bumped on any change to the
/// frame layout or the [`Request`](crate::Request)/
/// [`Response`](crate::Response) encodings.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame payload (64 MiB): large enough for any epoch
/// batch or query result this workspace produces, small enough that a
/// corrupt length prefix cannot exhaust memory.
pub const MAX_FRAME: u32 = 64 << 20;

/// Maps an I/O failure into the storage arm of [`SfcError`], keeping the
/// wire layer's errors representable on the wire itself.
pub(crate) fn net_err(context: impl Into<String>, err: std::io::Error) -> SfcError {
    SfcError::Storage {
        context: format!("{}: {err}", context.into()),
    }
}

/// Maps an I/O failure that means "the peer is gone" into the typed
/// [`SfcError::ConnectionLost`] arm, so retry logic can distinguish a
/// dead transport from corrupt or mis-spoken protocol (which stays
/// [`SfcError::Storage`]).
pub(crate) fn lost_err(context: impl Into<String>, err: std::io::Error) -> SfcError {
    SfcError::ConnectionLost {
        context: format!("{}: {err}", context.into()),
    }
}

/// Sends the 10-byte preamble.
pub(crate) fn write_hello(stream: &mut TcpStream) -> Result<(), SfcError> {
    let mut hello = [0u8; 10];
    hello[..8].copy_from_slice(&NET_MAGIC);
    hello[8..].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    stream
        .write_all(&hello)
        .map_err(|e| net_err("write hello", e))
}

/// Reads and validates the peer's preamble, waiting at most `timeout`
/// (`None` blocks indefinitely). A bounded read here is what keeps a
/// black-holed or silent peer from pinning the caller forever — both
/// [`Client::connect`](crate::Client::connect) and the server's handler
/// threads bound their preamble wait.
pub(crate) fn read_hello(
    stream: &mut TcpStream,
    timeout: Option<Duration>,
) -> Result<(), SfcError> {
    stream
        .set_read_timeout(timeout)
        .map_err(|e| net_err("set preamble timeout", e))?;
    let mut hello = [0u8; 10];
    let read = stream.read_exact(&mut hello);
    // Restore blocking reads before any error path: the connection's
    // later traffic manages its own timeouts.
    stream.set_read_timeout(None).ok();
    read.map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            SfcError::DeadlineExceeded {
                context: format!("no preamble within {timeout:?}"),
            }
        } else {
            lost_err("read hello", e)
        }
    })?;
    if hello[..8] != NET_MAGIC {
        return Err(SfcError::Storage {
            context: format!("bad protocol magic {:?}", &hello[..8]),
        });
    }
    let version = u16::from_le_bytes([hello[8], hello[9]]);
    if version != PROTOCOL_VERSION {
        return Err(SfcError::Storage {
            context: format!("protocol version {version} (expected {PROTOCOL_VERSION})"),
        });
    }
    Ok(())
}

/// Writes one `[len][crc32][payload]` frame.
pub(crate) fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> Result<(), SfcError> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    stream
        .write_all(&header)
        .and_then(|()| stream.write_all(payload))
        .map_err(|e| lost_err("write frame", e))
}

/// One step of [`FrameReader::poll`].
pub(crate) enum PollFrame {
    /// A complete, checksum-verified payload.
    Frame(Vec<u8>),
    /// The timeout elapsed with no complete frame; poll again.
    Idle,
    /// The peer closed the connection at a clean frame boundary.
    Closed,
}

/// Incremental frame reader: accumulates raw socket bytes across
/// [`poll`](Self::poll) calls and yields only complete, verified frames,
/// so a read timeout can never strand the stream mid-header — partial
/// bytes simply stay buffered for the next poll.
pub(crate) struct FrameReader {
    acc: Vec<u8>,
}

impl FrameReader {
    pub(crate) fn new() -> Self {
        FrameReader { acc: Vec::new() }
    }

    /// Waits up to `timeout` for the next frame. `None` as `timeout`
    /// blocks indefinitely (the plain request/response path).
    pub(crate) fn poll(
        &mut self,
        stream: &mut TcpStream,
        timeout: Option<Duration>,
    ) -> Result<PollFrame, SfcError> {
        loop {
            if let Some(payload) = self.try_extract()? {
                return Ok(PollFrame::Frame(payload));
            }
            stream
                .set_read_timeout(timeout)
                .map_err(|e| net_err("set read timeout", e))?;
            let mut chunk = [0u8; 16 * 1024];
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // A close at a frame boundary is the peer's clean
                    // goodbye; a close with bytes buffered tore a frame in
                    // half. Retry logic must tell them apart — a torn
                    // response may have been *partially* acted on.
                    return if self.acc.is_empty() {
                        Ok(PollFrame::Closed)
                    } else {
                        Err(SfcError::TornFrame {
                            context: format!(
                                "connection closed mid-frame ({} bytes buffered)",
                                self.acc.len()
                            ),
                        })
                    };
                }
                Ok(n) => self.acc.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(PollFrame::Idle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(if self.acc.is_empty() {
                        lost_err("read frame", e)
                    } else {
                        SfcError::TornFrame {
                            context: format!(
                                "read failed mid-frame ({} bytes buffered): {e}",
                                self.acc.len()
                            ),
                        }
                    })
                }
            }
        }
    }

    /// Pops one complete frame off the accumulator, if one has fully
    /// arrived; validates the length bound and the checksum.
    fn try_extract(&mut self) -> Result<Option<Vec<u8>>, SfcError> {
        if self.acc.len() < 8 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.acc[..4].try_into().expect("4 bytes")) as usize;
        if len as u64 > MAX_FRAME as u64 {
            return Err(SfcError::Storage {
                context: format!("frame length {len} exceeds MAX_FRAME {MAX_FRAME}"),
            });
        }
        if self.acc.len() < 8 + len {
            return Ok(None);
        }
        let expect = u32::from_le_bytes(self.acc[4..8].try_into().expect("4 bytes"));
        let payload = self.acc[8..8 + len].to_vec();
        if crc32(&payload) != expect {
            return Err(SfcError::Storage {
                context: "frame checksum mismatch".into(),
            });
        }
        self.acc.drain(..8 + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn truncated_frames_yield_nothing_at_every_prefix_length() {
        let bytes = framed(b"torn-frame probe payload");
        for cut in 0..bytes.len() {
            let mut reader = FrameReader::new();
            reader.acc.extend_from_slice(&bytes[..cut]);
            assert!(
                matches!(reader.try_extract(), Ok(None)),
                "a frame cut at byte {cut} must stay buffered, not decode"
            );
        }
        let mut reader = FrameReader::new();
        reader.acc.extend_from_slice(&bytes);
        assert_eq!(
            reader.try_extract().unwrap().as_deref(),
            Some(b"torn-frame probe payload".as_slice())
        );
        assert!(reader.acc.is_empty(), "a popped frame is fully drained");
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let clean = framed(b"checksums catch flips");
        for i in 0..clean.len() {
            for flip in [0x01u8, 0x80] {
                let mut bytes = clean.clone();
                bytes[i] ^= flip;
                let mut reader = FrameReader::new();
                reader.acc.extend_from_slice(&bytes);
                match reader.try_extract() {
                    // Corrupting the length prefix may leave the frame
                    // "incomplete" (a longer claimed length) — that is a
                    // safe stall, never a mis-decode.
                    Ok(None) => assert!(i < 4, "byte {i}: only length damage may stall"),
                    Ok(Some(payload)) => {
                        panic!("byte {i} flipped by {flip:#x} decoded as {payload:?}")
                    }
                    Err(SfcError::Storage { .. }) => {}
                    Err(e) => panic!("unexpected error class: {e:?}"),
                }
            }
        }
    }

    #[test]
    fn oversize_length_prefix_is_rejected_before_allocation() {
        let mut reader = FrameReader::new();
        reader.acc.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        reader.acc.extend_from_slice(&[0u8; 4]);
        let err = reader.try_extract().unwrap_err();
        let SfcError::Storage { context } = err else {
            panic!("oversize frame must be a storage error");
        };
        assert!(context.contains("MAX_FRAME"), "{context}");
    }

    #[test]
    fn back_to_back_frames_pop_in_order() {
        let mut reader = FrameReader::new();
        reader.acc.extend_from_slice(&framed(b"first"));
        reader.acc.extend_from_slice(&framed(b"second"));
        assert_eq!(
            reader.try_extract().unwrap().as_deref(),
            Some(b"first".as_slice())
        );
        assert_eq!(
            reader.try_extract().unwrap().as_deref(),
            Some(b"second".as_slice())
        );
        assert!(matches!(reader.try_extract(), Ok(None)));
    }

    #[test]
    fn empty_payload_frames_are_valid() {
        let mut reader = FrameReader::new();
        reader.acc.extend_from_slice(&framed(b""));
        assert_eq!(reader.try_extract().unwrap().as_deref(), Some(&[] as &[u8]));
    }
}
