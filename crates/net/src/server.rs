//! The blocking threaded server: an [`Engine`] put on a TCP listener.
//!
//! One accept thread, one handler thread per connection — the same
//! thread-per-request shape the engine's own lock structure is built
//! for (per-shard `RwLock`s, group-committing flushes), so N concurrent
//! connections exercise exactly the concurrency the engine proptests
//! pin. Every connection speaks the framed protocol of
//! [`frame`](crate::frame): preamble exchange, then
//! [`Request`]/[`Response`] frames.
//!
//! A connection that sends [`Request::SubscribeEpochs`] flips one-way:
//! the handler replays WAL catch-up frames, then forwards the engine's
//! live epoch feed ([`Engine::subscribe_epochs`]) until the peer
//! disconnects or the server shuts down. Everything else is strict
//! request/response.
//!
//! Shutdown is cooperative: [`Server::shutdown`] (or drop) raises a
//! flag, wakes the accept loop with a self-connection, and joins every
//! handler — handlers poll their sockets with a short timeout, so none
//! blocks past it.

use crate::frame::{
    net_err, read_hello, write_frame, write_hello, FrameReader, PollFrame, MAX_FRAME,
};
use crate::proto::{Request, Response};
use onion_core::{SfcError, SpaceFillingCurve};
use sfc_engine::{Engine, FeedEvent, Op};
use sfc_index::WalCodec;
use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a handler blocks on its socket (or the epoch feed) before
/// re-checking the shutdown flag — the bound on shutdown latency.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Overload and lifecycle knobs for a [`Server`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Admission cap: connections accepted beyond this limit are turned
    /// away with a typed [`SfcError::Unavailable`] frame (sent after
    /// the preamble, so the refusal is legible) and closed. The request
    /// was never read, let alone executed — retrying is safe for every
    /// verb.
    pub max_connections: usize,
    /// Disconnect a connection that has sent no frame for this long, so
    /// a dead or vanished peer cannot pin a handler thread (and its
    /// admission slot) forever. `None` disables the idle deadline.
    pub idle_timeout: Option<Duration>,
    /// Bound on the preamble exchange per connection — an accepted
    /// socket that never speaks is dropped after this.
    pub preamble_timeout: Duration,
    /// On shutdown, how long to wait for in-flight handlers to finish
    /// before their sockets are forcibly shut down. The drain bound
    /// keeps [`Server::shutdown`] from hanging on a stalled peer.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
            idle_timeout: None,
            preamble_timeout: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// State shared between the accept loop, every handler thread, and the
/// [`Server`] handle.
struct Shared {
    stop: AtomicBool,
    config: ServerConfig,
    /// Admitted (serving) connections right now — compared against
    /// `config.max_connections` at accept time.
    active: AtomicUsize,
    /// Clones of every live connection's stream, so drain can forcibly
    /// shut down stragglers. Keyed by a monotonic id; handlers remove
    /// their entry on exit.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicUsize,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Decrements the active-connection count and unregisters the stream
/// clone when a handler exits, however it exits.
struct AdmissionGuard<'a> {
    shared: &'a Shared,
    conn_id: u64,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::AcqRel);
        self.shared
            .conns
            .lock()
            .expect("connection registry poisoned")
            .remove(&self.conn_id);
    }
}

/// Answers one non-streaming request against the engine — the single
/// dispatcher both the network handler and
/// [`Client::local`](crate::Client::local) route through, so a remote
/// round-trip and an in-process call produce the same [`Response`] by
/// construction.
///
/// [`Request::SubscribeEpochs`] is not answerable here (it turns a
/// connection into a stream); it gets a [`Response::Error`].
pub fn respond<C, V, const D: usize>(
    engine: &Engine<C, V, D>,
    request: Request<D, V>,
) -> Response<D, V>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    let reply = |r: Result<sfc_engine::Reply<D, V>, SfcError>| match r {
        Ok(reply) => Response::from(reply),
        Err(e) => Response::Error(e),
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Get(p) => reply(engine.execute(Op::Get(p))),
        Request::Query(q) => reply(engine.execute(Op::Query(q))),
        Request::QueryAsOf { epoch, query } => {
            reply(engine.execute(Op::QueryAsOf { epoch, query }))
        }
        Request::Insert(p, v) => reply(engine.execute(Op::Insert(p, v))),
        Request::Update(p, v) => reply(engine.execute(Op::Update(p, v))),
        Request::Delete(p) => reply(engine.execute(Op::Delete(p))),
        Request::Flush => match engine.flush() {
            Ok(applied) => Response::Flushed {
                applied: applied as u64,
            },
            Err(e) => Response::Error(e),
        },
        Request::Checkpoint => match engine.checkpoint() {
            Ok(epoch) => Response::Checkpointed { epoch },
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(engine.stats()),
        Request::Explain(q) => match engine.explain(&q) {
            Ok(plan) => Response::Explained(plan),
            Err(e) => Response::Error(e),
        },
        Request::SubscribeEpochs { .. } => Response::Error(SfcError::Storage {
            context: "SubscribeEpochs is a streaming verb; it cannot be answered in-place".into(),
        }),
    }
}

/// A running server: the listener address plus the shutdown machinery.
/// Dropping it shuts the server down and joins every thread.
pub struct Server {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and starts serving `engine` with [`ServerConfig`] defaults
    /// until [`shutdown`](Self::shutdown) or drop.
    ///
    /// # Errors
    /// If the bind fails.
    pub fn spawn<C, V, const D: usize>(
        engine: Arc<Engine<C, V, D>>,
        addr: &str,
    ) -> Result<Server, SfcError>
    where
        C: SpaceFillingCurve<D> + Send + Sync + 'static,
        V: Clone + Send + Sync + WalCodec + 'static,
    {
        Self::spawn_with(engine, addr, ServerConfig::default())
    }

    /// [`Server::spawn`] with explicit overload-protection knobs.
    ///
    /// # Errors
    /// If the bind fails.
    pub fn spawn_with<C, V, const D: usize>(
        engine: Arc<Engine<C, V, D>>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server, SfcError>
    where
        C: SpaceFillingCurve<D> + Send + Sync + 'static,
        V: Clone + Send + Sync + WalCodec + 'static,
    {
        let listener = TcpListener::bind(addr).map_err(|e| net_err(format!("bind {addr}"), e))?;
        let local = listener
            .local_addr()
            .map_err(|e| net_err("local_addr", e))?;
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            config,
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicUsize::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, engine, shared))
        };
        Ok(Server {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    /// The address the server is listening on — connect
    /// [`Client`](crate::Client)s here.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Connections currently admitted and being served. Busy-rejected
    /// connections never count.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Acquire)
    }

    /// Stops accepting, drains in-flight handlers (bounded by
    /// [`ServerConfig::drain_deadline`], after which straggler sockets
    /// are forcibly shut down), and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the accept loop: it blocks in accept(), so poke it with a
        // throwaway connection to our own port.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<C, V, const D: usize>(
    listener: TcpListener,
    engine: Arc<Engine<C, V, D>>,
    shared: Arc<Shared>,
) where
    C: SpaceFillingCurve<D> + Send + Sync + 'static,
    V: Clone + Send + Sync + WalCodec + 'static,
{
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !shared.stopping() {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shared.stopping() {
            break; // the shutdown poke itself
        }
        // Admission decision happens here, before a handler thread is
        // committed to serving: over the cap, a cheap refusal thread
        // completes the preamble and sends the typed busy frame so the
        // client fails legibly (and safely — nothing was executed).
        let admitted = shared.active.load(Ordering::Acquire) < shared.config.max_connections;
        let shared = Arc::clone(&shared);
        let handle = if admitted {
            shared.active.fetch_add(1, Ordering::AcqRel);
            let conn_id = shared.next_conn_id.fetch_add(1, Ordering::AcqRel) as u64;
            if let Ok(clone) = stream.try_clone() {
                shared
                    .conns
                    .lock()
                    .expect("connection registry poisoned")
                    .insert(conn_id, clone);
            }
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let _guard = AdmissionGuard {
                    shared: &shared,
                    conn_id,
                };
                // A failed preamble or a poisoned connection just ends
                // this handler; the listener keeps serving others.
                let _ = handle_connection(stream, &engine, &shared);
            })
        } else {
            std::thread::spawn(move || {
                let _ = refuse_connection::<D, V>(stream, &shared);
            })
        };
        handlers
            .lock()
            .expect("handler registry poisoned")
            .push(handle);
    }
    drain(&shared);
    for handle in handlers.into_inner().expect("handler registry poisoned") {
        let _ = handle.join();
    }
}

/// Waits up to the drain deadline for handlers to notice the stop flag
/// and finish; whatever is still running then (a peer stalling a write,
/// typically) gets its socket forcibly shut down, which unblocks the
/// handler with an I/O error.
fn drain(shared: &Shared) {
    let deadline = Instant::now() + shared.config.drain_deadline;
    while shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    for stream in shared
        .conns
        .lock()
        .expect("connection registry poisoned")
        .values()
    {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// Turns away a connection accepted over the admission cap: complete
/// the preamble (so the refusal is protocol-legible, not a mute hangup),
/// send one typed busy frame, close.
fn refuse_connection<const D: usize, V: WalCodec>(
    mut stream: TcpStream,
    shared: &Shared,
) -> Result<(), SfcError> {
    stream.set_nodelay(true).ok();
    write_hello(&mut stream)?;
    read_hello(&mut stream, Some(shared.config.preamble_timeout))?;
    let mut buf = Vec::new();
    send(
        &mut stream,
        &mut buf,
        &Response::<D, V>::Error(SfcError::Unavailable {
            context: format!(
                "admission cap reached ({} connections)",
                shared.config.max_connections
            ),
        }),
    )
}

/// Serves one connection until the peer hangs up or goes idle past the
/// deadline, an error poisons the stream, or shutdown is raised.
fn handle_connection<C, V, const D: usize>(
    mut stream: TcpStream,
    engine: &Engine<C, V, D>,
    shared: &Shared,
) -> Result<(), SfcError>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    stream.set_nodelay(true).ok();
    write_hello(&mut stream)?;
    read_hello(&mut stream, Some(shared.config.preamble_timeout))?;
    let mut reader = FrameReader::new();
    let mut buf = Vec::new();
    let mut last_frame = Instant::now();
    while !shared.stopping() {
        let payload = match reader.poll(&mut stream, Some(POLL_INTERVAL))? {
            PollFrame::Frame(payload) => payload,
            PollFrame::Idle => {
                if let Some(idle) = shared.config.idle_timeout {
                    if last_frame.elapsed() > idle {
                        // A peer that stopped talking loses its slot; a
                        // live client reconnects transparently.
                        return Ok(());
                    }
                }
                continue;
            }
            PollFrame::Closed => return Ok(()),
        };
        last_frame = Instant::now();
        let mut cur = sfc_index::WalCursor::new(&payload);
        let Some(request) = Request::<D, V>::decode(&mut cur) else {
            // An undecodable request is answered, not fatal: the frame
            // checksum already passed, so the bytes arrived intact and
            // the peer merely spoke a verb this side does not know.
            send(
                &mut stream,
                &mut buf,
                &Response::<D, V>::Error(SfcError::Storage {
                    context: "undecodable request".into(),
                }),
            )?;
            continue;
        };
        if let Request::SubscribeEpochs { from } = request {
            return stream_epochs(stream, engine, &shared.stop, from);
        }
        send(&mut stream, &mut buf, &respond(engine, request))?;
    }
    Ok(())
}

/// Encodes and frames one response.
fn send<const D: usize, V: WalCodec>(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    response: &Response<D, V>,
) -> Result<(), SfcError> {
    buf.clear();
    response.encode(buf);
    if buf.len() as u64 > MAX_FRAME as u64 {
        return Err(SfcError::Storage {
            context: format!("response of {} bytes exceeds MAX_FRAME", buf.len()),
        });
    }
    write_frame(stream, buf)
}

/// The replication tap: catch the subscriber up from the WAL, then
/// forward live feed events until disconnect or shutdown.
///
/// Ordering: subscribe to the live feed *first*, then read the WAL for
/// `(from, start_epoch]` — every epoch is thus delivered exactly once
/// (catch-up covers everything published before the subscription
/// existed; the feed covers everything after).
fn stream_epochs<C, V, const D: usize>(
    mut stream: TcpStream,
    engine: &Engine<C, V, D>,
    stop: &AtomicBool,
    from: u64,
) -> Result<(), SfcError>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    let sub = engine.subscribe_epochs();
    let mut buf = Vec::new();
    // Acknowledge before anything else: once the subscriber sees this
    // frame, the live tap is registered and no later epoch can be lost —
    // a replica gates its transactor's writes on it.
    send(
        &mut stream,
        &mut buf,
        &Response::<D, V>::Subscribed {
            start_epoch: sub.start_epoch(),
        },
    )?;
    if from < sub.start_epoch() {
        let frames = match engine.committed_frames_since(from) {
            Ok(frames) => frames,
            Err(e) => {
                // An in-memory transactor has no WAL to replay; tell the
                // subscriber instead of silently skipping epochs.
                send(&mut stream, &mut buf, &Response::<D, V>::Error(e))?;
                return Ok(());
            }
        };
        let durable = engine.durable_epoch();
        for frame in frames {
            if frame.epoch > sub.start_epoch() {
                break; // the live feed takes over from here
            }
            send(
                &mut stream,
                &mut buf,
                &Response::Epoch {
                    epoch: frame.epoch,
                    durable_epoch: durable,
                    ops: frame.ops,
                },
            )?;
        }
    }
    while !stop.load(Ordering::Acquire) {
        match sub.next_timeout(POLL_INTERVAL) {
            Some(FeedEvent::Epoch(epoch, ops)) => send(
                &mut stream,
                &mut buf,
                &Response::Epoch {
                    epoch,
                    durable_epoch: engine.durable_epoch(),
                    ops: ops.to_vec(),
                },
            )?,
            Some(FeedEvent::Lagged) => {
                send(&mut stream, &mut buf, &Response::<D, V>::Lagged)?;
                return Ok(());
            }
            None => {
                // Idle: probe the peer so a vanished subscriber does not
                // pin this handler (and its feed slot) forever.
                if is_closed(&stream) {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

/// Whether the peer has hung up: a zero-length peek after a read-ready
/// poll. Subscribers never send frames after `SubscribeEpochs`, so any
/// readable state that peeks 0 bytes is a close.
fn is_closed(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    stream.set_nonblocking(true).ok();
    let closed = matches!(stream.peek(&mut probe), Ok(0));
    stream.set_nonblocking(false).ok();
    closed
}
