//! The blocking threaded server: an [`Engine`] put on a TCP listener.
//!
//! One accept thread, one handler thread per connection — the same
//! thread-per-request shape the engine's own lock structure is built
//! for (per-shard `RwLock`s, group-committing flushes), so N concurrent
//! connections exercise exactly the concurrency the engine proptests
//! pin. Every connection speaks the framed protocol of
//! [`frame`](crate::frame): preamble exchange, then
//! [`Request`]/[`Response`] frames.
//!
//! A connection that sends [`Request::SubscribeEpochs`] flips one-way:
//! the handler replays WAL catch-up frames, then forwards the engine's
//! live epoch feed ([`Engine::subscribe_epochs`]) until the peer
//! disconnects or the server shuts down. Everything else is strict
//! request/response.
//!
//! Shutdown is cooperative: [`Server::shutdown`] (or drop) raises a
//! flag, wakes the accept loop with a self-connection, and joins every
//! handler — handlers poll their sockets with a short timeout, so none
//! blocks past it.

use crate::frame::{
    net_err, read_hello, write_frame, write_hello, FrameReader, PollFrame, MAX_FRAME,
};
use crate::proto::{Request, Response};
use onion_core::{SfcError, SpaceFillingCurve};
use sfc_engine::{Engine, FeedEvent, Op};
use sfc_index::WalCodec;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a handler blocks on its socket (or the epoch feed) before
/// re-checking the shutdown flag — the bound on shutdown latency.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Answers one non-streaming request against the engine — the single
/// dispatcher both the network handler and
/// [`Client::local`](crate::Client::local) route through, so a remote
/// round-trip and an in-process call produce the same [`Response`] by
/// construction.
///
/// [`Request::SubscribeEpochs`] is not answerable here (it turns a
/// connection into a stream); it gets a [`Response::Error`].
pub fn respond<C, V, const D: usize>(
    engine: &Engine<C, V, D>,
    request: Request<D, V>,
) -> Response<D, V>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    let reply = |r: Result<sfc_engine::Reply<D, V>, SfcError>| match r {
        Ok(reply) => Response::from(reply),
        Err(e) => Response::Error(e),
    };
    match request {
        Request::Ping => Response::Pong,
        Request::Get(p) => reply(engine.execute(Op::Get(p))),
        Request::Query(q) => reply(engine.execute(Op::Query(q))),
        Request::QueryAsOf { epoch, query } => {
            reply(engine.execute(Op::QueryAsOf { epoch, query }))
        }
        Request::Insert(p, v) => reply(engine.execute(Op::Insert(p, v))),
        Request::Update(p, v) => reply(engine.execute(Op::Update(p, v))),
        Request::Delete(p) => reply(engine.execute(Op::Delete(p))),
        Request::Flush => match engine.flush() {
            Ok(applied) => Response::Flushed {
                applied: applied as u64,
            },
            Err(e) => Response::Error(e),
        },
        Request::Checkpoint => match engine.checkpoint() {
            Ok(epoch) => Response::Checkpointed { epoch },
            Err(e) => Response::Error(e),
        },
        Request::Stats => Response::Stats(engine.stats()),
        Request::Explain(q) => match engine.explain(&q) {
            Ok(plan) => Response::Explained(plan),
            Err(e) => Response::Error(e),
        },
        Request::SubscribeEpochs { .. } => Response::Error(SfcError::Storage {
            context: "SubscribeEpochs is a streaming verb; it cannot be answered in-place".into(),
        }),
    }
}

/// A running server: the listener address plus the shutdown machinery.
/// Dropping it shuts the server down and joins every thread.
pub struct Server {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback
    /// port) and starts serving `engine` until
    /// [`shutdown`](Self::shutdown) or drop.
    ///
    /// # Errors
    /// If the bind fails.
    pub fn spawn<C, V, const D: usize>(
        engine: Arc<Engine<C, V, D>>,
        addr: &str,
    ) -> Result<Server, SfcError>
    where
        C: SpaceFillingCurve<D> + Send + Sync + 'static,
        V: Clone + Send + Sync + WalCodec + 'static,
    {
        let listener = TcpListener::bind(addr).map_err(|e| net_err(format!("bind {addr}"), e))?;
        let local = listener
            .local_addr()
            .map_err(|e| net_err("local_addr", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, engine, stop))
        };
        Ok(Server {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The address the server is listening on — connect
    /// [`Client`](crate::Client)s here.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, disconnects every handler, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop: it blocks in accept(), so poke it with a
        // throwaway connection to our own port.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop<C, V, const D: usize>(
    listener: TcpListener,
    engine: Arc<Engine<C, V, D>>,
    stop: Arc<AtomicBool>,
) where
    C: SpaceFillingCurve<D> + Send + Sync + 'static,
    V: Clone + Send + Sync + WalCodec + 'static,
{
    let handlers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    while !stop.load(Ordering::Acquire) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::Acquire) {
            break; // the shutdown poke itself
        }
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            // A failed preamble or a poisoned connection just ends this
            // handler; the listener keeps serving others.
            let _ = handle_connection(stream, &engine, &stop);
        });
        handlers
            .lock()
            .expect("handler registry poisoned")
            .push(handle);
    }
    for handle in handlers.into_inner().expect("handler registry poisoned") {
        let _ = handle.join();
    }
}

/// Serves one connection until the peer hangs up, an error poisons the
/// stream, or shutdown is raised.
fn handle_connection<C, V, const D: usize>(
    mut stream: TcpStream,
    engine: &Engine<C, V, D>,
    stop: &AtomicBool,
) -> Result<(), SfcError>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    stream.set_nodelay(true).ok();
    write_hello(&mut stream)?;
    read_hello(&mut stream)?;
    let mut reader = FrameReader::new();
    let mut buf = Vec::new();
    while !stop.load(Ordering::Acquire) {
        let payload = match reader.poll(&mut stream, Some(POLL_INTERVAL))? {
            PollFrame::Frame(payload) => payload,
            PollFrame::Idle => continue,
            PollFrame::Closed => return Ok(()),
        };
        let mut cur = sfc_index::WalCursor::new(&payload);
        let Some(request) = Request::<D, V>::decode(&mut cur) else {
            // An undecodable request is answered, not fatal: the frame
            // checksum already passed, so the bytes arrived intact and
            // the peer merely spoke a verb this side does not know.
            send(
                &mut stream,
                &mut buf,
                &Response::<D, V>::Error(SfcError::Storage {
                    context: "undecodable request".into(),
                }),
            )?;
            continue;
        };
        if let Request::SubscribeEpochs { from } = request {
            return stream_epochs(stream, engine, stop, from);
        }
        send(&mut stream, &mut buf, &respond(engine, request))?;
    }
    Ok(())
}

/// Encodes and frames one response.
fn send<const D: usize, V: WalCodec>(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    response: &Response<D, V>,
) -> Result<(), SfcError> {
    buf.clear();
    response.encode(buf);
    if buf.len() as u64 > MAX_FRAME as u64 {
        return Err(SfcError::Storage {
            context: format!("response of {} bytes exceeds MAX_FRAME", buf.len()),
        });
    }
    write_frame(stream, buf)
}

/// The replication tap: catch the subscriber up from the WAL, then
/// forward live feed events until disconnect or shutdown.
///
/// Ordering: subscribe to the live feed *first*, then read the WAL for
/// `(from, start_epoch]` — every epoch is thus delivered exactly once
/// (catch-up covers everything published before the subscription
/// existed; the feed covers everything after).
fn stream_epochs<C, V, const D: usize>(
    mut stream: TcpStream,
    engine: &Engine<C, V, D>,
    stop: &AtomicBool,
    from: u64,
) -> Result<(), SfcError>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    let sub = engine.subscribe_epochs();
    let mut buf = Vec::new();
    // Acknowledge before anything else: once the subscriber sees this
    // frame, the live tap is registered and no later epoch can be lost —
    // a replica gates its transactor's writes on it.
    send(
        &mut stream,
        &mut buf,
        &Response::<D, V>::Subscribed {
            start_epoch: sub.start_epoch(),
        },
    )?;
    if from < sub.start_epoch() {
        let frames = match engine.committed_frames_since(from) {
            Ok(frames) => frames,
            Err(e) => {
                // An in-memory transactor has no WAL to replay; tell the
                // subscriber instead of silently skipping epochs.
                send(&mut stream, &mut buf, &Response::<D, V>::Error(e))?;
                return Ok(());
            }
        };
        let durable = engine.durable_epoch();
        for frame in frames {
            if frame.epoch > sub.start_epoch() {
                break; // the live feed takes over from here
            }
            send(
                &mut stream,
                &mut buf,
                &Response::Epoch {
                    epoch: frame.epoch,
                    durable_epoch: durable,
                    ops: frame.ops,
                },
            )?;
        }
    }
    while !stop.load(Ordering::Acquire) {
        match sub.next_timeout(POLL_INTERVAL) {
            Some(FeedEvent::Epoch(epoch, ops)) => send(
                &mut stream,
                &mut buf,
                &Response::Epoch {
                    epoch,
                    durable_epoch: engine.durable_epoch(),
                    ops: ops.to_vec(),
                },
            )?,
            Some(FeedEvent::Lagged) => {
                send(&mut stream, &mut buf, &Response::<D, V>::Lagged)?;
                return Ok(());
            }
            None => {
                // Idle: probe the peer so a vanished subscriber does not
                // pin this handler (and its feed slot) forever.
                if is_closed(&stream) {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

/// Whether the peer has hung up: a zero-length peek after a read-ready
/// poll. Subscribers never send frames after `SubscribeEpochs`, so any
/// readable state that peeks 0 bytes is a close.
fn is_closed(stream: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    stream.set_nonblocking(true).ok();
    let closed = matches!(stream.peek(&mut probe), Ok(0));
    stream.set_nonblocking(false).ok();
    closed
}
