//! The client handle: one API, two transports.
//!
//! A [`Client`] either holds a socket to a [`Server`](crate::Server)
//! ([`Client::connect`]) or an `Arc` to an in-process engine
//! ([`Client::local`]). Both transports answer through the same
//! dispatcher ([`respond`](crate::respond)), so switching a caller from
//! embedded to networked is a one-line change and — by construction —
//! a no-op semantically. The loopback integration tests pin exactly
//! that: remote and local replies are identical, byte for byte, for
//! every request variant.

use crate::frame::{net_err, read_hello, write_frame, write_hello, FrameReader, PollFrame};
use crate::proto::{Request, Response};
use crate::server::respond;
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::RectQuery;
use sfc_engine::{Admitted, Engine, EngineStats, EpochSubscription, FeedEvent, Op, Reply};
use sfc_index::{BatchOp, EpochFrame, QueryPlan, Record, WalCodec, WalCursor};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A framed connection to a server (the remote transport).
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    buf: Vec<u8>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, SfcError> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| net_err(format!("connect {addr}"), e))?;
        stream.set_nodelay(true).ok();
        write_hello(&mut stream)?;
        read_hello(&mut stream)?;
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
            buf: Vec::new(),
        })
    }

    fn send<const D: usize, V: WalCodec>(&mut self, req: &Request<D, V>) -> Result<(), SfcError> {
        self.buf.clear();
        req.encode(&mut self.buf);
        write_frame(&mut self.stream, &self.buf)
    }

    fn recv<const D: usize, V: WalCodec>(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<Response<D, V>>, SfcError> {
        let payload = match self.reader.poll(&mut self.stream, timeout)? {
            PollFrame::Frame(payload) => payload,
            PollFrame::Idle => return Ok(None),
            PollFrame::Closed => {
                return Err(SfcError::Storage {
                    context: "server closed the connection".into(),
                })
            }
        };
        let mut cur = WalCursor::new(&payload);
        Response::decode(&mut cur)
            .map(Some)
            .ok_or(SfcError::Storage {
                context: "undecodable response".into(),
            })
    }
}

enum Transport<C, V, const D: usize>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    Local(Arc<Engine<C, V, D>>),
    Remote(Conn),
}

/// The serving API over either transport. `Client::<C, V, D>` mirrors
/// the engine's generics; a purely remote client still names the curve
/// type (it types the points and queries, nothing else).
pub struct Client<C, V, const D: usize>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    transport: Transport<C, V, D>,
}

impl<C, V, const D: usize> Client<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    /// A client over an in-process engine: every call dispatches
    /// straight into [`respond`] with no serialization.
    pub fn local(engine: Arc<Engine<C, V, D>>) -> Self {
        Client {
            transport: Transport::Local(engine),
        }
    }

    /// Connects to a [`Server`](crate::Server) and performs the
    /// preamble exchange.
    ///
    /// # Errors
    /// On connection failure, or a peer that is not speaking
    /// [`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION).
    pub fn connect(addr: &str) -> Result<Self, SfcError> {
        Ok(Client {
            transport: Transport::Remote(Conn::open(addr)?),
        })
    }

    /// Sends one request and waits for its response — the raw API every
    /// typed helper below goes through.
    ///
    /// # Errors
    /// On transport failure. A server-side failure arrives as
    /// [`Response::Error`], not as `Err` — the typed helpers unwrap it.
    pub fn request(&mut self, req: Request<D, V>) -> Result<Response<D, V>, SfcError> {
        match &mut self.transport {
            Transport::Local(engine) => Ok(respond(engine, req)),
            Transport::Remote(conn) => {
                conn.send(&req)?;
                match conn.recv(None)? {
                    Some(resp) => Ok(resp),
                    None => Err(SfcError::Storage {
                        context: "no response frame".into(),
                    }),
                }
            }
        }
    }

    /// Executes one engine op remotely (or locally), returning the same
    /// [`Reply`] [`Engine::execute`] would.
    ///
    /// # Errors
    /// The op's own error (e.g. out-of-bounds), decoded from the wire,
    /// or a transport failure.
    pub fn execute(&mut self, op: Op<D, V>) -> Result<Reply<D, V>, SfcError> {
        match self.request(Request::from(op))?.into_reply()? {
            Some(reply) => Ok(reply),
            None => Err(SfcError::Storage {
                context: "non-reply response to a data-plane request".into(),
            }),
        }
    }

    /// Executes a stream of ops in order, collecting every reply —
    /// [`Engine::run_stream`] over the wire.
    ///
    /// # Errors
    /// On the first failing op (earlier ops stay executed).
    pub fn run_stream(
        &mut self,
        ops: impl IntoIterator<Item = Op<D, V>>,
    ) -> Result<Vec<Reply<D, V>>, SfcError> {
        ops.into_iter().map(|op| self.execute(op)).collect()
    }

    /// Point lookup.
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn get(&mut self, p: Point<D>) -> Result<Option<V>, SfcError> {
        match self.execute(Op::Get(p))? {
            Reply::Value(v) => Ok(v),
            other => unexpected("Value", reply_kind(&other)),
        }
    }

    /// Rectangle query; records in curve-key order.
    ///
    /// # Errors
    /// If the query exceeds the universe, or on transport failure.
    pub fn query(&mut self, q: RectQuery<D>) -> Result<Vec<Record<D, V>>, SfcError> {
        match self.execute(Op::Query(q))? {
            Reply::Records(rs) => Ok(rs),
            other => unexpected("Records", reply_kind(&other)),
        }
    }

    /// Admits an insert.
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn insert(&mut self, p: Point<D>, v: V) -> Result<Admitted, SfcError> {
        match self.execute(Op::Insert(p, v))? {
            Reply::Admitted(a) => Ok(a),
            other => unexpected("Admitted", reply_kind(&other)),
        }
    }

    /// Admits an update (replace-or-insert).
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn update(&mut self, p: Point<D>, v: V) -> Result<Admitted, SfcError> {
        match self.execute(Op::Update(p, v))? {
            Reply::Admitted(a) => Ok(a),
            other => unexpected("Admitted", reply_kind(&other)),
        }
    }

    /// Admits a delete.
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn delete(&mut self, p: Point<D>) -> Result<Admitted, SfcError> {
        match self.execute(Op::Delete(p))? {
            Reply::Admitted(a) => Ok(a),
            other => unexpected("Admitted", reply_kind(&other)),
        }
    }

    /// Applies every pending write; returns how many were applied.
    ///
    /// # Errors
    /// On a WAL commit failure or transport failure.
    pub fn flush(&mut self) -> Result<u64, SfcError> {
        match self.request(Request::Flush)? {
            Response::Flushed { applied } => Ok(applied),
            Response::Error(e) => Err(e),
            other => unexpected("Flushed", response_kind(&other)),
        }
    }

    /// Compacts the server's WAL into a snapshot (durable engines).
    ///
    /// # Errors
    /// On in-memory engines, snapshot I/O failure, or transport failure.
    pub fn checkpoint(&mut self) -> Result<u64, SfcError> {
        match self.request(Request::Checkpoint)? {
            Response::Checkpointed { epoch } => Ok(epoch),
            Response::Error(e) => Err(e),
            other => unexpected("Checkpointed", response_kind(&other)),
        }
    }

    /// The engine's live counters.
    ///
    /// # Errors
    /// On transport failure.
    pub fn stats(&mut self) -> Result<EngineStats, SfcError> {
        match self.request(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(e),
            other => unexpected("Stats", response_kind(&other)),
        }
    }

    /// Plans a query without executing it — `EXPLAIN` over the wire.
    ///
    /// # Errors
    /// If the query exceeds the universe, or on transport failure.
    pub fn explain(&mut self, q: RectQuery<D>) -> Result<QueryPlan, SfcError> {
        match self.request(Request::Explain(q))? {
            Response::Explained(p) => Ok(p),
            Response::Error(e) => Err(e),
            other => unexpected("Explained", response_kind(&other)),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// On transport failure.
    pub fn ping(&mut self) -> Result<(), SfcError> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => unexpected("Pong", response_kind(&other)),
        }
    }

    /// Turns this client into an epoch subscription starting after
    /// epoch `from` (exclusive): WAL catch-up frames first, then live
    /// epochs, in order, without gaps — the stream a read replica
    /// replays.
    ///
    /// # Errors
    /// On transport failure, or (local transport over an in-memory
    /// engine) when `from` predates the feed and there is no WAL to
    /// catch up from.
    pub fn subscribe_epochs(self, from: u64) -> Result<EpochStream<D, V>, SfcError>
    where
        C: Send + Sync + 'static,
        V: 'static,
    {
        match self.transport {
            Transport::Remote(mut conn) => {
                conn.send(&Request::<D, V>::SubscribeEpochs { from })?;
                // Wait for the acknowledgment: once it arrives, the
                // server's live tap is registered and every epoch
                // committed from here on is guaranteed to be delivered.
                match conn.recv::<D, V>(None)? {
                    Some(Response::Subscribed { .. }) => {}
                    Some(Response::Error(e)) => return Err(e),
                    Some(other) => {
                        return unexpected("Subscribed", response_kind(&other));
                    }
                    None => {
                        return Err(SfcError::Storage {
                            context: "subscription closed before acknowledgment".into(),
                        });
                    }
                }
                Ok(EpochStream {
                    inner: StreamInner::Remote(conn),
                })
            }
            Transport::Local(engine) => {
                // Mirror the server handler: subscribe first, then read
                // the WAL for (from, start], so no epoch is missed or
                // doubled.
                let sub = engine.subscribe_epochs();
                let mut backlog = std::collections::VecDeque::new();
                if from < sub.start_epoch() {
                    for frame in engine.committed_frames_since(from)? {
                        if frame.epoch > sub.start_epoch() {
                            break;
                        }
                        backlog.push_back(frame);
                    }
                }
                Ok(EpochStream {
                    inner: StreamInner::Local {
                        sub,
                        backlog,
                        durable: Box::new(move || engine.durable_epoch()),
                    },
                })
            }
        }
    }
}

/// One event from an [`EpochStream`].
#[derive(Clone, Debug, PartialEq)]
pub enum EpochEvent<const D: usize, V> {
    /// Epoch `epoch` committed with `ops`; the transactor's durable
    /// epoch stood at `durable_epoch` when the frame was sent.
    Epoch {
        /// The committed epoch number (strictly consecutive).
        epoch: u64,
        /// The transactor's fsync-confirmed epoch at send time.
        durable_epoch: u64,
        /// The epoch's ops in submission order.
        ops: Vec<BatchOp<D, V>>,
    },
    /// The subscription fell too far behind and was cut off; the stream
    /// is dead.
    Lagged,
}

enum StreamInner<const D: usize, V> {
    Remote(Conn),
    Local {
        sub: EpochSubscription<D, V>,
        backlog: std::collections::VecDeque<EpochFrame<D, V>>,
        /// Reads the transactor's durable epoch for locally sourced
        /// events (captures the engine `Arc`).
        durable: Box<dyn Fn() -> u64 + Send>,
    },
}

/// A one-way stream of committed epochs, produced by
/// [`Client::subscribe_epochs`].
pub struct EpochStream<const D: usize, V> {
    inner: StreamInner<D, V>,
}

impl<const D: usize, V: Clone + WalCodec> EpochStream<D, V> {
    /// Waits up to `timeout` for the next event. `Ok(None)` means the
    /// timeout elapsed quietly — poll again.
    ///
    /// # Errors
    /// On transport failure, a poisoned stream, or a server-side error
    /// frame.
    pub fn poll(&mut self, timeout: Duration) -> Result<Option<EpochEvent<D, V>>, SfcError> {
        match &mut self.inner {
            StreamInner::Remote(conn) => match conn.recv::<D, V>(Some(timeout))? {
                None => Ok(None),
                Some(Response::Epoch {
                    epoch,
                    durable_epoch,
                    ops,
                }) => Ok(Some(EpochEvent::Epoch {
                    epoch,
                    durable_epoch,
                    ops,
                })),
                Some(Response::Lagged) => Ok(Some(EpochEvent::Lagged)),
                Some(Response::Error(e)) => Err(e),
                Some(other) => unexpected("Epoch", response_kind(&other)),
            },
            StreamInner::Local {
                sub,
                backlog,
                durable,
            } => {
                if let Some(frame) = backlog.pop_front() {
                    return Ok(Some(EpochEvent::Epoch {
                        epoch: frame.epoch,
                        durable_epoch: durable(),
                        ops: frame.ops,
                    }));
                }
                match sub.next_timeout(timeout) {
                    Some(FeedEvent::Epoch(epoch, ops)) => Ok(Some(EpochEvent::Epoch {
                        epoch,
                        durable_epoch: durable(),
                        ops: ops.to_vec(),
                    })),
                    Some(FeedEvent::Lagged) => Ok(Some(EpochEvent::Lagged)),
                    None => Ok(None),
                }
            }
        }
    }
}

fn unexpected<T>(expected: &str, got: &str) -> Result<T, SfcError> {
    Err(SfcError::Storage {
        context: format!("protocol violation: expected {expected}, got {got}"),
    })
}

/// The variant name alone — payloads may not be `Debug`.
fn reply_kind<const D: usize, V>(reply: &Reply<D, V>) -> &'static str {
    match reply {
        Reply::Value(_) => "Value",
        Reply::Records(_) => "Records",
        Reply::Admitted(_) => "Admitted",
    }
}

/// The variant name alone — payloads may not be `Debug`.
fn response_kind<const D: usize, V>(response: &Response<D, V>) -> &'static str {
    match response {
        Response::Pong => "Pong",
        Response::Value(_) => "Value",
        Response::Records(_) => "Records",
        Response::Admitted(_) => "Admitted",
        Response::Flushed { .. } => "Flushed",
        Response::Checkpointed { .. } => "Checkpointed",
        Response::Stats(_) => "Stats",
        Response::Explained(_) => "Explained",
        Response::Epoch { .. } => "Epoch",
        Response::Lagged => "Lagged",
        Response::Error(_) => "Error",
        Response::Subscribed { .. } => "Subscribed",
    }
}
