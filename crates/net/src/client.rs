//! The client handle: one API, two transports.
//!
//! A [`Client`] either holds a socket to a [`Server`](crate::Server)
//! ([`Client::connect`]) or an `Arc` to an in-process engine
//! ([`Client::local`]). Both transports answer through the same
//! dispatcher ([`respond`](crate::respond)), so switching a caller from
//! embedded to networked is a one-line change and — by construction —
//! a no-op semantically. The loopback integration tests pin exactly
//! that: remote and local replies are identical, byte for byte, for
//! every request variant.

use crate::frame::{lost_err, read_hello, write_frame, write_hello, FrameReader, PollFrame};
use crate::proto::{Request, Response};
use crate::server::respond;
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::RectQuery;
use sfc_engine::{Admitted, Engine, EngineStats, EpochSubscription, FeedEvent, Op, Reply};
use sfc_index::{BatchOp, EpochFrame, QueryPlan, Record, WalCodec, WalCursor};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Backoff schedule for retrying **idempotent** requests that fail at
/// the transport (`Get`/`Query`/`QueryAsOf`/`Stats`/`Explain`/`Ping`).
/// Writes are never governed by this policy: a write orphaned after its
/// bytes left the socket surfaces as [`SfcError::AmbiguousWrite`]
/// instead of being silently reissued.
///
/// Delays double from [`base_backoff`](Self::base_backoff) per attempt,
/// saturate at [`max_backoff`](Self::max_backoff), and carry
/// deterministic jitter in `[50%, 100%]` of the computed delay — a
/// fleet of clients retrying the same outage decorrelates without any
/// global randomness source, and a failing schedule replays exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base_backoff: Duration,
    /// Upper bound the exponential schedule saturates at.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: every transport failure surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// A production-shaped default: 3 retries, 50 ms doubling to 1 s.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
        }
    }

    /// The delay before retry number `attempt` (0-based), jittered
    /// deterministically by `salt`: same salt and attempt, same delay.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_backoff);
        // xorshift the salt with the attempt for a jitter factor in
        // [0.5, 1.0): decorrelated, reproducible, no RNG dependency.
        let mut x = salt ^ (u64::from(attempt) << 32) ^ 0x9E37_79B9_7F4A_7C15;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let jitter = 0.5 + (x % 1024) as f64 / 2048.0;
        exp.mul_f64(jitter)
    }
}

/// Transport knobs for a remote [`Client`] (and for the subscription a
/// [`Replica`](crate::Replica) rides): how long to wait for a
/// connection, how long to wait per request, and what to retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Bound on `TcpStream::connect` **and** on the preamble exchange,
    /// so a black-holed address fails within this budget instead of
    /// hanging [`Client::connect`] forever.
    pub connect_timeout: Duration,
    /// Per-request deadline covering send + receive. `None` waits
    /// indefinitely. A tripped deadline poisons the connection — a late
    /// response must never be mistaken for the *next* request's answer —
    /// so the following request reconnects.
    pub request_deadline: Option<Duration>,
    /// Retry schedule for idempotent requests (see [`RetryPolicy`]).
    pub retry: RetryPolicy,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout: Duration::from_secs(10),
            request_deadline: None,
            retry: RetryPolicy::none(),
        }
    }
}

impl NetConfig {
    /// A self-healing profile: 5 s connect bound, 10 s request
    /// deadline, [`RetryPolicy::standard`] retries.
    pub fn resilient() -> Self {
        NetConfig {
            connect_timeout: Duration::from_secs(5),
            request_deadline: Some(Duration::from_secs(10)),
            retry: RetryPolicy::standard(),
        }
    }
}

/// A framed connection to a server (the remote transport).
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    buf: Vec<u8>,
}

impl Conn {
    fn open(addr: &str, config: &NetConfig) -> Result<Conn, SfcError> {
        let candidates = addr
            .to_socket_addrs()
            .map_err(|e| lost_err(format!("resolve {addr}"), e))?;
        let mut stream = None;
        let mut last_err = None;
        for candidate in candidates {
            match TcpStream::connect_timeout(&candidate, config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let mut stream = match (stream, last_err) {
            (Some(s), _) => s,
            (None, Some(e)) => return Err(lost_err(format!("connect {addr}"), e)),
            (None, None) => {
                return Err(SfcError::ConnectionLost {
                    context: format!("connect {addr}: no addresses resolved"),
                })
            }
        };
        stream.set_nodelay(true).ok();
        write_hello(&mut stream)?;
        // The preamble read shares the connect budget: a peer that
        // accepts the socket but never speaks fails the open legibly.
        read_hello(&mut stream, Some(config.connect_timeout))?;
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
            buf: Vec::new(),
        })
    }

    fn send<const D: usize, V: WalCodec>(&mut self, req: &Request<D, V>) -> Result<(), SfcError> {
        self.buf.clear();
        req.encode(&mut self.buf);
        write_frame(&mut self.stream, &self.buf)
    }

    fn recv<const D: usize, V: WalCodec>(
        &mut self,
        timeout: Option<Duration>,
    ) -> Result<Option<Response<D, V>>, SfcError> {
        let payload = match self.reader.poll(&mut self.stream, timeout)? {
            PollFrame::Frame(payload) => payload,
            PollFrame::Idle => return Ok(None),
            PollFrame::Closed => {
                return Err(SfcError::ConnectionLost {
                    context: "server closed the connection".into(),
                })
            }
        };
        let mut cur = WalCursor::new(&payload);
        Response::decode(&mut cur)
            .map(Some)
            .ok_or(SfcError::Storage {
                context: "undecodable response".into(),
            })
    }

    /// Blocks until a full response arrives, the connection dies, or
    /// `deadline` elapses ([`SfcError::DeadlineExceeded`]).
    fn recv_response<const D: usize, V: WalCodec>(
        &mut self,
        deadline: Option<Duration>,
    ) -> Result<Response<D, V>, SfcError> {
        let start = Instant::now();
        loop {
            let remaining = match deadline {
                None => None,
                Some(d) => match d.checked_sub(start.elapsed()) {
                    Some(left) if !left.is_zero() => Some(left),
                    _ => {
                        return Err(SfcError::DeadlineExceeded {
                            context: format!("no response within {d:?}"),
                        })
                    }
                },
            };
            if let Some(resp) = self.recv(remaining)? {
                return Ok(resp);
            }
            // Idle poll — the deadline arithmetic above loops us out.
        }
    }
}

/// The reconnecting remote transport: server address plus [`NetConfig`]
/// around an optional live connection. A dead or deadline-poisoned
/// connection is dropped and reopened lazily by the next request.
struct Remote {
    addr: String,
    config: NetConfig,
    conn: Option<Conn>,
    /// Jitter salt derived from the address, so two clients pointed at
    /// the same server still decorrelate their backoff schedules.
    salt: u64,
}

impl Remote {
    fn new(addr: String, config: NetConfig) -> Remote {
        // FNV-1a over the address bytes: cheap, deterministic, good
        // enough to seed jitter.
        let mut salt = 0xcbf2_9ce4_8422_2325u64;
        for b in addr.bytes() {
            salt = (salt ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        Remote {
            addr,
            config,
            conn: None,
            salt,
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut Conn, SfcError> {
        if self.conn.is_none() {
            self.conn = Some(Conn::open(&self.addr, &self.config)?);
        }
        Ok(self.conn.as_mut().expect("connection just opened"))
    }

    /// One request attempt over the current (or a freshly opened)
    /// connection. Any failure drops the connection so the next attempt
    /// starts clean; a non-idempotent request that fails after its
    /// bytes were sent is wrapped as [`SfcError::AmbiguousWrite`].
    fn try_request<const D: usize, V: WalCodec>(
        &mut self,
        req: &Request<D, V>,
    ) -> Result<Response<D, V>, SfcError> {
        let deadline = self.config.request_deadline;
        let idempotent = req.is_idempotent();
        let verb = req.verb();
        let conn = self.ensure_conn()?;
        let mut outcome = conn.send(req).and_then(|()| conn.recv_response(deadline));
        if let Err(e) = &outcome {
            if e.is_transport() {
                // A server refusing admission answers with one typed
                // error frame and closes; depending on timing the local
                // send can fail (broken pipe) before that frame is
                // read. The parting refusal is still in the receive
                // buffer — prefer it over the raced transport error.
                if let Ok(Some(resp @ Response::Error(SfcError::Unavailable { .. }))) =
                    conn.recv(Some(Duration::from_millis(20)))
                {
                    outcome = Ok(resp);
                }
            }
        }
        match outcome {
            Ok(resp) => {
                if matches!(resp, Response::Error(SfcError::Unavailable { .. })) {
                    // A busy server answers and closes; don't reuse.
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                if idempotent {
                    Err(e)
                } else {
                    // From the first sent byte on, the server may have
                    // executed the write even though we never saw the
                    // response. Name the ambiguity instead of guessing.
                    Err(SfcError::AmbiguousWrite {
                        context: format!("{verb}: {e}"),
                    })
                }
            }
        }
    }
}

enum Transport<C, V, const D: usize>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    Local(Arc<Engine<C, V, D>>),
    Remote(Remote),
}

/// The serving API over either transport. `Client::<C, V, D>` mirrors
/// the engine's generics; a purely remote client still names the curve
/// type (it types the points and queries, nothing else).
pub struct Client<C, V, const D: usize>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    transport: Transport<C, V, D>,
}

impl<C, V, const D: usize> Client<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    /// A client over an in-process engine: every call dispatches
    /// straight into [`respond`] with no serialization.
    pub fn local(engine: Arc<Engine<C, V, D>>) -> Self {
        Client {
            transport: Transport::Local(engine),
        }
    }

    /// Connects to a [`Server`](crate::Server) with [`NetConfig`]
    /// defaults (10 s connect budget, no request deadline, no retries)
    /// and performs the preamble exchange.
    ///
    /// # Errors
    /// On connection failure, a connect that exceeds the budget, or a
    /// peer that is not speaking
    /// [`PROTOCOL_VERSION`](crate::PROTOCOL_VERSION).
    pub fn connect(addr: &str) -> Result<Self, SfcError> {
        Self::connect_with(addr, NetConfig::default())
    }

    /// [`Client::connect`] with explicit transport knobs. The address
    /// and config are retained: a connection lost later is reopened
    /// transparently by the next request (subject to `config.retry` for
    /// idempotent requests; writes surface the failure instead).
    ///
    /// # Errors
    /// As [`Client::connect`].
    pub fn connect_with(addr: &str, config: NetConfig) -> Result<Self, SfcError> {
        let mut remote = Remote::new(addr.to_string(), config);
        remote.ensure_conn()?;
        Ok(Client {
            transport: Transport::Remote(remote),
        })
    }

    /// Sends one request and waits for its response — the raw API every
    /// typed helper below goes through.
    ///
    /// Idempotent requests that fail at the transport (connection lost,
    /// torn frame) or are turned away pre-execution
    /// ([`SfcError::Unavailable`]) are retried per the configured
    /// [`RetryPolicy`], reconnecting between attempts. Writes are never
    /// auto-retried: a write orphaned after send returns
    /// [`SfcError::AmbiguousWrite`], and a busy response reaches the
    /// caller typed (retrying *is* safe there — the server guarantees
    /// the request was not admitted — but the decision stays with the
    /// caller). A tripped deadline is returned immediately for every
    /// verb: the time budget is already spent.
    ///
    /// # Errors
    /// On transport failure after retries are exhausted. A server-side
    /// failure arrives as [`Response::Error`], not as `Err` — the typed
    /// helpers unwrap it.
    pub fn request(&mut self, req: Request<D, V>) -> Result<Response<D, V>, SfcError> {
        match &mut self.transport {
            Transport::Local(engine) => Ok(respond(engine, req)),
            Transport::Remote(remote) => {
                let retryable = req.is_idempotent();
                let mut attempt: u32 = 0;
                loop {
                    let outcome = remote.try_request(&req);
                    let failed_safely = match &outcome {
                        Ok(Response::Error(e)) => e.is_pre_execution(),
                        Ok(_) => false,
                        Err(e) => e.is_transport(),
                    };
                    if !(retryable && failed_safely) || attempt >= remote.config.retry.max_retries {
                        return outcome;
                    }
                    std::thread::sleep(remote.config.retry.backoff(attempt, remote.salt));
                    attempt += 1;
                }
            }
        }
    }

    /// Executes one engine op remotely (or locally), returning the same
    /// [`Reply`] [`Engine::execute`] would.
    ///
    /// # Errors
    /// The op's own error (e.g. out-of-bounds), decoded from the wire,
    /// or a transport failure.
    pub fn execute(&mut self, op: Op<D, V>) -> Result<Reply<D, V>, SfcError> {
        match self.request(Request::from(op))?.into_reply()? {
            Some(reply) => Ok(reply),
            None => Err(SfcError::Storage {
                context: "non-reply response to a data-plane request".into(),
            }),
        }
    }

    /// Executes a stream of ops in order, collecting every reply —
    /// [`Engine::run_stream`] over the wire.
    ///
    /// # Errors
    /// On the first failing op (earlier ops stay executed).
    pub fn run_stream(
        &mut self,
        ops: impl IntoIterator<Item = Op<D, V>>,
    ) -> Result<Vec<Reply<D, V>>, SfcError> {
        ops.into_iter().map(|op| self.execute(op)).collect()
    }

    /// Point lookup.
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn get(&mut self, p: Point<D>) -> Result<Option<V>, SfcError> {
        match self.execute(Op::Get(p))? {
            Reply::Value(v) => Ok(v),
            other => unexpected("Value", reply_kind(&other)),
        }
    }

    /// Rectangle query; records in curve-key order.
    ///
    /// # Errors
    /// If the query exceeds the universe, or on transport failure.
    pub fn query(&mut self, q: RectQuery<D>) -> Result<Vec<Record<D, V>>, SfcError> {
        match self.execute(Op::Query(q))? {
            Reply::Records(rs) => Ok(rs),
            other => unexpected("Records", reply_kind(&other)),
        }
    }

    /// Admits an insert.
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn insert(&mut self, p: Point<D>, v: V) -> Result<Admitted, SfcError> {
        match self.execute(Op::Insert(p, v))? {
            Reply::Admitted(a) => Ok(a),
            other => unexpected("Admitted", reply_kind(&other)),
        }
    }

    /// Admits an update (replace-or-insert).
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn update(&mut self, p: Point<D>, v: V) -> Result<Admitted, SfcError> {
        match self.execute(Op::Update(p, v))? {
            Reply::Admitted(a) => Ok(a),
            other => unexpected("Admitted", reply_kind(&other)),
        }
    }

    /// Admits a delete.
    ///
    /// # Errors
    /// If `p` lies outside the universe, or on transport failure.
    pub fn delete(&mut self, p: Point<D>) -> Result<Admitted, SfcError> {
        match self.execute(Op::Delete(p))? {
            Reply::Admitted(a) => Ok(a),
            other => unexpected("Admitted", reply_kind(&other)),
        }
    }

    /// Applies every pending write; returns how many were applied.
    ///
    /// # Errors
    /// On a WAL commit failure or transport failure.
    pub fn flush(&mut self) -> Result<u64, SfcError> {
        match self.request(Request::Flush)? {
            Response::Flushed { applied } => Ok(applied),
            Response::Error(e) => Err(e),
            other => unexpected("Flushed", response_kind(&other)),
        }
    }

    /// Compacts the server's WAL into a snapshot (durable engines).
    ///
    /// # Errors
    /// On in-memory engines, snapshot I/O failure, or transport failure.
    pub fn checkpoint(&mut self) -> Result<u64, SfcError> {
        match self.request(Request::Checkpoint)? {
            Response::Checkpointed { epoch } => Ok(epoch),
            Response::Error(e) => Err(e),
            other => unexpected("Checkpointed", response_kind(&other)),
        }
    }

    /// The engine's live counters.
    ///
    /// # Errors
    /// On transport failure.
    pub fn stats(&mut self) -> Result<EngineStats, SfcError> {
        match self.request(Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error(e) => Err(e),
            other => unexpected("Stats", response_kind(&other)),
        }
    }

    /// Plans a query without executing it — `EXPLAIN` over the wire.
    ///
    /// # Errors
    /// If the query exceeds the universe, or on transport failure.
    pub fn explain(&mut self, q: RectQuery<D>) -> Result<QueryPlan, SfcError> {
        match self.request(Request::Explain(q))? {
            Response::Explained(p) => Ok(p),
            Response::Error(e) => Err(e),
            other => unexpected("Explained", response_kind(&other)),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    /// On transport failure.
    pub fn ping(&mut self) -> Result<(), SfcError> {
        match self.request(Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error(e) => Err(e),
            other => unexpected("Pong", response_kind(&other)),
        }
    }

    /// Turns this client into an epoch subscription starting after
    /// epoch `from` (exclusive): WAL catch-up frames first, then live
    /// epochs, in order, without gaps — the stream a read replica
    /// replays.
    ///
    /// # Errors
    /// On transport failure, or (local transport over an in-memory
    /// engine) when `from` predates the feed and there is no WAL to
    /// catch up from.
    pub fn subscribe_epochs(self, from: u64) -> Result<EpochStream<D, V>, SfcError>
    where
        C: Send + Sync + 'static,
        V: 'static,
    {
        match self.transport {
            Transport::Remote(mut remote) => {
                remote.ensure_conn()?;
                let deadline = remote.config.request_deadline;
                let mut conn = remote.conn.take().expect("connection just ensured");
                conn.send(&Request::<D, V>::SubscribeEpochs { from })?;
                // Wait for the acknowledgment: once it arrives, the
                // server's live tap is registered and every epoch
                // committed from here on is guaranteed to be delivered.
                match conn.recv_response::<D, V>(deadline)? {
                    Response::Subscribed { .. } => {}
                    Response::Error(e) => return Err(e),
                    other => {
                        return unexpected("Subscribed", response_kind(&other));
                    }
                }
                Ok(EpochStream {
                    inner: StreamInner::Remote(conn),
                })
            }
            Transport::Local(engine) => {
                // Mirror the server handler: subscribe first, then read
                // the WAL for (from, start], so no epoch is missed or
                // doubled.
                let sub = engine.subscribe_epochs();
                let mut backlog = std::collections::VecDeque::new();
                if from < sub.start_epoch() {
                    for frame in engine.committed_frames_since(from)? {
                        if frame.epoch > sub.start_epoch() {
                            break;
                        }
                        backlog.push_back(frame);
                    }
                }
                Ok(EpochStream {
                    inner: StreamInner::Local {
                        sub,
                        backlog,
                        durable: Box::new(move || engine.durable_epoch()),
                    },
                })
            }
        }
    }
}

/// One event from an [`EpochStream`].
#[derive(Clone, Debug, PartialEq)]
pub enum EpochEvent<const D: usize, V> {
    /// Epoch `epoch` committed with `ops`; the transactor's durable
    /// epoch stood at `durable_epoch` when the frame was sent.
    Epoch {
        /// The committed epoch number (strictly consecutive).
        epoch: u64,
        /// The transactor's fsync-confirmed epoch at send time.
        durable_epoch: u64,
        /// The epoch's ops in submission order.
        ops: Vec<BatchOp<D, V>>,
    },
    /// The subscription fell too far behind and was cut off; the stream
    /// is dead.
    Lagged,
}

enum StreamInner<const D: usize, V> {
    Remote(Conn),
    Local {
        sub: EpochSubscription<D, V>,
        backlog: std::collections::VecDeque<EpochFrame<D, V>>,
        /// Reads the transactor's durable epoch for locally sourced
        /// events (captures the engine `Arc`).
        durable: Box<dyn Fn() -> u64 + Send>,
    },
}

/// A one-way stream of committed epochs, produced by
/// [`Client::subscribe_epochs`].
pub struct EpochStream<const D: usize, V> {
    inner: StreamInner<D, V>,
}

impl<const D: usize, V: Clone + WalCodec> EpochStream<D, V> {
    /// Waits up to `timeout` for the next event. `Ok(None)` means the
    /// timeout elapsed quietly — poll again.
    ///
    /// # Errors
    /// On transport failure, a poisoned stream, or a server-side error
    /// frame.
    pub fn poll(&mut self, timeout: Duration) -> Result<Option<EpochEvent<D, V>>, SfcError> {
        match &mut self.inner {
            StreamInner::Remote(conn) => match conn.recv::<D, V>(Some(timeout))? {
                None => Ok(None),
                Some(Response::Epoch {
                    epoch,
                    durable_epoch,
                    ops,
                }) => Ok(Some(EpochEvent::Epoch {
                    epoch,
                    durable_epoch,
                    ops,
                })),
                Some(Response::Lagged) => Ok(Some(EpochEvent::Lagged)),
                Some(Response::Error(e)) => Err(e),
                Some(other) => unexpected("Epoch", response_kind(&other)),
            },
            StreamInner::Local {
                sub,
                backlog,
                durable,
            } => {
                if let Some(frame) = backlog.pop_front() {
                    return Ok(Some(EpochEvent::Epoch {
                        epoch: frame.epoch,
                        durable_epoch: durable(),
                        ops: frame.ops,
                    }));
                }
                match sub.next_timeout(timeout) {
                    Some(FeedEvent::Epoch(epoch, ops)) => Ok(Some(EpochEvent::Epoch {
                        epoch,
                        durable_epoch: durable(),
                        ops: ops.to_vec(),
                    })),
                    Some(FeedEvent::Lagged) => Ok(Some(EpochEvent::Lagged)),
                    None => Ok(None),
                }
            }
        }
    }
}

fn unexpected<T>(expected: &str, got: &str) -> Result<T, SfcError> {
    Err(SfcError::Storage {
        context: format!("protocol violation: expected {expected}, got {got}"),
    })
}

/// The variant name alone — payloads may not be `Debug`.
fn reply_kind<const D: usize, V>(reply: &Reply<D, V>) -> &'static str {
    match reply {
        Reply::Value(_) => "Value",
        Reply::Records(_) => "Records",
        Reply::Admitted(_) => "Admitted",
    }
}

/// The variant name alone — payloads may not be `Debug`.
fn response_kind<const D: usize, V>(response: &Response<D, V>) -> &'static str {
    match response {
        Response::Pong => "Pong",
        Response::Value(_) => "Value",
        Response::Records(_) => "Records",
        Response::Admitted(_) => "Admitted",
        Response::Flushed { .. } => "Flushed",
        Response::Checkpointed { .. } => "Checkpointed",
        Response::Stats(_) => "Stats",
        Response::Explained(_) => "Explained",
        Response::Epoch { .. } => "Epoch",
        Response::Lagged => "Lagged",
        Response::Error(_) => "Error",
        Response::Subscribed { .. } => "Subscribed",
    }
}
