//! The versioned request/response pair — the redesigned serving API.
//!
//! [`Request`] subsumes the in-process [`Op`] (every data-plane verb maps
//! one-to-one via `From`) and adds the admin verbs a network deployment
//! needs: `Flush`, `Checkpoint`, `Stats`, `Explain`, `Ping`, and the
//! replication tap `SubscribeEpochs`. [`Response`] likewise subsumes
//! [`Reply`] — [`Response::Value`]/[`Response::Records`]/
//! [`Response::Admitted`] carry exactly the reply payloads, and
//! [`Response::Error`] makes [`SfcError`] itself wire-representable (its
//! stable numeric codes are pinned by `SfcError::code`), so a remote
//! caller sees the same typed error a local caller would.
//!
//! Both enums encode through the WAL's [`WalCodec`] — one tag byte, then
//! the variant's fields in the same little-endian primitives every WAL
//! frame uses — so the payload layer of the protocol is the already-
//! proptested WAL codec, and an epoch shipped to a replica is encoded by
//! the identical code path that wrote it to the log.

use onion_core::{Point, SfcError};
use sfc_clustering::RectQuery;
use sfc_engine::{Admitted, EngineStats, Op, Reply};
use sfc_index::{decode_seq, encode_seq, BatchOp, QueryPlan, Record, WalCodec, WalCursor};

/// One client verb. `V` is the record payload type, `D` the dimension —
/// the same generics the engine serves.
#[derive(Clone, Debug, PartialEq)]
pub enum Request<const D: usize, V> {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Point lookup ([`Op::Get`]).
    Get(Point<D>),
    /// Rectangle query through the adaptive planner ([`Op::Query`]).
    Query(RectQuery<D>),
    /// Time-travel rectangle query ([`Op::QueryAsOf`]).
    QueryAsOf {
        /// The epoch whose state to observe.
        epoch: u64,
        /// The rectangle to query at that epoch.
        query: RectQuery<D>,
    },
    /// Insert a record ([`Op::Insert`]).
    Insert(Point<D>, V),
    /// Replace-or-insert ([`Op::Update`]).
    Update(Point<D>, V),
    /// Remove the oldest record at a point ([`Op::Delete`]).
    Delete(Point<D>),
    /// Apply every pending write; answered with [`Response::Flushed`].
    Flush,
    /// Compact the WAL into a snapshot; answered with
    /// [`Response::Checkpointed`]. Durable engines only.
    Checkpoint,
    /// Engine counters; answered with [`Response::Stats`].
    Stats,
    /// Plan a query without executing it; answered with
    /// [`Response::Explained`].
    Explain(RectQuery<D>),
    /// Switch this connection into a one-way epoch stream: every epoch
    /// committed after `from` arrives as a [`Response::Epoch`] frame, in
    /// order, without gaps — WAL catch-up first, then live frames. No
    /// further requests are read from the connection.
    SubscribeEpochs {
        /// Replay starts after this epoch (exclusive); `0` streams the
        /// full history a transactor's WAL still holds.
        from: u64,
    },
}

/// One server answer. Every variant a [`Request`] can produce, plus the
/// stream frames of `SubscribeEpochs`.
#[derive(Clone, Debug, PartialEq)]
pub enum Response<const D: usize, V> {
    /// [`Request::Ping`] acknowledged.
    Pong,
    /// A point lookup's result ([`Reply::Value`]).
    Value(Option<V>),
    /// A query's matching records in curve-key order
    /// ([`Reply::Records`]).
    Records(Vec<Record<D, V>>),
    /// A write's admission receipt ([`Reply::Admitted`]) — the same
    /// [`Admitted`] struct the in-process reply carries.
    Admitted(Admitted),
    /// [`Request::Flush`] applied this many writes.
    Flushed {
        /// Writes the flush applied (0 if the log was already empty).
        applied: u64,
    },
    /// [`Request::Checkpoint`] compacted the log at this epoch.
    Checkpointed {
        /// The epoch the snapshot captured.
        epoch: u64,
    },
    /// [`Request::Stats`]: the engine's live counters.
    Stats(EngineStats),
    /// [`Request::Explain`]: the plan the next execution would take.
    Explained(QueryPlan),
    /// One committed epoch, streamed to a [`Request::SubscribeEpochs`]
    /// subscriber.
    Epoch {
        /// The epoch these ops committed as. Strictly consecutive per
        /// subscription.
        epoch: u64,
        /// The transactor's fsync-confirmed epoch at send time — what a
        /// replica reports its lag against.
        durable_epoch: u64,
        /// The epoch's ops in submission order, ready for
        /// `apply_batch`.
        ops: Vec<BatchOp<D, V>>,
    },
    /// The subscriber fell too far behind and its backlog was dropped;
    /// the stream is dead. Re-subscribe and catch up from the WAL.
    Lagged,
    /// [`Request::SubscribeEpochs`] acknowledged: the live tap is
    /// registered, so every epoch committed after this frame is
    /// guaranteed to arrive. Always the stream's first frame — a
    /// subscriber that must not miss epochs (a replica) waits for it
    /// before letting writes proceed.
    Subscribed {
        /// The feed position at registration: catch-up frames cover
        /// `(from, start_epoch]`, the live feed everything after.
        start_epoch: u64,
    },
    /// The request failed; the typed error a local caller would get.
    Error(SfcError),
}

impl<const D: usize, V> Request<D, V> {
    /// Whether reissuing this request verbatim cannot change server
    /// state — the contract the client's retry loop keys on. Reads and
    /// probes qualify; writes (`Insert`/`Update`/`Delete`) and the
    /// state-advancing admin verbs (`Flush`/`Checkpoint`) do not, and
    /// neither does `SubscribeEpochs` (re-subscribing is the replica's
    /// resume protocol, not a blind retry).
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Get(_)
                | Request::Query(_)
                | Request::QueryAsOf { .. }
                | Request::Stats
                | Request::Explain(_)
        )
    }

    /// The verb name alone, for error contexts — payloads may not be
    /// `Debug`.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "Ping",
            Request::Get(_) => "Get",
            Request::Query(_) => "Query",
            Request::QueryAsOf { .. } => "QueryAsOf",
            Request::Insert(..) => "Insert",
            Request::Update(..) => "Update",
            Request::Delete(_) => "Delete",
            Request::Flush => "Flush",
            Request::Checkpoint => "Checkpoint",
            Request::Stats => "Stats",
            Request::Explain(_) => "Explain",
            Request::SubscribeEpochs { .. } => "SubscribeEpochs",
        }
    }
}

/// Data-plane verbs map one-to-one onto engine ops.
impl<const D: usize, V> From<Op<D, V>> for Request<D, V> {
    fn from(op: Op<D, V>) -> Self {
        match op {
            Op::Get(p) => Request::Get(p),
            Op::Query(q) => Request::Query(q),
            Op::Insert(p, v) => Request::Insert(p, v),
            Op::Update(p, v) => Request::Update(p, v),
            Op::Delete(p) => Request::Delete(p),
            Op::QueryAsOf { epoch, query } => Request::QueryAsOf { epoch, query },
        }
    }
}

/// In-process replies map one-to-one onto wire responses.
impl<const D: usize, V> From<Reply<D, V>> for Response<D, V> {
    fn from(reply: Reply<D, V>) -> Self {
        match reply {
            Reply::Value(v) => Response::Value(v),
            Reply::Records(rs) => Response::Records(rs),
            Reply::Admitted(a) => Response::Admitted(a),
        }
    }
}

impl<const D: usize, V> Response<D, V> {
    /// Converts a data-plane response back into the in-process reply,
    /// surfacing [`Response::Error`] as the typed error. `None` for
    /// admin/stream responses, which have no [`Reply`] shape.
    pub fn into_reply(self) -> Result<Option<Reply<D, V>>, SfcError> {
        match self {
            Response::Value(v) => Ok(Some(Reply::Value(v))),
            Response::Records(rs) => Ok(Some(Reply::Records(rs))),
            Response::Admitted(a) => Ok(Some(Reply::Admitted(a))),
            Response::Error(e) => Err(e),
            _ => Ok(None),
        }
    }
}

const REQ_PING: u8 = 0;
const REQ_GET: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_QUERY_AS_OF: u8 = 3;
const REQ_INSERT: u8 = 4;
const REQ_UPDATE: u8 = 5;
const REQ_DELETE: u8 = 6;
const REQ_FLUSH: u8 = 7;
const REQ_CHECKPOINT: u8 = 8;
const REQ_STATS: u8 = 9;
const REQ_EXPLAIN: u8 = 10;
const REQ_SUBSCRIBE: u8 = 11;

impl<const D: usize, V: WalCodec> WalCodec for Request<D, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Ping => buf.push(REQ_PING),
            Request::Get(p) => {
                buf.push(REQ_GET);
                p.encode(buf);
            }
            Request::Query(q) => {
                buf.push(REQ_QUERY);
                q.encode(buf);
            }
            Request::QueryAsOf { epoch, query } => {
                buf.push(REQ_QUERY_AS_OF);
                epoch.encode(buf);
                query.encode(buf);
            }
            Request::Insert(p, v) => {
                buf.push(REQ_INSERT);
                p.encode(buf);
                v.encode(buf);
            }
            Request::Update(p, v) => {
                buf.push(REQ_UPDATE);
                p.encode(buf);
                v.encode(buf);
            }
            Request::Delete(p) => {
                buf.push(REQ_DELETE);
                p.encode(buf);
            }
            Request::Flush => buf.push(REQ_FLUSH),
            Request::Checkpoint => buf.push(REQ_CHECKPOINT),
            Request::Stats => buf.push(REQ_STATS),
            Request::Explain(q) => {
                buf.push(REQ_EXPLAIN);
                q.encode(buf);
            }
            Request::SubscribeEpochs { from } => {
                buf.push(REQ_SUBSCRIBE);
                from.encode(buf);
            }
        }
    }

    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        Some(match cur.u8()? {
            REQ_PING => Request::Ping,
            REQ_GET => Request::Get(Point::decode(cur)?),
            REQ_QUERY => Request::Query(RectQuery::decode(cur)?),
            REQ_QUERY_AS_OF => Request::QueryAsOf {
                epoch: u64::decode(cur)?,
                query: RectQuery::decode(cur)?,
            },
            REQ_INSERT => Request::Insert(Point::decode(cur)?, V::decode(cur)?),
            REQ_UPDATE => Request::Update(Point::decode(cur)?, V::decode(cur)?),
            REQ_DELETE => Request::Delete(Point::decode(cur)?),
            REQ_FLUSH => Request::Flush,
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_STATS => Request::Stats,
            REQ_EXPLAIN => Request::Explain(RectQuery::decode(cur)?),
            REQ_SUBSCRIBE => Request::SubscribeEpochs {
                from: u64::decode(cur)?,
            },
            _ => return None,
        })
    }
}

const RESP_PONG: u8 = 0;
const RESP_VALUE: u8 = 1;
const RESP_RECORDS: u8 = 2;
const RESP_ADMITTED: u8 = 3;
const RESP_FLUSHED: u8 = 4;
const RESP_CHECKPOINTED: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_EXPLAINED: u8 = 7;
const RESP_EPOCH: u8 = 8;
const RESP_LAGGED: u8 = 9;
const RESP_ERROR: u8 = 10;
const RESP_SUBSCRIBED: u8 = 11;

impl<const D: usize, V: WalCodec> WalCodec for Response<D, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Pong => buf.push(RESP_PONG),
            Response::Value(v) => {
                buf.push(RESP_VALUE);
                match v {
                    Some(v) => {
                        true.encode(buf);
                        v.encode(buf);
                    }
                    None => false.encode(buf),
                }
            }
            Response::Records(rs) => {
                buf.push(RESP_RECORDS);
                encode_seq(rs, buf);
            }
            Response::Admitted(a) => {
                buf.push(RESP_ADMITTED);
                a.encode(buf);
            }
            Response::Flushed { applied } => {
                buf.push(RESP_FLUSHED);
                applied.encode(buf);
            }
            Response::Checkpointed { epoch } => {
                buf.push(RESP_CHECKPOINTED);
                epoch.encode(buf);
            }
            Response::Stats(s) => {
                buf.push(RESP_STATS);
                s.encode(buf);
            }
            Response::Explained(p) => {
                buf.push(RESP_EXPLAINED);
                p.encode(buf);
            }
            Response::Epoch {
                epoch,
                durable_epoch,
                ops,
            } => {
                buf.push(RESP_EPOCH);
                epoch.encode(buf);
                durable_epoch.encode(buf);
                encode_seq(ops, buf);
            }
            Response::Lagged => buf.push(RESP_LAGGED),
            Response::Error(e) => {
                buf.push(RESP_ERROR);
                e.encode(buf);
            }
            Response::Subscribed { start_epoch } => {
                buf.push(RESP_SUBSCRIBED);
                start_epoch.encode(buf);
            }
        }
    }

    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        Some(match cur.u8()? {
            RESP_PONG => Response::Pong,
            RESP_VALUE => Response::Value(if bool::decode(cur)? {
                Some(V::decode(cur)?)
            } else {
                None
            }),
            RESP_RECORDS => Response::Records(decode_seq(cur)?),
            RESP_ADMITTED => Response::Admitted(Admitted::decode(cur)?),
            RESP_FLUSHED => Response::Flushed {
                applied: u64::decode(cur)?,
            },
            RESP_CHECKPOINTED => Response::Checkpointed {
                epoch: u64::decode(cur)?,
            },
            RESP_STATS => Response::Stats(EngineStats::decode(cur)?),
            RESP_EXPLAINED => Response::Explained(QueryPlan::decode(cur)?),
            RESP_EPOCH => Response::Epoch {
                epoch: u64::decode(cur)?,
                durable_epoch: u64::decode(cur)?,
                ops: decode_seq(cur)?,
            },
            RESP_LAGGED => Response::Lagged,
            RESP_ERROR => Response::Error(SfcError::decode(cur)?),
            RESP_SUBSCRIBED => Response::Subscribed {
                start_epoch: u64::decode(cur)?,
            },
            _ => return None,
        })
    }
}
