//! # sfc-net
//!
//! The network layer of the Onion Curve workspace: the `sfc-engine`
//! serving layer put on the wire, behind a redesigned request/response
//! API, plus single-writer/many-reader replication.
//!
//! * **Framing** — the WAL's `SFCWAL01` idiom lifted onto a socket: a
//!   `SFCNET01` + version preamble, then length-prefixed
//!   `[len][crc32][payload]` frames (see [`frame`]); payloads are
//!   [`WalCodec`](sfc_index::WalCodec)-encoded, so the protocol's
//!   serialization layer is the already-proptested WAL codec.
//! * **Protocol** — [`Request`]/[`Response`]: every engine op
//!   ([`Op`](sfc_engine::Op) maps in via `From`) plus the admin verbs
//!   `Flush`, `Checkpoint`, `Stats`, `Explain`, `Ping`, and the
//!   replication tap `SubscribeEpochs`. Errors travel typed:
//!   [`SfcError`](onion_core::SfcError) is wire-representable with
//!   stable numeric codes.
//! * **Server** — [`Server`]: a blocking thread-per-connection server
//!   wrapping [`Engine::execute`](sfc_engine::Engine::execute) and
//!   friends; [`respond`] is the dispatcher, shared with the local
//!   transport.
//! * **Client** — [`Client`]: the same API over two transports,
//!   in-process ([`Client::local`]) or TCP ([`Client::connect`]) —
//!   switching is one line, and the loopback tests pin that the replies
//!   are identical.
//! * **Replication** — [`Replica`]: a transactor ships committed WAL
//!   epoch frames over `SubscribeEpochs` (WAL catch-up, then the live
//!   epoch feed); replicas replay them through the same `apply_batch`
//!   path recovery uses and serve **epoch-prefix consistent** reads —
//!   including time-travel [`Replica::query_as_of`] — while exposing
//!   their lag ([`Replica::lag`]) against the transactor's durable
//!   epoch.
//!
//! ```
//! use onion_core::{Onion2D, Point};
//! use sfc_engine::{Engine, EngineConfig};
//! use sfc_index::{DiskModel, ShardedTable};
//! use sfc_net::{Client, Server};
//! use std::sync::Arc;
//!
//! // A transactor: any engine, wrapped in an Arc, put on a socket.
//! let table = ShardedTable::build(
//!     Onion2D::new(64).unwrap(),
//!     (0..64u32).map(|i| (Point::new([i, i]), u64::from(i))).collect(),
//!     DiskModel::ssd(),
//!     2,
//! )
//! .unwrap();
//! let engine = Arc::new(Engine::new(table, EngineConfig::default()));
//! let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
//!
//! // A remote client sees exactly what a local caller sees.
//! let mut client =
//!     Client::<Onion2D, u64, 2>::connect(&server.local_addr().to_string()).unwrap();
//! client.update(Point::new([3, 3]), 999).unwrap();
//! client.flush().unwrap();
//! assert_eq!(client.get(Point::new([3, 3])).unwrap(), Some(999));
//! assert_eq!(client.stats().unwrap().epochs, 1);
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
pub mod frame;
mod proto;
mod replica;
mod server;

pub use client::{Client, EpochEvent, EpochStream, NetConfig, RetryPolicy};
pub use frame::{MAX_FRAME, NET_MAGIC, PROTOCOL_VERSION};
pub use proto::{Request, Response};
pub use replica::{Replica, ReplicaConfig, ReplicaState, ReplicaStatus};
pub use server::{respond, Server, ServerConfig};
