//! Read replicas: a [`ShardedTable`] kept in lockstep with a remote
//! transactor by replaying its committed epoch stream.
//!
//! A [`Replica`] connects a [`Client`] subscription
//! ([`Client::subscribe_epochs`]) to the same `apply_batch` path
//! recovery uses: each [`EpochEvent::Epoch`] frame is applied as one
//! batch, bumping the table's version epoch to exactly the epoch number
//! the transactor committed — so the replica's MVCC window is, epoch
//! for epoch, the transactor's history, and [`Replica::query_as_of`]
//! answers time-travel reads with no WAL of its own.
//!
//! **Consistency model: epoch-prefix.** A replica's visible state is
//! always *some committed epoch prefix* of the transactor's history —
//! never a torn batch, never reordered — because epochs arrive in
//! order, without gaps (WAL catch-up first, then the live feed) and
//! apply atomically per batch. Lag is observable, not hidden:
//! [`Replica::lag`] is the distance between the transactor's durable
//! epoch (shipped with every frame) and the replica's applied epoch.
//!
//! **Self-healing.** A lost connection (or a `Lagged` cutoff) is not
//! fatal: the apply thread reconnects with bounded exponential backoff
//! plus jitter and re-subscribes from its own current
//! [`applied_epoch`](Replica::applied_epoch). The server's WAL
//! catch-up for `(applied, start_epoch]` makes resume **exactly-once**
//! — every epoch committed while the replica was away is replayed, in
//! order, never doubled — so reconvergence needs no replica-side log.
//! The one terminal resume fault is [`SfcError::EpochTruncated`]: the
//! transactor checkpointed past the replica's position, and the WAL no
//! longer holds the missing history (bootstrap a fresh replica
//! instead). The whole story is exposed by [`Replica::status`] —
//! applied/durable/lag, reconnect count, connection state, last error.

use crate::client::{Client, EpochEvent, EpochStream, NetConfig, RetryPolicy};
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::RectQuery;
use sfc_engine::EngineConfig;
use sfc_index::{DiskModel, Planner, QueryOptions, QueryResult, ShardedTable, WalCodec};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the apply thread blocks on the stream before re-checking
/// its stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Resilience knobs for a [`Replica`]'s subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaConfig {
    /// Transport config for the subscription connection (connect
    /// budget, subscribe-acknowledgment deadline). The request
    /// [`RetryPolicy`] inside is unused here — the replica's retry unit
    /// is the whole subscription, governed by
    /// [`reconnect`](Self::reconnect).
    pub net: NetConfig,
    /// Reconnect schedule after the stream dies: up to `max_retries`
    /// *consecutive* failed reconnect attempts (the counter resets on
    /// every successfully applied epoch), backing off exponentially
    /// with deterministic jitter between attempts.
    pub reconnect: RetryPolicy,
}

impl Default for ReplicaConfig {
    /// Self-healing defaults: a 5 s connect budget and 16 consecutive
    /// reconnect attempts backing off 10 ms → 1 s.
    fn default() -> Self {
        ReplicaConfig {
            net: NetConfig {
                connect_timeout: Duration::from_secs(5),
                request_deadline: Some(Duration::from_secs(10)),
                retry: RetryPolicy::none(),
            },
            reconnect: RetryPolicy {
                max_retries: 16,
                base_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_secs(1),
            },
        }
    }
}

impl ReplicaConfig {
    /// The pre-resilience behavior: any stream death parks the fault
    /// and stops the apply thread. The replica keeps serving its last
    /// applied prefix.
    pub fn fail_stop() -> Self {
        ReplicaConfig {
            net: NetConfig::default(),
            reconnect: RetryPolicy::none(),
        }
    }
}

/// Where a [`Replica`]'s subscription currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaState {
    /// Connected and replaying the live epoch stream.
    Streaming,
    /// The stream died; reconnect attempts are in progress.
    Reconnecting,
    /// Terminally failed (reconnect budget exhausted, epoch history
    /// truncated, or a corrupt stream). The last applied prefix is
    /// still served; [`Replica::take_fault`] holds the cause.
    Failed,
    /// [`Replica::stop`] was called.
    Stopped,
}

const STATE_STREAMING: u8 = 0;
const STATE_RECONNECTING: u8 = 1;
const STATE_FAILED: u8 = 2;
const STATE_STOPPED: u8 = 3;

/// A point-in-time health snapshot of a [`Replica`] — the fields an
/// operator (or a load balancer deciding whether to route reads here)
/// needs in one read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Highest epoch applied locally; every read observes at least this.
    pub applied: u64,
    /// The transactor's fsync-confirmed epoch as of the last frame.
    pub durable: u64,
    /// `durable - applied`, floored at zero.
    pub lag: u64,
    /// Successful reconnects over the replica's lifetime.
    pub reconnects: u64,
    /// Current subscription state.
    pub state: ReplicaState,
    /// The most recent stream error (transient or terminal), if any.
    pub last_error: Option<SfcError>,
}

/// State shared between the apply thread and the [`Replica`] handle.
struct Shared {
    /// Transactor durable epoch as of the last received frame.
    durable: AtomicU64,
    /// Successful reconnects (not attempts) over the lifetime.
    reconnects: AtomicU64,
    state: AtomicU8,
    /// The most recent stream error, transient or terminal.
    last_error: Mutex<Option<SfcError>>,
    /// The terminal fault, once the apply thread gives up.
    fault: Mutex<Option<SfcError>>,
    stop: AtomicBool,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn set_state(&self, state: u8) {
        self.state.store(state, Ordering::Release);
    }

    fn note_error(&self, e: &SfcError) {
        *self.last_error.lock().expect("error slot poisoned") = Some(e.clone());
    }

    /// Terminal: park the fault and flip to `Failed`.
    fn park(&self, e: SfcError) {
        self.note_error(&e);
        *self.fault.lock().expect("fault slot poisoned") = Some(e);
        self.set_state(STATE_FAILED);
    }
}

/// A read replica of a remote transactor. Created by
/// [`Replica::start`]; queries are served from the local table while a
/// background thread replays the epoch stream into it.
pub struct Replica<C, V, const D: usize>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    table: Arc<ShardedTable<C, V, D>>,
    planner: Planner,
    shared: Arc<Shared>,
    apply: Option<JoinHandle<()>>,
}

impl<C, V, const D: usize> Replica<C, V, D>
where
    C: SpaceFillingCurve<D> + Send + Sync + 'static,
    V: Clone + Send + Sync + WalCodec + 'static,
{
    /// Connects to a transactor's server at `addr`, subscribes from
    /// epoch 0, and starts replaying into a fresh empty table, with
    /// self-healing [`ReplicaConfig`] defaults.
    ///
    /// `curve` must equal the transactor's curve (keys are derived from
    /// points identically on both sides); `shards` is free to differ —
    /// like recovery, replication re-partitions.
    ///
    /// # Errors
    /// On connection failure or a table-build failure. (The *initial*
    /// connect is not retried: a replica that never connected has no
    /// prefix worth serving.)
    pub fn start(
        addr: &str,
        curve: C,
        model: DiskModel,
        shards: usize,
        config: &EngineConfig,
    ) -> Result<Self, SfcError> {
        Self::start_with(addr, curve, model, shards, config, ReplicaConfig::default())
    }

    /// [`Replica::start`] with explicit resilience knobs —
    /// [`ReplicaConfig::fail_stop`] restores the pre-resilience
    /// die-on-first-fault behavior.
    ///
    /// # Errors
    /// As [`Replica::start`].
    pub fn start_with(
        addr: &str,
        curve: C,
        model: DiskModel,
        shards: usize,
        config: &EngineConfig,
        replica_config: ReplicaConfig,
    ) -> Result<Self, SfcError> {
        let mut table = ShardedTable::build(curve, Vec::new(), model, shards)?;
        table.set_retention(config.retention);
        let planner = Planner::new(model);
        let stream =
            Client::<C, V, D>::connect_with(addr, replica_config.net)?.subscribe_epochs(0)?;
        let table = Arc::new(table);
        let shared = Arc::new(Shared {
            durable: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            state: AtomicU8::new(STATE_STREAMING),
            last_error: Mutex::new(None),
            fault: Mutex::new(None),
            stop: AtomicBool::new(false),
        });
        let apply = {
            let addr = addr.to_string();
            let table = Arc::clone(&table);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || apply_loop(&addr, replica_config, stream, &table, &shared))
        };
        Ok(Replica {
            table,
            planner,
            shared,
            apply: Some(apply),
        })
    }

    /// The highest epoch applied locally — the epoch every read
    /// observes (or a later one, if a frame lands mid-call).
    pub fn applied_epoch(&self) -> u64 {
        self.table.version_epoch()
    }

    /// The transactor's fsync-confirmed epoch as of the last received
    /// frame — the durable frontier this replica is chasing.
    pub fn durable_epoch(&self) -> u64 {
        self.shared.durable.load(Ordering::Acquire)
    }

    /// Replication lag in epochs: [`durable_epoch`](Self::durable_epoch)
    /// minus [`applied_epoch`](Self::applied_epoch), floored at zero (a
    /// replica can briefly run *ahead* of the durable frontier when the
    /// transactor pipelines commits).
    pub fn lag(&self) -> u64 {
        self.durable_epoch().saturating_sub(self.applied_epoch())
    }

    /// Current subscription state.
    pub fn state(&self) -> ReplicaState {
        match self.shared.state.load(Ordering::Acquire) {
            STATE_STREAMING => ReplicaState::Streaming,
            STATE_RECONNECTING => ReplicaState::Reconnecting,
            STATE_FAILED => ReplicaState::Failed,
            _ => ReplicaState::Stopped,
        }
    }

    /// Successful reconnects over the replica's lifetime — a cheap
    /// health signal (a climbing count under a stable network means the
    /// transactor is cutting this replica off).
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Acquire)
    }

    /// One consistent health snapshot: applied/durable/lag, reconnect
    /// count, connection state, last stream error.
    pub fn status(&self) -> ReplicaStatus {
        let applied = self.applied_epoch();
        let durable = self.durable_epoch();
        ReplicaStatus {
            applied,
            durable,
            lag: durable.saturating_sub(applied),
            reconnects: self.reconnects(),
            state: self.state(),
            last_error: self
                .shared
                .last_error
                .lock()
                .expect("error slot poisoned")
                .clone(),
        }
    }

    /// Whether the stream has died terminally (reconnect budget
    /// exhausted, epoch history truncated, corrupt stream). A failed
    /// replica keeps serving its last applied prefix;
    /// [`take_fault`](Self::take_fault) retrieves the cause.
    pub fn is_failed(&self) -> bool {
        self.state() == ReplicaState::Failed
    }

    /// The error that terminally killed the stream, if any (consumes
    /// it).
    pub fn take_fault(&self) -> Option<SfcError> {
        self.shared
            .fault
            .lock()
            .expect("fault slot poisoned")
            .take()
    }

    /// Point lookup against the applied prefix. Epoch-boundary
    /// consistent: pending transactor writes are invisible until their
    /// epoch arrives.
    ///
    /// # Errors
    /// If `p` lies outside the universe.
    pub fn get(&self, p: Point<D>) -> Result<Option<V>, SfcError> {
        Ok(self.table.get(p)?.map(|guard| guard.cloned()))
    }

    /// Rectangle query against the applied prefix, through the
    /// replica's own adaptive planner (each replica learns its own I/O
    /// statistics).
    ///
    /// # Errors
    /// If the query exceeds the universe.
    pub fn query(&self, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        self.table
            .query_rect(q, &QueryOptions::planned(&self.planner))
    }

    /// Time-travel read against a past applied epoch, answered from the
    /// replica's retention window.
    ///
    /// # Errors
    /// If the epoch is no longer retained (or not yet applied), or the
    /// query exceeds the universe.
    pub fn query_as_of(&self, epoch: u64, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        match self.table.snapshot_at(epoch) {
            Some(snapshot) => snapshot.query_rect(q),
            None => Err(SfcError::Storage {
                context: format!(
                    "epoch {epoch} is not in the replica's retention window (applied: {})",
                    self.applied_epoch()
                ),
            }),
        }
    }

    /// Total records in the applied prefix.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the applied prefix holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops the apply thread and drops the subscription.
    pub fn stop(mut self) {
        self.stop_and_join();
    }
}

impl<C, V, const D: usize> Replica<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(h) = self.apply.take() {
            let _ = h.join();
        }
        if self.shared.state.load(Ordering::Acquire) != STATE_FAILED {
            self.shared.set_state(STATE_STOPPED);
        }
    }
}

impl<C, V, const D: usize> Drop for Replica<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Whether a stream error ends the replica for good. A truncated epoch
/// history can never be healed by reconnecting — the data is gone from
/// the transactor's WAL.
fn is_terminal(e: &SfcError) -> bool {
    matches!(e, SfcError::EpochTruncated { .. })
}

/// Sleeps `total` in small slices so a concurrent stop lands promptly.
fn backoff_sleep(shared: &Shared, total: Duration) {
    let slice = Duration::from_millis(10);
    let mut left = total;
    while !left.is_zero() && !shared.stopping() {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

/// The replay loop: apply each epoch frame as one batch, enforcing
/// gapless, in-order delivery. A dead stream (transport loss, `Lagged`
/// cutoff) is healed by reconnecting with backoff and re-subscribing
/// from the applied epoch — the WAL catch-up makes the resume
/// exactly-once. Only unhealable faults stop the thread: a truncated
/// epoch history, a gap or apply failure (corrupt stream — serving a
/// torn state is worse than serving a stale prefix), or an exhausted
/// reconnect budget.
fn apply_loop<C, V, const D: usize>(
    addr: &str,
    config: ReplicaConfig,
    initial: EpochStream<D, V>,
    table: &ShardedTable<C, V, D>,
    shared: &Shared,
) where
    C: SpaceFillingCurve<D> + Send + Sync + 'static,
    V: Clone + Send + Sync + WalCodec + 'static,
{
    // Jitter salt: same derivation as the client's, so backoff replays
    // deterministically for a given address.
    let mut salt = 0xcbf2_9ce4_8422_2325u64;
    for b in addr.bytes() {
        salt = (salt ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let mut stream = Some(initial);
    // Consecutive failed reconnect attempts; reset by every applied
    // epoch, so only an actually-unreachable transactor exhausts it.
    let mut attempt: u32 = 0;
    while !shared.stopping() {
        let mut live = match stream.take() {
            Some(live) => live,
            None => {
                if attempt >= config.reconnect.max_retries {
                    let last = shared
                        .last_error
                        .lock()
                        .expect("error slot poisoned")
                        .clone();
                    shared.park(last.unwrap_or(SfcError::ConnectionLost {
                        context: format!("reconnect budget exhausted after {attempt} attempts"),
                    }));
                    return;
                }
                backoff_sleep(shared, config.reconnect.backoff(attempt, salt));
                if shared.stopping() {
                    return;
                }
                attempt += 1;
                // Resume from the applied epoch: the server replays
                // `(applied, start_epoch]` from its WAL, then the live
                // feed takes over — exactly-once, no replica-side log.
                match Client::<C, V, D>::connect_with(addr, config.net)
                    .and_then(|c| c.subscribe_epochs(table.version_epoch()))
                {
                    Ok(live) => {
                        shared.reconnects.fetch_add(1, Ordering::AcqRel);
                        live
                    }
                    Err(e) => {
                        if is_terminal(&e) {
                            shared.park(e);
                            return;
                        }
                        shared.note_error(&e);
                        continue;
                    }
                }
            }
        };
        shared.set_state(STATE_STREAMING);
        // Drain this stream until it dies or the replica stops.
        let stream_fault = loop {
            if shared.stopping() {
                return;
            }
            match live.poll(POLL_INTERVAL) {
                Ok(None) => continue,
                Ok(Some(EpochEvent::Epoch {
                    epoch,
                    durable_epoch,
                    ops,
                })) => {
                    let expect = table.version_epoch() + 1;
                    if epoch != expect {
                        shared.park(SfcError::Storage {
                            context: format!("epoch stream gap: got {epoch}, expected {expect}"),
                        });
                        return;
                    }
                    if let Err(e) = table.apply_batch(ops) {
                        shared.park(e);
                        return;
                    }
                    shared.durable.store(durable_epoch, Ordering::Release);
                    attempt = 0;
                }
                Ok(Some(EpochEvent::Lagged)) => {
                    // The transactor cut us off for falling behind. Not
                    // fatal under self-healing: re-subscribing from the
                    // applied epoch is precisely the catch-up protocol.
                    break SfcError::Unavailable {
                        context: "subscription lagged out; re-subscribing from applied".into(),
                    };
                }
                Err(e) => {
                    if is_terminal(&e) {
                        shared.park(e);
                        return;
                    }
                    break e;
                }
            }
        };
        shared.note_error(&stream_fault);
        if config.reconnect.max_retries == 0 {
            // Fail-stop mode: park the original stream fault unchanged.
            shared.park(stream_fault);
            return;
        }
        shared.set_state(STATE_RECONNECTING);
    }
}
