//! Read replicas: a [`ShardedTable`] kept in lockstep with a remote
//! transactor by replaying its committed epoch stream.
//!
//! A [`Replica`] connects a [`Client`] subscription
//! ([`Client::subscribe_epochs`]) to the same `apply_batch` path
//! recovery uses: each [`EpochEvent::Epoch`] frame is applied as one
//! batch, bumping the table's version epoch to exactly the epoch number
//! the transactor committed — so the replica's MVCC window is, epoch
//! for epoch, the transactor's history, and [`Replica::query_as_of`]
//! answers time-travel reads with no WAL of its own.
//!
//! **Consistency model: epoch-prefix.** A replica's visible state is
//! always *some committed epoch prefix* of the transactor's history —
//! never a torn batch, never reordered — because epochs arrive in
//! order, without gaps (WAL catch-up first, then the live feed) and
//! apply atomically per batch. Lag is observable, not hidden:
//! [`Replica::lag`] is the distance between the transactor's durable
//! epoch (shipped with every frame) and the replica's applied epoch.

use crate::client::{Client, EpochEvent};
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::RectQuery;
use sfc_engine::EngineConfig;
use sfc_index::{DiskModel, Planner, QueryOptions, QueryResult, ShardedTable, WalCodec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the apply thread blocks on the stream before re-checking
/// its stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A read replica of a remote transactor. Created by
/// [`Replica::start`]; queries are served from the local table while a
/// background thread replays the epoch stream into it.
pub struct Replica<C, V, const D: usize>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    table: Arc<ShardedTable<C, V, D>>,
    planner: Planner,
    /// Transactor durable epoch as of the last received frame.
    durable: Arc<AtomicU64>,
    /// Raised when the stream dies (lag cutoff, transport loss); the
    /// error is parked in `fault`.
    failed: Arc<AtomicBool>,
    fault: Arc<Mutex<Option<SfcError>>>,
    stop: Arc<AtomicBool>,
    apply: Option<JoinHandle<()>>,
}

impl<C, V, const D: usize> Replica<C, V, D>
where
    C: SpaceFillingCurve<D> + Send + Sync + 'static,
    V: Clone + Send + Sync + WalCodec + 'static,
{
    /// Connects to a transactor's server at `addr`, subscribes from
    /// epoch 0, and starts replaying into a fresh empty table.
    ///
    /// `curve` must equal the transactor's curve (keys are derived from
    /// points identically on both sides); `shards` is free to differ —
    /// like recovery, replication re-partitions.
    ///
    /// # Errors
    /// On connection failure or a table-build failure.
    pub fn start(
        addr: &str,
        curve: C,
        model: DiskModel,
        shards: usize,
        config: &EngineConfig,
    ) -> Result<Self, SfcError> {
        let mut table = ShardedTable::build(curve, Vec::new(), model, shards)?;
        table.set_retention(config.retention);
        let planner = Planner::new(model);
        let stream = Client::<C, V, D>::connect(addr)?.subscribe_epochs(0)?;
        let table = Arc::new(table);
        let durable = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicBool::new(false));
        let fault = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        let apply = {
            let table = Arc::clone(&table);
            let durable = Arc::clone(&durable);
            let failed = Arc::clone(&failed);
            let fault = Arc::clone(&fault);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || apply_loop(stream, &table, &durable, &failed, &fault, &stop))
        };
        Ok(Replica {
            table,
            planner,
            durable,
            failed,
            fault,
            stop,
            apply: Some(apply),
        })
    }

    /// The highest epoch applied locally — the epoch every read
    /// observes (or a later one, if a frame lands mid-call).
    pub fn applied_epoch(&self) -> u64 {
        self.table.version_epoch()
    }

    /// The transactor's fsync-confirmed epoch as of the last received
    /// frame — the durable frontier this replica is chasing.
    pub fn durable_epoch(&self) -> u64 {
        self.durable.load(Ordering::Acquire)
    }

    /// Replication lag in epochs: [`durable_epoch`](Self::durable_epoch)
    /// minus [`applied_epoch`](Self::applied_epoch), floored at zero (a
    /// replica can briefly run *ahead* of the durable frontier when the
    /// transactor pipelines commits).
    pub fn lag(&self) -> u64 {
        self.durable_epoch().saturating_sub(self.applied_epoch())
    }

    /// Whether the stream has died (lag cutoff or transport failure).
    /// A failed replica keeps serving its last applied prefix;
    /// [`take_fault`](Self::take_fault) retrieves the cause.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// The error that killed the stream, if any (consumes it).
    pub fn take_fault(&self) -> Option<SfcError> {
        self.fault.lock().expect("fault slot poisoned").take()
    }

    /// Point lookup against the applied prefix. Epoch-boundary
    /// consistent: pending transactor writes are invisible until their
    /// epoch arrives.
    ///
    /// # Errors
    /// If `p` lies outside the universe.
    pub fn get(&self, p: Point<D>) -> Result<Option<V>, SfcError> {
        Ok(self.table.get(p)?.map(|guard| guard.cloned()))
    }

    /// Rectangle query against the applied prefix, through the
    /// replica's own adaptive planner (each replica learns its own I/O
    /// statistics).
    ///
    /// # Errors
    /// If the query exceeds the universe.
    pub fn query(&self, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        self.table
            .query_rect(q, &QueryOptions::planned(&self.planner))
    }

    /// Time-travel read against a past applied epoch, answered from the
    /// replica's retention window.
    ///
    /// # Errors
    /// If the epoch is no longer retained (or not yet applied), or the
    /// query exceeds the universe.
    pub fn query_as_of(&self, epoch: u64, q: &RectQuery<D>) -> Result<QueryResult<D, V>, SfcError> {
        match self.table.snapshot_at(epoch) {
            Some(snapshot) => snapshot.query_rect(q),
            None => Err(SfcError::Storage {
                context: format!(
                    "epoch {epoch} is not in the replica's retention window (applied: {})",
                    self.applied_epoch()
                ),
            }),
        }
    }

    /// Total records in the applied prefix.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the applied prefix holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops the apply thread and drops the subscription.
    pub fn stop(mut self) {
        self.stop_and_join();
    }
}

impl<C, V, const D: usize> Replica<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.apply.take() {
            let _ = h.join();
        }
    }
}

impl<C, V, const D: usize> Drop for Replica<C, V, D>
where
    C: SpaceFillingCurve<D>,
    V: Clone + Send + Sync + WalCodec,
{
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The replay loop: apply each epoch frame as one batch, enforcing
/// gapless, in-order delivery. Any violation (or stream death) parks
/// the error and stops — serving a torn or reordered state is worse
/// than serving a stale prefix.
fn apply_loop<C, V, const D: usize>(
    mut stream: crate::client::EpochStream<D, V>,
    table: &ShardedTable<C, V, D>,
    durable: &AtomicU64,
    failed: &AtomicBool,
    fault: &Mutex<Option<SfcError>>,
    stop: &AtomicBool,
) where
    C: SpaceFillingCurve<D> + Send + Sync,
    V: Clone + Send + Sync + WalCodec,
{
    let park = |e: SfcError| {
        *fault.lock().expect("fault slot poisoned") = Some(e);
        failed.store(true, Ordering::Release);
    };
    while !stop.load(Ordering::Acquire) {
        match stream.poll(POLL_INTERVAL) {
            Ok(None) => continue,
            Ok(Some(EpochEvent::Epoch {
                epoch,
                durable_epoch,
                ops,
            })) => {
                let expect = table.version_epoch() + 1;
                if epoch != expect {
                    park(SfcError::Storage {
                        context: format!("epoch stream gap: got {epoch}, expected {expect}"),
                    });
                    return;
                }
                if let Err(e) = table.apply_batch(ops) {
                    park(e);
                    return;
                }
                durable.store(durable_epoch, Ordering::Release);
            }
            Ok(Some(EpochEvent::Lagged)) => {
                park(SfcError::Storage {
                    context: "subscription lagged out; re-subscribe and catch up".into(),
                });
                return;
            }
            Err(e) => {
                park(e);
                return;
            }
        }
    }
}
