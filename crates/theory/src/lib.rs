//! # sfc-theory
//!
//! The closed-form results of the Onion Curve paper, as executable
//! formulas:
//!
//! * **Theorem 1** ([`onion2d_average_clustering`]) — the 2D onion curve's
//!   exact average clustering, with the paper's error bars;
//! * **Lemmas 7–8, Theorems 2–3** ([`lemma7_lambda`], [`lemma8_t`],
//!   [`continuous_lower_bound_2d`], [`general_lower_bound_2d`]) — 2D lower
//!   bounds for continuous and arbitrary SFCs;
//! * **Theorem 4** ([`onion3d_average_clustering`]) — 3D onion upper bound;
//! * **Theorems 5–6** ([`continuous_lower_bound_3d`],
//!   [`general_lower_bound_3d`]) — 3D lower bounds;
//! * **Table II** ([`ratios`]) — approximation-ratio case formulas, whose
//!   maxima reproduce the paper's headline constants **2.32** (2D) and
//!   **3.4** (3D).
//!
//! Everything here is pure arithmetic (no dependencies); the workspace's
//! integration tests check these formulas against the *measured* clustering
//! numbers produced by `sfc-clustering`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod lb2d;
mod lb3d;
mod onion2d;
mod onion3d;
pub mod ratios;

pub use lb2d::{continuous_lower_bound_2d, general_lower_bound_2d, lemma7_lambda, lemma8_t};
pub use lb3d::{continuous_lower_bound_3d, general_lower_bound_3d};
pub use onion2d::onion2d_average_clustering;
pub use onion3d::onion3d_average_clustering;
pub use ratios::{
    eta_onion_2d_case2, eta_onion_2d_case3, eta_onion_2d_case4, eta_onion_2d_case5,
    eta_onion_3d_case3, eta_onion_3d_case5, fit_power_law, grid_max, hilbert_growth_exponent,
    ETA_2D_CUBE_BOUND, ETA_3D_CUBE_BOUND,
};

/// A value with an explicit absolute-error bar, as stated by the paper's
/// theorems (e.g. Theorem 1's `|ε1| ≤ 5`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Approx {
    /// Main term.
    pub value: f64,
    /// Bound on the absolute error of `value`.
    pub abs_err: f64,
}

impl Approx {
    /// Whether `observed` is consistent with this approximation, up to an
    /// extra slack.
    pub fn contains(&self, observed: f64, slack: f64) -> bool {
        (observed - self.value).abs() <= self.abs_err + slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_contains_respects_error_bar() {
        let a = Approx {
            value: 10.0,
            abs_err: 2.0,
        };
        assert!(a.contains(11.9, 0.0));
        assert!(!a.contains(12.1, 0.0));
        assert!(a.contains(12.1, 0.5));
    }
}
