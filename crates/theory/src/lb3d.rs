//! Theorems 5 and 6: lower bounds on three-dimensional clustering for cube
//! query sets.

/// Theorem 5: lower bound on the average clustering number of any
/// *continuous* SFC for the translation set of an `ℓ³` cube
/// (`L = side − ℓ + 1`, `m = side/2`):
///
/// * `2 ≤ ℓ ≤ m`: `LB = ℓ² + (1/L³)[(29/40)ℓ⁵ + (15/8)mℓ⁴ − 3m²ℓ³] + o(ℓ²)`;
/// * `ℓ > m`: `LB = (3/5)L² − (3/2)L + ε`, `0 ≤ ε ≤ 1`.
///
/// The bracket reproduces the paper's case-III ratio algebra exactly: with
/// `ℓ = 2φm` it yields `η(Q,O) = 2 + (3/4)φ(1/2−φ)(4+3φ) /
/// [(1−φ)³ + (φ/40)(29φ² + (75/2)φ − 30)]`, which peaks at 3.4 for
/// φ = 0.3967 — the paper's headline 3D constant (verified in
/// [`crate::ratios`] tests).
pub fn continuous_lower_bound_3d(side: u32, l: u32) -> f64 {
    assert!(l >= 1 && l <= side);
    let s = f64::from(side);
    let m = s / 2.0;
    let lf = f64::from(l);
    let big_l = s - lf + 1.0;
    if 2.0 * lf <= s {
        lf * lf
            + ((29.0 / 40.0) * lf.powi(5) + (15.0 / 8.0) * m * lf.powi(4)
                - 3.0 * m * m * lf.powi(3))
                / big_l.powi(3)
    } else {
        0.6 * big_l * big_l - 1.5 * big_l
    }
}

/// Theorem 6: lower bound for an *arbitrary* 3D SFC — half the continuous
/// bound (up to the paper's `|ε| ≤ 2`).
pub fn general_lower_bound_3d(side: u32, l: u32) -> f64 {
    0.5 * continuous_lower_bound_3d(side, l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::onion3d::onion3d_average_clustering;

    #[test]
    fn small_cube_bound_is_about_l_squared() {
        let lb = continuous_lower_bound_3d(512, 4);
        assert!((lb - 16.0).abs() < 1.0, "lb = {lb}");
    }

    #[test]
    fn bound_stays_below_onion_average() {
        // The onion curve is a continuous-ish curve achieving within 2× of
        // this bound; the bound must not exceed the onion's average (up to
        // the error bars).
        for l in [8u32, 32, 100, 200, 256, 300, 400, 500] {
            let lb = continuous_lower_bound_3d(512, l);
            let onion = onion3d_average_clustering(512, l);
            assert!(
                lb <= onion.value + onion.abs_err + 1.0,
                "l={l}: LB {lb} vs onion {}",
                onion.value
            );
        }
    }

    #[test]
    fn near_full_cube_bound_is_constant_in_side() {
        let a = continuous_lower_bound_3d(512, 512 - 9);
        let b = continuous_lower_bound_3d(2048, 2048 - 9);
        assert_eq!(a, b);
        assert!((a - (0.6 * 100.0 - 15.0)).abs() < 1e-9);
    }

    #[test]
    fn general_is_half_continuous() {
        assert_eq!(
            general_lower_bound_3d(128, 40),
            0.5 * continuous_lower_bound_3d(128, 40)
        );
    }
}
