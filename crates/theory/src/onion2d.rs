//! Theorem 1: the average clustering number of the two-dimensional onion
//! curve over all translations of an `ℓ1 × ℓ2` rectangle.

use crate::Approx;

/// Theorem 1 of the paper. `side` is `√n` (assumed even in the paper),
/// `m = side/2`, `L_i = side − ℓ_i + 1`. The result carries the paper's
/// explicit error bars (`|ε1| ≤ 5`, `|ε2| ≤ 2`).
///
/// The case `ℓ1 ≤ m < ℓ2` is not covered by the theorem's two cases; the
/// paper's remark approximates it by the cube `ℓ1 = ℓ2 = m` (`c ≈ 2m/3`),
/// with an extra error proportional to the constant side adjustments. We
/// return that approximation with a correspondingly padded error bar.
///
/// Arguments are symmetric: `ℓ1` and `ℓ2` are sorted internally (the onion
/// curve is almost symmetric in its two dimensions — footnote †).
pub fn onion2d_average_clustering(side: u32, l1: u32, l2: u32) -> Approx {
    assert!(l1 >= 1 && l2 >= 1 && l1 <= side && l2 <= side);
    let (l1, l2) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
    let s = f64::from(side);
    let m = s / 2.0;
    let (l1f, l2f) = (f64::from(l1), f64::from(l2));
    let (big_l1, big_l2) = (s - l1f + 1.0, s - l2f + 1.0);
    if l2f <= m {
        // Case 1: ℓ2 ≤ m.
        let bracket = (2.0 / 3.0) * l2f.powi(3) - 3.5 * l1f * l2f.powi(2) + 2.5 * l1f.powi(2) * l2f
            - m * (l2f - l1f) * (l2f - 3.0 * l1f);
        Approx {
            value: 0.5 * (l1f + l2f) + bracket / (big_l1 * big_l2),
            abs_err: 5.0,
        }
    } else if l1f > m {
        // Case 2: m < ℓ1.
        Approx {
            value: big_l1 - big_l2 + (2.0 / 3.0) * big_l2 * big_l2 / big_l1 + 2.0,
            abs_err: 2.0,
        }
    } else {
        // Gap case ℓ1 ≤ m < ℓ2: the paper's remark — approximate by the
        // cube ℓ1 = ℓ2 = m, c(Q', O) ~ 2m/3, with O(1) slack per unit of
        // side adjustment.
        Approx {
            value: 2.0 * m / 3.0,
            abs_err: (l2f - l1f) + 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cube_is_about_l() {
        // For ℓ1 = ℓ2 = ℓ ≪ side, c ≈ ℓ (plus lower-order terms).
        let a = onion2d_average_clustering(1024, 8, 8);
        assert!((a.value - 8.0).abs() < 1.0 + a.abs_err, "{}", a.value);
    }

    #[test]
    fn near_full_cube_is_two_thirds_l() {
        // §IV: for ℓ = side − O(1), the onion average is at most 2L/3 + 2.
        let side = 1024;
        let l = side - 9; // L = 10
        let a = onion2d_average_clustering(side, l, l);
        let expect = 2.0 * 10.0 / 3.0;
        assert!((a.value - 2.0 - expect).abs() < 1e-9, "{}", a.value);
    }

    #[test]
    fn arguments_are_symmetric() {
        let a = onion2d_average_clustering(256, 20, 90);
        let b = onion2d_average_clustering(256, 90, 20);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn gap_case_uses_remark() {
        let side = 256;
        let a = onion2d_average_clustering(side, 100, 200);
        assert!((a.value - 2.0 * 128.0 / 3.0).abs() < 1e-9);
        assert!(a.abs_err > 5.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_length() {
        onion2d_average_clustering(16, 0, 4);
    }
}
