//! Theorem 4: upper bounds on the average clustering number of the
//! three-dimensional onion curve for cube query sets.

use crate::Approx;

/// Theorem 4 of the paper, for the translation set of an `ℓ³` cube in a
/// `side³` universe (`L = side − ℓ + 1`):
///
/// * `ℓ ≤ side/2`: `c(Q, O) = ℓ² − (2/5) ℓ⁵ / L³ + o(ℓ²)`;
/// * `ℓ > side/2`: `c(Q, O) ≤ (3/5) L² + (13/4) L − 13/6`.
///
/// The `o(ℓ²)` term is not given explicitly by the paper; the returned
/// error bar is a heuristic lower-order allowance (`4ℓ^{3/2} + 8`) that the
/// reproduction experiments validate empirically.
pub fn onion3d_average_clustering(side: u32, l: u32) -> Approx {
    assert!(l >= 1 && l <= side);
    let s = f64::from(side);
    let lf = f64::from(l);
    let big_l = s - lf + 1.0;
    if 2.0 * lf <= s {
        Approx {
            value: lf * lf - 0.4 * lf.powi(5) / big_l.powi(3),
            abs_err: 4.0 * lf.powf(1.5) + 8.0,
        }
    } else {
        Approx {
            value: 0.6 * big_l * big_l + 3.25 * big_l - 13.0 / 6.0,
            abs_err: 0.0, // stated as an upper bound, not an estimate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cube_is_about_l_squared() {
        // Moon et al. asymptotics: surface / (2d) = 6ℓ²/6 = ℓ².
        let a = onion3d_average_clustering(512, 4);
        assert!((a.value - 16.0).abs() < 1.0, "{}", a.value);
    }

    #[test]
    fn near_full_cube_is_constant_in_side() {
        // For ℓ = side − c the bound depends only on L = c + 1.
        let a = onion3d_average_clustering(512, 512 - 9);
        let b = onion3d_average_clustering(1024, 1024 - 9);
        assert_eq!(a.value, b.value);
        assert!(a.value < 100.0);
    }

    #[test]
    fn upper_branch_formula() {
        let big_l = 10.0_f64;
        let a = onion3d_average_clustering(512, 512 - 9);
        assert!((a.value - (0.6 * big_l * big_l + 3.25 * big_l - 13.0 / 6.0)).abs() < 1e-9);
    }
}
