//! Table II of the paper: approximation-ratio formulas `η(Q, O)` of the
//! onion curve for near-cube query families, parameterized by
//! `ℓ_i = φ_i (d√n)^µ + ψ_i`.

/// Case III, d = 2 (`µ = 1`, `φ1 = φ2 = φ ≤ 1/2`):
/// `η(φ) = 2 (1 + φ(1/2 − φ) / (1 − (5/2)φ + (5/3)φ²))`.
pub fn eta_onion_2d_case3(phi: f64) -> f64 {
    assert!(phi > 0.0 && phi <= 0.5);
    2.0 * (1.0 + phi * (0.5 - phi) / (1.0 - 2.5 * phi + (5.0 / 3.0) * phi * phi))
}

/// Case IV, d = 2 (`µ = 1`, `1/2 < φ1 ≤ φ2 < 1`):
/// `η ≤ 2 + 3 ((φ2 − φ1)/(1 − φ2))²`.
pub fn eta_onion_2d_case4(phi1: f64, phi2: f64) -> f64 {
    assert!(0.5 < phi1 && phi1 <= phi2 && phi2 < 1.0);
    2.0 + 3.0 * ((phi2 - phi1) / (1.0 - phi2)).powi(2)
}

/// Case V, d = 2 (`µ = 1`, `φ = 1`, `ψ1 ≤ ψ2 ≤ 0`):
/// `η ≤ 2 + 3 ((ψ2 − ψ1)/(1 − ψ2))²`.
pub fn eta_onion_2d_case5(psi1: f64, psi2: f64) -> f64 {
    assert!(psi1 <= psi2 && psi2 <= 0.0);
    2.0 + 3.0 * ((psi2 - psi1) / (1.0 - psi2)).powi(2)
}

/// Case II, d = 2 (`0 < µ < 1`): `η ≤ 1 + φ2/φ1`.
pub fn eta_onion_2d_case2(phi1: f64, phi2: f64) -> f64 {
    assert!(phi1 > 0.0 && phi2 >= phi1);
    1.0 + phi2 / phi1
}

/// Case III, d = 3 (`µ = 1`, `φ ≤ 1/2`):
/// `η(φ) = 2 + (3/4)φ(1/2 − φ)(4 + 3φ) /
///          [(1 − φ)³ + (φ/40)(29φ² + (75/2)φ − 30)]`.
pub fn eta_onion_3d_case3(phi: f64) -> f64 {
    assert!(phi > 0.0 && phi <= 0.5);
    let num = 0.75 * phi * (0.5 - phi) * (4.0 + 3.0 * phi);
    let den = (1.0 - phi).powi(3) + (phi / 40.0) * (29.0 * phi * phi + 37.5 * phi - 30.0);
    2.0 + num / den
}

/// Case V, d = 3 (`µ = 1`, `φ = 1`, `ψ ≤ 0`):
/// `η ≤ 2 + (95/6) / (−ψ − 3/2)`.
pub fn eta_onion_3d_case5(psi: f64) -> f64 {
    assert!(psi < -1.5, "formula requires L − 5/2 > 0");
    2.0 + (95.0 / 6.0) / (-psi - 1.5)
}

/// The paper's headline 2D constant: `max_φ η_2D(φ) ≤ 2.32`.
pub const ETA_2D_CUBE_BOUND: f64 = 2.32;

/// The paper's headline 3D constant: `max_φ η_3D(φ) ≤ 3.4`.
pub const ETA_3D_CUBE_BOUND: f64 = 3.4;

/// Maximizes a unimodal-ish function on `[lo, hi]` by dense grid search
/// (used to verify the paper's maxima; precision ~1e-6 on φ).
pub fn grid_max(lo: f64, hi: f64, steps: usize, f: impl Fn(f64) -> f64) -> (f64, f64) {
    let mut best_x = lo;
    let mut best = f64::NEG_INFINITY;
    for i in 0..=steps {
        let x = lo + (hi - lo) * i as f64 / steps as f64;
        let v = f(x);
        if v > best {
            best = v;
            best_x = x;
        }
    }
    (best_x, best)
}

/// Lemma 5's growth model for the Hilbert curve on near-full cubes:
/// `c(Q, H) = Ω(n^{(d−1)/d})`, i.e. exponent `(d−1)/d` in the universe
/// size `n`.
pub fn hilbert_growth_exponent(d: u32) -> f64 {
    assert!(d >= 1);
    f64::from(d - 1) / f64::from(d)
}

/// Least-squares power-law fit `y ≈ a · x^b` on log-log scale; returns
/// `(b, r²)`. Used by the Table I experiment to confirm measured growth
/// exponents.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ly.iter().map(|&y| (y - my) * (y - my)).sum();
    let b = sxy / sxx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (b, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_2d_peaks_at_2_32_at_phi_0_355() {
        // The paper: "the rightmost expression achieves its maximum value
        // 2.32 when φ = 0.355".
        let (phi, eta) = grid_max(1e-6, 0.5, 2_000_000, eta_onion_2d_case3);
        assert!((phi - 0.355).abs() < 2e-3, "argmax φ = {phi}");
        assert!(eta <= ETA_2D_CUBE_BOUND + 5e-4, "max η = {eta}");
        assert!(eta > 2.31, "max η = {eta}");
    }

    #[test]
    fn eta_3d_peaks_at_3_4_at_phi_0_3967() {
        // The paper: "maximum value of 3.4 when φ = 0.3967".
        let (phi, eta) = grid_max(1e-6, 0.5, 2_000_000, eta_onion_3d_case3);
        assert!((phi - 0.3967).abs() < 2e-3, "argmax φ = {phi}");
        assert!(eta <= ETA_3D_CUBE_BOUND + 2e-2, "max η = {eta}");
        assert!(eta > 3.35, "max η = {eta}");
    }

    #[test]
    fn eta_cases_reduce_to_2_for_equal_phis() {
        // Table II: the ℓ1 = ℓ2 column is 2 for 0 < µ < 1 and for the
        // symmetric µ = 1 cases.
        assert_eq!(eta_onion_2d_case2(0.7, 0.7), 2.0);
        assert_eq!(eta_onion_2d_case4(0.6, 0.6), 2.0);
        assert_eq!(eta_onion_2d_case5(-3.0, -3.0), 2.0);
    }

    #[test]
    fn eta_3d_case5_is_at_most_3_for_psi_under_minus_20() {
        // "η(Q,O) ≤ 3 when ψ ≤ −20, i.e. ℓ ≤ 3√n − 20."
        assert!(eta_onion_3d_case5(-20.0) <= 3.0 + 1e-9);
        assert!(eta_onion_3d_case5(-100.0) < 2.2);
    }

    #[test]
    fn hilbert_exponents() {
        assert_eq!(hilbert_growth_exponent(2), 0.5);
        assert!((hilbert_growth_exponent(3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_fit_recovers_exponent() {
        let xs: Vec<f64> = (1..=8).map(|k| f64::from(1 << k)).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(0.5)).collect();
        let (b, r2) = fit_power_law(&xs, &ys);
        assert!((b - 0.5).abs() < 1e-9);
        assert!(r2 > 0.999999);
    }

    #[test]
    fn power_law_fit_flat_series_has_zero_exponent() {
        let xs = [16.0, 64.0, 256.0, 1024.0];
        let ys = [7.0, 7.0, 7.0, 7.0];
        let (b, _) = fit_power_law(&xs, &ys);
        assert!(b.abs() < 1e-9);
    }
}
