//! Lower bounds on two-dimensional clustering: Lemmas 7–8 and Theorems 2–3
//! of the paper.

/// Lemma 7's `τ(k, ℓ) = min(k + 1, ℓ, 2m + 1 − ℓ)` (with `2m = side`).
#[inline]
fn tau(side: u32, k: u32, l: u32) -> u64 {
    u64::from(k + 1)
        .min(u64::from(l))
        .min(u64::from(side) + 1 - u64::from(l))
}

/// Lemma 7's `h1(t, ℓ)`: 1 if `t ≤ ℓ − 1`, else 2.
#[inline]
fn h1(t: u32, l: u32) -> u64 {
    if t < l {
        1
    } else {
        2
    }
}

/// Lemma 7's `h2(t, ℓ)`: 1 if `t ≤ side − ℓ`, else 0.
#[inline]
fn h2(side: u32, t: u32, l: u32) -> u64 {
    if t <= side - l {
        1
    } else {
        0
    }
}

/// Lemma 7: the minimum neighboring crossing number `λ(i, j)` for a cell in
/// the lower-left quadrant (`0 ≤ i, j ≤ m−1`) of an even-sided universe,
/// for the translation set of an `ℓ1 × ℓ2` rectangle with `ℓ1 ≤ ℓ2` and
/// either `ℓ2 ≤ m` or `ℓ1 > m`.
pub fn lemma7_lambda(side: u32, l1: u32, l2: u32, i: u32, j: u32) -> u64 {
    let m = side / 2;
    debug_assert!(side.is_multiple_of(2) && i < m && j < m);
    debug_assert!(l1 <= l2);
    if l2 <= m {
        (h1(i, l1) * tau(side, j, l2)).min(h1(j, l2) * tau(side, i, l1))
    } else {
        debug_assert!(l1 > m, "Lemma 7 covers ℓ2 ≤ m or ℓ1 > m only");
        (h2(side, i, l1) * tau(side, j, l2)).min(h2(side, j, l2) * tau(side, i, l1))
    }
}

/// Lemma 8: the closed form of `T = Σ_{i,j} λ(i, j)` over the whole
/// universe, for `ℓ1 ≤ ℓ2` with `ℓ2 ≤ m` or `ℓ1 > m`.
///
/// The paper's expression is asymptotic: it deviates from the direct
/// summation of Lemma 7 (and from the numeric `TranslationSet::lambda_sum`)
/// by `O(side)` boundary terms, which the theorems absorb into their `ε`
/// slack. The tests here pin that deviation to a linear envelope; the
/// workspace integration tests compare against the numeric machinery.
pub fn lemma8_t(side: u32, l1: u32, l2: u32) -> f64 {
    assert!(side.is_multiple_of(2), "Lemma 8 assumes an even side");
    assert!(l1 >= 1 && l2 >= 1 && l1 <= l2 && l2 <= side);
    let m = f64::from(side) / 2.0;
    let (l1f, l2f) = (f64::from(l1), f64::from(l2));
    if l2f <= m {
        if 2.0 * l1f <= l2f {
            // Case ℓ1 ≤ ℓ2/2.
            4.0 * (l1f / 6.0 - l1f.powi(2) / 2.0 + l1f.powi(3) / 12.0 - l1f * l2f / 2.0
                + l1f.powi(2) * l2f / 2.0
                + 1.5 * l1f * m
                - 1.25 * l1f.powi(2) * m
                - l1f * l2f * m
                + 2.0 * l1f * m * m)
        } else {
            // Case ℓ1 > ℓ2/2.
            4.0 * (l1f / 6.0 - l1f.powi(2) / 2.0
                + l1f.powi(3) / 12.0
                + l1f * l2f / 2.0
                + 1.5 * l1f.powi(2) * l2f
                - l2f.powi(2) / 2.0
                - l1f * l2f.powi(2)
                + l2f.powi(3) / 4.0
                + l1f * m / 2.0
                - 2.25 * l1f.powi(2) * m
                + l2f * m / 2.0
                - l2f.powi(2) * m / 4.0
                + 2.0 * l1f * m * m)
        }
    } else {
        assert!(l1f > m, "Lemma 8 covers ℓ2 ≤ m or ℓ1 > m only");
        let s = f64::from(side);
        let big_l1 = s - l1f + 1.0;
        let big_l2 = s - l2f + 1.0;
        (2.0 / 3.0) * (1.0 + 3.0 * big_l1 - big_l2) * big_l2 * (1.0 + big_l2)
    }
}

/// Theorem 2: lower bound on the average clustering number of any
/// *continuous* SFC for the translation set of an `ℓ1 × ℓ2` rectangle:
/// `LB = T / (2|Q|) − ε` with `0 ≤ ε ≤ 1`; we return the main term
/// `T / (2|Q|)`.
pub fn continuous_lower_bound_2d(side: u32, l1: u32, l2: u32) -> f64 {
    let (l1, l2) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
    let s = f64::from(side);
    let q = (s - f64::from(l1) + 1.0) * (s - f64::from(l2) + 1.0);
    lemma8_t(side, l1, l2) / (2.0 * q)
}

/// Theorem 3: lower bound for an *arbitrary* SFC — half the continuous
/// bound.
pub fn general_lower_bound_2d(side: u32, l1: u32, l2: u32) -> f64 {
    0.5 * continuous_lower_bound_2d(side, l1, l2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force T from Lemma 7 plus the four-fold symmetry of §V-A.
    fn t_from_lemma7(side: u32, l1: u32, l2: u32) -> u64 {
        let m = side / 2;
        let mut total = 0u64;
        for i in 0..side {
            for j in 0..side {
                // Map to the canonical quadrant by symmetry.
                let ci = i.min(side - 1 - i);
                let cj = j.min(side - 1 - j);
                let _ = m;
                total += lemma7_lambda(side, l1, l2, ci, cj);
            }
        }
        total
    }

    #[test]
    fn lemma8_tracks_lemma7_summation_small_shapes() {
        // The closed form is asymptotic: allow the paper's O(side)
        // boundary-term slack, which shrinks relative to T as sizes grow.
        for side in [8u32, 12, 16, 32] {
            let m = side / 2;
            for l1 in 1..=m {
                for l2 in l1..=m {
                    let closed = lemma8_t(side, l1, l2);
                    let brute = t_from_lemma7(side, l1, l2) as f64;
                    let slack = 8.0 * f64::from(side) * f64::from(l1.min(8));
                    assert!(
                        (closed - brute).abs() <= slack,
                        "side {side} l1 {l1} l2 {l2}: closed {closed} vs brute {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma8_tracks_lemma7_summation_large_shapes() {
        for side in [8u32, 12, 16] {
            let m = side / 2;
            for l1 in m + 1..=side {
                for l2 in l1..=side {
                    let closed = lemma8_t(side, l1, l2);
                    let brute = t_from_lemma7(side, l1, l2) as f64;
                    let slack = 8.0 * f64::from(side);
                    assert!(
                        (closed - brute).abs() <= slack,
                        "side {side} l1 {l1} l2 {l2}: closed {closed} vs brute {brute}"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma8_relative_error_vanishes_at_scale() {
        // At side 256 the closed form and the quadrant summation agree to
        // within a few percent across the ℓ ≤ m regime.
        let side = 256u32;
        for (l1, l2) in [(16u32, 16u32), (16, 64), (64, 64), (32, 128), (128, 128)] {
            let closed = lemma8_t(side, l1, l2);
            let brute = t_from_lemma7(side, l1, l2) as f64;
            let rel = (closed - brute).abs() / brute;
            assert!(
                rel < 0.05,
                "side {side} l1 {l1} l2 {l2}: rel err {rel:.4} (closed {closed}, brute {brute})"
            );
        }
    }

    #[test]
    fn lower_bound_orderings() {
        // General bound is half the continuous one.
        let c = continuous_lower_bound_2d(64, 10, 12);
        let g = general_lower_bound_2d(64, 10, 12);
        assert!((g - 0.5 * c).abs() < 1e-12);
        assert!(c > 0.0);
    }

    #[test]
    fn small_cube_bound_is_about_l() {
        // For ℓ ≪ side the continuous bound approaches ℓ (the optimum for
        // constant-size cubes — Table II, µ = 0 row has η = 1, and the onion
        // average is ≈ ℓ).
        let lb = continuous_lower_bound_2d(1 << 10, 8, 8);
        assert!((lb - 8.0).abs() < 0.5, "lb = {lb}");
    }
}
