//! # sfc-workloads
//!
//! Deterministic spatial data generators for the index examples and
//! benchmarks. The Onion Curve paper motivates SFCs with spatial-database
//! workloads (distributed partitioning, similarity search, load balancing —
//! §I); these generators synthesize the point sets those applications index.
//!
//! All generators take an explicit RNG so every experiment is reproducible
//! from a seed.
//!
//! Beyond static point sets, [`mixed_op_stream`] generates the *serving*
//! workload: an interleaved stream of point gets, rectangle queries, and
//! writes with Zipf-skewed targets, consumed by the `sfc-engine` crate's
//! operation API and the `engine/mixed_rw` benchmark. [`CrashSchedule`]
//! cuts such a stream at deterministic crash points, driving the durable
//! engine's crash-consistency tests; [`FaultStore`] / [`FaultInjector`]
//! extend the same idea below the storage API, injecting torn pages,
//! full-disk writes, short reads, and failed fsyncs into any real
//! [`PageStore`](sfc_index::PageStore) at scheduled operation counts;
//! [`ChaosProxy`] / [`ChaosInjector`] lift it to the transport,
//! injecting connection kills, stalls, and split writes into any TCP
//! stream at scheduled chunk counts — the proof layer behind the
//! network stack's self-healing replication tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chaos;
mod crash;
mod fault;
mod ops;
mod points;

pub use chaos::{ChaosInjector, ChaosProxy, NetFault};
pub use crash::CrashSchedule;
pub use fault::{faulty_file_factory, Fault, FaultInjector, FaultStore};
pub use ops::{client_streams, mixed_op_stream, OpMix, StreamOp};
pub use points::{
    clustered_points, diagonal_points, grid_points, hotspot_points, uniform_points, zipf_points,
    Dataset, ZipfSampler,
};
