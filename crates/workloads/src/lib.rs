//! # sfc-workloads
//!
//! Deterministic spatial data generators for the index examples and
//! benchmarks. The Onion Curve paper motivates SFCs with spatial-database
//! workloads (distributed partitioning, similarity search, load balancing —
//! §I); these generators synthesize the point sets those applications index.
//!
//! All generators take an explicit RNG so every experiment is reproducible
//! from a seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod points;

pub use points::{
    clustered_points, diagonal_points, grid_points, hotspot_points, uniform_points, zipf_points,
    Dataset,
};
