//! Deterministic network chaos — [`crate::FaultInjector`]'s discipline
//! lifted from the I/O stream to the transport.
//!
//! [`FaultStore`](crate::FaultStore) interposes scheduled media faults
//! between an engine and its pages; [`ChaosProxy`] interposes scheduled
//! *network* faults between a client (or replica) and its server: a TCP
//! proxy whose forwarding threads consult a shared [`ChaosInjector`]
//! schedule — connection kills, stalls, split writes — and which can
//! sever every live connection at once ([`ChaosProxy::kill_all`], the
//! failover benchmark's hammer).
//!
//! Determinism contract: the injector's clock ticks once per forwarded
//! chunk, shared across every connection and both directions through
//! the same proxy, and a fault scheduled at count `n` fires on the
//! first chunk at or after the `n`-th, exactly once — mirroring
//! [`FaultInjector::schedule`](crate::FaultInjector::schedule). The
//! *schedule* is exactly reproducible from a seed; chunk boundaries
//! (and therefore the precise byte a fault lands on) follow kernel
//! timing, which is exactly the point — the invariants a chaos test
//! pins must hold under **every** interleaving, and the seed regrows
//! the same schedule for a failing run.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a pump thread blocks on its socket before re-checking the
/// stop flag and kill marks — the bound on shutdown/kill latency.
const PUMP_POLL: Duration = Duration::from_millis(10);

/// What a scheduled network fault does to the chunk it strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Sever the proxied connection, both directions, without
    /// forwarding the struck chunk — the receiver sees a clean close or
    /// a torn frame depending on where the stream stood.
    Kill,
    /// Freeze forwarding for the duration before delivering the chunk —
    /// what trips client deadlines and server idle reaps.
    Stall(Duration),
    /// Forward the struck chunk as two byte-level halves with a pause
    /// between — exercises frame reassembly across reads.
    Split,
}

/// One armed fault: strikes the first chunk at or after `at_op` ticks.
#[derive(Clone, Copy, Debug)]
struct Armed {
    at_op: u64,
    fault: NetFault,
}

/// The shared chaos state: one chunk clock plus the faults scheduled
/// against it. Hand clones to a [`ChaosProxy`] (and keep one in the
/// test, for [`Self::injected`] assertions).
#[derive(Debug, Default)]
pub struct ChaosInjector {
    /// Chunks forwarded so far, across all connections and directions.
    ops: AtomicU64,
    /// Faults not yet fired.
    armed: Mutex<Vec<Armed>>,
    /// Faults fired so far.
    injected: AtomicU64,
}

impl ChaosInjector {
    /// An injector with an empty schedule (every chunk passes through
    /// until faults are [`Self::schedule`]d).
    pub fn new() -> Arc<Self> {
        Arc::new(ChaosInjector::default())
    }

    /// Arms `fault` to strike the first forwarded chunk at or after the
    /// `at_op`-th (0-based; callable while the proxy is live, so tests
    /// can arm mid-run).
    pub fn schedule(&self, at_op: u64, fault: NetFault) {
        self.armed
            .lock()
            .expect("chaos schedule poisoned")
            .push(Armed { at_op, fault });
    }

    /// Chunks forwarded so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Faults still armed (scheduled but not yet fired).
    pub fn pending(&self) -> usize {
        self.armed.lock().expect("chaos schedule poisoned").len()
    }

    /// Ticks the clock for one forwarded chunk and returns the fault
    /// striking it, if any. At most one fault fires per chunk (the
    /// earliest-scheduled due one, ties broken by arming order).
    fn tick(&self) -> Option<NetFault> {
        let now = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut armed = self.armed.lock().expect("chaos schedule poisoned");
        let due = armed
            .iter()
            .enumerate()
            .filter(|(_, a)| a.at_op <= now)
            .min_by_key(|(i, a)| (a.at_op, *i))
            .map(|(i, _)| i)?;
        let fired = armed.swap_remove(due);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(fired.fault)
    }
}

/// One proxied connection: the two streams plus a sever mark. Both pump
/// threads hold a clone; [`ChaosProxy::kill_all`] (or a scheduled
/// [`NetFault::Kill`]) shuts both sockets down and marks the pair dead.
struct ConnPair {
    client: TcpStream,
    upstream: TcpStream,
    dead: AtomicBool,
}

impl ConnPair {
    /// Severs both directions. Idempotent.
    fn sever(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.client.shutdown(Shutdown::Both);
        let _ = self.upstream.shutdown(Shutdown::Both);
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }
}

/// A deterministic-chaos TCP proxy: listens on an ephemeral loopback
/// port, forwards every accepted connection to `upstream`, and subjects
/// the forwarded chunks to its [`ChaosInjector`]'s schedule. Point a
/// client or replica at [`ChaosProxy::addr`] instead of the server and
/// the network between them becomes programmable.
pub struct ChaosProxy {
    addr: SocketAddr,
    injector: Arc<ChaosInjector>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, Arc<ConnPair>>>>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts proxying to
    /// `upstream`, consulting `injector` on every forwarded chunk.
    ///
    /// # Errors
    /// If the bind fails.
    pub fn spawn(upstream: &str, injector: Arc<ChaosInjector>) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, Arc<ConnPair>>>> = Arc::new(Mutex::new(HashMap::new()));
        let accept = {
            let upstream = upstream.to_string();
            let injector = Arc::clone(&injector);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(listener, &upstream, injector, stop, conns))
        };
        Ok(ChaosProxy {
            addr,
            injector,
            stop,
            conns,
            accept: Some(accept),
        })
    }

    /// The proxy's listening address, as a `host:port` string a client
    /// or replica connects to.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The injector this proxy consults (the one passed to
    /// [`ChaosProxy::spawn`]).
    pub fn injector(&self) -> &Arc<ChaosInjector> {
        &self.injector
    }

    /// Severs every live proxied connection right now, returning how
    /// many were cut. The upstream server and the proxy both stay up —
    /// this is the "network blip" a self-healing replica must survive,
    /// and the hammer the failover benchmark swings.
    pub fn kill_all(&self) -> usize {
        let mut conns = self.conns.lock().expect("chaos registry poisoned");
        let mut cut = 0;
        for pair in conns.values() {
            if !pair.is_dead() {
                pair.sever();
                cut += 1;
            }
        }
        conns.retain(|_, pair| !pair.is_dead());
        cut
    }

    /// Proxied connections currently alive.
    pub fn live_connections(&self) -> usize {
        let mut conns = self.conns.lock().expect("chaos registry poisoned");
        conns.retain(|_, pair| !pair.is_dead());
        conns.len()
    }

    /// Stops accepting, severs every connection, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.kill_all();
        // Wake the accept loop with a throwaway connection to our port.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: &str,
    injector: Arc<ChaosInjector>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, Arc<ConnPair>>>>,
) {
    let pumps: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    let mut next_id = 0u64;
    while !stop.load(Ordering::Acquire) {
        let Ok((client, _)) = listener.accept() else {
            continue;
        };
        if stop.load(Ordering::Acquire) {
            break; // the shutdown poke itself
        }
        // A refused upstream just drops the inbound side — exactly what
        // a client of a dead server would see.
        let Ok(up) = TcpStream::connect(upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        client.set_nodelay(true).ok();
        up.set_nodelay(true).ok();
        let pair = match (client.try_clone(), up.try_clone()) {
            (Ok(c), Ok(u)) => Arc::new(ConnPair {
                client: c,
                upstream: u,
                dead: AtomicBool::new(false),
            }),
            _ => {
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        conns
            .lock()
            .expect("chaos registry poisoned")
            .insert(next_id, Arc::clone(&pair));
        next_id += 1;
        let spawn_pump = |mut src: TcpStream, mut dst: TcpStream| {
            let injector = Arc::clone(&injector);
            let stop = Arc::clone(&stop);
            let pair = Arc::clone(&pair);
            pumps
                .lock()
                .expect("pump registry poisoned")
                .push(std::thread::spawn(move || {
                    pump(&mut src, &mut dst, &injector, &stop, &pair);
                    pair.sever();
                }));
        };
        spawn_pump(client, up.try_clone().unwrap_or(up));
        // The reverse direction reuses the registered clones.
        if let (Ok(src), Ok(dst)) = (pair.upstream.try_clone(), pair.client.try_clone()) {
            spawn_pump(src, dst);
        } else {
            pair.sever();
        }
    }
    for pair in conns.lock().expect("chaos registry poisoned").values() {
        pair.sever();
    }
    for handle in pumps.into_inner().expect("pump registry poisoned") {
        let _ = handle.join();
    }
}

/// Forwards chunks from `src` to `dst` until either side dies, the pair
/// is severed, or the proxy stops — consulting the injector once per
/// chunk.
fn pump(
    src: &mut TcpStream,
    dst: &mut TcpStream,
    injector: &ChaosInjector,
    stop: &AtomicBool,
    pair: &ConnPair,
) {
    if src.set_read_timeout(Some(PUMP_POLL)).is_err() {
        return;
    }
    let mut chunk = [0u8; 16 * 1024];
    while !stop.load(Ordering::Acquire) && !pair.is_dead() {
        let n = match src.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        match injector.tick() {
            Some(NetFault::Kill) => {
                // Sever without forwarding: whatever frame was in flight
                // is torn on the receiving side.
                pair.sever();
                return;
            }
            Some(NetFault::Stall(d)) => {
                // Freeze in small slices so kills and shutdown stay
                // responsive, then deliver the chunk late.
                let mut left = d;
                while !left.is_zero() && !stop.load(Ordering::Acquire) && !pair.is_dead() {
                    let step = left.min(PUMP_POLL);
                    std::thread::sleep(step);
                    left = left.saturating_sub(step);
                }
                if dst.write_all(&chunk[..n]).is_err() {
                    return;
                }
            }
            Some(NetFault::Split) => {
                let mid = n / 2;
                if dst.write_all(&chunk[..mid]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
                if dst.write_all(&chunk[mid..n]).is_err() {
                    return;
                }
            }
            None => {
                if dst.write_all(&chunk[..n]).is_err() {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny echo server: accepts one connection at a time and echoes
    /// bytes back until close.
    fn echo_server() -> (SocketAddr, Arc<AtomicBool>, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let Ok((mut conn, _)) = listener.accept() else {
                        continue;
                    };
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        conn.set_read_timeout(Some(Duration::from_millis(10))).ok();
                        let mut buf = [0u8; 4096];
                        while !stop.load(Ordering::Acquire) {
                            match conn.read(&mut buf) {
                                Ok(0) => return,
                                Ok(n) => {
                                    if conn.write_all(&buf[..n]).is_err() {
                                        return;
                                    }
                                }
                                Err(e)
                                    if matches!(
                                        e.kind(),
                                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                                    ) =>
                                {
                                    continue;
                                }
                                Err(_) => return,
                            }
                        }
                    });
                }
            })
        };
        (addr, stop, handle)
    }

    fn roundtrip(conn: &mut TcpStream, msg: &[u8]) -> io::Result<Vec<u8>> {
        conn.write_all(msg)?;
        let mut got = vec![0u8; msg.len()];
        conn.read_exact(&mut got)?;
        Ok(got)
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let (addr, stop, _h) = echo_server();
        let inj = ChaosInjector::new();
        let proxy = ChaosProxy::spawn(&addr.to_string(), Arc::clone(&inj)).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        for i in 0..10u8 {
            let msg = [i; 64];
            assert_eq!(roundtrip(&mut conn, &msg).unwrap(), msg);
        }
        assert!(inj.op_count() >= 20, "both directions tick the clock");
        assert_eq!(inj.injected(), 0);
        assert_eq!(proxy.live_connections(), 1);
        proxy.shutdown();
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn scheduled_kill_severs_the_connection() {
        let (addr, stop, _h) = echo_server();
        let inj = ChaosInjector::new();
        // Chunk 0 is the outbound request; let it pass. Strike at 4:
        // two clean round trips (ops 0-3), then the next forward dies.
        inj.schedule(4, NetFault::Kill);
        let proxy = ChaosProxy::spawn(&addr.to_string(), Arc::clone(&inj)).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        assert!(roundtrip(&mut conn, &[1u8; 32]).is_ok());
        assert!(roundtrip(&mut conn, &[2u8; 32]).is_ok());
        // The struck chunk is never delivered: the read sees a dead
        // socket (reset or EOF) rather than data.
        conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let dead = roundtrip(&mut conn, &[3u8; 32]).is_err();
        assert!(dead, "killed connection must not deliver the chunk");
        assert_eq!(inj.injected(), 1);
        assert_eq!(proxy.live_connections(), 0);
        proxy.shutdown();
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn stall_delays_but_delivers() {
        let (addr, stop, _h) = echo_server();
        let inj = ChaosInjector::new();
        inj.schedule(0, NetFault::Stall(Duration::from_millis(120)));
        let proxy = ChaosProxy::spawn(&addr.to_string(), Arc::clone(&inj)).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(roundtrip(&mut conn, &[9u8; 16]).unwrap(), [9u8; 16]);
        assert!(
            start.elapsed() >= Duration::from_millis(100),
            "the stalled chunk arrived late, not dropped"
        );
        assert_eq!(inj.injected(), 1);
        proxy.shutdown();
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn split_reorders_nothing() {
        let (addr, stop, _h) = echo_server();
        let inj = ChaosInjector::new();
        for i in 0..8 {
            inj.schedule(i, NetFault::Split);
        }
        let proxy = ChaosProxy::spawn(&addr.to_string(), Arc::clone(&inj)).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let msg: Vec<u8> = (0..=255u8).collect();
        assert_eq!(roundtrip(&mut conn, &msg).unwrap(), msg);
        assert!(inj.injected() >= 2, "both directions were split");
        proxy.shutdown();
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }

    #[test]
    fn kill_all_severs_every_live_connection() {
        let (addr, stop, _h) = echo_server();
        let inj = ChaosInjector::new();
        let proxy = ChaosProxy::spawn(&addr.to_string(), Arc::clone(&inj)).unwrap();
        let mut conns: Vec<TcpStream> = (0..3)
            .map(|_| TcpStream::connect(proxy.addr()).unwrap())
            .collect();
        // Touch each connection so the pumps are demonstrably alive.
        for conn in &mut conns {
            assert!(roundtrip(conn, &[7u8; 8]).is_ok());
        }
        assert_eq!(proxy.live_connections(), 3);
        assert_eq!(proxy.kill_all(), 3);
        assert_eq!(proxy.live_connections(), 0);
        for conn in &mut conns {
            conn.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            assert!(
                roundtrip(conn, &[8u8; 8]).is_err(),
                "severed connections stay dead"
            );
        }
        proxy.shutdown();
        stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(addr);
    }
}
