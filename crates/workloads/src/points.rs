//! Point-set generators over a `side^D` universe.

use onion_core::Point;
use rand::Rng;

/// A generated dataset: points plus a human-readable label for reports.
#[derive(Clone, Debug)]
pub struct Dataset<const D: usize> {
    /// Workload name (e.g. `"uniform"`, `"clustered"`).
    pub name: &'static str,
    /// The generated points (may contain duplicates, like real data).
    pub points: Vec<Point<D>>,
}

/// Uniformly random points.
pub fn uniform_points<const D: usize, R: Rng>(side: u32, count: usize, rng: &mut R) -> Dataset<D> {
    let points = (0..count)
        .map(|_| Point::new(std::array::from_fn(|_| rng.random_range(0..side))))
        .collect();
    Dataset {
        name: "uniform",
        points,
    }
}

/// Gaussian-ish clusters: `centers` random cluster centers, points scattered
/// around them with standard deviation `spread` (triangular approximation of
/// a normal via the sum of two uniforms, clamped to the universe).
pub fn clustered_points<const D: usize, R: Rng>(
    side: u32,
    count: usize,
    centers: usize,
    spread: u32,
    rng: &mut R,
) -> Dataset<D> {
    assert!(centers >= 1);
    let cs: Vec<Point<D>> = (0..centers)
        .map(|_| Point::new(std::array::from_fn(|_| rng.random_range(0..side))))
        .collect();
    let points = (0..count)
        .map(|_| {
            let c = cs[rng.random_range(0..cs.len())];
            Point::new(std::array::from_fn(|d| {
                let offset = i64::from(rng.random_range(0..=spread))
                    + i64::from(rng.random_range(0..=spread))
                    - i64::from(spread);
                (i64::from(c.0[d]) + offset).clamp(0, i64::from(side) - 1) as u32
            }))
        })
        .collect();
    Dataset {
        name: "clustered",
        points,
    }
}

/// Points concentrated along the main diagonal, with small perpendicular
/// jitter — a classic correlated spatial distribution.
pub fn diagonal_points<const D: usize, R: Rng>(
    side: u32,
    count: usize,
    jitter: u32,
    rng: &mut R,
) -> Dataset<D> {
    let points = (0..count)
        .map(|_| {
            let t = rng.random_range(0..side);
            Point::new(std::array::from_fn(|_| {
                let offset = i64::from(rng.random_range(0..=2 * jitter)) - i64::from(jitter);
                (i64::from(t) + offset).clamp(0, i64::from(side) - 1) as u32
            }))
        })
        .collect();
    Dataset {
        name: "diagonal",
        points,
    }
}

/// A regular sub-grid of points with the given stride (fully deterministic;
/// useful for exact-count assertions in tests).
pub fn grid_points<const D: usize>(side: u32, stride: u32) -> Dataset<D> {
    assert!(stride >= 1);
    let per_dim: Vec<u32> = (0..side).step_by(stride as usize).collect();
    let mut points = Vec::new();
    let mut idx = vec![0usize; D];
    loop {
        points.push(Point::new(std::array::from_fn(|d| per_dim[idx[d]])));
        let mut d = 0;
        loop {
            if d == D {
                return Dataset {
                    name: "grid",
                    points,
                };
            }
            idx[d] += 1;
            if idx[d] < per_dim.len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

/// A skewed mixture: `hot_fraction` of the points land inside a small
/// hotspot square of side `side/8`, the rest are uniform. Models the
/// hot/cold skew of real spatial workloads.
pub fn hotspot_points<const D: usize, R: Rng>(
    side: u32,
    count: usize,
    hot_fraction: f64,
    rng: &mut R,
) -> Dataset<D> {
    assert!((0.0..=1.0).contains(&hot_fraction));
    let hot_side = (side / 8).max(1);
    let hot_lo: [u32; D] = std::array::from_fn(|_| rng.random_range(0..=side - hot_side));
    let points = (0..count)
        .map(|_| {
            if rng.random_bool(hot_fraction) {
                Point::new(std::array::from_fn(|d| {
                    hot_lo[d] + rng.random_range(0..hot_side)
                }))
            } else {
                Point::new(std::array::from_fn(|_| rng.random_range(0..side)))
            }
        })
        .collect();
    Dataset {
        name: "hotspot",
        points,
    }
}

/// Zipf-skewed points: each coordinate is drawn independently from a
/// Zipf(`exponent`) distribution over `0..side`, so probability mass piles
/// up near the origin along every axis — a heavy-tailed skew that
/// concentrates records in the low-index region of any curve and stresses
/// shard balance far harder than [`hotspot_points`]' bounded hot box.
///
/// `exponent = 0` degenerates to uniform; ~0.5–1.2 are typical real-data
/// skews. Sampling is inverse-CDF over a precomputed table (`O(side)`
/// setup, `O(log side)` per point), driven by integer draws so the
/// generator stays reproducible under the vendored RNG.
pub fn zipf_points<const D: usize, R: Rng>(
    side: u32,
    count: usize,
    exponent: f64,
    rng: &mut R,
) -> Dataset<D> {
    let sampler = ZipfSampler::new(side, exponent);
    let points = (0..count).map(|_| sampler.point(rng)).collect();
    Dataset {
        name: "zipf",
        points,
    }
}

/// A reusable Zipf(`exponent`) coordinate sampler over `0..side` — the
/// per-coordinate distribution behind [`zipf_points`], exposed so other
/// generators (the mixed op-stream generator, query-center draws) can share
/// one precomputed CDF table instead of rebuilding it per call.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    side: u32,
    /// `cdf[i]` = unnormalized `P(coord <= i)`; weights `1/(i+1)^exponent`.
    cdf: Vec<f64>,
    total: f64,
}

impl ZipfSampler {
    /// Precomputes the inverse-CDF table (`O(side)` setup, `O(log side)`
    /// per draw). `exponent = 0` degenerates to uniform.
    ///
    /// # Panics
    /// If `exponent` is negative or non-finite, or `side` is zero.
    pub fn new(side: u32, exponent: f64) -> Self {
        assert!(side >= 1, "need at least one cell per axis");
        assert!(exponent >= 0.0 && exponent.is_finite());
        let mut cdf: Vec<f64> = Vec::with_capacity(side as usize);
        let mut total = 0.0f64;
        for i in 0..side {
            total += (f64::from(i) + 1.0).powf(-exponent);
            cdf.push(total);
        }
        ZipfSampler { side, cdf, total }
    }

    /// The universe side this sampler draws within.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Draws one coordinate in `0..side`.
    pub fn coord<R: Rng>(&self, rng: &mut R) -> u32 {
        // 53-bit draw -> uniform in [0, 1).
        let u = (rng.random_range(0..(1u64 << 53)) as f64) / (1u64 << 53) as f64;
        let target = u * self.total;
        (self.cdf.partition_point(|&c| c <= target) as u32).min(self.side - 1)
    }

    /// Draws one point with independent Zipf coordinates.
    pub fn point<const D: usize, R: Rng>(&self, rng: &mut R) -> Point<D> {
        Point::new(std::array::from_fn(|_| self.coord(rng)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn in_bounds<const D: usize>(ds: &Dataset<D>, side: u32) -> bool {
        ds.points.iter().all(|p| p.0.iter().all(|&c| c < side))
    }

    #[test]
    fn all_generators_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(in_bounds(&uniform_points::<2, _>(64, 500, &mut rng), 64));
        assert!(in_bounds(
            &clustered_points::<2, _>(64, 500, 4, 10, &mut rng),
            64
        ));
        assert!(in_bounds(
            &diagonal_points::<3, _>(64, 500, 5, &mut rng),
            64
        ));
        assert!(in_bounds(
            &hotspot_points::<2, _>(64, 500, 0.8, &mut rng),
            64
        ));
        assert!(in_bounds(&grid_points::<2>(64, 8), 64));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = uniform_points::<2, _>(128, 100, &mut StdRng::seed_from_u64(9));
        let b = uniform_points::<2, _>(128, 100, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.points, b.points);
        let c = uniform_points::<2, _>(128, 100, &mut StdRng::seed_from_u64(10));
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn grid_count_is_exact() {
        let ds = grid_points::<2>(64, 8);
        assert_eq!(ds.points.len(), 8 * 8);
        let ds3 = grid_points::<3>(16, 4);
        assert_eq!(ds3.points.len(), 4 * 4 * 4);
    }

    #[test]
    fn hotspot_concentrates_points() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = hotspot_points::<2, _>(256, 2000, 0.9, &mut rng);
        // With 90% in a (side/8)² box, some cell region must hold far more
        // than the uniform share. Count points in the densest 32×32 tile.
        let mut counts = std::collections::HashMap::new();
        for p in &ds.points {
            *counts.entry((p.0[0] / 32, p.0[1] / 32)).or_insert(0u32) += 1;
        }
        // The 32×32 hotspot box may straddle up to four 32×32 tiles, but the
        // densest tile still holds far more than the uniform share (~31).
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 300, "densest tile has {max} of 2000 points");
    }

    #[test]
    fn zipf_concentrates_near_origin_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let side = 256u32;
        let ds = zipf_points::<2, _>(side, 4000, 0.9, &mut rng);
        assert_eq!(ds.points.len(), 4000);
        assert!(in_bounds(&ds, side));
        // Far more than the uniform share (1/16) lands in the low quadrant.
        let low = ds
            .points
            .iter()
            .filter(|p| p.0[0] < side / 4 && p.0[1] < side / 4)
            .count();
        assert!(low > 1000, "low-quadrant count {low} of 4000");
        // Exponent 0 degenerates to uniform: the low quadrant holds roughly
        // its fair 1/16 share.
        let flat = zipf_points::<2, _>(side, 4000, 0.0, &mut rng);
        let flat_low = flat
            .points
            .iter()
            .filter(|p| p.0[0] < side / 4 && p.0[1] < side / 4)
            .count();
        assert!(flat_low < 500, "uniform low-quadrant count {flat_low}");
    }

    #[test]
    fn clustered_points_respect_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = clustered_points::<3, _>(128, 321, 5, 6, &mut rng);
        assert_eq!(ds.points.len(), 321);
    }
}
