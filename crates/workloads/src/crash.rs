//! Crash-point schedules — the workload side of crash-consistency
//! testing.
//!
//! A durability test needs two ingredients: an operation stream (from
//! [`mixed_op_stream`](crate::mixed_op_stream)) and a *schedule* of the
//! instants at which the process "dies". [`CrashSchedule`] generates the
//! second deterministically: a sorted set of offsets into the stream.
//! [`CrashSchedule::segments`] then cuts the stream into the runs
//! between crashes, so a test drives each segment into a fresh engine
//! handle, drops it cold (no flush — the crash), reopens, and asserts
//! the recovered state. The schedule is engine-agnostic on purpose: the
//! same cuts can drive a WAL-backed engine, a model table, or both in
//! lockstep.

use rand::Rng;

/// A deterministic, sorted schedule of crash offsets into an op stream
/// of known length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashSchedule {
    stream_len: usize,
    /// Sorted, distinct offsets in `0..=stream_len`: a crash at offset
    /// `k` strikes after the first `k` ops executed.
    points: Vec<usize>,
}

impl CrashSchedule {
    /// Draws `crashes` distinct crash offsets uniformly over a stream of
    /// `stream_len` ops (offsets in `0..=stream_len`, so a crash before
    /// the first op and after the last are both possible — both are
    /// interesting: they exercise empty recovery and clean-shutdown-less
    /// exit). Colliding draws are redrawn, so the schedule always holds
    /// exactly `crashes` points — clamped to the `stream_len + 1`
    /// distinct offsets that exist.
    pub fn sample<R: Rng>(stream_len: usize, crashes: usize, rng: &mut R) -> Self {
        let crashes = crashes.min(stream_len + 1);
        let mut points = Vec::with_capacity(crashes);
        while points.len() < crashes {
            let p = rng.random_range(0..stream_len as u64 + 1) as usize;
            if !points.contains(&p) {
                points.push(p);
            }
        }
        points.sort_unstable();
        CrashSchedule { stream_len, points }
    }

    /// Draws `crashes` distinct crash offsets that all land on multiples
    /// of `stride` within `0..=stream_len`. With `stride` equal to an
    /// engine's `epoch_ops`, every cut falls exactly *between* epoch
    /// batches — the schedule for group-commit testing, where several
    /// epoch frames ride one fsync and a crash must still recover an
    /// epoch-boundary prefix, never a fused frame group.
    ///
    /// # Panics
    /// If `stride` is zero.
    pub fn sample_aligned<R: Rng>(
        stream_len: usize,
        stride: usize,
        crashes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        // Delegate the distinct-offset sampling to `sample` over the
        // stride-compressed stream, then scale the offsets back up.
        let compressed = Self::sample(stream_len / stride, crashes, rng);
        CrashSchedule {
            stream_len,
            points: compressed.points.iter().map(|&p| p * stride).collect(),
        }
    }

    /// Builds a schedule from explicit offsets (deduplicated, sorted).
    ///
    /// # Panics
    /// If any offset exceeds `stream_len`.
    pub fn at(stream_len: usize, mut points: Vec<usize>) -> Self {
        assert!(
            points.iter().all(|&p| p <= stream_len),
            "crash offsets must lie within the stream"
        );
        points.sort_unstable();
        points.dedup();
        CrashSchedule { stream_len, points }
    }

    /// The crash offsets, sorted ascending.
    pub fn points(&self) -> &[usize] {
        &self.points
    }

    /// Length of the stream this schedule cuts.
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// Cuts `ops` at the crash points: yields one slice per *run* — the
    /// ops executed between consecutive crashes — including the final
    /// run from the last crash to the end of the stream (possibly
    /// empty). A test executes each run against a freshly reopened
    /// engine and simulates the crash by dropping it at the slice's end.
    ///
    /// # Panics
    /// If `ops` does not have the schedule's `stream_len`.
    pub fn segments<'a, T>(&'a self, ops: &'a [T]) -> impl Iterator<Item = &'a [T]> + 'a {
        assert_eq!(ops.len(), self.stream_len, "schedule cut for this stream");
        let bounds: Vec<usize> = std::iter::once(0)
            .chain(self.points.iter().copied())
            .chain(std::iter::once(self.stream_len))
            .collect();
        bounds
            .windows(2)
            .map(|w| &ops[w[0]..w[1]])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn segments_tile_the_stream_in_order() {
        let ops: Vec<u32> = (0..20).collect();
        let sched = CrashSchedule::at(20, vec![7, 3, 7, 20]);
        assert_eq!(sched.points(), &[3, 7, 20], "sorted and deduplicated");
        let segs: Vec<&[u32]> = sched.segments(&ops).collect();
        assert_eq!(segs.len(), 4, "three crashes make four runs");
        assert_eq!(segs[0], &[0, 1, 2]);
        assert_eq!(segs[1], &[3, 4, 5, 6]);
        assert_eq!(segs[2], (7..20).collect::<Vec<_>>().as_slice());
        assert!(
            segs[3].is_empty(),
            "crash at the very end leaves an empty run"
        );
        let glued: Vec<u32> = segs.concat();
        assert_eq!(glued, ops, "runs tile the stream exactly");
    }

    #[test]
    fn sampled_schedules_are_deterministic_and_in_bounds() {
        let a = CrashSchedule::sample(100, 5, &mut StdRng::seed_from_u64(9));
        let b = CrashSchedule::sample(100, 5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_eq!(a.points().len(), 5, "collisions are redrawn, not dropped");
        assert!(a.points().windows(2).all(|w| w[0] < w[1]));
        assert!(a.points().iter().all(|&p| p <= 100));
    }

    #[test]
    fn aligned_samples_land_on_stride_multiples() {
        let s = CrashSchedule::sample_aligned(100, 8, 5, &mut StdRng::seed_from_u64(3));
        assert_eq!(s.points().len(), 5);
        assert!(s.points().iter().all(|&p| p % 8 == 0 && p <= 100));
        assert!(s.points().windows(2).all(|w| w[0] < w[1]));
        // Deterministic under the seed, like `sample`.
        let again = CrashSchedule::sample_aligned(100, 8, 5, &mut StdRng::seed_from_u64(3));
        assert_eq!(s, again);
        // Saturates at the available multiples.
        let tiny = CrashSchedule::sample_aligned(10, 4, 99, &mut StdRng::seed_from_u64(1));
        assert_eq!(tiny.points(), &[0, 4, 8]);
    }

    #[test]
    fn sample_saturates_on_tiny_streams() {
        // 3 cells have only 4 distinct offsets; asking for 10 must not
        // spin forever — it saturates at every offset.
        let s = CrashSchedule::sample(3, 10, &mut StdRng::seed_from_u64(1));
        assert_eq!(s.points(), &[0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "within the stream")]
    fn out_of_range_offsets_are_rejected() {
        CrashSchedule::at(10, vec![11]);
    }
}
