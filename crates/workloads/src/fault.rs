//! Deterministic fault injection for real page stores — the workload
//! side of media-failure testing.
//!
//! [`crate::CrashSchedule`] cuts an *operation stream* to test crash
//! recovery; [`FaultInjector`] cuts the *I/O stream itself*: a schedule
//! of store-operation counts at which a fault strikes — a torn page, a
//! full disk, a short read, a failed fsync. [`FaultStore`] interposes the
//! injector between any consumer and any
//! [`PageStore`](sfc_index::PageStore), so the same durable-engine test
//! that drives crash segments can also drive scheduled media failures and
//! assert the engine's error paths and recovery behave.
//!
//! Determinism contract: every `read_page`/`write_page`/`sync` through a
//! [`FaultStore`] advances one shared operation counter (shared across
//! all stores wrapping the same injector — a sharded engine's segments
//! tick one clock). A fault scheduled at count `n` fires on the first
//! operation of its kind at or after the `n`-th operation, exactly once.
//! Replaying the same operation sequence against the same schedule
//! reproduces the same faults at the same instants.

use sfc_index::{FileStore, PageStore, StoreFactory, StoreStats};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a scheduled fault does to the operation it strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The write reports success but the page lands **torn**: the first
    /// half of the buffer reaches the medium intact, the rest corrupted —
    /// the classic partial sector write a checksum must catch.
    TornWrite,
    /// The write fails (`ENOSPC`-flavored) and **no byte** reaches the
    /// medium.
    WriteError,
    /// The read fails with an unexpected-EOF error (a short read).
    ShortRead,
    /// The durability barrier fails: `sync` returns an error and makes
    /// no promise about previously written pages.
    SyncError,
}

impl Fault {
    /// Whether this fault can strike an operation of the given kind.
    fn strikes(self, kind: OpKind) -> bool {
        matches!(
            (self, kind),
            (Fault::TornWrite | Fault::WriteError, OpKind::Write)
                | (Fault::ShortRead, OpKind::Read)
                | (Fault::SyncError, OpKind::Sync)
        )
    }
}

/// The kind of store operation ticking the injector's clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    Read,
    Write,
    Sync,
}

/// One armed fault: strikes the first matching operation at or after
/// `at_op` ticks.
#[derive(Clone, Copy, Debug)]
struct Armed {
    at_op: u64,
    fault: Fault,
}

/// The shared injection state: one operation clock plus the faults
/// scheduled against it. Wrap it in an `Arc` and hand clones to every
/// [`FaultStore`] (and to the test, for [`Self::injected`] assertions).
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Operations observed so far, across all wrapping stores.
    ops: AtomicU64,
    /// Faults not yet fired.
    armed: Mutex<Vec<Armed>>,
    /// Faults fired so far.
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector with an empty schedule (every operation passes
    /// through until faults are [`Self::schedule`]d).
    pub fn new() -> Arc<Self> {
        Arc::new(FaultInjector::default())
    }

    /// Arms `fault` to strike the first operation of its kind at or
    /// after the `at_op`-th store operation (0-based; callable while
    /// stores are live, so tests can arm mid-run).
    pub fn schedule(&self, at_op: u64, fault: Fault) {
        self.armed
            .lock()
            .expect("fault schedule poisoned")
            .push(Armed { at_op, fault });
    }

    /// Arms one `fault` per crash point of `schedule`, reading the crash
    /// offsets as store-operation counts — the bridge from the
    /// op-stream-cutting [`crate::CrashSchedule`] to I/O-level faults.
    pub fn from_crash_schedule(schedule: &crate::CrashSchedule, fault: Fault) -> Arc<Self> {
        let inj = Self::new();
        for &p in schedule.points() {
            inj.schedule(p as u64, fault);
        }
        inj
    }

    /// Store operations observed so far (reads + writes + syncs through
    /// every wrapping [`FaultStore`]).
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Faults fired so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Faults still armed (scheduled but not yet fired).
    pub fn pending(&self) -> usize {
        self.armed.lock().expect("fault schedule poisoned").len()
    }

    /// Ticks the clock for one operation of `kind` and returns the fault
    /// striking it, if any. At most one fault fires per operation (the
    /// earliest-scheduled due one, ties broken by arming order).
    fn tick(&self, kind: OpKind) -> Option<Fault> {
        let now = self.ops.fetch_add(1, Ordering::Relaxed);
        let mut armed = self.armed.lock().expect("fault schedule poisoned");
        let due = armed
            .iter()
            .enumerate()
            .filter(|(_, a)| a.at_op <= now && a.fault.strikes(kind))
            .min_by_key(|(i, a)| (a.at_op, *i))
            .map(|(i, _)| i)?;
        let fired = armed.swap_remove(due);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(fired.fault)
    }
}

/// A [`PageStore`] wrapper injecting the faults its [`FaultInjector`]
/// has scheduled; every other operation delegates untouched.
#[derive(Debug)]
pub struct FaultStore<S> {
    inner: S,
    injector: Arc<FaultInjector>,
}

impl<S: PageStore> FaultStore<S> {
    /// Wraps `inner`, routing every operation through `injector`'s
    /// schedule.
    pub fn new(inner: S, injector: Arc<FaultInjector>) -> Self {
        FaultStore { inner, injector }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

/// A [`StoreFactory`] producing fault-wrapped [`FileStore`]s that all
/// share `injector`'s clock — plug it into
/// `ShardedTable::build_stored_with` / `Engine::open_stored_with` to run
/// a whole disk-resident engine under scheduled media failures.
pub fn faulty_file_factory(injector: Arc<FaultInjector>) -> StoreFactory<FaultStore<FileStore>> {
    Arc::new(move |path: &Path, page_size: usize| {
        Ok(FaultStore::new(
            FileStore::create(path, page_size)?,
            Arc::clone(&injector),
        ))
    })
}

impl<S: PageStore> PageStore for FaultStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn read_page(&self, page: u64, buf: &mut [u8]) -> io::Result<()> {
        match self.injector.tick(OpKind::Read) {
            Some(Fault::ShortRead) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("injected short read of page {page}"),
            )),
            _ => self.inner.read_page(page, buf),
        }
    }

    fn write_page(&self, page: u64, buf: &[u8]) -> io::Result<()> {
        match self.injector.tick(OpKind::Write) {
            Some(Fault::WriteError) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                format!("injected full-disk write failure at page {page}"),
            )),
            Some(Fault::TornWrite) => {
                // First half lands, the rest is garbage — but the write
                // "succeeds", so only a checksum can catch it.
                let mut torn = buf.to_vec();
                for b in &mut torn[buf.len() / 2..] {
                    *b ^= 0xA5;
                }
                self.inner.write_page(page, &torn)
            }
            _ => self.inner.write_page(page, buf),
        }
    }

    fn sync(&self) -> io::Result<()> {
        match self.injector.tick(OpKind::Sync) {
            Some(Fault::SyncError) => Err(io::Error::other("injected fsync failure")),
            _ => self.inner.sync(),
        }
    }

    fn path(&self) -> PathBuf {
        self.inner.path()
    }

    fn publish(&self, to: &Path) -> io::Result<()> {
        self.inner.publish(to)
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashSchedule;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sfc-fault-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn store(name: &str, inj: &Arc<FaultInjector>) -> FaultStore<FileStore> {
        FaultStore::new(FileStore::create(&tmp(name), 32).unwrap(), Arc::clone(inj))
    }

    #[test]
    fn write_error_blocks_the_bytes() {
        let inj = FaultInjector::new();
        inj.schedule(1, Fault::WriteError);
        let s = store("enospc.pages", &inj);
        s.write_page(0, &[1u8; 32]).unwrap(); // op 0: passes
        let err = s.write_page(1, &[2u8; 32]).unwrap_err(); // op 1: struck
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(s.page_count(), 1, "failed write reached no byte");
        assert_eq!(inj.injected(), 1);
        assert_eq!(inj.pending(), 0);
        // The fault fired once: the retry passes.
        s.write_page(1, &[2u8; 32]).unwrap();
        assert_eq!(s.page_count(), 2);
    }

    #[test]
    fn torn_write_succeeds_but_corrupts_the_tail_half() {
        let inj = FaultInjector::new();
        inj.schedule(0, Fault::TornWrite);
        let s = store("torn.pages", &inj);
        let data = [7u8; 32];
        s.write_page(0, &data).unwrap(); // "succeeds"
        let mut back = [0u8; 32];
        s.read_page(0, &mut back).unwrap();
        assert_eq!(&back[..16], &data[..16], "head half lands intact");
        assert_ne!(&back[16..], &data[16..], "tail half is torn");
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn faults_only_strike_their_own_kind_at_or_after_their_tick() {
        let inj = FaultInjector::new();
        // Armed at op 0 but the first ops are writes: the read fault
        // waits for the first read, the sync fault for the first sync.
        inj.schedule(0, Fault::ShortRead);
        inj.schedule(0, Fault::SyncError);
        let s = store("kinds.pages", &inj);
        s.write_page(0, &[1u8; 32]).unwrap();
        s.write_page(1, &[2u8; 32]).unwrap();
        let mut buf = [0u8; 32];
        let err = s.read_page(0, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert!(s.sync().is_err());
        // Both fired; everything passes now.
        s.read_page(0, &mut buf).unwrap();
        s.sync().unwrap();
        assert_eq!(inj.injected(), 2);
        assert_eq!(inj.op_count(), 6);
    }

    #[test]
    fn crash_schedule_points_arm_faults_deterministically() {
        let sched = CrashSchedule::at(10, vec![2, 5]);
        let run = |name: &str| {
            let inj = FaultInjector::from_crash_schedule(&sched, Fault::WriteError);
            let s = store(name, &inj);
            let mut failures = Vec::new();
            for i in 0..8u64 {
                if s.write_page(i, &[i as u8; 32]).is_err() {
                    failures.push(i);
                }
            }
            failures
        };
        let a = run("crash-a.pages");
        let b = run("crash-b.pages");
        assert_eq!(a, b, "same schedule, same ops, same faults");
        assert_eq!(a, vec![2, 5]);
    }

    #[test]
    fn one_injector_clocks_many_stores() {
        let inj = FaultInjector::new();
        inj.schedule(3, Fault::WriteError);
        let s1 = store("multi-1.pages", &inj);
        let s2 = store("multi-2.pages", &inj);
        s1.write_page(0, &[1u8; 32]).unwrap(); // op 0
        s2.write_page(0, &[1u8; 32]).unwrap(); // op 1
        s1.write_page(1, &[1u8; 32]).unwrap(); // op 2
        assert!(s2.write_page(1, &[1u8; 32]).is_err(), "op 3 struck");
        assert_eq!(inj.op_count(), 4);
    }
}
