//! Mixed read/write operation streams — the serving-layer workload.
//!
//! A spatial store in production does not see neat phases of loads then
//! queries: it sees an interleaved stream of point gets, rectangle
//! queries, and writes, with popularity skew on the touched cells. This
//! module generates such streams deterministically (seeded RNG), with
//! Zipf-skewed operation targets so hot cells and hot shards emerge the
//! way they do under real traffic. The `sfc-engine` crate consumes these
//! streams; `bench_hotpath`'s `engine/mixed_rw` scenario drives an engine
//! with one stream per thread.

use crate::points::ZipfSampler;
use onion_core::Point;
use rand::Rng;
use sfc_clustering::RectQuery;

/// One operation of a generated stream, with `u64` payloads. Engine-
/// agnostic: serving layers map these onto their own op types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamOp<const D: usize> {
    /// Point lookup.
    Get(Point<D>),
    /// Rectangle query.
    Query(RectQuery<D>),
    /// Insert a record (duplicate-friendly).
    Insert(Point<D>, u64),
    /// Replace-or-insert the payload at a point.
    Update(Point<D>, u64),
    /// Remove the record at a point.
    Delete(Point<D>),
}

impl<const D: usize> StreamOp<D> {
    /// Whether the operation only reads.
    pub fn is_read(&self) -> bool {
        matches!(self, StreamOp::Get(_) | StreamOp::Query(_))
    }
}

/// Relative weights of the five operation kinds in a generated stream.
/// Weights need not sum to anything in particular; only ratios matter.
#[derive(Clone, Copy, Debug)]
pub struct OpMix {
    /// Point lookups.
    pub get: u32,
    /// Rectangle queries.
    pub query: u32,
    /// Inserts.
    pub insert: u32,
    /// Updates.
    pub update: u32,
    /// Deletes.
    pub delete: u32,
}

impl OpMix {
    /// A read-mostly serving mix: 60% gets, 20% rect queries, 20% writes
    /// split evenly.
    pub fn read_heavy() -> Self {
        OpMix {
            get: 60,
            query: 20,
            insert: 7,
            update: 7,
            delete: 6,
        }
    }

    /// A balanced 50/50 read/write mix.
    pub fn balanced() -> Self {
        OpMix {
            get: 30,
            query: 20,
            insert: 17,
            update: 17,
            delete: 16,
        }
    }

    /// Reads only (gets + queries) — what reader threads of a mixed
    /// benchmark run while a writer thread runs a write-only mix.
    pub fn read_only() -> Self {
        OpMix {
            get: 75,
            query: 25,
            insert: 0,
            update: 0,
            delete: 0,
        }
    }

    /// Writes only.
    pub fn write_only() -> Self {
        OpMix {
            get: 0,
            query: 0,
            insert: 40,
            update: 40,
            delete: 20,
        }
    }

    fn total(&self) -> u32 {
        self.get + self.query + self.insert + self.update + self.delete
    }
}

/// Generates a mixed operation stream of `count` ops over a `side^D`
/// universe: operation kinds drawn by `mix` weight, target cells drawn
/// from independent per-axis Zipf(`exponent`) distributions (so the same
/// skew knob as [`crate::zipf_points`]), rectangle queries anchored at a
/// Zipf-drawn corner with uniform side lengths in `1..=max_query_side`
/// (clamped to the universe). Payload values number the write ops so
/// streams are self-describing in assertions.
///
/// # Panics
/// If `mix` has zero total weight, `side` is zero, or `max_query_side` is
/// zero.
pub fn mixed_op_stream<const D: usize, R: Rng>(
    side: u32,
    count: usize,
    mix: &OpMix,
    exponent: f64,
    max_query_side: u32,
    rng: &mut R,
) -> Vec<StreamOp<D>> {
    assert!(mix.total() > 0, "op mix must have positive total weight");
    assert!(max_query_side >= 1, "queries need at least one cell");
    let sampler = ZipfSampler::new(side, exponent);
    let max_q = max_query_side.min(side);
    (0..count as u64)
        .map(|i| {
            let mut pick = rng.random_range(0..mix.total());
            let point: Point<D> = sampler.point(rng);
            if pick < mix.get {
                return StreamOp::Get(point);
            }
            pick -= mix.get;
            if pick < mix.query {
                let len: [u32; D] = std::array::from_fn(|_| rng.random_range(0..max_q) + 1);
                let lo: [u32; D] = std::array::from_fn(|d| point.0[d].min(side - len[d]));
                return StreamOp::Query(
                    RectQuery::new(lo, len).expect("query clamped into the universe"),
                );
            }
            pick -= mix.query;
            if pick < mix.insert {
                return StreamOp::Insert(point, i);
            }
            pick -= mix.insert;
            if pick < mix.update {
                return StreamOp::Update(point, i);
            }
            StreamOp::Delete(point)
        })
        .collect()
}

/// Generates one [`mixed_op_stream`] per client for a fleet of
/// `clients` load generators, each independently seeded from `seed`
/// (splitmix-style per-client derivation), so a fleet run is
/// reproducible end to end yet no two clients replay the same ops.
/// Write payloads are made fleet-unique by offsetting each client's
/// value numbering by `client_index * ops_per_client`.
///
/// The network benchmarks drive one `sfc-net` client connection per
/// returned stream.
///
/// # Panics
/// As [`mixed_op_stream`], plus if `clients` is zero.
pub fn client_streams<const D: usize>(
    clients: usize,
    side: u32,
    ops_per_client: usize,
    mix: &OpMix,
    exponent: f64,
    max_query_side: u32,
    seed: u64,
) -> Vec<Vec<StreamOp<D>>> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    assert!(clients > 0, "a fleet needs at least one client");
    (0..clients)
        .map(|c| {
            // SplitMix64 step on (seed, client index): decorrelates the
            // per-client RNG streams even for adjacent seeds.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let mut rng = StdRng::seed_from_u64(z ^ (z >> 31));
            let mut ops = mixed_op_stream::<D, _>(
                side,
                ops_per_client,
                mix,
                exponent,
                max_query_side,
                &mut rng,
            );
            let offset = (c * ops_per_client) as u64;
            for op in &mut ops {
                match op {
                    StreamOp::Insert(_, v) | StreamOp::Update(_, v) => *v += offset,
                    _ => {}
                }
            }
            ops
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stream_respects_mix_and_bounds() {
        let side = 64u32;
        let mut rng = StdRng::seed_from_u64(11);
        let ops = mixed_op_stream::<2, _>(side, 4000, &OpMix::read_heavy(), 0.8, 16, &mut rng);
        assert_eq!(ops.len(), 4000);
        let reads = ops.iter().filter(|o| o.is_read()).count();
        assert!(
            (3000..=3500).contains(&reads),
            "~80% reads expected, got {reads}"
        );
        for op in &ops {
            match op {
                StreamOp::Get(p)
                | StreamOp::Insert(p, _)
                | StreamOp::Update(p, _)
                | StreamOp::Delete(p) => {
                    assert!(p.0.iter().all(|&c| c < side));
                }
                StreamOp::Query(q) => {
                    assert!(q.fits_in(side), "{q:?}");
                    assert!(q.side_lengths().iter().all(|&l| l <= 16));
                }
            }
        }
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let a = mixed_op_stream::<2, _>(
            32,
            200,
            &OpMix::balanced(),
            0.5,
            8,
            &mut StdRng::seed_from_u64(3),
        );
        let b = mixed_op_stream::<2, _>(
            32,
            200,
            &OpMix::balanced(),
            0.5,
            8,
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn read_only_and_write_only_mixes_are_pure() {
        let mut rng = StdRng::seed_from_u64(5);
        let reads = mixed_op_stream::<3, _>(16, 300, &OpMix::read_only(), 0.0, 4, &mut rng);
        assert!(reads.iter().all(StreamOp::is_read));
        let writes = mixed_op_stream::<3, _>(16, 300, &OpMix::write_only(), 0.0, 4, &mut rng);
        assert!(writes.iter().all(|o| !o.is_read()));
    }

    #[test]
    fn client_streams_are_deterministic_decorrelated_and_value_disjoint() {
        let fleet = client_streams::<2>(4, 32, 250, &OpMix::balanced(), 0.5, 8, 42);
        assert_eq!(fleet.len(), 4);
        assert!(fleet.iter().all(|s| s.len() == 250));
        // Reproducible from the same seed.
        assert_eq!(
            fleet,
            client_streams::<2>(4, 32, 250, &OpMix::balanced(), 0.5, 8, 42)
        );
        // No two clients replay the same stream.
        for i in 0..fleet.len() {
            for j in i + 1..fleet.len() {
                assert_ne!(fleet[i], fleet[j], "clients {i} and {j} collided");
            }
        }
        // Write payloads are fleet-unique (disjoint offset ranges).
        for (c, stream) in fleet.iter().enumerate() {
            let lo = (c * 250) as u64;
            for op in stream {
                if let StreamOp::Insert(_, v) | StreamOp::Update(_, v) = op {
                    assert!((lo..lo + 250).contains(v), "client {c} value {v}");
                }
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_op_targets() {
        let side = 256u32;
        let mut rng = StdRng::seed_from_u64(9);
        let ops = mixed_op_stream::<2, _>(side, 3000, &OpMix::read_heavy(), 1.0, 8, &mut rng);
        let low = ops
            .iter()
            .filter_map(|o| match o {
                StreamOp::Get(p) => Some(*p),
                _ => None,
            })
            .filter(|p| p.0[0] < side / 4 && p.0[1] < side / 4)
            .count();
        let gets = ops.iter().filter(|o| matches!(o, StreamOp::Get(_))).count();
        assert!(
            low * 2 > gets,
            "skewed targets: {low} of {gets} gets in the low quadrant"
        );
    }
}
