//! Shared experiment plumbing: CLI flags, aligned table printing, CSV
//! output.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// Common experiment configuration, parsed from the command line.
///
/// Flags:
/// * `--paper` — run with the paper's exact parameters (slower);
/// * `--seed <u64>` — RNG seed (default 42);
/// * `--out <dir>` — CSV output directory (default `results/`).
#[derive(Clone, Debug)]
pub struct ExperimentCfg {
    /// Use the paper's full-scale parameters.
    pub paper_scale: bool,
    /// RNG seed for all sampling.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
}

impl ExperimentCfg {
    /// Parses `std::env::args`. Unknown flags abort with a usage message.
    pub fn from_args() -> ExperimentCfg {
        let mut cfg = ExperimentCfg {
            paper_scale: false,
            seed: 42,
            out_dir: PathBuf::from("results"),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper" => cfg.paper_scale = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    cfg.seed = v.parse().expect("--seed must be a u64");
                }
                "--out" => {
                    let v = args.next().expect("--out needs a directory");
                    cfg.out_dir = PathBuf::from(v);
                }
                "--help" | "-h" => {
                    eprintln!("flags: [--paper] [--seed <u64>] [--out <dir>]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        cfg
    }
}

/// One row of an experiment table: a label plus numeric cells.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (e.g. the side length or ratio being swept).
    pub label: String,
    /// Cell values, one per column.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from a label and pre-formatted cells.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Row {
        Row {
            label: label.into(),
            cells,
        }
    }
}

/// Prints an aligned table with a title and column headers.
pub fn print_table(title: &str, label_header: &str, columns: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let mut label_w = label_header.len();
    for row in rows {
        label_w = label_w.max(row.label.len());
        for (i, c) in row.cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut header = format!("{label_header:<label_w$}");
    for (c, w) in columns.iter().zip(&widths) {
        let _ = write!(header, "  {c:>w$}");
    }
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
    for row in rows {
        let mut line = format!("{:<label_w$}", row.label);
        for (c, w) in row.cells.iter().zip(&widths) {
            let _ = write!(line, "  {c:>w$}");
        }
        println!("{line}");
    }
}

/// Writes the same table as CSV into `cfg.out_dir/name.csv`.
pub fn write_csv(
    cfg: &ExperimentCfg,
    name: &str,
    label_header: &str,
    columns: &[&str],
    rows: &[Row],
) {
    if let Err(e) = fs::create_dir_all(&cfg.out_dir) {
        eprintln!("warning: cannot create {}: {e}", cfg.out_dir.display());
        return;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{label_header},{}", columns.join(","));
    for row in rows {
        let _ = writeln!(out, "{},{}", row.label, row.cells.join(","));
    }
    let path = cfg.out_dir.join(format!("{name}.csv"));
    match fs::write(&path, out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_format() {
        let r = Row::new("x", vec!["1".into(), "2".into()]);
        assert_eq!(r.label, "x");
        assert_eq!(r.cells.len(), 2);
    }

    #[test]
    fn csv_write_and_readback() {
        let dir = std::env::temp_dir().join("sfc_bench_csv_test");
        let cfg = ExperimentCfg {
            paper_scale: false,
            seed: 0,
            out_dir: dir.clone(),
        };
        let rows = vec![
            Row::new("a", vec!["1".into()]),
            Row::new("b", vec!["2".into()]),
        ];
        write_csv(&cfg, "t", "k", &["v"], &rows);
        let body = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(body, "k,v\na,1\nb,2\n");
    }
}
