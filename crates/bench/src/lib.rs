//! # sfc-bench
//!
//! Experiment harness regenerating every table and figure of the Onion
//! Curve paper, plus Criterion performance benches.
//!
//! Each `exp_*` binary prints the paper artifact's rows/series as an
//! aligned text table and writes a CSV under `results/`. Run with `--paper`
//! for the paper's exact parameters (larger runtimes) or with the scaled
//! defaults for quick verification; `EXPERIMENTS.md` records both.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod harness;
pub mod scenarios;

pub use baseline::ScalarOnly;
pub use harness::{print_table, write_csv, ExperimentCfg, Row};
