//! Baseline wrapper for perf comparisons: strips a curve's batch and
//! stepping specializations.
//!
//! [`ScalarOnly`] forwards only the core `SpaceFillingCurve` methods, so the
//! trait's *default* `fill_indices` / `fill_points` /
//! `successor_unchecked` / `predecessor_unchecked` apply — exactly the
//! pre-batch behavior (one closed-form unrank per probe). Benchmarks run
//! the same algorithm with the raw curve and the wrapped curve to isolate
//! the win of the specialized kernels.

use onion_core::{Point, SpaceFillingCurve, Universe};

/// Forwards the core mapping methods and nothing else. See module docs.
#[derive(Clone, Copy, Debug)]
pub struct ScalarOnly<C>(pub C);

impl<const D: usize, C: SpaceFillingCurve<D>> SpaceFillingCurve<D> for ScalarOnly<C> {
    fn universe(&self) -> Universe<D> {
        self.0.universe()
    }

    #[inline]
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        self.0.index_unchecked(p)
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<D> {
        self.0.point_unchecked(idx)
    }

    fn name(&self) -> &str {
        self.0.name()
    }

    fn is_continuous(&self) -> bool {
        self.0.is_continuous()
    }

    fn jump_targets(&self) -> Option<Vec<Point<D>>> {
        self.0.jump_targets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::{CurveStepper, Onion2D};

    #[test]
    fn wrapped_curve_matches_raw() {
        let raw = Onion2D::new(9).unwrap();
        let wrapped = ScalarOnly(raw);
        let n = raw.universe().cell_count();
        let mut raw_stepper = CurveStepper::new(&raw);
        let mut slow_stepper = CurveStepper::new(&wrapped);
        for idx in 0..n {
            assert_eq!(raw_stepper.point(), slow_stepper.point(), "idx {idx}");
            raw_stepper.advance();
            slow_stepper.advance();
        }
    }
}
