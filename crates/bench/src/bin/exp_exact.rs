//! Utility: exact average clustering number (Lemma 1 edge walk) for a given
//! curve, universe side, and query shape — alongside the paper's closed-form
//! predictions (Theorem 1 / Theorem 4) and lower bounds (Theorems 2/3/5/6).
//!
//! Usage: `exp_exact <2|3> <side> <l1> [l2] [l3] [curve...]`
//! (curves default to onion and hilbert).

use onion_core::SpaceFillingCurve;
use sfc_baselines::{curve_2d, curve_3d};
use sfc_clustering::average_clustering_exact;
use sfc_theory::{
    continuous_lower_bound_2d, continuous_lower_bound_3d, onion2d_average_clustering,
    onion3d_average_clustering,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: exp_exact <2|3> <side> <l1> [l2] [l3] [curve...]");
        std::process::exit(2);
    }
    let dims: usize = args[0].parse().expect("dims must be 2 or 3");
    let side: u32 = args[1].parse().expect("side");
    match dims {
        2 => {
            let l1: u32 = args[2].parse().expect("l1");
            let l2: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(l1);
            let names: Vec<&str> = if args.len() > 4 {
                args[4..].iter().map(String::as_str).collect()
            } else {
                vec!["onion", "hilbert"]
            };
            let th = onion2d_average_clustering(side, l1, l2);
            println!(
                "side {side}, shape {l1}x{l2}: Theorem1 onion = {:.3} (+-{}), continuous LB = {:.3}",
                th.value,
                th.abs_err,
                continuous_lower_bound_2d(side, l1, l2)
            );
            for name in names {
                let c = curve_2d(name, side).expect("curve");
                let avg = average_clustering_exact(&c, [l1, l2]).expect("shape fits");
                println!("  {name:>14}: exact avg = {avg:.4}");
                let _ = c.universe();
            }
        }
        3 => {
            let l: u32 = args[2].parse().expect("l");
            let names: Vec<&str> = if args.len() > 3 {
                args[3..].iter().map(String::as_str).collect()
            } else {
                vec!["onion", "hilbert"]
            };
            let th = onion3d_average_clustering(side, l);
            println!(
                "side {side}, shape {l}^3: Theorem4 onion = {:.3} (+-{:.1}), continuous LB = {:.3}",
                th.value,
                th.abs_err,
                continuous_lower_bound_3d(side, l)
            );
            for name in names {
                let c = curve_3d(name, side).expect("curve");
                let avg = average_clustering_exact(&c, [l, l, l]).expect("shape fits");
                println!("  {name:>14}: exact avg = {avg:.4}");
            }
        }
        _ => {
            eprintln!("dims must be 2 or 3");
            std::process::exit(2);
        }
    }
}
