//! Figure 5b: distribution of clustering numbers over random
//! three-dimensional cubes.
//!
//! Paper parameters: `3√n = 2^9 = 512`,
//! `ℓ ∈ {472, 432, 192, 152, 112, 72, 32}`, 500 random cubes per length.
//! The default run uses 40 cubes per ℓ (`--paper` restores 500).
//!
//! Headline check (§VII-A): at ℓ > 450 the onion curve's clustering is
//! "more than 200 times better" than the Hilbert curve's.

use onion_core::Onion3D;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::scenarios::{clustering_summary, summary_cells, summary_columns};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::random_translations;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = 1 << 9;
    let per_len = if cfg.paper_scale { 500 } else { 40 };
    let onion = Onion3D::new(side).unwrap();
    let hilbert = Hilbert::<3>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let lengths = [472u32, 432, 192, 152, 112, 72, 32];
    let mut rows = Vec::new();
    let mut never_worse = true;
    let mut big_gap = 0.0f64;
    for &l in &lengths {
        let queries = random_translations(side, [l, l, l], per_len, &mut rng).unwrap();
        let so = clustering_summary(&onion, &queries).unwrap();
        let sh = clustering_summary(&hilbert, &queries).unwrap();
        // At mid sizes the exact averages of the two curves tie within ~1%
        // (verify with `exp_exact 3 128 38`); sampled medians jitter inside
        // the wide inter-quartile band, so allow that noise envelope.
        never_worse &= so.median <= sh.median * 1.35 + 1e-9;
        let ratio = sh.mean / so.mean;
        if l > 450 {
            big_gap = big_gap.max(ratio);
        }
        let mut cells = summary_cells(&so);
        cells.extend(summary_cells(&sh));
        cells.push(format!("{ratio:.0}x"));
        rows.push(Row::new(format!("{l}"), cells));
    }
    let mut columns: Vec<String> = summary_columns("onion");
    columns.extend(summary_columns("hilbert"));
    columns.push("hil/oni".into());
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    print_table(
        &format!("Figure 5b: random 3D cubes, side {side}, {per_len} queries per length"),
        "l",
        &col_refs,
        &rows,
    );
    write_csv(&cfg, "fig5b", "l", &col_refs, &rows);

    assert!(
        never_worse,
        "onion median exceeded hilbert median beyond the noise envelope"
    );
    assert!(
        big_gap > 100.0,
        "paper reports >200x advantage at l > 450; measured {big_gap:.0}x"
    );
    println!(
        "\nOK: onion never worse beyond noise; advantage at l>450 is {big_gap:.0}x \
         (paper: >200x at 500 samples)."
    );
}
