//! Figure 4: the three-dimensional onion curve's structure — layers
//! `S(1), S(2), …` ordered outside-in, and within a layer the ten segments
//! `S1 → … → S10`.

use onion_core::{Onion3D, Segment3D, SpaceFillingCurve};

fn main() {
    let side = 8u32;
    let o = Onion3D::new(side).unwrap();
    let u = o.universe();

    println!("Figure 4 reproduction: 3D onion curve on the {side}^3 universe.\n");
    println!("Layers are consumed sequentially (Fig 4a):");
    for t in 1..=u.layer_count() {
        let start = u.cells_before_layer(t);
        let end = if t == u.layer_count() {
            u.cell_count()
        } else {
            u.cells_before_layer(t + 1)
        };
        println!(
            "  layer S({t}): indexes {start:>4} .. {:>4}  ({} cells)",
            end - 1,
            end - start
        );
    }

    println!("\nSegment sizes within each layer (Fig 4b), V_t(g):");
    println!(
        "  {:<6} S1    S2    S3    S4    S5    S6    S7    S8    S9    S10",
        "layer"
    );
    for t in 1..=u.layer_count() {
        let s = u.layer_side(t);
        let sizes: Vec<String> = Segment3D::ALL
            .iter()
            .map(|g| {
                format!(
                    "{:<5}",
                    if s == 1 {
                        u64::from(g == &Segment3D::LowFaceI)
                    } else {
                        g.size(s)
                    }
                )
            })
            .collect();
        println!("  S({t})   {}", sizes.join(" "));
    }

    // Verify the visiting order: indexes within a layer never go back to an
    // earlier segment.
    for t in 1..=u.layer_count() {
        let start = u.cells_before_layer(t);
        let end = if t == u.layer_count() {
            u.cell_count()
        } else {
            u.cells_before_layer(t + 1)
        };
        let mut last = 0usize;
        for idx in start..end {
            let (_, seg, _) = o.triple_key(o.point_unchecked(idx));
            let pos = Segment3D::ALL.iter().position(|&g| g == seg).unwrap();
            assert!(pos >= last, "segment order violated in layer {t}");
            last = pos;
        }
    }
    println!("\nOK: layers and segments are visited in the paper's order.");
}
