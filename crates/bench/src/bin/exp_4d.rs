//! Probe of the paper's §VIII extension: "The onion curve can be extended
//! naturally to higher dimensions … The analysis of such a higher
//! dimensional onion curve is the subject of future work."
//!
//! We measure, in four dimensions, the exact average clustering of the
//! *naive* layered extension (`OnionNd<4>`: layer-sequential with
//! lexicographic intra-layer order) against the 4D Hilbert and Z curves.
//!
//! Finding: layer-sequentiality alone is **not** sufficient in 4D. The
//! lexicographic shell order fragments queries within each layer (a 4D
//! shell is 3-dimensional, and lex order crosses the query boundary once
//! per row), so the near-full-cube advantage of the 2D/3D constructions —
//! whose intra-layer pieces are lines and 2D-onion planes — is lost. This
//! quantifies why the paper calls the d > 3 analysis future work: the
//! intra-layer order needs locality too, not just the layer discipline.

use onion_core::{OnionNd, SpaceFillingCurve};
use sfc_baselines::{Hilbert, Morton};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::average_clustering_exact;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = if cfg.paper_scale { 32 } else { 16 };
    let onion = OnionNd::<4>::new(side).unwrap();
    let hilbert = Hilbert::<4>::new(side).unwrap();
    let z = Morton::<4>::new(side).unwrap();

    let lengths: Vec<u32> = vec![2, 4, side / 2, side - 4, side - 2];
    let mut rows = Vec::new();
    let mut beats_z_somewhere = false;
    for &l in &lengths {
        let shape = [l; 4];
        let co = average_clustering_exact(&onion, shape).unwrap();
        let ch = average_clustering_exact(&hilbert, shape).unwrap();
        let cz = average_clustering_exact(&z, shape).unwrap();
        if co < cz {
            beats_z_somewhere = true;
        }
        rows.push(Row::new(
            format!("{l}^4"),
            vec![
                format!("{co:.2}"),
                format!("{ch:.2}"),
                format!("{cz:.2}"),
                format!("{:.1}x", ch / co),
            ],
        ));
    }
    let columns = ["onion-nd(lex)", "hilbert", "z-order", "hil/oni"];
    print_table(
        &format!("4D probe (SVIII future work): exact average clustering, side {side}"),
        "cube",
        &columns,
        &rows,
    );
    write_csv(&cfg, "fourd", "cube", &columns, &rows);

    assert!(
        beats_z_somewhere,
        "the layer discipline should at least beat the Z curve on mid cubes"
    );
    println!(
        "\nFinding: the naive lex-ordered layered extension beats the Z curve on \
         mid-size cubes but NOT the Hilbert curve — the 2D/3D near-full-cube \
         advantage needs locality-preserving intra-layer orders (lines and \
         2D-onion planes), which is exactly the analysis the paper defers to \
         future work (SVIII)."
    );
    let _ = onion.universe();
}
