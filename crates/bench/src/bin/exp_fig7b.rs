//! Figure 7b: clustering distribution over boxes with uniformly random
//! corner points, three dimensions.

use onion_core::Onion3D;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::scenarios::{clustering_summary, summary_cells};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::random_corner_rects;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = if cfg.paper_scale { 1 << 9 } else { 1 << 8 };
    let count = if cfg.paper_scale { 500 } else { 60 };
    let onion = Onion3D::new(side).unwrap();
    let hilbert = Hilbert::<3>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let queries = random_corner_rects::<3, _>(side, count, &mut rng);
    let so = clustering_summary(&onion, &queries).unwrap();
    let sh = clustering_summary(&hilbert, &queries).unwrap();

    let columns = ["min", "q1", "med", "q3", "max", "mean"];
    let rows = vec![
        Row::new("onion", summary_cells(&so)),
        Row::new("hilbert", summary_cells(&sh)),
    ];
    print_table(
        &format!("Figure 7b: {count} random-corner 3D boxes, side {side}"),
        "curve",
        &columns,
        &rows,
    );
    write_csv(&cfg, "fig7b", "curve", &columns, &rows);

    assert!(
        so.median <= sh.median + 1e-9,
        "paper: onion median is better (onion {} vs hilbert {})",
        so.median,
        sh.median
    );
    println!(
        "\nOK: onion median {:.1} <= hilbert median {:.1} (paper Fig 7b).",
        so.median, sh.median
    );
}
