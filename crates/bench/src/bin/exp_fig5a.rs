//! Figure 5a: distribution of clustering numbers of the onion and Hilbert
//! curves over random squares of varying side length.
//!
//! Paper parameters: `√n = 2^10`, `ℓ = 2^10 − 50k` for `k ∈ {1,3,…,19}`,
//! 1000 random squares per ℓ. The default run uses 200 squares per ℓ
//! (`--paper` restores 1000); the distributions are the same, sampled less
//! densely.

use onion_core::Onion2D;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::scenarios::{clustering_summary, summary_cells, summary_columns};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::random_translations;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = 1 << 10;
    let per_len = if cfg.paper_scale { 1000 } else { 200 };
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut rows = Vec::new();
    let mut median_never_worse = true;
    let mut gap_at_largest = 0.0f64;
    for k in (1..=19u32).step_by(2) {
        let l = side - 50 * k;
        let queries = random_translations(side, [l, l], per_len, &mut rng).unwrap();
        let so = clustering_summary(&onion, &queries).unwrap();
        let sh = clustering_summary(&hilbert, &queries).unwrap();
        // The paper's box plots: the onion distribution is never worse; at
        // small l the two curves tie (both ≈ l) and sample means jitter, so
        // the robust comparison is the median.
        median_never_worse &= so.median <= sh.median + 1e-9;
        if k == 1 {
            gap_at_largest = sh.mean / so.mean;
        }
        let mut cells = summary_cells(&so);
        cells.extend(summary_cells(&sh));
        cells.push(format!("{:.1}x", sh.mean / so.mean));
        rows.push(Row::new(format!("{l}"), cells));
    }
    let mut columns: Vec<String> = summary_columns("onion");
    columns.extend(summary_columns("hilbert"));
    columns.push("hil/oni".into());
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    print_table(
        &format!("Figure 5a: random squares, side {side}, {per_len} queries per length"),
        "l",
        &col_refs,
        &rows,
    );
    write_csv(&cfg, "fig5a", "l", &col_refs, &rows);

    assert!(
        median_never_worse,
        "onion median exceeded hilbert median at some length"
    );
    assert!(
        gap_at_largest > 5.0,
        "near-full squares should favor onion strongly, got {gap_at_largest:.1}x"
    );
    println!(
        "\nOK: onion median never worse; near-full squares favor onion {gap_at_largest:.1}x \
         (paper Fig 5a)."
    );
}
