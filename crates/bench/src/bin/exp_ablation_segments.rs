//! Ablation of §VI-A's design freedom: "the essential rule … is to organize
//! different layers sequentially … the order in which the onion curve
//! organizes the different Sg(t) is not so important. We can actually adopt
//! any permutation."
//!
//! We measure the exact average clustering number of the paper's segment
//! order against several random segment permutations, for cube query sets.
//! The claim holds if all permutations land within a small band.

use onion_core::{Onion3D, Segment3D};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::average_clustering_exact;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = if cfg.paper_scale { 64 } else { 32 };
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut orders: Vec<(String, [Segment3D; 10])> =
        vec![("paper (S1..S10)".into(), Segment3D::ALL)];
    for i in 0..4 {
        let mut order = Segment3D::ALL;
        order.shuffle(&mut rng);
        orders.push((format!("shuffle #{i}"), order));
    }

    let lengths: Vec<u32> = vec![4, side / 4, side / 2, side - 9];
    let mut rows = Vec::new();
    let mut worst_spread = 0.0f64;
    for (name, order) in &orders {
        let curve = Onion3D::with_segment_order(side, *order).unwrap();
        let cells: Vec<String> = lengths
            .iter()
            .map(|&l| {
                format!(
                    "{:.2}",
                    average_clustering_exact(&curve, [l, l, l]).unwrap()
                )
            })
            .collect();
        rows.push(Row::new(name.clone(), cells));
    }
    // Spread per column relative to the paper order.
    for (j, &l) in lengths.iter().enumerate() {
        let vals: Vec<f64> = rows.iter().map(|r| r.cells[j].parse().unwrap()).collect();
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let spread = (max - min) / min;
        worst_spread = worst_spread.max(spread);
        println!("l = {l}: permutation spread {:.1}%", spread * 100.0);
    }

    let columns: Vec<String> = lengths.iter().map(|l| format!("l={l}")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    print_table(
        &format!("Segment-order ablation: exact avg clustering, side {side} (3D cubes)"),
        "segment order",
        &col_refs,
        &rows,
    );
    write_csv(&cfg, "ablation_segments", "order", &col_refs, &rows);

    assert!(
        worst_spread < 0.35,
        "segment permutations should only shift clustering by lower-order terms, \
         spread {worst_spread:.2}"
    );
    println!(
        "\nOK: all segment permutations stay within {:.0}% of each other — \
         layer-sequentiality, not intra-layer order, drives the bound (paper SVI-A).",
        worst_spread * 100.0
    );
}
