//! Table II: approximation ratios η(Q, O) and η(Q, H) for the near-cube
//! query families `ℓ_i = φ_i (d√n)^µ + ψ_i`.
//!
//! For each row of the paper's table we instantiate a concrete query shape
//! on a finite universe, measure the exact average clustering of the onion
//! and Hilbert curves (Lemma 1 edge walk), divide by the general lower
//! bound (Theorem 3/6), and compare with the paper's bound for that case.

use onion_core::{Onion2D, Onion3D};
use sfc_baselines::Hilbert;
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::average_clustering_exact;
use sfc_theory::{
    eta_onion_2d_case2, eta_onion_2d_case3, eta_onion_3d_case3, general_lower_bound_2d,
    general_lower_bound_3d,
};

struct Case2D {
    name: &'static str,
    shape_of: fn(u32) -> [u32; 2],
    paper_bound: fn(u32) -> f64,
    /// For µ = 0 the paper's η = 1 cites \[18\]: constant-size queries are
    /// answered optimally by continuous symmetric curves, so the right
    /// denominator is the *continuous* bound (Theorem 2) — the factor-2
    /// general-SFC weakening (Theorem 3) is vacuous there.
    continuous_lb: bool,
}

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side2: u32 = if cfg.paper_scale { 1024 } else { 256 };
    let side3: u32 = if cfg.paper_scale { 128 } else { 64 };

    // µ = 0 (constant), 0 < µ < 1 (here µ = 1/2), µ = 1 with φ ≤ 1/2,
    // µ = 1 with 1/2 < φ < 1, µ = 1 with φ = 1 (ψ constant).
    let cases = [
        Case2D {
            name: "mu=0 (l=4)",
            shape_of: |_| [4, 4],
            paper_bound: |_| 1.0,
            continuous_lb: true,
        },
        Case2D {
            name: "mu=1/2 (l=sqrt(side))",
            shape_of: |s| {
                let l = (f64::from(s)).sqrt().round() as u32;
                [l, l]
            },
            paper_bound: |_| 2.0,
            continuous_lb: false,
        },
        Case2D {
            name: "mu=1, phi=0.355",
            shape_of: |s| {
                let l = (0.355 * f64::from(s)).round() as u32;
                [l, l]
            },
            paper_bound: |_| eta_onion_2d_case3(0.355),
            continuous_lb: false,
        },
        Case2D {
            name: "mu=1, phi=0.25",
            shape_of: |s| {
                let l = (0.25 * f64::from(s)).round() as u32;
                [l, l]
            },
            paper_bound: |_| eta_onion_2d_case3(0.25),
            continuous_lb: false,
        },
        Case2D {
            name: "mu=1, phi=0.75",
            shape_of: |s| {
                let l = (0.75 * f64::from(s)).round() as u32;
                [l, l]
            },
            paper_bound: |_| 2.0,
            continuous_lb: false,
        },
        Case2D {
            name: "mu=1, phi=1 (psi=-8)",
            shape_of: |s| [s - 8, s - 8],
            paper_bound: |_| 2.0,
            continuous_lb: false,
        },
        Case2D {
            name: "mu=1/2, phi2/phi1=2",
            shape_of: |s| {
                let l = (f64::from(s)).sqrt().round() as u32;
                [l, 2 * l]
            },
            paper_bound: |_| eta_onion_2d_case2(1.0, 2.0),
            continuous_lb: false,
        },
    ];

    let mut rows = Vec::new();
    let mut all_ok = true;
    for case in &cases {
        let shape = (case.shape_of)(side2);
        let onion = Onion2D::new(side2).unwrap();
        let hilbert = Hilbert::<2>::new(side2).unwrap();
        let co = average_clustering_exact(&onion, shape).unwrap();
        let ch = average_clustering_exact(&hilbert, shape).unwrap();
        let lb = if case.continuous_lb {
            sfc_theory::continuous_lower_bound_2d(side2, shape[0], shape[1])
        } else {
            general_lower_bound_2d(side2, shape[0], shape[1])
        };
        let eta_o = co / lb;
        let eta_h = ch / lb;
        let bound = (case.paper_bound)(side2);
        // Finite-size slack: the bounds are asymptotic; allow lower-order
        // wiggle (generous for the tiny-shape rows where ±O(1) matters).
        let ok = eta_o <= bound + 0.75;
        all_ok &= ok;
        rows.push(Row::new(
            case.name,
            vec![
                format!("{}x{}", shape[0], shape[1]),
                format!("{eta_o:.2}"),
                format!("{bound:.2}"),
                format!("{eta_h:.2}"),
                if ok { "ok" } else { "VIOLATED" }.to_string(),
            ],
        ));
    }
    print_table(
        &format!("Table II (2D, side {side2}): measured eta vs paper bound"),
        "case",
        &[
            "shape",
            "eta(onion)",
            "paper bound",
            "eta(hilbert)",
            "check",
        ],
        &rows,
    );
    write_csv(
        &cfg,
        "table2_2d",
        "case",
        &["shape", "eta_onion", "bound", "eta_hilbert", "check"],
        &rows,
    );

    // 3D rows: cube families.
    let mut rows3 = Vec::new();
    type Case3D = (&'static str, fn(u32) -> u32, f64, bool);
    let cases3: [Case3D; 4] = [
        ("mu=0 (l=3)", |_| 3, 1.0, true),
        (
            "mu=1, phi=0.3967",
            |s| (0.3967 * f64::from(s)).round() as u32,
            eta_onion_3d_case3(0.3967),
            false,
        ),
        (
            "mu=1, phi=0.75",
            |s| (0.75 * f64::from(s)).round() as u32,
            2.0,
            false,
        ),
        ("mu=1, phi=1 (psi=-24)", |s| s - 24, 3.0, false),
    ];
    for (name, shape_of, bound, continuous_lb) in cases3 {
        let l = shape_of(side3);
        let onion = Onion3D::new(side3).unwrap();
        let hilbert = Hilbert::<3>::new(side3).unwrap();
        let co = average_clustering_exact(&onion, [l, l, l]).unwrap();
        let ch = average_clustering_exact(&hilbert, [l, l, l]).unwrap();
        let lb = if continuous_lb {
            sfc_theory::continuous_lower_bound_3d(side3, l)
        } else {
            general_lower_bound_3d(side3, l)
        };
        let eta_o = co / lb;
        let eta_h = ch / lb;
        let ok = eta_o <= bound + 0.9;
        all_ok &= ok;
        rows3.push(Row::new(
            name,
            vec![
                format!("{l}^3"),
                format!("{eta_o:.2}"),
                format!("{bound:.2}"),
                format!("{eta_h:.2}"),
                if ok { "ok" } else { "VIOLATED" }.to_string(),
            ],
        ));
    }
    print_table(
        &format!("Table II (3D, side {side3}): measured eta vs paper bound"),
        "case",
        &[
            "shape",
            "eta(onion)",
            "paper bound",
            "eta(hilbert)",
            "check",
        ],
        &rows3,
    );
    write_csv(
        &cfg,
        "table2_3d",
        "case",
        &["shape", "eta_onion", "bound", "eta_hilbert", "check"],
        &rows3,
    );

    assert!(
        all_ok,
        "some measured eta exceeded the paper bound plus slack"
    );
    println!("\nOK: every measured onion ratio respects its Table II bound.");
}
