//! Figure 7a: clustering distribution over rectangles with uniformly random
//! corner points, two dimensions.

use onion_core::Onion2D;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::scenarios::{clustering_summary, summary_cells, summary_columns};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::random_corner_rects;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = 1 << 10;
    let count = if cfg.paper_scale { 1000 } else { 200 };
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let queries = random_corner_rects::<2, _>(side, count, &mut rng);
    let so = clustering_summary(&onion, &queries).unwrap();
    let sh = clustering_summary(&hilbert, &queries).unwrap();

    let mut columns: Vec<String> = summary_columns("stat");
    columns.truncate(0);
    columns.extend(["min", "q1", "med", "q3", "max", "mean"].map(String::from));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let rows = vec![
        Row::new("onion", summary_cells(&so)),
        Row::new("hilbert", summary_cells(&sh)),
    ];
    print_table(
        &format!("Figure 7a: {count} random-corner rectangles, side {side}"),
        "curve",
        &col_refs,
        &rows,
    );
    write_csv(&cfg, "fig7a", "curve", &col_refs, &rows);

    assert!(
        so.median <= sh.median + 1e-9,
        "paper: onion median is better (onion {} vs hilbert {})",
        so.median,
        sh.median
    );
    println!(
        "\nOK: onion median {:.1} <= hilbert median {:.1} (paper Fig 7a).",
        so.median, sh.median
    );
}
