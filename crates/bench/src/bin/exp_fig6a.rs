//! Figure 6a: clustering distribution over random rectangles with a fixed
//! ratio of side lengths (Algorithm 1), two dimensions.
//!
//! Paper parameters: `√n = 2^10`,
//! `ρ ∈ {1/1024, 1/512, 1/4, 1/2, 3/4, 1, 4/3, 2, 4, 512, 1024}`,
//! 20 placements per ℓ2 step of 50.

use onion_core::Onion2D;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::scenarios::{clustering_summary, summary_cells, summary_columns};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::fixed_ratio_set_2d;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = 1 << 10;
    // Algorithm 1 uses 20 placements per ℓ2 step; that is cheap enough to
    // be the default too.
    let per_step = 20;
    let _ = cfg.paper_scale;
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let ratios: [(f64, &str); 11] = [
        (1.0 / 1024.0, "1/1024"),
        (1.0 / 512.0, "1/512"),
        (0.25, "1/4"),
        (0.5, "1/2"),
        (0.75, "3/4"),
        (1.0, "1"),
        (4.0 / 3.0, "4/3"),
        (2.0, "2"),
        (4.0, "4"),
        (512.0, "512"),
        (1024.0, "1024"),
    ];
    let mut rows = Vec::new();
    let mut median_never_worse = true;
    let mut best_gap_at_ratio_1 = 0.0f64;
    for (rho, label) in ratios {
        let queries = fixed_ratio_set_2d(side, rho, 50, per_step, &mut rng);
        if queries.is_empty() {
            continue;
        }
        let so = clustering_summary(&onion, &queries).unwrap();
        let sh = clustering_summary(&hilbert, &queries).unwrap();
        // Tolerate sampling noise on the near-tie ratios: the exact averages
        // of the two curves coincide within ~1% for mid-size near-cubes.
        median_never_worse &= so.median <= sh.median * 1.25 + 1e-9;
        if (rho - 1.0).abs() < 1e-12 {
            best_gap_at_ratio_1 = sh.median / so.median.max(1.0);
        }
        let mut cells = vec![queries.len().to_string()];
        cells.extend(summary_cells(&so));
        cells.extend(summary_cells(&sh));
        rows.push(Row::new(label, cells));
    }
    let mut columns: Vec<String> = vec!["queries".into()];
    columns.extend(summary_columns("onion"));
    columns.extend(summary_columns("hilbert"));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    print_table(
        &format!("Figure 6a: fixed-ratio rectangles, side {side} (Algorithm 1)"),
        "rho",
        &col_refs,
        &rows,
    );
    write_csv(&cfg, "fig6a", "rho", &col_refs, &rows);

    assert!(
        median_never_worse,
        "onion median exceeded hilbert median beyond the noise envelope"
    );
    println!(
        "\nOK: onion median never worse; the gap is largest near rho = 1 \
         (median ratio {best_gap_at_ratio_1:.1}x), matching Figure 6a."
    );
}
