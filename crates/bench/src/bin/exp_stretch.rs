//! The locality metrics of the related work (§I-B): Gotsman–Lindenbaum
//! stretch and index dilation, for every curve in the workspace.
//!
//! This quantifies the paper's closing caveat — clustering is not the only
//! metric. The Hilbert curve has perfect neighbor stretch (continuous) and
//! good dilation; the onion curve trades a little dilation for its
//! near-optimal clustering.

use sfc_baselines::{curve_2d, CURVE_NAMES};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::{index_dilation, neighbor_stretch};

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = if cfg.paper_scale { 256 } else { 128 };

    let mut rows = Vec::new();
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        let (avg_stretch, max_stretch) = neighbor_stretch(&curve);
        let dilation = index_dilation(&curve);
        rows.push(Row::new(
            name,
            vec![
                format!("{avg_stretch:.3}"),
                max_stretch.to_string(),
                format!("{dilation:.1}"),
            ],
        ));
    }
    let columns = ["avg stretch", "max stretch", "index dilation"];
    print_table(
        &format!("Stretch / dilation (related-work metrics), side {side}"),
        "curve",
        &columns,
        &rows,
    );
    write_csv(&cfg, "stretch", "curve", &columns, &rows);

    // Continuous curves have stretch exactly 1.
    for row in &rows {
        if ["onion", "hilbert", "snake"].contains(&row.label.as_str()) {
            assert_eq!(row.cells[0], "1.000", "{} must be continuous", row.label);
        }
    }
    println!(
        "\nOK: continuous curves (onion, hilbert, snake) have stretch exactly 1; \
         dilation shows the locality trade-offs the paper's conclusion mentions."
    );
}
