//! Figure 6b: clustering distribution over random boxes with a fixed ratio
//! of side lengths, three dimensions (`ℓ1 = ⌊ℓ2/ρ⌋`, `ℓ3 = ℓ2` — see
//! EXPERIMENTS.md for the substitution note).

use onion_core::Onion3D;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::scenarios::{clustering_summary, summary_cells, summary_columns};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::fixed_ratio_set_3d;

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = if cfg.paper_scale { 1 << 9 } else { 1 << 8 };
    let per_step = if cfg.paper_scale { 20 } else { 8 };
    let onion = Onion3D::new(side).unwrap();
    let hilbert = Hilbert::<3>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let ratios: [(f64, &str); 9] = [
        (1.0 / 512.0, "1/512"),
        (0.25, "1/4"),
        (0.5, "1/2"),
        (0.75, "3/4"),
        (1.0, "1"),
        (4.0 / 3.0, "4/3"),
        (2.0, "2"),
        (4.0, "4"),
        (512.0, "512"),
    ];
    let mut rows = Vec::new();
    let mut median_never_worse = true;
    for (rho, label) in ratios {
        let queries = fixed_ratio_set_3d(side, rho, 50, per_step, &mut rng);
        if queries.is_empty() {
            continue;
        }
        let so = clustering_summary(&onion, &queries).unwrap();
        let sh = clustering_summary(&hilbert, &queries).unwrap();
        median_never_worse &= so.median <= sh.median * 1.25 + 1e-9;
        let mut cells = vec![queries.len().to_string()];
        cells.extend(summary_cells(&so));
        cells.extend(summary_cells(&sh));
        rows.push(Row::new(label, cells));
    }
    let mut columns: Vec<String> = vec!["queries".into()];
    columns.extend(summary_columns("onion"));
    columns.extend(summary_columns("hilbert"));
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    print_table(
        &format!("Figure 6b: fixed-ratio 3D boxes, side {side} (Algorithm 1, l3 = l2)"),
        "rho",
        &col_refs,
        &rows,
    );
    write_csv(&cfg, "fig6b", "rho", &col_refs, &rows);

    assert!(
        median_never_worse,
        "onion median exceeded hilbert median beyond the noise envelope"
    );
    println!("\nOK: onion median never worse (within noise) across ratios (paper Fig 6b).");
}
