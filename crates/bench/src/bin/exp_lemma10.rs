//! Lemmas 10 and 11 (§V-C): no single SFC is near-optimal for general
//! rectangular queries.
//!
//! * Lemma 10: over `Q = Q_R ∪ Q_C` (all rows and all columns), *every* SFC
//!   has average clustering Ω(√n) — so a curve that is optimal on rows
//!   (row-major, c = 1) must be terrible on columns, and vice versa.
//!
//!   Note: the paper states the bound as `√n`, but with `|Q| = 2√n` its own
//!   derivation `(2(n−1)+2) / (2|Q|)` evaluates to `√n/2`; the measured
//!   onion value (≈ √n/2 + ε) confirms `√n/2` is the tight constant (see
//!   EXPERIMENTS.md).
//! * Lemma 11: the same tension holds for the two halves-of-the-universe
//!   rectangle shapes `(√n/2) × √n` and `√n × (√n/2)`.

use onion_core::SpaceFillingCurve;
use sfc_baselines::{curve_2d, CURVE_NAMES};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::{average_clustering_bruteforce, average_clustering_exact, columns, rows};

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = if cfg.paper_scale { 256 } else { 64 };
    let qr = rows(side);
    let qc = columns(side);

    let mut table = Vec::new();
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        let cr = average_clustering_bruteforce(&curve, &qr);
        let cc = average_clustering_bruteforce(&curve, &qc);
        let combined = (cr + cc) / 2.0;
        // Lemma 10 (tight form): the combined average is at least √n/2.
        assert!(
            combined >= f64::from(side) / 2.0 - 1e-6,
            "{name}: combined {combined} < sqrt(n)/2 = {}",
            f64::from(side) / 2.0
        );
        table.push(Row::new(
            name,
            vec![
                format!("{cr:.1}"),
                format!("{cc:.1}"),
                format!("{combined:.1}"),
            ],
        ));
        let _ = curve.universe();
    }
    print_table(
        &format!(
            "Lemma 10: rows vs columns, side {side} (combined >= {} for every SFC)",
            side / 2
        ),
        "curve",
        &["c(rows)", "c(columns)", "combined avg"],
        &table,
    );
    write_csv(
        &cfg,
        "lemma10",
        "curve",
        &["c_rows", "c_columns", "combined"],
        &table,
    );

    // Lemma 11: half-universe rectangles.
    let mut table11 = Vec::new();
    for name in ["onion", "hilbert", "row-major", "column-major"] {
        let curve = curve_2d(name, side).unwrap();
        let tall = average_clustering_exact(&curve, [side / 2, side]).unwrap();
        let wide = average_clustering_exact(&curve, [side, side / 2]).unwrap();
        table11.push(Row::new(
            name,
            vec![
                format!("{tall:.1}"),
                format!("{wide:.1}"),
                format!("{:.1}", tall.max(wide)),
            ],
        ));
    }
    print_table(
        &format!("Lemma 11: (side/2)x(side) vs (side)x(side/2), side {side}"),
        "curve",
        &["c(tall)", "c(wide)", "worse of the two"],
        &table11,
    );
    write_csv(
        &cfg,
        "lemma11",
        "curve",
        &["c_tall", "c_wide", "max"],
        &table11,
    );

    println!(
        "\nOK: every curve pays at least sqrt(n)/2 on rows+columns — no SFC is \
         near-optimal for general rectangles (Lemma 10)."
    );
}
