//! CI bench regression gate: compares two `BENCH_hotpath.json` exports and
//! fails (exit 1) when any tracked kernel regressed beyond a threshold.
//!
//! ```text
//! bench_gate --base BENCH_hotpath.json --current /tmp/BENCH_hotpath.json \
//!            [--threshold 1.25] [--deterministic-only]
//! ```
//!
//! * `--threshold` — maximum allowed `current/base` ratio of
//!   `optimized_ns` per kernel (default 1.25, i.e. a >25% regression
//!   fails).
//! * `--wall-threshold` — a separate (typically looser) ratio for the
//!   wall-clock kernels, whose run-to-run variance on shared CI runners
//!   can exceed a tight threshold without any code change. Defaults to
//!   `--threshold`; CI's PR gate passes `2.0` so only catastrophic
//!   wall-clock regressions fail while simulated-I/O kernels stay gated
//!   at 25%.
//! * `--deterministic-only` — gate only the simulated-I/O kernels
//!   (names containing `simio` or under `planner/`), whose numbers are
//!   machine-independent. Use this when `base` was produced on different
//!   hardware (e.g. the checked-in JSON vs a CI runner); wall-clock
//!   kernels are still printed, but informationally.
//! * `--watch <substring>` (repeatable) — kernels matching the substring
//!   are *required to exist* in the current export (a missing watched
//!   kernel fails the gate even if nothing regressed) and are always
//!   gated, `--deterministic-only` notwithstanding. CI watches
//!   `engine/wal_commit` — the number the durability work exists to
//!   move — plus the `batch/` and `curve_walk/` kernel families the
//!   SIMD push optimized, so none can regress or silently disappear.
//!
//! Kernels present in only one file are reported and never fail the gate
//! (new benches must be addable; retired ones removable) — unless a
//! `--watch` names them.
//!
//! The JSON subset parsed here is exactly what `bench_hotpath` writes: an
//! array of objects with `name` and `optimized_ns` fields, one per line.
//! No serde in this workspace (offline vendoring), so parsing is a small
//! hand-rolled extractor.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts the string value of `"key": "..."` from a JSON object line.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\"");
    let after = &line[line.find(&tag)? + tag.len()..];
    let open = after.find('"')?;
    let rest = &after[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Extracts the numeric value of `"key": 123.4` (or `null`) from a JSON
/// object line.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\"");
    let after = &line[line.find(&tag)? + tag.len()..];
    let colon = after.find(':')?;
    let rest = after[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a `BENCH_hotpath.json` export into `name -> optimized_ns`.
fn parse_bench(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if !line.contains("\"name\"") {
            continue;
        }
        let name =
            string_field(line, "name").ok_or_else(|| format!("{path}: malformed entry: {line}"))?;
        let ns = number_field(line, "optimized_ns")
            .ok_or_else(|| format!("{path}: no optimized_ns for {name}"))?;
        out.insert(name, ns);
    }
    if out.is_empty() {
        return Err(format!("{path}: no bench entries found"));
    }
    Ok(out)
}

/// Whether a kernel's number is simulated (machine-independent) rather
/// than wall clock.
fn is_deterministic(name: &str) -> bool {
    name.contains("simio") || name.starts_with("planner/")
}

fn main() -> ExitCode {
    let mut base_path = None;
    let mut current_path = None;
    let mut threshold = 1.25f64;
    let mut wall_threshold: Option<f64> = None;
    let mut deterministic_only = false;
    let mut watches: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--base" => base_path = args.next(),
            "--current" => current_path = args.next(),
            "--watch" => {
                let Some(w) = args.next() else {
                    eprintln!("--watch needs a kernel-name substring; try --help");
                    return ExitCode::from(2);
                };
                watches.push(w);
            }
            "--threshold" => {
                let Some(v) = args.next().and_then(|t| t.parse().ok()) else {
                    eprintln!("--threshold needs a number; try --help");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            "--wall-threshold" => {
                let Some(v) = args.next().and_then(|t| t.parse().ok()) else {
                    eprintln!("--wall-threshold needs a number; try --help");
                    return ExitCode::from(2);
                };
                wall_threshold = Some(v);
            }
            "--deterministic-only" => deterministic_only = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --base <json> --current <json> [--threshold 1.25] \
                     [--wall-threshold <ratio>] [--deterministic-only] \
                     [--watch <name-substring>]..."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(base_path), Some(current_path)) = (base_path, current_path) else {
        eprintln!("--base and --current are required; try --help");
        return ExitCode::from(2);
    };
    let (base, current) = match (parse_bench(&base_path), parse_bench(&current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let wall_threshold = wall_threshold.unwrap_or(threshold);
    // Every watched substring must match at least one current kernel —
    // the watched numbers exist to be seen, so vanishing is a failure.
    let mut missing_watches = Vec::new();
    for w in &watches {
        if !current.keys().any(|name| name.contains(w.as_str())) {
            missing_watches.push(w.clone());
        }
    }
    let mut regressions = Vec::new();
    println!(
        "{:<52} {:>12} {:>12} {:>8}  verdict",
        "kernel", "base_ms", "current_ms", "ratio"
    );
    for (name, &cur) in &current {
        let watched = watches.iter().any(|w| name.contains(w.as_str()));
        let Some(&old) = base.get(name) else {
            println!(
                "{name:<52} {:>12} {:>12.3} {:>8}  new (not gated)",
                "-",
                cur / 1e6,
                "-"
            );
            continue;
        };
        let ratio = cur / old;
        let deterministic = is_deterministic(name);
        let gated = watched || !deterministic_only || deterministic;
        let limit = if deterministic {
            threshold
        } else {
            wall_threshold
        };
        let verdict = if ratio <= limit {
            if watched {
                "ok (watched)"
            } else {
                "ok"
            }
        } else if gated {
            regressions.push((name.clone(), ratio));
            "REGRESSED"
        } else {
            "regressed (wall clock, not gated)"
        };
        println!(
            "{name:<52} {:>12.3} {:>12.3} {:>7.2}x  {verdict}",
            old / 1e6,
            cur / 1e6,
            ratio
        );
    }
    for name in base.keys().filter(|n| !current.contains_key(*n)) {
        println!("{name:<52} retired (present only in base)");
    }

    if !missing_watches.is_empty() {
        eprintln!(
            "\nbench gate FAILED: watched kernel(s) missing from {current_path}: {}",
            missing_watches.join(", ")
        );
        return ExitCode::FAILURE;
    }
    if regressions.is_empty() {
        println!(
            "\nbench gate passed: no tracked kernel regressed beyond {:.0}%{}",
            (threshold - 1.0) * 100.0,
            if deterministic_only {
                " (deterministic kernels gated)"
            } else {
                ""
            }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nbench gate FAILED: {} kernel(s) regressed beyond {:.0}%:",
            regressions.len(),
            (threshold - 1.0) * 100.0
        );
        for (name, ratio) in &regressions {
            eprintln!("  {name}: {ratio:.2}x");
        }
        ExitCode::FAILURE
    }
}
