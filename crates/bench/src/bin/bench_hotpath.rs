//! Hot-path perf tracking: times the innermost mapping kernels before and
//! after this repo's batch/stepper rewrite and exports the results as
//! `BENCH_hotpath.json` (committed at the repo root so the perf trajectory
//! is visible across PRs).
//!
//! Every comparison runs the *same* algorithm twice: once on the raw curve
//! (specialized batch + O(1) stepping kernels) and once wrapped in
//! [`ScalarOnly`], which strips the specializations back to one closed-form
//! unrank per probe — the pre-rewrite behavior.
//!
//! Flags: `--out <path>` (default `BENCH_hotpath.json`), `--quick` (fewer
//! repetitions, for smoke runs).

use onion_core::{CurveWalk, Onion2D, Onion3D, Point, SpaceFillingCurve};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::Morton;
use sfc_bench::baseline::ScalarOnly;
use sfc_bench::{print_table, Row};
use sfc_clustering::{
    average_clustering_exact, cluster_ranges_into, clustering_number_with, ClusterMethod,
    ClusterScratch, RectQuery,
};
use sfc_engine::{CommitPolicy, Engine, EngineConfig, Op};
use sfc_index::{
    BPlusTree, DiskModel, LruBufferPool, Planner, QueryOptions, SfcTable, ShardedTable,
    DEFAULT_NODE_CAPACITY,
};
use sfc_net::{Client, Replica, Server};
use sfc_workloads::{client_streams, mixed_op_stream, zipf_points, OpMix, StreamOp};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One tracked measurement: a baseline-vs-optimized pair, or a
/// timing-only entry (no scalar twin exists) with `baseline_ns: None`.
struct Comparison {
    name: &'static str,
    baseline_ns: Option<f64>,
    optimized_ns: f64,
}

impl Comparison {
    fn speedup(&self) -> Option<f64> {
        self.baseline_ns.map(|b| b / self.optimized_ns)
    }
}

/// Best-of-N wall time of `f`, in nanoseconds.
fn time_ns<F: FnMut() -> u64>(reps: usize, mut f: F) -> f64 {
    let mut sink = 0u64;
    sink = sink.wrapping_add(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        sink = sink.wrapping_add(f());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(sink);
    best
}

fn walk_sum<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> u64 {
    let mut acc = 0u64;
    for p in CurveWalk::new(curve) {
        acc = acc.wrapping_add(u64::from(p.0[0]) ^ u64::from(p.0[D - 1]));
    }
    acc
}

fn main() {
    let mut out_path = String::from("BENCH_hotpath.json");
    let mut reps = 7usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--quick" => reps = 2,
            "--help" | "-h" => {
                eprintln!("flags: [--out <path>] [--quick]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
    }

    let mut comparisons: Vec<Comparison> = Vec::new();

    // Full-curve walks: per-index unrank (ScalarOnly inherits the default
    // `fill_walk`, i.e. one unrank per cell) vs. the run-emitting batched
    // walk — `CurveWalk` pulls 1024-cell chunks through `fill_walk`, and
    // the onion overrides emit whole ring edges / 3D segments as counted
    // loops (~1–2 ns/cell). This replaced the per-cell stepper, whose
    // branchy successor was already ~3 ns/cell but paid a classification
    // per step; a *branchless* successor was tried first and measured ~2x
    // slower on walks (sequential steps are perfectly predicted, so the
    // select chain's extra data dependencies were pure cost).
    {
        let onion = Onion2D::new(1 << 10).unwrap();
        let slow = ScalarOnly(onion);
        comparisons.push(Comparison {
            name: "curve_walk/onion2d/side1024",
            baseline_ns: Some(time_ns(reps, || walk_sum(&slow))),
            optimized_ns: time_ns(reps, || walk_sum(&onion)),
        });
    }
    {
        let onion = Onion3D::new(1 << 6).unwrap();
        let slow = ScalarOnly(onion);
        comparisons.push(Comparison {
            name: "curve_walk/onion3d/side64",
            baseline_ns: Some(time_ns(reps, || walk_sum(&slow))),
            optimized_ns: time_ns(reps, || walk_sum(&onion)),
        });
    }

    // Clustering scans at side 2^10: every predecessor/successor probe is a
    // perimeter step vs. a full unrank.
    {
        let side = 1u32 << 10;
        let onion = Onion2D::new(side).unwrap();
        let slow = ScalarOnly(onion);
        let l = 512u32;
        let q = RectQuery::new([(side - l) / 2, (side - l) / 3], [l, l]).unwrap();
        comparisons.push(Comparison {
            name: "clustering/entry_scan/onion2d/side1024/l512",
            baseline_ns: Some(time_ns(reps, || {
                clustering_number_with(&slow, &q, ClusterMethod::EntryScan)
            })),
            optimized_ns: time_ns(reps, || {
                clustering_number_with(&onion, &q, ClusterMethod::EntryScan)
            }),
        });
        comparisons.push(Comparison {
            name: "clustering/boundary_scan/onion2d/side1024/l512",
            baseline_ns: Some(time_ns(reps * 4, || {
                clustering_number_with(&slow, &q, ClusterMethod::BoundaryScan)
            })),
            optimized_ns: time_ns(reps * 4, || {
                clustering_number_with(&onion, &q, ClusterMethod::BoundaryScan)
            }),
        });
        // Allocation-free range decomposition with reused scratch —
        // timing-only (no scalar twin: the old API allocated fresh vectors
        // per call), tracked so its trajectory is still visible.
        let mut scratch = ClusterScratch::new();
        let mut ranges = Vec::new();
        comparisons.push(Comparison {
            name: "clustering/ranges_scratch/onion2d/side1024/l512",
            baseline_ns: None,
            optimized_ns: time_ns(reps * 4, || {
                cluster_ranges_into(&onion, &q, &mut scratch, &mut ranges);
                ranges.len() as u64
            }),
        });
    }

    // Exact average clustering (Lemma 1 edge walk) via the stepper.
    {
        let onion = Onion2D::new(1 << 8).unwrap();
        let slow = ScalarOnly(onion);
        comparisons.push(Comparison {
            name: "exact_average/onion2d/side256/shape32",
            baseline_ns: Some(time_ns(reps, || {
                average_clustering_exact(&slow, [32, 32]).unwrap().to_bits()
            })),
            optimized_ns: time_ns(reps, || {
                average_clustering_exact(&onion, [32, 32])
                    .unwrap()
                    .to_bits()
            }),
        });
    }

    // Batch inverse mapping through a dyn curve: virtual call per cell vs.
    // per batch. The dyn dispatch itself was already hoisted to one call
    // per batch in PR 1, which is why this pair long sat at ~1.01x — both
    // sides were bounded by the same unrank kernel, whose software
    // `u64::isqrt` dominated the per-cell cost. PR 5 swapped it for an
    // FPU sqrt with an exact fixup (`isqrt_fast`, mirroring the 3D
    // curve's `icbrt`), which cut the *absolute* per-cell cost of both
    // sides: optimized_ns dropped from ~2.03ms to ~1.5ms for the 64k
    // batch. PR 6 made `unrank_in_perimeter` branch-free (random indices
    // hit all four perimeter rules, so the old branches were unpredictable
    // and cost ~10 ns/cell in mispredicts): ~1.5ms → ~0.8ms. The ratio
    // still sits near 1x by construction — the baseline unranks through
    // the same kernel — so the absolute number is the one this entry
    // tracks. Two batch-side restructurings measured slower and were
    // dropped: an 8-wide lane split of the sqrt (the FPU already pipelines
    // independent iterations) and a fully branch-free ring-location fixup
    // chain (loses to `isqrt_fast`'s never-taken predicted branches).
    {
        let side = 1u32 << 10;
        let curve: Box<dyn SpaceFillingCurve<2>> = Box::new(Onion2D::new(side).unwrap());
        let n = u64::from(side) * u64::from(side);
        let mut probe = 0x9E3779B97F4A7C15u64;
        let indices: Vec<u64> = (0..(1 << 16))
            .map(|_| {
                probe = probe.wrapping_mul(6364136223846793005).wrapping_add(1);
                probe % n
            })
            .collect();
        let mut out: Vec<Point<2>> = Vec::with_capacity(indices.len());
        comparisons.push(Comparison {
            name: "batch/fill_points/onion2d_dyn/64k",
            baseline_ns: Some(time_ns(reps, || {
                out.clear();
                for &idx in &indices {
                    out.push(curve.point_unchecked(idx));
                }
                out.len() as u64
            })),
            optimized_ns: time_ns(reps, || {
                out.clear();
                curve.fill_points(&indices, &mut out);
                out.len() as u64
            }),
        });
    }

    // 3D twin of the pair above: the layer location is an `icbrt` chain
    // and the in-layer decode scans up to ten segments, so the kernel is
    // heavier than 2D; the batch side lane-batches the cube-root part
    // across chunks of eight indices.
    {
        let side = 1u32 << 6;
        let curve: Box<dyn SpaceFillingCurve<3>> = Box::new(Onion3D::new(side).unwrap());
        let n = curve.universe().cell_count();
        let mut probe = 0x2545F4914F6CDD1Du64;
        let indices: Vec<u64> = (0..(1 << 16))
            .map(|_| {
                probe = probe.wrapping_mul(6364136223846793005).wrapping_add(1);
                probe % n
            })
            .collect();
        let mut out: Vec<Point<3>> = Vec::with_capacity(indices.len());
        comparisons.push(Comparison {
            name: "batch/fill_points/onion3d_dyn/64k",
            baseline_ns: Some(time_ns(reps, || {
                out.clear();
                for &idx in &indices {
                    out.push(curve.point_unchecked(idx));
                }
                out.len() as u64
            })),
            optimized_ns: time_ns(reps, || {
                out.clear();
                curve.fill_points(&indices, &mut out);
                out.len() as u64
            }),
        });
    }

    // Bulk keying, the stage SfcTable::build batches: one virtual call per
    // record through the dyn boundary vs. one fill_indices batch. This pair
    // sat flat for several PRs (~1.0x) because the old baseline called
    // `slow.fill_indices` — ONE virtual call whose ScalarOnly default then
    // statically inlined the same rank kernel, so both sides compiled to
    // the identical loop. The baseline now keys each record through the
    // `dyn` pointer, which is what a non-batched build actually does.
    // Timed in isolation — a full build is dominated by clone + sort +
    // bulk-load, which would bury the keying kernel below noise.
    {
        let side = 1u32 << 8;
        let fast: Box<dyn SpaceFillingCurve<2>> = Box::new(Onion2D::new(side).unwrap());
        let points: Vec<Point<2>> = (0..side)
            .flat_map(|x| (0..side).map(move |y| Point::new([x, y])))
            .collect();
        let mut keys: Vec<u64> = Vec::with_capacity(points.len());
        comparisons.push(Comparison {
            name: "index/bulk_keying/onion2d_dyn/65k",
            baseline_ns: Some(time_ns(reps * 4, || {
                keys.clear();
                for &p in &points {
                    keys.push(fast.index_unchecked(p));
                }
                keys.len() as u64
            })),
            optimized_ns: time_ns(reps * 4, || {
                keys.clear();
                fast.fill_indices(&points, &mut keys);
                keys.len() as u64
            }),
        });
    }

    // Bulk keying through a bit-parallel curve: the onion pair above stays
    // near 1.0x because its rank kernel is ~3 ns/cell scalar either way,
    // but for Morton the batch path swaps the per-bit/magic-mask interleave
    // for one BMI2 `pdep` per coordinate — this is the pair that shows what
    // routing `SfcTable::build` keying through `fill_indices` buys.
    {
        let side = 1u32 << 8;
        let fast: Box<dyn SpaceFillingCurve<2>> = Box::new(Morton::<2>::new(side).unwrap());
        let points: Vec<Point<2>> = (0..side)
            .flat_map(|x| (0..side).map(move |y| Point::new([x, y])))
            .collect();
        let mut keys: Vec<u64> = Vec::with_capacity(points.len());
        comparisons.push(Comparison {
            name: "index/bulk_keying/morton2d_dyn/65k",
            baseline_ns: Some(time_ns(reps * 4, || {
                keys.clear();
                for &p in &points {
                    keys.push(fast.index_unchecked(p));
                }
                keys.len() as u64
            })),
            optimized_ns: time_ns(reps * 4, || {
                keys.clear();
                fast.fill_indices(&points, &mut keys);
                keys.len() as u64
            }),
        });
    }
    // Leaf-chain range scan with software prefetch: the tree is grown by
    // 64k random-order inserts, so the linked leaves are scattered through
    // the node arena in split order and every `next` hop is a
    // data-dependent cache miss the hardware prefetcher cannot predict.
    // `scan_range` hints the next leaf one leaf early;
    // `scan_range_reference` is the pinned no-prefetch twin with identical
    // visiting semantics.
    {
        let mut probe = 0xD1B54A32D192ED03u64;
        let mut tree: BPlusTree<u64> = BPlusTree::new(DEFAULT_NODE_CAPACITY);
        for _ in 0..(1 << 16) {
            probe = probe
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            tree.insert(probe, probe >> 32);
        }
        let mut acc = 0u64;
        comparisons.push(Comparison {
            name: "index/scan_range/prefetch/scatter64k",
            baseline_ns: Some(time_ns(reps * 2, || {
                acc = 0;
                tree.scan_range_reference(0, u64::MAX, &mut |_| {}, &mut |k, v| {
                    acc = acc.wrapping_add(k ^ v);
                });
                acc
            })),
            optimized_ns: time_ns(reps * 2, || {
                acc = 0;
                tree.scan_range(0, u64::MAX, &mut |_| {}, &mut |k, v| {
                    acc = acc.wrapping_add(k ^ v);
                });
                acc
            }),
        });
    }

    // Sanity anchor: the end-to-end table build these keys feed (timing
    // only — clone + sort + bulk-load dominate, so no pair is claimed).
    {
        let side = 1u32 << 8;
        let curve = Onion2D::new(side).unwrap();
        let records: Vec<(Point<2>, u32)> = (0..side)
            .flat_map(|x| (0..side).map(move |y| (Point::new([x, y]), x ^ y)))
            .collect();
        comparisons.push(Comparison {
            name: "index/table_build/onion2d/65k",
            baseline_ns: None,
            optimized_ns: time_ns(reps, || {
                SfcTable::build(curve, records.clone(), DiskModel::ssd())
                    .unwrap()
                    .len() as u64
            }),
        });
    }

    // Sharded query engine on a skewed (Zipf) workload. Two views:
    //
    // * `simio` — deterministic simulated I/O latency under one HDD-model
    //   disk *per shard*: a query's latency is its slowest shard's
    //   seek+transfer time (seeks split at shard boundaries), summed over
    //   the query batch. Baseline = the same engine at 1 shard, i.e. the
    //   serial seek total. This is the paper's cost model, so the scaling
    //   numbers are machine-independent; skew caps the speedup below the
    //   shard count because the hot shard bounds the critical path.
    // * `wall` — wall-clock time of the concurrent (`thread::scope`) batch
    //   path, recorded timing-only: thread speedup depends on the host's
    //   cores (CI boxes may have one), so no baseline pair is claimed.
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(42);
        let data = zipf_points::<2, _>(side, 200_000, 0.8, &mut rng);
        let records: Vec<(Point<2>, u64)> = data
            .points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let queries: Vec<RectQuery<2>> = (0..48)
            .map(|_| {
                let l = rng.random_range(32..224u32);
                let x = rng.random_range(0..side - l);
                let y = rng.random_range(0..side - l);
                RectQuery::new([x, y], [l, l]).unwrap()
            })
            .collect();
        let model = DiskModel::hdd();
        // Simulated critical-path latency of the whole batch at k shards.
        let sim_ns = |k: usize| -> f64 {
            let table = ShardedTable::build(Onion2D::new(side).unwrap(), records.clone(), model, k)
                .unwrap();
            let mut total_us = 0.0f64;
            for q in &queries {
                let (_, per_shard) = table.query_rect_with_shard_stats(q).unwrap();
                let critical = per_shard
                    .iter()
                    .map(|s| s.time_us(&model))
                    .fold(0.0f64, f64::max);
                total_us += critical;
            }
            total_us * 1e3 // report in ns like every other entry
        };
        let serial = sim_ns(1);
        for (name, k) in [
            ("index/sharded_query_simio/onion2d/zipf200k/shards2", 2),
            ("index/sharded_query_simio/onion2d/zipf200k/shards4", 4),
            ("index/sharded_query_simio/onion2d/zipf200k/shards8", 8),
        ] {
            comparisons.push(Comparison {
                name,
                baseline_ns: Some(serial),
                optimized_ns: sim_ns(k),
            });
        }
        // Wall-clock of the concurrent batch path (timing-only).
        let sharded =
            ShardedTable::build(Onion2D::new(side).unwrap(), records.clone(), model, 4).unwrap();
        comparisons.push(Comparison {
            name: "index/sharded_query_wall/onion2d/zipf200k/shards4",
            baseline_ns: None,
            optimized_ns: time_ns(reps, || {
                sharded
                    .query_rect_batch(&queries)
                    .unwrap()
                    .iter()
                    .map(|r| r.records.len() as u64)
                    .sum()
            }),
        });
    }

    // Write path: a full insert + delete cycle riding B+-tree splits
    // (timing-only — the old table had no delete to compare against).
    {
        let side = 1u32 << 8;
        let curve = Onion2D::new(side).unwrap();
        let points: Vec<Point<2>> = (0..side)
            .flat_map(|x| (0..side).map(move |y| Point::new([x, y])))
            .collect();
        comparisons.push(Comparison {
            name: "index/write_path/insert_delete/onion2d/65k",
            baseline_ns: None,
            optimized_ns: time_ns(reps, || {
                let mut t: SfcTable<Onion2D, u32, 2> = SfcTable::new(curve, DiskModel::ssd());
                for (i, &p) in points.iter().enumerate() {
                    t.insert(p, i as u32).unwrap();
                }
                for &p in &points {
                    t.delete(p).unwrap();
                }
                t.len() as u64
            }),
        });
    }

    // Adaptive planner vs fixed full decomposition on the paged backend:
    // deterministic simulated I/O time of a Zipf query batch under the
    // HDD model. The planner coalesces seek-heavy decompositions (and
    // leans further on the buffer pool as its live hit-rate estimate
    // warms), so total simulated time drops below the fixed `ranges_of`
    // execution. Fresh tables per mode keep the pool states independent.
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(7);
        let data = zipf_points::<2, _>(side, 200_000, 0.8, &mut rng);
        let records: Vec<(Point<2>, u64)> = data
            .points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let queries: Vec<RectQuery<2>> = (0..48)
            .map(|_| {
                let l = rng.random_range(16..192u32);
                let x = rng.random_range(0..side - l);
                let y = rng.random_range(0..side - l);
                RectQuery::new([x, y], [l, l]).unwrap()
            })
            .collect();
        let model = DiskModel::hdd();
        let pool_pages = 1 << 10;
        let fixed_us = {
            let t = SfcTable::build_paged(
                Onion2D::new(side).unwrap(),
                records.clone(),
                model,
                pool_pages,
            )
            .unwrap();
            queries
                .iter()
                .map(|q| {
                    t.query_rect(q, &QueryOptions::default())
                        .unwrap()
                        .io
                        .time_us(&model)
                })
                .sum::<f64>()
        };
        let planned_us = {
            let t = SfcTable::build_paged(
                Onion2D::new(side).unwrap(),
                records.clone(),
                model,
                pool_pages,
            )
            .unwrap();
            let planner = Planner::new(model);
            queries
                .iter()
                .map(|q| {
                    let res = t.query_rect(q, &QueryOptions::planned(&planner)).unwrap();
                    res.io.time_us(&model)
                })
                .sum::<f64>()
        };
        comparisons.push(Comparison {
            name: "planner/adaptive_vs_fixed/onion2d/zipf200k/paged",
            baseline_ns: Some(fixed_us * 1e3),
            optimized_ns: planned_us * 1e3,
        });
    }

    // The serving layer under mixed concurrent traffic: 2 reader threads
    // (gets + planned rect queries) run their fixed streams to completion
    // while 1 writer thread streams epoch-batched upserts/deletes as
    // continuous background load — the measured quantity is reader
    // completion time under that load. The writer brackets every flush in
    // a write lock on both sides (identical load); only the readers
    // differ: the baseline reconstructs the pre-MVCC discipline, every
    // read holding the read side of the lock so the reader fleet stalls
    // behind each epoch application (and convoys behind the writer's
    // queue), while the optimized side reads epoch-pinned versions and
    // never touches the lock. Same host, same thread layout, same
    // background writer — the ratio isolates exactly the reader-side
    // contention MVCC removes.
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(21);
        let data = zipf_points::<2, _>(side, 200_000, 0.8, &mut rng);
        let records: Vec<(Point<2>, u64)> = data
            .points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let reader_streams: Vec<Vec<Op<2, u64>>> = (0..2)
            .map(|_| {
                mixed_op_stream::<2, _>(side, 800, &OpMix::read_only(), 0.8, 48, &mut rng)
                    .into_iter()
                    .map(Op::from)
                    .collect()
            })
            .collect();
        // Upsert form (no duplicate-inserting `Insert`) so the table
        // stays near its 200k-record steady state however many times the
        // background writer cycles the stream.
        let writer_stream: Vec<Op<2, u64>> =
            mixed_op_stream::<2, _>(side, 24_000, &OpMix::write_only(), 0.8, 1, &mut rng)
                .into_iter()
                .map(|op| match op {
                    StreamOp::Insert(p, v) | StreamOp::Update(p, v) => Op::Update(p, v),
                    StreamOp::Delete(p) => Op::Delete(p),
                    StreamOp::Get(p) => Op::Get(p),
                    StreamOp::Query(q) => Op::Query(q),
                })
                .collect();
        let table = ShardedTable::build_paged(
            Onion2D::new(side).unwrap(),
            records.clone(),
            DiskModel::ssd(),
            4,
            1 << 10,
        )
        .unwrap();
        let engine = Engine::new(table, EngineConfig::with_epoch_ops(1 << 20));
        let gate = std::sync::RwLock::new(());
        let stop = AtomicBool::new(false);
        let (engine, gate, stop) = (&engine, &gate, &stop);
        let (mut baseline, mut optimized) = (0.0, 0.0);
        std::thread::scope(|s| {
            // Continuous epoch writer: admit a 512-op chunk, then apply it
            // under the write lock, until the readers are done measuring.
            let writer = &writer_stream;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for chunk in writer.chunks(2048) {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        for op in chunk {
                            engine.execute(op.clone()).unwrap();
                        }
                        let _apply = gate.write().unwrap();
                        engine.flush().unwrap();
                    }
                }
            });
            let serve = |locked: bool| -> u64 {
                std::thread::scope(|s2| {
                    for stream in &reader_streams {
                        s2.spawn(move || {
                            for op in stream {
                                let _scan = locked.then(|| gate.read().unwrap());
                                engine.execute(op.clone()).unwrap();
                            }
                        });
                    }
                });
                engine.stats().gets
            };
            baseline = time_ns(reps, || serve(true));
            optimized = time_ns(reps, || serve(false));
            stop.store(true, Ordering::Relaxed);
        });
        comparisons.push(Comparison {
            name: "engine/mixed_rw/onion2d/zipf200k/2r1w",
            baseline_ns: Some(baseline),
            optimized_ns: optimized,
        });
    }

    // The MVCC headline, isolated at the table layer: 2 scanner threads
    // run a fixed rect-scan workload (4 passes over 48 queries each) to
    // completion while a writer cycles whole-epoch batches through
    // `apply_batch` as continuous background load — the measured
    // quantity is scan completion time under that load. The writer
    // brackets every apply in a write lock on both sides (identical
    // load); only the scanners differ. Baseline: each scan holds the
    // read side (the pre-MVCC shard-lock discipline hoisted to table
    // scope), so scans stall behind every multi-millisecond epoch
    // application and convoy at the gate. Optimized: scans pin an epoch
    // version and run lock-free while the writer installs new versions
    // with a pointer swap — scan latency stays flat however fast epochs
    // land, and no scan ever observes a torn epoch. Each rep spans many
    // apply cycles, so best-of-N timing reflects the steady state, not a
    // lucky quiet window.
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(77);
        let data = zipf_points::<2, _>(side, 200_000, 0.8, &mut rng);
        let records: Vec<(Point<2>, u64)> = data
            .points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let queries: Vec<RectQuery<2>> = (0..48)
            .map(|_| {
                let w = rng.random_range(16..128u32);
                let h = rng.random_range(16..128u32);
                let x = rng.random_range(0..side - w);
                let y = rng.random_range(0..side - h);
                RectQuery::new([x, y], [w, h]).unwrap()
            })
            .collect();
        let epochs: Vec<Vec<sfc_index::BatchOp<2, u64>>> = (0..16)
            .map(|e| {
                let batch = zipf_points::<2, _>(side, 8_192, 0.8, &mut rng);
                batch
                    .points
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| sfc_index::BatchOp::Update(p, (e * 10_000 + i) as u64))
                    .collect()
            })
            .collect();
        let table = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            records.clone(),
            DiskModel::ssd(),
            4,
        )
        .unwrap();
        let gate = std::sync::RwLock::new(());
        let stop = AtomicBool::new(false);
        let (table, gate, stop, queries) = (&table, &gate, &stop, &queries);
        let (mut baseline, mut optimized) = (0.0, 0.0);
        std::thread::scope(|s| {
            // Continuous epoch writer, cycling the pre-generated batches
            // with a short admission gap between applies (the cadence a
            // real epoch writer has between flushes).
            let epochs = &epochs;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    {
                        let _apply = gate.write().unwrap();
                        table.apply_batch(epochs[i % epochs.len()].clone()).unwrap();
                    }
                    i += 1;
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            let run_scans = |locked: bool| -> u64 {
                std::thread::scope(|s2| {
                    let scanners: Vec<_> = (0..2)
                        .map(|_| {
                            s2.spawn(move || {
                                let mut rows = 0u64;
                                for _ in 0..4 {
                                    for q in queries {
                                        let _scan = locked.then(|| gate.read().unwrap());
                                        rows += table
                                            .query_rect(q, &QueryOptions::default())
                                            .unwrap()
                                            .records
                                            .len()
                                            as u64;
                                    }
                                }
                                rows
                            })
                        })
                        .collect();
                    scanners
                        .into_iter()
                        .map(|h| h.join().expect("scanner panicked"))
                        .sum()
                })
            };
            baseline = time_ns(reps, || run_scans(true));
            optimized = time_ns(reps, || run_scans(false));
            stop.store(true, Ordering::Relaxed);
        });
        comparisons.push(Comparison {
            name: "engine/mvcc_scan_vs_writer/onion2d/zipf200k/2r1w",
            baseline_ns: Some(baseline),
            optimized_ns: optimized,
        });
    }

    // Time-travel reads, warm vs cold: `as_of` an epoch still inside the
    // retention window pins a retained version (pointer chase, zero
    // I/O); `as_of` one evicted from it reconstructs the state by
    // `snapshot + WAL prefix` replay through the live log handle. The
    // pair prices the retention window — what keeping a few epochs of
    // COW versions in memory buys over re-reading history from disk.
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(91);
        let dir = std::env::temp_dir().join(format!("sfc-bench-asof-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine: Engine<Onion2D, u64, 2> = Engine::open(
            &dir,
            Onion2D::new(side).unwrap(),
            DiskModel::ssd(),
            4,
            EngineConfig {
                epoch_ops: 1 << 20,
                retention: sfc_index::RetentionPolicy {
                    epochs: 4,
                    bytes: u64::MAX,
                },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        const EPOCHS: u64 = 12;
        for _ in 0..EPOCHS {
            let batch = zipf_points::<2, _>(side, 2_048, 0.8, &mut rng);
            for (i, p) in batch.points.into_iter().enumerate() {
                engine.execute(Op::Update(p, i as u64)).unwrap();
            }
            engine.flush().unwrap();
        }
        let q = RectQuery::new([64, 64], [256, 256]).unwrap();
        let warm = EPOCHS - 1; // retained (window holds the last 4)
        let cold = 2; // long evicted: snapshot-less WAL-prefix replay
        assert!(engine.snapshot_at(warm).is_some());
        assert!(engine.snapshot_at(cold).is_none());
        comparisons.push(Comparison {
            name: "engine/mvcc_as_of/onion2d/zipf2k12e/window_vs_replay",
            baseline_ns: Some(time_ns(reps, || {
                engine.query_as_of(cold, &q).unwrap().records.len() as u64
            })),
            optimized_ns: time_ns(reps, || {
                engine.query_as_of(warm, &q).unwrap().records.len() as u64
            }),
        });
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The write path the epoch log buys: curve-order-sorted batches
    // through `apply_batch` vs the same Zipf-ordered writes as random
    // single-record inserts. Both start from an empty 4-shard table.
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(33);
        let data = zipf_points::<2, _>(side, 100_000, 0.8, &mut rng);
        let records: Vec<(Point<2>, u64)> = data
            .points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let empty_table = || -> ShardedTable<Onion2D, u64, 2> {
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap()
        };
        comparisons.push(Comparison {
            name: "engine/write_epochs/onion2d/zipf100k",
            baseline_ns: Some(time_ns(reps, || {
                let mut t = empty_table();
                for &(p, v) in &records {
                    t.insert(p, v).unwrap();
                }
                t.len() as u64
            })),
            optimized_ns: time_ns(reps, || {
                let t = empty_table();
                for chunk in records.chunks(4096) {
                    let batch: Vec<sfc_index::BatchOp<2, u64>> = chunk
                        .iter()
                        .map(|&(p, v)| sfc_index::BatchOp::Insert(p, v))
                        .collect();
                    t.apply_batch(batch).unwrap();
                }
                t.len() as u64
            }),
        });
    }

    // Durability tax on the epoch write path: the same Zipf write stream
    // flushed in 512-op epochs through an in-memory engine (baseline)
    // vs a durable one. Same epoch contents on both sides (identical
    // stream, identical auto-flush cadence), so the pair isolates
    // exactly the commit cost. Since PR 5 the durable side runs the
    // group-commit/pipelined path: frames encode into a reused buffer,
    // append without blocking, and fsync on the sync thread while the
    // next epoch's admissions and apply proceed — only the final
    // explicit flush waits for the disk. The "speedup" is the fraction
    // of write throughput that survives turning durability on — honest
    // overhead tracking, expected below 1x (it was 0.19x when every
    // epoch paid a blocking fsync).
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(55);
        let data = zipf_points::<2, _>(side, 16_384, 0.8, &mut rng);
        let writes: Vec<Op<2, u64>> = data
            .points
            .into_iter()
            .enumerate()
            .map(|(i, p)| Op::Update(p, i as u64))
            .collect();
        let bench_dir = std::env::temp_dir().join(format!("sfc-bench-wal-{}", std::process::id()));
        let config = EngineConfig::with_epoch_ops(512);
        let fresh_table = || -> ShardedTable<Onion2D, u64, 2> {
            ShardedTable::build(Onion2D::new(side).unwrap(), Vec::new(), DiskModel::ssd(), 4)
                .unwrap()
        };
        let open_durable =
            |dir: &std::path::Path, commit: CommitPolicy| -> Engine<Onion2D, u64, 2> {
                Engine::open(
                    dir,
                    Onion2D::new(side).unwrap(),
                    DiskModel::ssd(),
                    4,
                    EngineConfig { commit, ..config },
                )
                .unwrap()
            };
        let drive = |engine: &Engine<Onion2D, u64, 2>| -> u64 {
            for op in &writes {
                engine.execute(op.clone()).unwrap();
            }
            engine.flush().unwrap();
            engine.epoch()
        };
        // One engine per mode, built *outside* the timed closures, so the
        // pair times exactly the per-epoch cost delta (frame encode +
        // append + sync discipline) and none of the setup (directory
        // churn, WAL header creation, table build). The stream is all
        // updates over a fixed key population, so the table stays the
        // same size across reps; WAL length does not affect append cost.
        let _ = std::fs::remove_dir_all(&bench_dir);
        let mem_engine = Engine::new(fresh_table(), config);
        let dur_engine = open_durable(&bench_dir, CommitPolicy::default());
        comparisons.push(Comparison {
            name: "engine/wal_commit/onion2d/zipf16k/epoch512",
            baseline_ns: Some(time_ns(reps, || drive(&mem_engine))),
            optimized_ns: time_ns(reps, || drive(&dur_engine)),
        });
        drop(dur_engine);

        // Old vs new commit path, like-for-like on the same durable
        // stream: the PR-4 synchronous discipline (append + fsync before
        // every apply, `CommitPolicy::synchronous()`) vs the pipelined
        // default. This is the pair the wal_commit ratio above moves on.
        let sync_dir = bench_dir.with_extension("sync");
        let _ = std::fs::remove_dir_all(&sync_dir);
        let sync_engine = open_durable(&sync_dir, CommitPolicy::synchronous());
        let pipe_dir = bench_dir.with_extension("pipe");
        let _ = std::fs::remove_dir_all(&pipe_dir);
        let pipe_engine = open_durable(&pipe_dir, CommitPolicy::default());
        comparisons.push(Comparison {
            name: "engine/wal_commit_path/onion2d/sync_vs_pipelined",
            baseline_ns: Some(time_ns(reps, || drive(&sync_engine))),
            optimized_ns: time_ns(reps, || drive(&pipe_engine)),
        });
        drop(sync_engine);
        drop(pipe_engine);
        let _ = std::fs::remove_dir_all(&sync_dir);
        let _ = std::fs::remove_dir_all(&pipe_dir);

        // Group commit under concurrent flushers: N writer threads each
        // admit a run of updates and call `flush` (i.e. demand
        // durability) per round. Baseline: the synchronous commit path,
        // where every leader's flush pays its own blocking fsync.
        // Optimized: the pipelined path, where waiters park on the sync
        // thread's watermark and one disk barrier acknowledges every
        // flusher that arrived while it ran. 1writers is the honest
        // control — with no concurrency to coalesce, both sides pay one
        // fsync per round and the ratio sits near 1x.
        for writers in [1usize, 4] {
            let rounds = 8usize;
            let per_round = 64u64;
            let run = |commit: CommitPolicy, tag: &str| -> f64 {
                let dir = bench_dir.with_extension(format!("gc-{writers}-{tag}"));
                let _ = std::fs::remove_dir_all(&dir);
                let engine = open_durable(&dir, commit);
                let ns = time_ns(reps, || {
                    let engine = &engine;
                    std::thread::scope(|s| {
                        for w in 0..writers as u64 {
                            s.spawn(move || {
                                for r in 0..rounds as u64 {
                                    for i in 0..per_round {
                                        let p = Point::new([
                                            ((w * 7919 + r * 131 + i * 17) % u64::from(side))
                                                as u32,
                                            ((w * 104729 + i * 29) % u64::from(side)) as u32,
                                        ]);
                                        engine
                                            .execute(Op::Update(p, w * 1_000_000 + r * 1000 + i))
                                            .unwrap();
                                    }
                                    engine.flush().unwrap();
                                }
                            });
                        }
                    });
                    engine.epoch()
                });
                drop(engine);
                let _ = std::fs::remove_dir_all(&dir);
                ns
            };
            let name: &'static str = if writers == 1 {
                "engine/group_commit/onion2d/1writers"
            } else {
                "engine/group_commit/onion2d/4writers"
            };
            comparisons.push(Comparison {
                name,
                baseline_ns: Some(run(CommitPolicy::synchronous(), "sync")),
                optimized_ns: run(CommitPolicy::default(), "pipe"),
            });
        }

        // Recovery: replay a fixed 32-epoch WAL back into a fresh
        // 4-shard table. The directory is rebuilt deterministically first
        // (the commit benchmark above left a rep-dependent number of
        // epochs). Timing-only — there is no meaningful scalar twin; the
        // number tracks how fast a restart returns to serving. Since
        // PR 5 the replay coalesces the WAL suffix into one batch and
        // applies it through the parallel per-shard path.
        let _ = std::fs::remove_dir_all(&bench_dir);
        drive(&open_durable(&bench_dir, CommitPolicy::default()));
        comparisons.push(Comparison {
            name: "engine/recovery_replay/onion2d/zipf16k/epoch512",
            baseline_ns: None,
            optimized_ns: time_ns(reps, || {
                let engine = open_durable(&bench_dir, CommitPolicy::default());
                engine.epoch() + engine.table().len() as u64
            }),
        });
        let _ = std::fs::remove_dir_all(&bench_dir);
    }

    // Parallel epoch apply: one large curve-sorted batch cut at shard
    // boundaries, with each shard's slice timed on its own. Reported in
    // the same spirit as `sharded_query_simio`: the baseline is the
    // serial apply (the per-shard costs summed — what one thread pays),
    // the optimized number is the parallel critical path (the slowest
    // shard — what the `thread::scope` apply pays on enough cores).
    // Machine-load independent to first order, since both numbers come
    // from the same single-threaded per-shard measurements. Uniform
    // points keep the shards balanced — this entry measures the apply
    // path's parallelism; skew-bounded scaling is already pinned by the
    // `sharded_query_simio` family. shards1 is the control at 1.0x.
    {
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(77);
        let updates: Vec<(Point<2>, u64)> = (0..65_536u64)
            .map(|i| {
                let p = Point::new([rng.random_range(0..side), rng.random_range(0..side)]);
                (p, i)
            })
            .collect();
        for (name, shard_count) in [
            ("engine/apply_parallel/onion2d/uniform64k/shards1", 1usize),
            ("engine/apply_parallel/onion2d/uniform64k/shards4", 4),
            ("engine/apply_parallel/onion2d/uniform64k/shards8", 8),
        ] {
            let curve = Onion2D::new(side).unwrap();
            // Prebuilt dense-ish table; the batch is all updates over the
            // same key population, so repeated applies are size-stable.
            let table: ShardedTable<Onion2D, u64, 2> =
                ShardedTable::build(curve, updates.clone(), DiskModel::ssd(), shard_count).unwrap();
            // Cut the batch at this table's partitions (what sort_batch
            // does inside apply_batch), so each sub-batch exercises
            // exactly one shard's slice of the epoch.
            let mut per_shard_ops: Vec<Vec<sfc_index::BatchOp<2, u64>>> =
                vec![Vec::new(); shard_count];
            for &(p, v) in &updates {
                let key = curve.index_of(p).unwrap();
                let shard = table
                    .partitions()
                    .iter()
                    .position(|part| part.lo <= key && key <= part.hi)
                    .expect("partitions cover the universe");
                per_shard_ops[shard].push(sfc_index::BatchOp::Update(p, v));
            }
            let mut serial_ns = 0.0f64;
            let mut critical_ns = 0.0f64;
            for ops in per_shard_ops.iter().filter(|o| !o.is_empty()) {
                let shard_ns = time_ns(reps, || {
                    table.apply_batch_serial(ops.clone()).unwrap().len() as u64
                });
                serial_ns += shard_ns;
                critical_ns = critical_ns.max(shard_ns);
            }
            comparisons.push(Comparison {
                name,
                baseline_ns: Some(serial_ns),
                optimized_ns: critical_ns,
            });
        }
    }

    // Buffer-pool eviction: the old `min_by_key`-rescan LRU vs the O(1)
    // intrusive-list pool, on a capacity-exceeding page stream (every
    // access past warm-up evicts).
    {
        struct NaiveLru {
            capacity: usize,
            last_use: std::collections::HashMap<u64, u64>,
            tick: u64,
        }
        impl NaiveLru {
            fn access(&mut self, page: u64) -> bool {
                self.tick += 1;
                let hit = self.last_use.contains_key(&page);
                self.last_use.insert(page, self.tick);
                if !hit && self.last_use.len() > self.capacity {
                    let (&victim, _) = self.last_use.iter().min_by_key(|&(_, &t)| t).unwrap();
                    self.last_use.remove(&victim);
                }
                hit
            }
        }
        let capacity = 4096usize;
        let accesses = 1u64 << 16;
        let stream = |mut f: Box<dyn FnMut(u64) -> bool>| -> u64 {
            let mut state = 0x9E3779B97F4A7C15u64;
            let mut hits = 0u64;
            for _ in 0..accesses {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                hits += u64::from(f(state % (3 * capacity as u64)));
            }
            hits
        };
        comparisons.push(Comparison {
            name: "cache/lru_evict/cap4096/64k_accesses",
            baseline_ns: Some(time_ns(reps, || {
                let mut naive = NaiveLru {
                    capacity,
                    last_use: std::collections::HashMap::new(),
                    tick: 0,
                };
                stream(Box::new(move |p| naive.access(p)))
            })),
            optimized_ns: time_ns(reps, || {
                let mut pool = LruBufferPool::new(capacity);
                stream(Box::new(move |p| pool.access(p)))
            }),
        });
    }

    // Wire protocol serving rate: a 4-client fleet over TCP loopback vs
    // the same fleet through the in-process transport — both route every
    // request through the same `respond` dispatcher, so the delta is the
    // framed protocol plus the kernel's loopback stack, nothing else.
    {
        use std::sync::Arc;
        const CLIENTS: usize = 4;
        const OPS_PER_CLIENT: usize = 1500;
        let side = 1u32 << 7;
        let fleet = client_streams::<2>(
            CLIENTS,
            side,
            OPS_PER_CLIENT,
            &OpMix::read_heavy(),
            0.8,
            8,
            0x5FC_0E7,
        );
        let mk_engine = || {
            let curve = Onion2D::new(side).unwrap();
            let table = ShardedTable::build(curve, Vec::new(), DiskModel::ssd(), 4).unwrap();
            Arc::new(Engine::new(table, EngineConfig::default()))
        };
        let drive = |mut clients: Vec<Client<Onion2D, u64, 2>>| -> u64 {
            std::thread::scope(|s| {
                for (client, stream) in clients.iter_mut().zip(&fleet) {
                    s.spawn(move || {
                        for op in stream {
                            client.execute(op.clone().into()).unwrap();
                        }
                    });
                }
            });
            (CLIENTS * OPS_PER_CLIENT) as u64
        };
        let local_ns = time_ns(reps, || {
            let engine = mk_engine();
            drive(
                (0..CLIENTS)
                    .map(|_| Client::local(Arc::clone(&engine)))
                    .collect(),
            )
        });
        let remote_ns = time_ns(reps, || {
            let engine = mk_engine();
            let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
            let addr = server.local_addr().to_string();
            let clients = (0..CLIENTS)
                .map(|_| Client::<Onion2D, u64, 2>::connect(&addr).unwrap())
                .collect();
            let ops = drive(clients);
            server.shutdown();
            ops
        });
        comparisons.push(Comparison {
            name: "engine/net_rps/onion2d/loopback/4clients",
            baseline_ns: Some(local_ns),
            optimized_ns: remote_ns,
        });
    }

    // Replica convergence: wall time for a subscribed replica to apply a
    // transactor's full committed history (live feed, epoch batches of
    // 500 writes) and report zero lag. Timing-only — there is no scalar
    // twin for "how fast does a replica drain the epoch stream".
    {
        use std::sync::Arc;
        let side = 1u32 << 7;
        let mut rng = StdRng::seed_from_u64(0x5EED_4E11);
        let writes = mixed_op_stream::<2, _>(side, 5000, &OpMix::write_only(), 0.6, 4, &mut rng);
        let converge_ns = time_ns(reps.min(3), || {
            let curve = Onion2D::new(side).unwrap();
            let table = ShardedTable::build(curve, Vec::new(), DiskModel::ssd(), 4).unwrap();
            let engine = Arc::new(Engine::new(table, EngineConfig::with_epoch_ops(1 << 20)));
            let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
            let replica = Replica::<Onion2D, u64, 2>::start(
                &server.local_addr().to_string(),
                Onion2D::new(side).unwrap(),
                DiskModel::ssd(),
                4,
                &EngineConfig::default(),
            )
            .unwrap();
            for (i, op) in writes.iter().enumerate() {
                engine.execute(op.clone().into()).unwrap();
                if i % 500 == 499 {
                    engine.flush().unwrap();
                }
            }
            let committed = engine.stats().epochs;
            while replica.applied_epoch() < committed {
                assert!(!replica.is_failed(), "{:?}", replica.take_fault());
                std::hint::spin_loop();
            }
            let applied = replica.applied_epoch();
            replica.stop();
            server.shutdown();
            applied
        });
        comparisons.push(Comparison {
            name: "engine/replica_lag/onion2d/5k_writes/converge",
            baseline_ns: None,
            optimized_ns: converge_ns,
        });
    }

    // Replica failover: wall time from a severed subscription back to a
    // fully reconverged replica. A durable transactor (real WAL — the
    // catch-up source) feeds a replica through a chaos proxy; each rep
    // kills every live proxy connection, ships 4 more committed epochs
    // (1k writes), and clocks sever → reconnect → re-subscribe-from-
    // applied → WAL catch-up → zero lag. Timing-only: there is no
    // "non-healing" twin — the alternative to failover is rebuilding
    // the replica from epoch 0.
    {
        use sfc_net::{NetConfig, ReplicaConfig, RetryPolicy};
        use sfc_workloads::{ChaosInjector, ChaosProxy};
        use std::sync::Arc;
        let side = 1u32 << 7;
        let mut rng = StdRng::seed_from_u64(0x5EED_FA11);
        let writes = mixed_op_stream::<2, _>(side, 1000, &OpMix::write_only(), 0.6, 4, &mut rng);
        let dir = std::env::temp_dir().join(format!("sfc-bench-failover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Arc::new(
            Engine::open(
                &dir,
                Onion2D::new(side).unwrap(),
                DiskModel::ssd(),
                4,
                EngineConfig::with_epoch_ops(1 << 20),
            )
            .unwrap(),
        );
        let server = Server::spawn(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let injector = ChaosInjector::new();
        let proxy =
            ChaosProxy::spawn(&server.local_addr().to_string(), Arc::clone(&injector)).unwrap();
        let replica = Replica::<Onion2D, u64, 2>::start_with(
            &proxy.addr(),
            Onion2D::new(side).unwrap(),
            DiskModel::ssd(),
            4,
            &EngineConfig::default(),
            ReplicaConfig {
                net: NetConfig {
                    connect_timeout: Duration::from_secs(2),
                    request_deadline: Some(Duration::from_secs(5)),
                    retry: RetryPolicy::none(),
                },
                reconnect: RetryPolicy {
                    max_retries: 1000,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(5),
                },
            },
        )
        .unwrap();
        let converge = |target: u64| {
            let deadline = Instant::now() + Duration::from_secs(30);
            while replica.applied_epoch() < target {
                assert!(!replica.is_failed(), "{:?}", replica.take_fault());
                assert!(
                    Instant::now() < deadline,
                    "failover bench never reconverged"
                );
                std::hint::spin_loop();
            }
        };
        let failover_ns = time_ns(reps.min(3), || {
            proxy.kill_all();
            for (i, op) in writes.iter().enumerate() {
                engine.execute(op.clone().into()).unwrap();
                if i % 250 == 249 {
                    engine.flush().unwrap();
                }
            }
            let committed = engine.stats().epochs;
            converge(committed);
            replica.reconnects()
        });
        comparisons.push(Comparison {
            name: "engine/replica_failover/onion2d/sever_1k_writes/reconverge",
            baseline_ns: None,
            optimized_ns: failover_ns,
        });
        replica.stop();
        proxy.shutdown();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Real-I/O segment scans: one full curve-order scan of a 65k-entry
    // file-backed SFCSEG01 segment, through a 16-page buffer pool that
    // thrashes (every rep seeks, reads, and crc-checks real pages) vs a
    // pool large enough to keep the whole segment resident after the
    // warmup pass. The pair prices the buffer pool itself on genuinely
    // disk-resident data — no simulated `DiskModel` ticks anywhere.
    {
        use sfc_index::{Backend, FileBackend, StoreConfig};
        let entries: Vec<(u64, u64)> = (0..65_536u64).map(|k| (k * 3, k)).collect();
        let bench_dir = std::env::temp_dir().join(format!("sfc-bench-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&bench_dir);
        let mk = |pool: usize| {
            FileBackend::<u64>::create(
                &bench_dir,
                &format!("scan{pool}"),
                StoreConfig {
                    page_size: 4096,
                    pool_pages: pool,
                },
                entries.clone(),
            )
            .unwrap()
        };
        let thrashing = mk(16);
        let resident = mk(4096);
        let scan_all = |b: &FileBackend<u64>| {
            let mut acc = 0u64;
            b.scan(0, u64::MAX, &mut |_, &v| acc = acc.wrapping_add(v))
                .unwrap();
            acc
        };
        // A single resident scan is ~0.2ms, so scheduler jitter dominates
        // a best-of-2 quick run; this pair is cheap enough to always take
        // the min over a full rep count.
        let seg_reps = reps.max(12);
        comparisons.push(Comparison {
            name: "index/segment_scan/65k/pool16_vs_resident",
            baseline_ns: Some(time_ns(seg_reps, || scan_all(&thrashing))),
            optimized_ns: time_ns(seg_reps, || scan_all(&resident)),
        });
        drop(thrashing);
        drop(resident);
        let _ = std::fs::remove_dir_all(&bench_dir);
    }

    // Cold-open tax of the disk-resident engine: recover one
    // checkpointed directory (snapshot + empty WAL) into an in-memory
    // engine (baseline) vs into file-backed segments (`open_stored`).
    // The stored side replays the same snapshot *and* bulk-builds a real
    // SFCSEG01 generation per shard, so the ratio is the honest price of
    // putting the dataset on disk at open time — expected below 1x.
    {
        use sfc_index::StoreConfig;
        let side = 1u32 << 9;
        let mut rng = StdRng::seed_from_u64(77);
        let dir = std::env::temp_dir().join(format!("sfc-bench-diskopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig::with_epoch_ops(1 << 20);
        {
            let engine: Engine<Onion2D, u64, 2> = Engine::open(
                &dir,
                Onion2D::new(side).unwrap(),
                DiskModel::ssd(),
                4,
                config,
            )
            .unwrap();
            let data = zipf_points::<2, _>(side, 16_384, 0.8, &mut rng);
            for (i, p) in data.points.into_iter().enumerate() {
                engine.execute(Op::Update(p, i as u64)).unwrap();
            }
            engine.flush().unwrap();
            engine.checkpoint().unwrap();
        }
        comparisons.push(Comparison {
            name: "engine/disk_open/onion2d/zipf16k/checkpointed",
            baseline_ns: Some(time_ns(reps, || {
                let e: Engine<Onion2D, u64, 2> = Engine::open(
                    &dir,
                    Onion2D::new(side).unwrap(),
                    DiskModel::ssd(),
                    4,
                    config,
                )
                .unwrap();
                e.table().len() as u64
            })),
            optimized_ns: time_ns(reps, || {
                let e: Engine<Onion2D, u64, 2, sfc_index::FileBackend<sfc_index::Record<2, u64>>> =
                    Engine::open_stored(
                        &dir,
                        Onion2D::new(side).unwrap(),
                        DiskModel::ssd(),
                        4,
                        StoreConfig {
                            page_size: 4096,
                            pool_pages: 64,
                        },
                        config,
                    )
                    .unwrap();
                e.table().len() as u64
            }),
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Report.
    let rows: Vec<Row> = comparisons
        .iter()
        .map(|c| {
            Row::new(
                c.name,
                vec![
                    c.baseline_ns
                        .map_or_else(|| "-".into(), |b| format!("{:.3}", b / 1e6)),
                    format!("{:.3}", c.optimized_ns / 1e6),
                    c.speedup()
                        .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
                ],
            )
        })
        .collect();
    print_table(
        "Hot-path kernels: per-probe unrank vs. batch/stepper",
        "kernel",
        &["baseline_ms", "optimized_ms", "speedup"],
        &rows,
    );

    let mut json = String::from("[\n");
    for (i, c) in comparisons.iter().enumerate() {
        let baseline = c
            .baseline_ns
            .map_or_else(|| "null".into(), |b| format!("{b:.1}"));
        let speedup = c
            .speedup()
            .map_or_else(|| "null".into(), |s| format!("{s:.3}"));
        json.push_str(&format!(
            "  {{\"name\": \"{}\", \"baseline_ns\": {}, \"optimized_ns\": {:.1}, \"speedup\": {}}}{}\n",
            c.name,
            baseline,
            c.optimized_ns,
            speedup,
            if i + 1 < comparisons.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n");
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("cannot write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
