//! Figure 2: a 7×7 query on an 8×8 universe needs 5 clusters under the
//! Hilbert curve but as little as 1 under the onion curve, and the *average*
//! over all 7×7 placements is much lower for the onion curve.

use onion_core::{Onion2D, SpaceFillingCurve};
use sfc_baselines::Hilbert;
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::{all_translations, clustering_number, RectQuery};

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side = 8u32;
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();

    let mut rows = Vec::new();
    let mut onion_total = 0u64;
    let mut hilbert_total = 0u64;
    let mut onion_best = u64::MAX;
    let mut hilbert_worst = 0u64;
    let queries: Vec<RectQuery<2>> = all_translations(side, [7u32, 7]).unwrap().collect();
    for q in &queries {
        let co = clustering_number(&onion, q);
        let ch = clustering_number(&hilbert, q);
        onion_total += co;
        hilbert_total += ch;
        onion_best = onion_best.min(co);
        hilbert_worst = hilbert_worst.max(ch);
        rows.push(Row::new(
            format!("lo=({},{})", q.lo()[0], q.lo()[1]),
            vec![co.to_string(), ch.to_string()],
        ));
    }
    let n = queries.len() as f64;
    rows.push(Row::new(
        "average",
        vec![
            format!("{:.2}", onion_total as f64 / n),
            format!("{:.2}", hilbert_total as f64 / n),
        ],
    ));
    print_table(
        "Figure 2: 7x7 query on the 8x8 universe",
        "placement",
        &["onion", "hilbert"],
        &rows,
    );
    write_csv(&cfg, "fig2", "placement", &["onion", "hilbert"], &rows);

    assert_eq!(
        onion_best, 1,
        "some placement is a single onion cluster (Fig 2b)"
    );
    assert!(
        hilbert_worst >= 5,
        "some placement needs >= 5 Hilbert clusters (Fig 2a), got {hilbert_worst}"
    );
    assert!(onion_total < hilbert_total);
    println!(
        "\nOK: onion best placement = {onion_best} cluster (paper: 1), \
         hilbert worst = {hilbert_worst} (paper: 5); averages {:.2} vs {:.2}.",
        onion_total as f64 / n,
        hilbert_total as f64 / n
    );
    let _ = onion.universe(); // silence unused warnings in case of cfg tweaks
}
