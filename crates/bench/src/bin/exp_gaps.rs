//! §VIII future work, measured: "the distance between different clusters of
//! the same query region, which tends to be important in fetching data from
//! the disk".
//!
//! For each query size we report, per curve, the clustering number together
//! with the mean/max index gap between consecutive clusters and the key
//! span density. The onion curve wins on cluster *count*; this experiment
//! quantifies the price it pays in cluster *spread* (its clusters sit on
//! different layers, far apart in key space), which the paper flags as the
//! open trade-off.

use onion_core::Onion2D;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::{cluster_gap_stats, random_translations};

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = 1 << 9;
    let per_len = if cfg.paper_scale { 500 } else { 100 };
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut rows = Vec::new();
    for l in [16u32, 64, 128, 256, 384, side - 9] {
        let queries = random_translations(side, [l, l], per_len, &mut rng).unwrap();
        let mut acc = [(0f64, 0f64, 0f64); 2]; // (clusters, mean_gap, density)
        for q in &queries {
            for (slot, stats) in [cluster_gap_stats(&onion, q), cluster_gap_stats(&hilbert, q)]
                .into_iter()
                .enumerate()
            {
                acc[slot].0 += stats.clusters as f64;
                acc[slot].1 += stats.mean_gap;
                acc[slot].2 += stats.density();
            }
        }
        let k = queries.len() as f64;
        rows.push(Row::new(
            format!("{l}"),
            vec![
                format!("{:.1}", acc[0].0 / k),
                format!("{:.0}", acc[0].1 / k),
                format!("{:.3}", acc[0].2 / k),
                format!("{:.1}", acc[1].0 / k),
                format!("{:.0}", acc[1].1 / k),
                format!("{:.3}", acc[1].2 / k),
            ],
        ));
    }
    let columns = [
        "onion:clusters",
        "onion:gap",
        "onion:density",
        "hilbert:clusters",
        "hilbert:gap",
        "hilbert:density",
    ];
    print_table(
        &format!("Cluster-gap analysis (paper SVIII future work), side {side}"),
        "l",
        &columns,
        &rows,
    );
    write_csv(&cfg, "gaps", "l", &columns, &rows);
    println!(
        "\nReading: the onion curve needs far fewer clusters for large queries \
         but its clusters are spread across layers (larger gaps / lower \
         density) — the open trade-off the paper's conclusion discusses."
    );
}
