//! Figure 3: the two-dimensional onion curve's cell numbering for the 2×2
//! and 4×4 universes (and 6×6 as a bonus), printed as grids.

use onion_core::{Onion2D, Point, SpaceFillingCurve};

fn render(side: u32) {
    let o = Onion2D::new(side).unwrap();
    println!("\nonion curve on the {side}x{side} universe (y grows upward):");
    for y in (0..side).rev() {
        let mut line = String::new();
        for x in 0..side {
            line.push_str(&format!("{:>4}", o.index_unchecked(Point::new([x, y]))));
        }
        println!("{line}");
    }
}

fn main() {
    println!("Figure 3 reproduction: onion curve orders.");
    render(2);
    render(4);
    render(6);

    // The paper's exact 2×2 and 4×4 numbers.
    let o2 = Onion2D::new(2).unwrap();
    assert_eq!(o2.index_unchecked(Point::new([0, 0])), 0);
    assert_eq!(o2.index_unchecked(Point::new([1, 0])), 1);
    assert_eq!(o2.index_unchecked(Point::new([1, 1])), 2);
    assert_eq!(o2.index_unchecked(Point::new([0, 1])), 3);
    let o4 = Onion2D::new(4).unwrap();
    assert_eq!(o4.index_unchecked(Point::new([0, 1])), 11);
    assert_eq!(o4.index_unchecked(Point::new([1, 1])), 12);
    assert_eq!(o4.index_unchecked(Point::new([1, 2])), 15);
    println!("\nOK: matches the paper's Figure 3 numbering.");
}
