//! The seek-vs-read-amplification frontier (Asano et al., paper reference
//! \[15\]): coalescing cluster ranges whose gaps are below a threshold trades
//! extra scanned cells for fewer seeks.
//!
//! For a mid-size query workload we sweep the gap threshold and report the
//! average seeks and the read amplification (cells scanned / cells wanted)
//! per curve.

use onion_core::{Onion2D, SpaceFillingCurve};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::{cluster_ranges, coalesce_ranges, random_translations};

fn frontier<C: SpaceFillingCurve<2>>(
    curve: &C,
    queries: &[sfc_clustering::RectQuery<2>],
    max_gap: u64,
) -> (f64, f64) {
    let mut seeks = 0u64;
    let mut scanned = 0u64;
    let mut wanted = 0u64;
    for q in queries {
        let merged = coalesce_ranges(&cluster_ranges(curve, q), max_gap);
        seeks += merged.len() as u64;
        scanned += merged.iter().map(|&(lo, hi)| hi - lo + 1).sum::<u64>();
        wanted += q.volume();
    }
    (
        seeks as f64 / queries.len() as f64,
        scanned as f64 / wanted as f64,
    )
}

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side: u32 = 1 << 9;
    let count = if cfg.paper_scale { 500 } else { 100 };
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let queries = random_translations(side, [96u32, 96], count, &mut rng).unwrap();

    let mut rows = Vec::new();
    for gap in [0u64, 8, 64, 512, 4096, 32768] {
        let (so, ao) = frontier(&onion, &queries, gap);
        let (sh, ah) = frontier(&hilbert, &queries, gap);
        rows.push(Row::new(
            format!("{gap}"),
            vec![
                format!("{so:.1}"),
                format!("{ao:.2}x"),
                format!("{sh:.1}"),
                format!("{ah:.2}x"),
            ],
        ));
    }
    let columns = ["onion:seeks", "onion:amp", "hilbert:seeks", "hilbert:amp"];
    print_table(
        &format!("Range coalescing frontier, side {side}, 96x96 queries x{count}"),
        "max gap",
        &columns,
        &rows,
    );
    write_csv(&cfg, "coalesce", "max_gap", &columns, &rows);

    // Sanity: gap 0 changes nothing; amplification grows monotonically as
    // seeks shrink.
    let first: f64 = rows[0].cells[1].trim_end_matches('x').parse().unwrap();
    assert!(
        (first - 1.0).abs() < 1e-9,
        "gap 0 must not read extra cells"
    );
    println!(
        "\nReading: each row trades seeks for scanned cells — the Asano-style \
         relaxation the paper contrasts with its exact-retrieval model (SI-B)."
    );
}
