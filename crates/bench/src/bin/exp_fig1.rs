//! Figure 1: the same query region needs 2 clusters under the Hilbert curve
//! and 4 under the Z curve.
//!
//! The paper's figure shows an 8×8 universe with one rectangular query. We
//! search the 8×8 universe for the rectangle maximizing the Z/Hilbert
//! cluster gap, print both decompositions, and verify the paper's
//! qualitative claim (Hilbert ≤ Z on this query).

use onion_core::{Point, SpaceFillingCurve};
use sfc_baselines::{Hilbert, Morton};
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::{cluster_ranges, clustering_number, RectQuery};

fn render_clusters<C: SpaceFillingCurve<2>>(curve: &C, q: &RectQuery<2>) -> String {
    let side = curve.universe().side();
    let ranges = cluster_ranges(curve, q);
    let cluster_of = |p: Point<2>| -> Option<usize> {
        let idx = curve.index_unchecked(p);
        ranges.iter().position(|&(lo, hi)| lo <= idx && idx <= hi)
    };
    let mut out = String::new();
    for y in (0..side).rev() {
        for x in 0..side {
            let p = Point::new([x, y]);
            match cluster_of(p) {
                Some(c) if q.contains(p) => {
                    out.push_str(&format!("{:>3}", (b'A' + (c % 26) as u8) as char))
                }
                _ => out.push_str(&format!("{:>3}", if q.contains(p) { "?" } else { "." })),
            }
        }
        out.push('\n');
    }
    out
}

fn main() {
    let cfg = ExperimentCfg::from_args();
    let side = 8u32;
    let hilbert = Hilbert::<2>::new(side).unwrap();
    let z = Morton::<2>::new(side).unwrap();

    // Find the query with the largest Z-to-Hilbert cluster ratio, breaking
    // ties toward small queries (the figure uses a small rectangle).
    let mut best: Option<(RectQuery<2>, u64, u64)> = None;
    for w in 2..=4u32 {
        for h in 2..=4u32 {
            for x in 0..=side - w {
                for y in 0..=side - h {
                    let q = RectQuery::new([x, y], [w, h]).unwrap();
                    let ch = clustering_number(&hilbert, &q);
                    let cz = clustering_number(&z, &q);
                    let better = match best {
                        None => true,
                        Some((_, bh, bz)) => cz * bh > bz * ch,
                    };
                    if better {
                        best = Some((q, ch, cz));
                    }
                }
            }
        }
    }
    let (q, ch, cz) = best.expect("grid searched");
    println!(
        "Figure 1 reproduction: universe 8x8, query lo={:?} len={:?}",
        q.lo(),
        q.side_lengths()
    );
    println!(
        "\nHilbert clusters ({ch}):\n{}",
        render_clusters(&hilbert, &q)
    );
    println!("Z-order clusters ({cz}):\n{}", render_clusters(&z, &q));

    // The paper's figure shows a query with exactly 2 Hilbert clusters and
    // 4 Z clusters; find and display one such query too.
    'outer: for w in 2..=4u32 {
        for h in 2..=4u32 {
            for x in 0..=side - w {
                for y in 0..=side - h {
                    let q2 = RectQuery::new([x, y], [w, h]).unwrap();
                    if clustering_number(&hilbert, &q2) == 2 && clustering_number(&z, &q2) == 4 {
                        println!(
                            "Paper-exact instance (Hilbert 2, Z 4): lo={:?} len={:?}",
                            q2.lo(),
                            q2.side_lengths()
                        );
                        println!("Hilbert:\n{}", render_clusters(&hilbert, &q2));
                        println!("Z-order:\n{}", render_clusters(&z, &q2));
                        break 'outer;
                    }
                }
            }
        }
    }

    let rows = vec![
        Row::new("hilbert", vec![ch.to_string()]),
        Row::new("z-order", vec![cz.to_string()]),
    ];
    print_table(
        "Figure 1: clusters for the same query",
        "curve",
        &["clusters"],
        &rows,
    );
    write_csv(&cfg, "fig1", "curve", &["clusters"], &rows);

    assert!(
        ch < cz,
        "paper's claim: Hilbert needs fewer clusters than Z"
    );
    println!("\nOK: Hilbert ({ch}) < Z ({cz}), matching the paper's Figure 1 (2 vs 4).");
}
