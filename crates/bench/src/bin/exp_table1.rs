//! Table I: clustering approximation ratio η(Q, π) for cube queries.
//!
//! The paper's claim: for cube query sets of side `ℓ = side − O(1)` (the
//! adversarial regime), the onion curve's ratio stays bounded by a constant
//! (≤ 2.32 in 2D, ≤ 3.4 in 3D) while the Hilbert curve's average clustering
//! number grows as Ω(√n) (2D) and Ω(n^⅔) (3D).
//!
//! We compute the *exact* average clustering number over all translations
//! (Lemma 1 edge walk — no sampling), divide by the general lower bound
//! (Theorem 3 / 6) to obtain an upper estimate of η, and fit the growth
//! exponent of the Hilbert averages against the Lemma 5 prediction.

use onion_core::{Onion2D, Onion3D};
use sfc_baselines::Hilbert;
use sfc_bench::{print_table, write_csv, ExperimentCfg, Row};
use sfc_clustering::average_clustering_exact;
use sfc_theory::{
    fit_power_law, general_lower_bound_2d, general_lower_bound_3d, hilbert_growth_exponent,
    ETA_2D_CUBE_BOUND, ETA_3D_CUBE_BOUND,
};

const GAP: u32 = 9; // ℓ = side − GAP, so L = GAP + 1 stays constant

fn run_2d(cfg: &ExperimentCfg) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let sides: &[u32] = if cfg.paper_scale {
        &[32, 64, 128, 256, 512, 1024]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let mut rows = Vec::new();
    let (mut ns, mut hils, mut etas) = (Vec::new(), Vec::new(), Vec::new());
    for &side in sides {
        let l = side - GAP;
        let onion = Onion2D::new(side).unwrap();
        let hilbert = Hilbert::<2>::new(side).unwrap();
        let co = average_clustering_exact(&onion, [l, l]).unwrap();
        let ch = average_clustering_exact(&hilbert, [l, l]).unwrap();
        let lb = general_lower_bound_2d(side, l, l);
        let eta_o = co / lb;
        let eta_h = ch / lb;
        if side >= 128 {
            // Use only asymptotic sides for the growth-exponent fit.
            ns.push(f64::from(side) * f64::from(side));
            hils.push(ch);
        }
        etas.push(eta_o);
        rows.push(Row::new(
            format!("{side} (l={l})"),
            vec![
                format!("{co:.2}"),
                format!("{ch:.2}"),
                format!("{lb:.2}"),
                format!("{eta_o:.2}"),
                format!("{eta_h:.2}"),
            ],
        ));
    }
    print_table(
        "Table I (2D): cube queries, l = side-9",
        "side",
        &[
            "c(onion)",
            "c(hilbert)",
            "LB(any SFC)",
            "eta(onion)",
            "eta(hilbert)",
        ],
        &rows,
    );
    write_csv(
        cfg,
        "table1_2d",
        "side",
        &["c_onion", "c_hilbert", "lb", "eta_onion", "eta_hilbert"],
        &rows,
    );
    (ns, hils, etas)
}

fn run_3d(cfg: &ExperimentCfg) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let sides: &[u32] = if cfg.paper_scale {
        &[16, 32, 64, 128, 256]
    } else {
        &[16, 32, 64, 128]
    };
    let mut rows = Vec::new();
    let (mut ns, mut hils, mut etas) = (Vec::new(), Vec::new(), Vec::new());
    for &side in sides {
        let l = side - GAP;
        let onion = Onion3D::new(side).unwrap();
        let hilbert = Hilbert::<3>::new(side).unwrap();
        let co = average_clustering_exact(&onion, [l, l, l]).unwrap();
        let ch = average_clustering_exact(&hilbert, [l, l, l]).unwrap();
        let lb = general_lower_bound_3d(side, l);
        let eta_o = co / lb;
        let eta_h = ch / lb;
        if side >= 32 {
            ns.push(f64::from(side).powi(3));
            hils.push(ch);
        }
        etas.push(eta_o);
        rows.push(Row::new(
            format!("{side} (l={l})"),
            vec![
                format!("{co:.2}"),
                format!("{ch:.2}"),
                format!("{lb:.2}"),
                format!("{eta_o:.2}"),
                format!("{eta_h:.2}"),
            ],
        ));
    }
    print_table(
        "Table I (3D): cube queries, l = side-9",
        "side",
        &[
            "c(onion)",
            "c(hilbert)",
            "LB(any SFC)",
            "eta(onion)",
            "eta(hilbert)",
        ],
        &rows,
    );
    write_csv(
        cfg,
        "table1_3d",
        "side",
        &["c_onion", "c_hilbert", "lb", "eta_onion", "eta_hilbert"],
        &rows,
    );
    (ns, hils, etas)
}

fn main() {
    let cfg = ExperimentCfg::from_args();

    let (n2, h2, eta2) = run_2d(&cfg);
    let (b2, r2_2) = fit_power_law(&n2, &h2);
    println!(
        "\n2D Hilbert growth: c ~ n^{b2:.3} (r^2 = {r2_2:.4}); paper predicts n^{:.3}",
        hilbert_growth_exponent(2)
    );
    let worst2 = eta2.iter().cloned().fold(0.0, f64::max);
    println!("2D onion eta stays <= {worst2:.2} (paper bound {ETA_2D_CUBE_BOUND})");
    // Lemma 5 is a lower bound: growth at least n^{1/2}, and never above
    // linear in the cube surface. Finite sizes overshoot the exponent
    // slightly from above.
    assert!(
        b2 >= hilbert_growth_exponent(2) - 0.05 && b2 <= 0.75,
        "Hilbert 2D growth exponent {b2} should be in [~0.5, 0.75)"
    );
    assert!(worst2 <= ETA_2D_CUBE_BOUND + 0.3, "onion 2D eta {worst2}");

    let (n3, h3, eta3) = run_3d(&cfg);
    let (b3, r2_3) = fit_power_law(&n3, &h3);
    println!(
        "\n3D Hilbert growth: c ~ n^{b3:.3} (r^2 = {r2_3:.4}); paper predicts n^{:.3}",
        hilbert_growth_exponent(3)
    );
    let worst3 = eta3.iter().cloned().fold(0.0, f64::max);
    println!("3D onion eta stays <= {worst3:.2} (paper bound {ETA_3D_CUBE_BOUND})");
    assert!(
        b3 >= hilbert_growth_exponent(3) - 0.05 && b3 <= 1.0,
        "Hilbert 3D growth exponent {b3} should be in [~0.67, 1.0)"
    );
    assert!(worst3 <= ETA_3D_CUBE_BOUND + 0.4, "onion 3D eta {worst3}");

    println!("\nOK: Table I shape reproduced (onion constant, Hilbert polynomial).");
}
