//! Reusable experiment kernels shared by the `exp_*` binaries and the
//! Criterion benches: "given a curve and a query set, summarize the
//! clustering distribution".

use onion_core::SpaceFillingCurve;
use sfc_clustering::{clustering_number, RectQuery, Summary};

/// Computes the clustering number of every query and summarizes the
/// distribution (the box-plot statistics of Figures 5–7).
pub fn clustering_summary<const D: usize, C: SpaceFillingCurve<D>>(
    curve: &C,
    queries: &[RectQuery<D>],
) -> Option<Summary> {
    let values: Vec<u64> = queries
        .iter()
        .map(|q| clustering_number(curve, q))
        .collect();
    Summary::from_values(&values)
}

/// Formats a [`Summary`] into the columns used by the figure tables:
/// `min, q1, median, q3, max, mean`.
pub fn summary_cells(s: &Summary) -> Vec<String> {
    vec![
        s.min.to_string(),
        format!("{:.1}", s.q1),
        format!("{:.1}", s.median),
        format!("{:.1}", s.q3),
        s.max.to_string(),
        format!("{:.2}", s.mean),
    ]
}

/// Column headers matching [`summary_cells`], prefixed per curve.
pub fn summary_columns(curve_name: &str) -> Vec<String> {
    ["min", "q1", "med", "q3", "max", "mean"]
        .iter()
        .map(|c| format!("{curve_name}:{c}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use onion_core::Onion2D;

    #[test]
    fn summary_over_trivial_queries() {
        let o = Onion2D::new(8).unwrap();
        let qs = vec![
            RectQuery::new([0, 0], [8, 8]).unwrap(),
            RectQuery::new([0, 0], [1, 1]).unwrap(),
        ];
        let s = clustering_summary(&o, &qs).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(summary_cells(&s).len(), 6);
        assert_eq!(summary_columns("onion").len(), 6);
    }
}
