//! Small-scale kernels of every paper artifact, wired into `cargo bench` so
//! each table/figure's inner loop is exercised and timed:
//!
//! * `table1/*` — exact average clustering + lower bound (Table I);
//! * `fig5a`, `fig5b` — random cube distributions (Figures 5a/5b);
//! * `fig6a`, `fig6b` — Algorithm 1 fixed-ratio sets (Figures 6a/6b);
//! * `fig7a`, `fig7b` — random-corner rectangles (Figures 7a/7b);
//! * `lemma10` — the rows+columns impossibility measurement.
//!
//! The `exp_*` binaries print the full series; these benches time the
//! kernels at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onion_core::{Onion2D, Onion3D};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sfc_baselines::Hilbert;
use sfc_bench::scenarios::clustering_summary;
use sfc_clustering::{
    average_clustering_bruteforce, average_clustering_exact, columns, fixed_ratio_set_2d,
    fixed_ratio_set_3d, random_corner_rects, random_translations, rows,
};
use sfc_theory::{general_lower_bound_2d, general_lower_bound_3d};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let side = 1 << 6;
    let l = side - 9;
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    group.bench_function(BenchmarkId::from_parameter("2d_onion_exact"), |b| {
        b.iter(|| black_box(average_clustering_exact(&onion, [l, l]).unwrap()));
    });
    group.bench_function(BenchmarkId::from_parameter("2d_hilbert_exact"), |b| {
        b.iter(|| black_box(average_clustering_exact(&hilbert, [l, l]).unwrap()));
    });
    group.bench_function(BenchmarkId::from_parameter("2d_lower_bound"), |b| {
        b.iter(|| black_box(general_lower_bound_2d(side, l, l)));
    });
    let side3 = 1 << 4;
    let l3 = side3 - 9;
    let onion3 = Onion3D::new(side3).unwrap();
    group.bench_function(BenchmarkId::from_parameter("3d_onion_exact"), |b| {
        b.iter(|| black_box(average_clustering_exact(&onion3, [l3, l3, l3]).unwrap()));
    });
    group.bench_function(BenchmarkId::from_parameter("3d_lower_bound"), |b| {
        b.iter(|| black_box(general_lower_bound_3d(side3, l3)));
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let side = 1 << 8;
    let onion = Onion2D::new(side).unwrap();
    let hilbert = Hilbert::<2>::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let queries = random_translations(side, [side - 50, side - 50], 50, &mut rng).unwrap();
    group.bench_function(BenchmarkId::from_parameter("fig5a_onion"), |b| {
        b.iter(|| black_box(clustering_summary(&onion, black_box(&queries))));
    });
    group.bench_function(BenchmarkId::from_parameter("fig5a_hilbert"), |b| {
        b.iter(|| black_box(clustering_summary(&hilbert, black_box(&queries))));
    });
    let side3 = 1 << 6;
    let onion3 = Onion3D::new(side3).unwrap();
    let hilbert3 = Hilbert::<3>::new(side3).unwrap();
    let q3 = random_translations(side3, [side3 - 8; 3], 20, &mut rng).unwrap();
    group.bench_function(BenchmarkId::from_parameter("fig5b_onion"), |b| {
        b.iter(|| black_box(clustering_summary(&onion3, black_box(&q3))));
    });
    group.bench_function(BenchmarkId::from_parameter("fig5b_hilbert"), |b| {
        b.iter(|| black_box(clustering_summary(&hilbert3, black_box(&q3))));
    });
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7");
    group.sample_size(10);
    let side = 1 << 8;
    let onion = Onion2D::new(side).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let fixed = fixed_ratio_set_2d(side, 2.0, 50, 3, &mut rng);
    group.bench_function(BenchmarkId::from_parameter("fig6a_onion"), |b| {
        b.iter(|| black_box(clustering_summary(&onion, black_box(&fixed))));
    });
    let side3 = 1 << 6;
    let onion3 = Onion3D::new(side3).unwrap();
    let fixed3 = fixed_ratio_set_3d(side3, 2.0, 16, 3, &mut rng);
    group.bench_function(BenchmarkId::from_parameter("fig6b_onion"), |b| {
        b.iter(|| black_box(clustering_summary(&onion3, black_box(&fixed3))));
    });
    let corners = random_corner_rects::<2, _>(side, 40, &mut rng);
    group.bench_function(BenchmarkId::from_parameter("fig7a_onion"), |b| {
        b.iter(|| black_box(clustering_summary(&onion, black_box(&corners))));
    });
    let corners3 = random_corner_rects::<3, _>(side3, 15, &mut rng);
    group.bench_function(BenchmarkId::from_parameter("fig7b_onion"), |b| {
        b.iter(|| black_box(clustering_summary(&onion3, black_box(&corners3))));
    });
    group.finish();
}

fn bench_lemma10(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma10");
    group.sample_size(10);
    let side = 1 << 5;
    let onion = Onion2D::new(side).unwrap();
    let qr = rows(side);
    let qc = columns(side);
    group.bench_function(BenchmarkId::from_parameter("rows_plus_columns"), |b| {
        b.iter(|| {
            let a = average_clustering_bruteforce(&onion, black_box(&qr));
            let bb = average_clustering_bruteforce(&onion, black_box(&qc));
            black_box(a + bb)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig5,
    bench_fig6_fig7,
    bench_lemma10
);
criterion_main!(benches);
