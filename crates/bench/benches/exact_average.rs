//! Cost of the exact average-clustering computation (Lemma 1 edge walk),
//! the primitive behind the Table I / Table II experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onion_core::{Onion2D, Onion3D};
use sfc_baselines::Hilbert;
use sfc_clustering::average_clustering_exact;
use std::hint::black_box;

fn bench_exact_average(c: &mut Criterion) {
    let side2 = 1 << 7;
    let onion2 = Onion2D::new(side2).unwrap();
    let hilbert2 = Hilbert::<2>::new(side2).unwrap();
    let mut group = c.benchmark_group("exact_average_2d_side128");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("onion"), |b| {
        b.iter(|| black_box(average_clustering_exact(&onion2, black_box([40, 40])).unwrap()));
    });
    group.bench_function(BenchmarkId::from_parameter("hilbert"), |b| {
        b.iter(|| black_box(average_clustering_exact(&hilbert2, black_box([40, 40])).unwrap()));
    });
    group.finish();

    let side3 = 1 << 5;
    let onion3 = Onion3D::new(side3).unwrap();
    let hilbert3 = Hilbert::<3>::new(side3).unwrap();
    let mut group = c.benchmark_group("exact_average_3d_side32");
    group.sample_size(20);
    group.bench_function(BenchmarkId::from_parameter("onion"), |b| {
        b.iter(|| black_box(average_clustering_exact(&onion3, black_box([10, 10, 10])).unwrap()));
    });
    group.bench_function(BenchmarkId::from_parameter("hilbert"), |b| {
        b.iter(|| black_box(average_clustering_exact(&hilbert3, black_box([10, 10, 10])).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_exact_average);
criterion_main!(benches);
