//! B+-tree and SFC-table performance: bulk load, point lookup, and
//! rectangle queries under different curves (the end-to-end path whose seek
//! count the paper's clustering number predicts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onion_core::{Point, SpaceFillingCurve};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::curve_2d;
use sfc_clustering::RectQuery;
use sfc_index::{BPlusTree, DiskModel, QueryOptions, SfcTable};
use std::hint::black_box;

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(30);
    let entries: Vec<(u64, u64)> = (0..100_000u64).map(|k| (k, k)).collect();
    group.bench_function("bulk_load_100k", |b| {
        b.iter(|| black_box(BPlusTree::bulk_load(entries.clone(), 256)));
    });
    let tree = BPlusTree::bulk_load(entries, 256);
    group.bench_function("point_get", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k.wrapping_mul(6364136223846793005).wrapping_add(7)) % 100_000;
            black_box(tree.get(black_box(k)))
        });
    });
    group.bench_function("range_scan_1k", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k.wrapping_mul(6364136223846793005).wrapping_add(7)) % 99_000;
            black_box(tree.range(k, k + 999).count())
        });
    });
    group.finish();
}

fn bench_table_queries(c: &mut Criterion) {
    let side = 1 << 8;
    let mut rng = StdRng::seed_from_u64(7);
    let records: Vec<(Point<2>, u64)> = (0..50_000)
        .map(|i| {
            (
                Point::new([rng.random_range(0..side), rng.random_range(0..side)]),
                i,
            )
        })
        .collect();
    let mut group = c.benchmark_group("sfc_table_rect_query");
    group.sample_size(30);
    for name in ["onion", "hilbert", "z-order", "row-major"] {
        let curve = curve_2d(name, side).unwrap();
        let table = SfcTable::build(curve, records.clone(), DiskModel::hdd()).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = (x.wrapping_mul(1664525).wrapping_add(1013904223)) % (side - 32);
                let q = RectQuery::new([x, (x * 7) % (side - 32)], [32, 32]).unwrap();
                black_box(
                    table
                        .query_rect(black_box(&q), &QueryOptions::default())
                        .unwrap()
                        .io,
                )
            });
        });
        let _ = table.curve().universe();
    }
    group.finish();
}

criterion_group!(benches, bench_btree, bench_table_queries);
criterion_main!(benches);
