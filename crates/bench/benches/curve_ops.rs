//! Throughput of the curve mappings themselves: `index_unchecked`
//! (cell → key) and `point_unchecked` (key → cell) for every curve in the
//! workspace, 2D and 3D — plus the hot-path comparisons this repo tracks:
//! full-curve walks via per-index unrank vs. the incremental stepper, and
//! scalar-vs-batch mapping through `dyn` curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onion_core::{CurveWalk, Onion2D, Onion3D, Point, SpaceFillingCurve};
use sfc_baselines::{curve_2d, curve_3d, CURVE_NAMES};
use sfc_bench::ScalarOnly;
use std::hint::black_box;

fn bench_2d(c: &mut Criterion) {
    let side = 1 << 10;
    let mut group = c.benchmark_group("curve_ops_2d/index");
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = (x.wrapping_mul(1664525).wrapping_add(1013904223)) % side;
                let p = Point::new([x, (x >> 3) % side]);
                black_box(curve.index_unchecked(black_box(p)))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("curve_ops_2d/point");
    let n = u64::from(side) * u64::from(side);
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut idx = 0u64;
            b.iter(|| {
                idx = (idx.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                black_box(curve.point_unchecked(black_box(idx)))
            });
        });
    }
    group.finish();
}

fn bench_3d(c: &mut Criterion) {
    let side = 1 << 8;
    let mut group = c.benchmark_group("curve_ops_3d/index");
    for name in CURVE_NAMES {
        let curve = curve_3d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = (x.wrapping_mul(1664525).wrapping_add(1013904223)) % side;
                let p = Point::new([x, (x >> 2) % side, (x >> 4) % side]);
                black_box(curve.index_unchecked(black_box(p)))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("curve_ops_3d/point");
    let n = u64::from(side).pow(3);
    for name in CURVE_NAMES {
        let curve = curve_3d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut idx = 0u64;
            b.iter(|| {
                idx = (idx.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                black_box(curve.point_unchecked(black_box(idx)))
            });
        });
    }
    group.finish();
}

/// Full-curve walk: the stepper's O(1) successor vs. one unrank per index
/// (the `ScalarOnly` wrapper strips the stepping specializations, so both
/// sides run the identical `CurveWalk` code).
fn bench_walk(c: &mut Criterion) {
    let side = 1 << 10;
    let onion = Onion2D::new(side).unwrap();
    let mut group = c.benchmark_group("curve_walk_2d_side1024/onion");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("unrank"), |b| {
        let slow = ScalarOnly(onion);
        b.iter(|| {
            let mut acc = 0u64;
            for p in CurveWalk::new(&slow) {
                acc = acc.wrapping_add(u64::from(p.0[0]) ^ u64::from(p.0[1]));
            }
            black_box(acc)
        });
    });
    group.bench_function(BenchmarkId::from_parameter("stepper"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in CurveWalk::new(&onion) {
                acc = acc.wrapping_add(u64::from(p.0[0]) ^ u64::from(p.0[1]));
            }
            black_box(acc)
        });
    });
    group.finish();

    let onion3 = Onion3D::new(1 << 6).unwrap();
    let mut group = c.benchmark_group("curve_walk_3d_side64/onion");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("unrank"), |b| {
        let slow = ScalarOnly(onion3);
        b.iter(|| {
            let mut acc = 0u64;
            for p in CurveWalk::new(&slow) {
                acc = acc.wrapping_add(u64::from(p.0[0]) ^ u64::from(p.0[2]));
            }
            black_box(acc)
        });
    });
    group.bench_function(BenchmarkId::from_parameter("stepper"), |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in CurveWalk::new(&onion3) {
                acc = acc.wrapping_add(u64::from(p.0[0]) ^ u64::from(p.0[2]));
            }
            black_box(acc)
        });
    });
    group.finish();
}

/// Scalar-vs-batch inverse mapping through `dyn` curves: one virtual call
/// per cell vs. one per batch with the kernel inlined.
fn bench_batch(c: &mut Criterion) {
    let side = 1 << 10;
    let n = u64::from(side) * u64::from(side);
    let mut probe = 0x9E3779B97F4A7C15u64;
    let indices: Vec<u64> = (0..(1 << 16))
        .map(|_| {
            probe = probe.wrapping_mul(6364136223846793005).wrapping_add(1);
            probe % n
        })
        .collect();
    for name in ["onion", "hilbert", "z-order"] {
        let curve = curve_2d(name, side).unwrap();
        let mut group = c.benchmark_group(format!("curve_batch_2d/point/{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("scalar_dyn"), |b| {
            let mut out: Vec<Point<2>> = Vec::with_capacity(indices.len());
            b.iter(|| {
                out.clear();
                for &idx in &indices {
                    out.push(curve.point_unchecked(idx));
                }
                black_box(out.len())
            });
        });
        group.bench_function(BenchmarkId::from_parameter("batch_dyn"), |b| {
            let mut out: Vec<Point<2>> = Vec::with_capacity(indices.len());
            b.iter(|| {
                out.clear();
                curve.fill_points(&indices, &mut out);
                black_box(out.len())
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_2d, bench_3d, bench_walk, bench_batch);
criterion_main!(benches);
