//! Throughput of the curve mappings themselves: `index_unchecked`
//! (cell → key) and `point_unchecked` (key → cell) for every curve in the
//! workspace, 2D and 3D.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onion_core::{Point, SpaceFillingCurve};
use sfc_baselines::{curve_2d, curve_3d, CURVE_NAMES};
use std::hint::black_box;

fn bench_2d(c: &mut Criterion) {
    let side = 1 << 10;
    let mut group = c.benchmark_group("curve_ops_2d/index");
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = (x.wrapping_mul(1664525).wrapping_add(1013904223)) % side;
                let p = Point::new([x, (x >> 3) % side]);
                black_box(curve.index_unchecked(black_box(p)))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("curve_ops_2d/point");
    let n = u64::from(side) * u64::from(side);
    for name in CURVE_NAMES {
        let curve = curve_2d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut idx = 0u64;
            b.iter(|| {
                idx = (idx.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                black_box(curve.point_unchecked(black_box(idx)))
            });
        });
    }
    group.finish();
}

fn bench_3d(c: &mut Criterion) {
    let side = 1 << 8;
    let mut group = c.benchmark_group("curve_ops_3d/index");
    for name in CURVE_NAMES {
        let curve = curve_3d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = (x.wrapping_mul(1664525).wrapping_add(1013904223)) % side;
                let p = Point::new([x, (x >> 2) % side, (x >> 4) % side]);
                black_box(curve.index_unchecked(black_box(p)))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("curve_ops_3d/point");
    let n = u64::from(side).pow(3);
    for name in CURVE_NAMES {
        let curve = curve_3d(name, side).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut idx = 0u64;
            b.iter(|| {
                idx = (idx.wrapping_mul(6364136223846793005).wrapping_add(1)) % n;
                black_box(curve.point_unchecked(black_box(idx)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_2d, bench_3d);
criterion_main!(benches);
