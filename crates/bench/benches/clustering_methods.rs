//! Comparison of the three exact clustering algorithms (sort, entry-scan,
//! boundary-scan) across query sizes — boundary-scan's `O(surface)`
//! advantage is what makes the paper-scale figures tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onion_core::Onion2D;
use sfc_clustering::{clustering_number_with, ClusterMethod, RectQuery};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let side = 1 << 9;
    let onion = Onion2D::new(side).unwrap();
    for l in [16u32, 64, 256] {
        let q = RectQuery::new([(side - l) / 2, (side - l) / 3], [l, l]).unwrap();
        let mut group = c.benchmark_group(format!("clustering_2d/l{l}"));
        for (name, method) in [
            ("sort", ClusterMethod::Sort),
            ("entry_scan", ClusterMethod::EntryScan),
            ("boundary_scan", ClusterMethod::BoundaryScan),
        ] {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| black_box(clustering_number_with(&onion, black_box(&q), method)));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
