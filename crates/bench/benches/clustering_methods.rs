//! Comparison of the three exact clustering algorithms (sort, entry-scan,
//! boundary-scan) across query sizes — boundary-scan's `O(surface)`
//! advantage is what makes the paper-scale figures tractable — plus the
//! stepper-vs-unrank predecessor-probe comparison on a 2¹⁰-side universe
//! and the allocation-free scratch range decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onion_core::Onion2D;
use sfc_bench::ScalarOnly;
use sfc_clustering::{
    cluster_ranges_into, clustering_number_with, ClusterMethod, ClusterScratch, RectQuery,
};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let side = 1 << 9;
    let onion = Onion2D::new(side).unwrap();
    for l in [16u32, 64, 256] {
        let q = RectQuery::new([(side - l) / 2, (side - l) / 3], [l, l]).unwrap();
        let mut group = c.benchmark_group(format!("clustering_2d/l{l}"));
        for (name, method) in [
            ("sort", ClusterMethod::Sort),
            ("entry_scan", ClusterMethod::EntryScan),
            ("boundary_scan", ClusterMethod::BoundaryScan),
        ] {
            group.bench_function(BenchmarkId::from_parameter(name), |b| {
                b.iter(|| black_box(clustering_number_with(&onion, black_box(&q), method)));
            });
        }
        group.finish();
    }
}

/// Entry-scan and boundary-scan at side 2¹⁰: every predecessor/successor
/// probe is an O(1) perimeter step on the raw curve but a full
/// `isqrt`-carrying unrank on the `ScalarOnly` baseline.
fn bench_probe_kernels(c: &mut Criterion) {
    let side = 1 << 10;
    let onion = Onion2D::new(side).unwrap();
    let slow = ScalarOnly(onion);
    let l = 512u32;
    let q = RectQuery::new([(side - l) / 2, (side - l) / 3], [l, l]).unwrap();
    for (method, label) in [
        (ClusterMethod::EntryScan, "entry_scan"),
        (ClusterMethod::BoundaryScan, "boundary_scan"),
    ] {
        let mut group = c.benchmark_group(format!("clustering_2d_side1024/{label}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter("unrank"), |b| {
            b.iter(|| black_box(clustering_number_with(&slow, black_box(&q), method)));
        });
        group.bench_function(BenchmarkId::from_parameter("stepper"), |b| {
            b.iter(|| black_box(clustering_number_with(&onion, black_box(&q), method)));
        });
        group.finish();
    }

    // Range decomposition with reused scratch: allocation-free per call.
    let mut group = c.benchmark_group("clustering_2d_side1024/ranges");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("scratch_reuse"), |b| {
        let mut scratch = ClusterScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            cluster_ranges_into(&onion, black_box(&q), &mut scratch, &mut out);
            black_box(out.len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_methods, bench_probe_kernels);
criterion_main!(benches);
