//! The `D`-dimensional onion curve — the paper's stated extension (§VIII):
//! "The onion curve can be extended naturally to higher dimensions, using
//! the idea of ordering points according to increasing distance from the
//! edge of the universe."
//!
//! Layers are visited in order; within a layer (a cubic shell) cells are
//! ranked lexicographically, with closed-form shell ranking.
//!
//! **Caveat.** The paper's §VI-A remark — that the intra-layer order is
//! unimportant — applies to its 3D construction, whose segments are lines
//! and 2D-onion planes (each contributing O(1) runs per query). A
//! lexicographic shell order does *not* have that property: measured in 4D
//! (see the `exp_4d` experiment), this naive extension loses the
//! near-full-cube advantage to the Hilbert curve, confirming that the
//! d > 3 analysis the paper defers to future work genuinely requires
//! locality-preserving intra-layer orders. `OnionNd` is therefore a
//! *reference* implementation of the layer discipline, not a finished
//! high-dimensional onion curve.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::fastmath::iroot_fast;
use crate::point::Point;
use crate::universe::Universe;

/// `base^exp` in u64 (callers guarantee no overflow: universes are capped at
/// 2^63 cells).
#[inline]
fn pow(base: u64, exp: usize) -> u64 {
    let mut out = 1u64;
    for _ in 0..exp {
        out *= base;
    }
    out
}

/// Lexicographic rank of `coords` within a full cube of side `s`
/// (first coordinate most significant).
fn rank_lex_cube(s: u32, coords: &[u32]) -> u64 {
    let mut r = 0u64;
    for &c in coords {
        r = r * u64::from(s) + u64::from(c);
    }
    r
}

/// Inverse of [`rank_lex_cube`].
fn unrank_lex_cube(s: u32, mut r: u64, coords: &mut [u32]) {
    for c in coords.iter_mut().rev() {
        *c = (r % u64::from(s)) as u32;
        r /= u64::from(s);
    }
}

/// Number of cells in the shell (boundary) of a `d`-cube of side `s`:
/// `s^d − (s−2)^d` (with `(s−2)` clamped at 0).
#[inline]
fn shell_size(s: u32, d: usize) -> u64 {
    let inner = u64::from(s.saturating_sub(2));
    pow(u64::from(s), d) - pow(inner, d)
}

/// Lexicographic rank of a cell within the shell of a `d`-cube of side `s`.
/// `coords` must lie on the shell (some coordinate equals 0 or `s−1`).
fn rank_in_shell(s: u32, coords: &[u32]) -> u64 {
    let d = coords.len();
    debug_assert!(d >= 1);
    if s == 1 {
        return 0;
    }
    if d == 1 {
        return if coords[0] == 0 { 0 } else { 1 };
    }
    let a = coords[0];
    let face = pow(u64::from(s), d - 1);
    let slab = shell_size(s, d - 1);
    if a == 0 {
        rank_lex_cube(s, &coords[1..])
    } else if a == s - 1 {
        face + u64::from(s - 2) * slab + rank_lex_cube(s, &coords[1..])
    } else {
        face + u64::from(a - 1) * slab + rank_in_shell(s, &coords[1..])
    }
}

/// Inverse of [`rank_in_shell`].
fn unrank_in_shell(s: u32, mut r: u64, coords: &mut [u32]) {
    let d = coords.len();
    debug_assert!(d >= 1);
    if s == 1 {
        coords.fill(0);
        return;
    }
    if d == 1 {
        coords[0] = if r == 0 { 0 } else { s - 1 };
        return;
    }
    let face = pow(u64::from(s), d - 1);
    let slab = shell_size(s, d - 1);
    if r < face {
        coords[0] = 0;
        unrank_lex_cube(s, r, &mut coords[1..]);
        return;
    }
    r -= face;
    let slabs = u64::from(s - 2) * slab;
    if r < slabs {
        coords[0] = 1 + (r / slab) as u32;
        let (head, tail) = coords.split_at_mut(1);
        let _ = head;
        unrank_in_shell(s, r % slab, tail);
        return;
    }
    coords[0] = s - 1;
    unrank_lex_cube(s, r - slabs, &mut coords[1..]);
}

/// The `D`-dimensional onion curve: layer-sequential with lexicographic
/// intra-layer order.
///
/// For `D = 2` and `D = 3` prefer [`crate::Onion2D`] / [`crate::Onion3D`],
/// which implement the paper's exact intra-layer orders (and, in 2D,
/// continuity). This generalization exists for `D ≥ 4` and as a reference
/// implementation of the layer-sequential principle.
#[derive(Clone, Copy, Debug)]
pub struct OnionNd<const D: usize> {
    universe: Universe<D>,
}

impl<const D: usize> OnionNd<D> {
    /// Creates the curve for a `side^D` universe (any `side ≥ 1`).
    pub fn new(side: u32) -> Result<Self, SfcError> {
        Ok(OnionNd {
            universe: Universe::new(side)?,
        })
    }
}

impl<const D: usize> SpaceFillingCurve<D> for OnionNd<D> {
    fn universe(&self) -> Universe<D> {
        self.universe
    }

    fn index_unchecked(&self, p: Point<D>) -> u64 {
        let t = self.universe.layer_of(p);
        let s = self.universe.layer_side(t);
        let mut local = [0u32; D];
        for (l, c) in local.iter_mut().zip(p.0) {
            *l = c - (t - 1);
        }
        self.universe.cells_before_layer(t) + rank_in_shell(s, &local)
    }

    fn point_unchecked(&self, idx: u64) -> Point<D> {
        // Binary search the layer via the monotone cells_before_layer.
        let (mut lo, mut hi) = (1u32, self.universe.layer_count());
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.universe.cells_before_layer(mid) <= idx {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        let t = lo;
        let s = self.universe.layer_side(t);
        let mut local = [0u32; D];
        unrank_in_shell(s, idx - self.universe.cells_before_layer(t), &mut local);
        let mut out = [0u32; D];
        for (o, l) in out.iter_mut().zip(local) {
            *o = l + (t - 1);
        }
        Point::new(out)
    }

    fn name(&self) -> &str {
        "onion-nd"
    }

    /// Batch forward mapping (statically dispatched shell ranking).
    fn fill_indices(&self, points: &[Point<D>], out: &mut Vec<u64>) {
        out.reserve(points.len());
        for &p in points {
            out.push(OnionNd::index_unchecked(self, p));
        }
    }

    /// Lane-batched inverse mapping: the layer is located closed-form with a
    /// `D`-th root ([`iroot_fast`]) across chunks of eight indices —
    /// replacing [`Self::point_unchecked`]'s per-index layer binary search,
    /// which stays as the pinned scalar reference — then each lane runs the
    /// shell unranking.
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<D>>) {
        out.reserve(indices.len());
        let side = self.universe.side();
        let n = self.universe.cell_count();
        const LANES: usize = 8;
        let mut layer = [0u32; LANES];
        for chunk in indices.chunks(LANES) {
            // Phase 1: smallest shell side `s` of the universe's parity with
            // s^D ≥ n − idx, via an FPU root plus branch-free fixups.
            for (lane, &idx) in layer.iter_mut().zip(chunk) {
                debug_assert!(idx < n, "index {idx} outside the universe");
                let rem = n - idx;
                let r = iroot_fast(rem, D as u32) as u32;
                let mut s = r + u32::from(pow(u64::from(r), D) < rem);
                s += (s ^ side) & 1;
                debug_assert!(s >= 1 && s <= side);
                *lane = s;
            }
            // Phase 2: per-lane shell unranking.
            for (&s, &idx) in layer.iter().zip(chunk) {
                let t = (side - s) / 2 + 1;
                let mut local = [0u32; D];
                unrank_in_shell(s, idx - self.universe.cells_before_layer(t), &mut local);
                out.push(assemble(local, t - 1));
            }
        }
    }

    /// `O(D)` lexicographic shell odometer — no layer binary search, no
    /// recursive shell unranking.
    ///
    /// Within a shell, the lex successor increments the deepest coordinate
    /// that can grow: interior prefixes constrain the final coordinate to
    /// `{0, s−1}`, and any earlier increment resets the suffix to all zeros
    /// (which touches the boundary, hence stays on the shell).
    fn successor_unchecked(&self, p: Point<D>, idx: u64) -> Point<D> {
        debug_assert_eq!(OnionNd::index_unchecked(self, p), idx);
        debug_assert!(idx + 1 < self.universe.cell_count());
        let t = self.universe.layer_of(p);
        let lo = t - 1;
        let s = self.universe.layer_side(t);
        let mut local = [0u32; D];
        for (l, c) in local.iter_mut().zip(p.0) {
            *l = c - lo;
        }
        for d in (0..D).rev() {
            let c = local[d];
            if d == D - 1 {
                let prefix_extremal = local[..d].iter().any(|&x| x == 0 || x == s - 1);
                if prefix_extremal {
                    if c + 1 < s {
                        local[d] = c + 1;
                        return assemble(local, lo);
                    }
                } else if c == 0 && s > 1 {
                    // Interior prefix: the last coordinate jumps 0 → s−1.
                    local[d] = s - 1;
                    return assemble(local, lo);
                }
            } else if c + 1 < s {
                local[d] = c + 1;
                for x in &mut local[d + 1..] {
                    *x = 0;
                }
                return assemble(local, lo);
            }
        }
        // Shell exhausted: the next layer starts at its all-zero corner,
        // absolute coordinate `t` in every dimension.
        Point::new([t; D])
    }

    /// `O(D)` reverse shell odometer (inverse of
    /// [`Self::successor_unchecked`]).
    fn predecessor_unchecked(&self, p: Point<D>, idx: u64) -> Point<D> {
        debug_assert_eq!(OnionNd::index_unchecked(self, p), idx);
        debug_assert!(idx >= 1);
        let t = self.universe.layer_of(p);
        let lo = t - 1;
        let s = self.universe.layer_side(t);
        let mut local = [0u32; D];
        for (l, c) in local.iter_mut().zip(p.0) {
            *l = c - lo;
        }
        for d in (0..D).rev() {
            let c = local[d];
            if d == D - 1 {
                let prefix_extremal = local[..d].iter().any(|&x| x == 0 || x == s - 1);
                if prefix_extremal {
                    if c > 0 {
                        local[d] = c - 1;
                        return assemble(local, lo);
                    }
                } else if c == s - 1 && s > 1 {
                    // Interior prefix: the last coordinate jumps s−1 → 0.
                    local[d] = 0;
                    return assemble(local, lo);
                }
            } else if c > 0 {
                local[d] = c - 1;
                // Maximal shell suffix: all s−1 (touches the boundary).
                for x in &mut local[d + 1..] {
                    *x = s - 1;
                }
                return assemble(local, lo);
            }
        }
        // First cell of its shell: the previous (outer) layer ends at its
        // all-(s+1) local corner, absolute `lo + s` in every dimension.
        debug_assert!(t > 1);
        Point::new([lo + s; D])
    }
}

/// Local shell coordinates back to absolute universe coordinates.
#[inline]
fn assemble<const D: usize>(local: [u32; D], lo: u32) -> Point<D> {
    let mut out = [0u32; D];
    for (o, l) in out.iter_mut().zip(local) {
        *o = l + lo;
    }
    Point::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::verify;

    #[test]
    fn shell_size_matches_brute_force() {
        for d in 1..=4usize {
            for s in 1..=6u32 {
                let mut count = 0u64;
                let total = pow(u64::from(s), d);
                for r in 0..total {
                    let mut coords = vec![0u32; d];
                    unrank_lex_cube(s, r, &mut coords);
                    if coords.iter().any(|&c| c == 0 || c == s - 1) {
                        count += 1;
                    }
                }
                assert_eq!(shell_size(s, d), count, "d={d} s={s}");
            }
        }
    }

    #[test]
    fn shell_rank_is_bijective_and_lexicographic() {
        let (s, d) = (5u32, 3usize);
        // Enumerate shell cells in lex order and compare ranks.
        let mut expected_rank = 0u64;
        for x in 0..s {
            for y in 0..s {
                for z in 0..s {
                    let coords = [x, y, z];
                    if coords.iter().any(|&c| c == 0 || c == s - 1) {
                        assert_eq!(rank_in_shell(s, &coords), expected_rank, "{coords:?}");
                        let mut back = [0u32; 3];
                        unrank_in_shell(s, expected_rank, &mut back);
                        assert_eq!(back, coords);
                        expected_rank += 1;
                    }
                }
            }
        }
        assert_eq!(expected_rank, shell_size(s, d));
    }

    #[test]
    fn bijective_2d_3d_4d() {
        for side in 1..=7 {
            verify::bijection(&OnionNd::<2>::new(side).unwrap()).unwrap();
            verify::bijection(&OnionNd::<3>::new(side).unwrap()).unwrap();
        }
        for side in 1..=5 {
            verify::bijection(&OnionNd::<4>::new(side).unwrap()).unwrap();
        }
    }

    #[test]
    fn layers_are_visited_in_order_4d() {
        let o = OnionNd::<4>::new(6).unwrap();
        let u = o.universe();
        let mut last = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(layer >= last, "layer decreased at {idx}");
            last = layer;
        }
    }

    #[test]
    fn matches_layer_offsets_of_specialized_curves() {
        // Same layer boundaries as Onion2D/Onion3D (intra-layer order differs).
        let side = 8;
        let nd2 = OnionNd::<2>::new(side).unwrap();
        let u = nd2.universe();
        for t in 1..=u.layer_count() {
            let first = Point::new([t - 1, t - 1]);
            // The lexicographically smallest cell of layer t is its corner.
            assert_eq!(nd2.index_unchecked(first), u.cells_before_layer(t));
        }
    }

    #[test]
    fn successor_predecessor_match_unrank_exhaustively() {
        fn check<const D: usize>(side: u32) {
            let o = OnionNd::<D>::new(side).unwrap();
            let n = o.universe().cell_count();
            for idx in 0..n {
                let p = o.point_unchecked(idx);
                if idx + 1 < n {
                    assert_eq!(
                        o.successor_unchecked(p, idx),
                        o.point_unchecked(idx + 1),
                        "D={D} side={side} idx={idx}"
                    );
                }
                if idx > 0 {
                    assert_eq!(
                        o.predecessor_unchecked(p, idx),
                        o.point_unchecked(idx - 1),
                        "D={D} side={side} idx={idx}"
                    );
                }
            }
        }
        for side in 1..=9 {
            check::<1>(side);
            check::<2>(side);
        }
        for side in 1..=7 {
            check::<3>(side);
        }
        for side in 1..=5 {
            check::<4>(side);
        }
    }

    #[test]
    fn batch_overrides_match_scalar_4d() {
        let o = OnionNd::<4>::new(5).unwrap();
        let points: Vec<Point<4>> = o.universe().iter_cells().collect();
        let mut indices = Vec::new();
        o.fill_indices(&points, &mut indices);
        assert_eq!(
            indices,
            points
                .iter()
                .map(|&p| o.index_unchecked(p))
                .collect::<Vec<_>>()
        );
        let mut back = Vec::new();
        o.fill_points(&indices, &mut back);
        assert_eq!(back, points);
    }

    #[test]
    fn lane_batched_fill_points_matches_binary_search_reference() {
        // `fill_points` locates layers closed-form (iroot_fast);
        // `point_unchecked` binary-searches — they must agree cell for cell,
        // across parities, dimensions, and non-multiple-of-lane counts.
        fn check<const D: usize>(side: u32) {
            let o = OnionNd::<D>::new(side).unwrap();
            let n = o.universe().cell_count();
            let indices: Vec<u64> = (0..n).collect();
            let mut batched = Vec::new();
            o.fill_points(&indices, &mut batched);
            for (idx, &p) in batched.iter().enumerate() {
                assert_eq!(
                    p,
                    o.point_unchecked(idx as u64),
                    "D={D} side={side} idx={idx}"
                );
            }
        }
        for side in 1..=9 {
            check::<1>(side);
            check::<2>(side);
        }
        for side in [1u32, 4, 5, 6] {
            check::<3>(side);
        }
        check::<4>(5);
    }

    #[test]
    fn roundtrip_on_larger_universe_5d() {
        let o = OnionNd::<5>::new(9).unwrap();
        let n = o.universe().cell_count();
        for idx in [0, 1, n / 2, n - 2, n - 1, 31_013] {
            let p = o.point_unchecked(idx);
            assert_eq!(o.index_unchecked(p), idx, "idx {idx}");
        }
    }
}
