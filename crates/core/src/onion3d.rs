//! The three-dimensional onion curve (§VI of the paper).
//!
//! Cells are ordered layer by layer (`S(1), S(2), …`); within layer `t` the
//! ten segments `S1(t) → … → S10(t)` of §VI-A are visited in order. Line
//! segments are ordered by their free coordinate; square segments are
//! ordered by the two-dimensional onion curve on their free coordinates
//! (lowest-numbered free dimension first), exactly as the paper prescribes
//! ("the natural order induced by the line … or the order given by the
//! two-dimensional onion curve").
//!
//! Coordinates `(i, j, k)` of the paper are dimensions 0, 1, 2 here.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::onion2d::{
    last_in_square, predecessor_in_square, rank_in_square, successor_in_square, unrank_in_square,
};
use crate::point::Point;
use crate::universe::Universe;

/// Integer cube root: the largest `r` with `r³ ≤ x`.
#[inline]
pub(crate) fn icbrt(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).cbrt() as u64;
    // Float rounding can be off by one in either direction; fix up exactly
    // in u128 so the cube can never overflow.
    while r > 0 && u128::from(r).pow(3) > u128::from(x) {
        r -= 1;
    }
    while u128::from(r + 1).pow(3) <= u128::from(x) {
        r += 1;
    }
    r
}

/// Segment identifier within a layer (the paper's `g ∈ {1, …, 10}`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Segment3D {
    /// `S1`: the full face `i = t−1`.
    LowFaceI,
    /// `S2`: the full face `i = 2m−t`.
    HighFaceI,
    /// `S3`: the line `j = t−1, k = t−1`.
    LineLowJLowK,
    /// `S4`: the plane `j = t−1` (interior `i, k`).
    PlaneLowJ,
    /// `S5`: the line `j = t−1, k = 2m−t`.
    LineLowJHighK,
    /// `S6`: the line `j = 2m−t, k = t−1`.
    LineHighJLowK,
    /// `S7`: the plane `j = 2m−t` (interior `i, k`).
    PlaneHighJ,
    /// `S8`: the line `j = 2m−t, k = 2m−t`.
    LineHighJHighK,
    /// `S9`: the plane `k = t−1` (interior `i, j`).
    PlaneLowK,
    /// `S10`: the plane `k = 2m−t` (interior `i, j`).
    PlaneHighK,
}

impl Segment3D {
    /// All ten segments in curve order.
    pub const ALL: [Segment3D; 10] = [
        Segment3D::LowFaceI,
        Segment3D::HighFaceI,
        Segment3D::LineLowJLowK,
        Segment3D::PlaneLowJ,
        Segment3D::LineLowJHighK,
        Segment3D::LineHighJLowK,
        Segment3D::PlaneHighJ,
        Segment3D::LineHighJHighK,
        Segment3D::PlaneLowK,
        Segment3D::PlaneHighK,
    ];

    /// Number of cells of the segment in a layer whose remaining sub-cube
    /// has side `s` (the paper's `V_{t'}(g)` with `s = 2m − 2t' + 2`).
    #[inline]
    pub fn size(self, s: u32) -> u64 {
        let s = u64::from(s);
        let inner = s.saturating_sub(2); // zero for the degenerate s ≤ 2 layers
        match self {
            Segment3D::LowFaceI | Segment3D::HighFaceI => s * s,
            Segment3D::LineLowJLowK
            | Segment3D::LineLowJHighK
            | Segment3D::LineHighJLowK
            | Segment3D::LineHighJHighK => inner,
            Segment3D::PlaneLowJ
            | Segment3D::PlaneHighJ
            | Segment3D::PlaneLowK
            | Segment3D::PlaneHighK => inner * inner,
        }
    }
}

/// The three-dimensional onion curve over a `side × side × side` universe.
///
/// Any `side ≥ 1` is supported (the paper assumes an even side `2m`; odd
/// sides terminate in a single central cell).
///
/// The curve is layer-sequential but not fully continuous: it jumps at
/// segment boundaries. Those finitely many jump targets are enumerable via
/// [`SpaceFillingCurve::jump_targets`], which keeps the fast boundary-scan
/// clustering algorithm exact.
#[derive(Clone, Copy, Debug)]
pub struct Onion3D {
    universe: Universe<3>,
    /// Order in which the ten segments of a layer are visited. The paper
    /// (§VI-A) notes the clustering bound only needs layer-sequentiality:
    /// "we can actually adopt any permutation" — this field is the ablation
    /// knob for that remark.
    order: [Segment3D; 10],
}

impl Onion3D {
    /// Creates the onion curve for a `side × side × side` universe, with
    /// the paper's segment order `S1 → … → S10`.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        Ok(Onion3D {
            universe: Universe::new(side)?,
            order: Segment3D::ALL,
        })
    }

    /// Creates the curve with a custom intra-layer segment order — the
    /// paper's "any permutation" remark, used by the segment-order ablation
    /// experiment.
    ///
    /// # Errors
    /// [`SfcError::DimensionUnsupported`] if `order` is not a permutation
    /// of all ten segments.
    pub fn with_segment_order(side: u32, order: [Segment3D; 10]) -> Result<Self, SfcError> {
        for seg in Segment3D::ALL {
            if !order.contains(&seg) {
                return Err(SfcError::DimensionUnsupported { dims: 3 });
            }
        }
        Ok(Onion3D {
            universe: Universe::new(side)?,
            order,
        })
    }

    /// The intra-layer segment visiting order.
    pub fn segment_order(&self) -> [Segment3D; 10] {
        self.order
    }

    /// Layer (1-based), segment, and in-segment rank of a cell — the paper's
    /// triple key `(t', g', r')`.
    pub fn triple_key(&self, p: Point<3>) -> (u32, Segment3D, u64) {
        let side = self.universe.side();
        let t = self.universe.layer_of(p);
        let s = side - 2 * (t - 1);
        let (a, b, c) = (p.0[0] - (t - 1), p.0[1] - (t - 1), p.0[2] - (t - 1));
        if s == 1 {
            return (t, Segment3D::LowFaceI, 0);
        }
        let e = s - 1;
        let (seg, r) = if a == 0 {
            (Segment3D::LowFaceI, rank_in_square(s, b, c))
        } else if a == e {
            (Segment3D::HighFaceI, rank_in_square(s, b, c))
        } else if b == 0 {
            if c == 0 {
                (Segment3D::LineLowJLowK, u64::from(a - 1))
            } else if c == e {
                (Segment3D::LineLowJHighK, u64::from(a - 1))
            } else {
                (Segment3D::PlaneLowJ, rank_in_square(s - 2, a - 1, c - 1))
            }
        } else if b == e {
            if c == 0 {
                (Segment3D::LineHighJLowK, u64::from(a - 1))
            } else if c == e {
                (Segment3D::LineHighJHighK, u64::from(a - 1))
            } else {
                (Segment3D::PlaneHighJ, rank_in_square(s - 2, a - 1, c - 1))
            }
        } else if c == 0 {
            (Segment3D::PlaneLowK, rank_in_square(s - 2, a - 1, b - 1))
        } else {
            debug_assert_eq!(c, e, "cell not on the layer shell");
            (Segment3D::PlaneHighK, rank_in_square(s - 2, a - 1, b - 1))
        };
        (t, seg, r)
    }

    /// First cell (in curve order) of segment `seg` in layer `t`, if the
    /// segment is non-empty.
    fn segment_first_cell(&self, t: u32, seg: Segment3D) -> Option<Point<3>> {
        let side = self.universe.side();
        let s = side - 2 * (t - 1);
        if seg.size(s) == 0 {
            return None;
        }
        let lo = t - 1;
        let hi = lo + s - 1;
        // In-segment rank 0 cells; squares start at their onion origin (0,0).
        let p = match seg {
            Segment3D::LowFaceI => Point::new([lo, lo, lo]),
            Segment3D::HighFaceI => Point::new([hi, lo, lo]),
            Segment3D::LineLowJLowK => Point::new([lo + 1, lo, lo]),
            Segment3D::PlaneLowJ => Point::new([lo + 1, lo, lo + 1]),
            Segment3D::LineLowJHighK => Point::new([lo + 1, lo, hi]),
            Segment3D::LineHighJLowK => Point::new([lo + 1, hi, lo]),
            Segment3D::PlaneHighJ => Point::new([lo + 1, hi, lo + 1]),
            Segment3D::LineHighJHighK => Point::new([lo + 1, hi, hi]),
            Segment3D::PlaneLowK => Point::new([lo + 1, lo + 1, lo]),
            Segment3D::PlaneHighK => Point::new([lo + 1, lo + 1, hi]),
        };
        Some(p)
    }

    /// Last cell (in curve order) of segment `seg` in layer `t`, if the
    /// segment is non-empty. Closed-form (`O(1)`): square segments end at
    /// [`last_in_square`] of their face, lines at their highest free
    /// coordinate.
    fn segment_last_cell(&self, t: u32, seg: Segment3D) -> Option<Point<3>> {
        let side = self.universe.side();
        let s = side - 2 * (t - 1);
        if seg.size(s) == 0 {
            return None;
        }
        let lo = t - 1;
        let hi = lo + s - 1;
        let p = match seg {
            Segment3D::LowFaceI | Segment3D::HighFaceI => {
                let (b, c) = last_in_square(s);
                let a = if seg == Segment3D::LowFaceI { lo } else { hi };
                Point::new([a, b + lo, c + lo])
            }
            Segment3D::LineLowJLowK => Point::new([hi - 1, lo, lo]),
            Segment3D::LineLowJHighK => Point::new([hi - 1, lo, hi]),
            Segment3D::LineHighJLowK => Point::new([hi - 1, hi, lo]),
            Segment3D::LineHighJHighK => Point::new([hi - 1, hi, hi]),
            Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                let (a, c) = last_in_square(s - 2);
                let b = if seg == Segment3D::PlaneLowJ { lo } else { hi };
                Point::new([a + lo + 1, b, c + lo + 1])
            }
            Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                let (a, b) = last_in_square(s - 2);
                let c = if seg == Segment3D::PlaneLowK { lo } else { hi };
                Point::new([a + lo + 1, b + lo + 1, c])
            }
        };
        Some(p)
    }
}

impl SpaceFillingCurve<3> for Onion3D {
    fn universe(&self) -> Universe<3> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<3>) -> u64 {
        let (t, seg, r) = self.triple_key(p);
        let offset = self.universe.cells_before_layer(t); // paper's K1(t)
        let s = self.universe.layer_side(t);
        if s == 1 {
            // Odd side: the central layer is one cell; the face segments
            // coincide there, so skip the K2 accumulation.
            return offset;
        }
        let mut base = 0u64; // paper's K2(t, g)
        for g in self.order {
            if g == seg {
                break;
            }
            base += g.size(s);
        }
        offset + base + r
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<3> {
        let side = self.universe.side();
        let n = self.universe.cell_count();
        // Locate the layer: cells at positions >= idx fill the sub-cube of
        // the smallest side `s` (parity of `side`) with s³ ≥ n − idx.
        let rem = n - idx;
        let mut s = icbrt(rem) as u32;
        if u64::from(s).pow(3) < rem {
            s += 1;
        }
        if (s % 2) != (side % 2) {
            s += 1;
        }
        debug_assert!(s >= 1 && s <= side);
        let t = (side - s) / 2 + 1;
        let mut local = idx - self.universe.cells_before_layer(t);
        let lo = t - 1;
        if s == 1 {
            return Point::new([lo, lo, lo]);
        }
        let hi = lo + s - 1;
        for seg in self.order {
            let size = seg.size(s);
            if local >= size {
                local -= size;
                continue;
            }
            let p = match seg {
                Segment3D::LowFaceI | Segment3D::HighFaceI => {
                    let (b, c) = unrank_in_square(s, local);
                    let a = if seg == Segment3D::LowFaceI { lo } else { hi };
                    Point::new([a, b + lo, c + lo])
                }
                Segment3D::LineLowJLowK => Point::new([lo + 1 + local as u32, lo, lo]),
                Segment3D::LineLowJHighK => Point::new([lo + 1 + local as u32, lo, hi]),
                Segment3D::LineHighJLowK => Point::new([lo + 1 + local as u32, hi, lo]),
                Segment3D::LineHighJHighK => Point::new([lo + 1 + local as u32, hi, hi]),
                Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                    let (a, c) = unrank_in_square(s - 2, local);
                    let b = if seg == Segment3D::PlaneLowJ { lo } else { hi };
                    Point::new([a + lo + 1, b, c + lo + 1])
                }
                Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                    let (a, b) = unrank_in_square(s - 2, local);
                    let c = if seg == Segment3D::PlaneLowK { lo } else { hi };
                    Point::new([a + lo + 1, b + lo + 1, c])
                }
            };
            return p;
        }
        unreachable!("index {idx} not inside layer {t}")
    }

    fn name(&self) -> &str {
        "onion"
    }

    fn is_continuous(&self) -> bool {
        false // jumps at segment boundaries; see `jump_targets`
    }

    /// Batch forward mapping: statically dispatched triple-key ranking.
    fn fill_indices(&self, points: &[Point<3>], out: &mut Vec<u64>) {
        out.reserve(points.len());
        for &p in points {
            out.push(Onion3D::index_unchecked(self, p));
        }
    }

    /// Batch inverse mapping: statically dispatched unranking.
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<3>>) {
        out.reserve(indices.len());
        for &idx in indices {
            out.push(Onion3D::point_unchecked(self, idx));
        }
    }

    /// `O(1)` segment walk: steps within the current segment by square
    /// perimeter geometry or along the line's free axis, and crosses
    /// segment/layer boundaries by closed-form first-cell lookup — no
    /// integer cube root, no `isqrt`.
    fn successor_unchecked(&self, p: Point<3>, idx: u64) -> Point<3> {
        debug_assert_eq!(Onion3D::index_unchecked(self, p), idx);
        debug_assert!(idx + 1 < self.universe.cell_count());
        let (t, seg, r) = self.triple_key(p);
        let s = self.universe.layer_side(t);
        let lo = t - 1;
        if s > 1 && r + 1 < seg.size(s) {
            return match seg {
                Segment3D::LowFaceI | Segment3D::HighFaceI => {
                    let (b, c) = successor_in_square(s, p.0[1] - lo, p.0[2] - lo);
                    Point::new([p.0[0], b + lo, c + lo])
                }
                Segment3D::LineLowJLowK
                | Segment3D::LineLowJHighK
                | Segment3D::LineHighJLowK
                | Segment3D::LineHighJHighK => Point::new([p.0[0] + 1, p.0[1], p.0[2]]),
                Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                    let (a, c) = successor_in_square(s - 2, p.0[0] - lo - 1, p.0[2] - lo - 1);
                    Point::new([a + lo + 1, p.0[1], c + lo + 1])
                }
                Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                    let (a, b) = successor_in_square(s - 2, p.0[0] - lo - 1, p.0[1] - lo - 1);
                    Point::new([a + lo + 1, b + lo + 1, p.0[2]])
                }
            };
        }
        // Segment exhausted (or single-cell layer): next non-empty segment
        // of this layer, else the first segment of the next layer.
        if s > 1 {
            let pos = self
                .order
                .iter()
                .position(|&g| g == seg)
                .expect("segment not in order");
            for &g in &self.order[pos + 1..] {
                if let Some(first) = self.segment_first_cell(t, g) {
                    return first;
                }
            }
        }
        let t2 = t + 1;
        debug_assert!(t2 <= self.universe.layer_count());
        for &g in &self.order {
            if let Some(first) = self.segment_first_cell(t2, g) {
                return first;
            }
        }
        unreachable!("no non-empty segment after index {idx}")
    }

    /// `O(1)` reverse segment walk (inverse of
    /// [`Self::successor_unchecked`]).
    fn predecessor_unchecked(&self, p: Point<3>, idx: u64) -> Point<3> {
        debug_assert_eq!(Onion3D::index_unchecked(self, p), idx);
        debug_assert!(idx >= 1);
        let (t, seg, r) = self.triple_key(p);
        let s = self.universe.layer_side(t);
        let lo = t - 1;
        if s > 1 && r > 0 {
            return match seg {
                Segment3D::LowFaceI | Segment3D::HighFaceI => {
                    let (b, c) = predecessor_in_square(s, p.0[1] - lo, p.0[2] - lo);
                    Point::new([p.0[0], b + lo, c + lo])
                }
                Segment3D::LineLowJLowK
                | Segment3D::LineLowJHighK
                | Segment3D::LineHighJLowK
                | Segment3D::LineHighJHighK => Point::new([p.0[0] - 1, p.0[1], p.0[2]]),
                Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                    let (a, c) = predecessor_in_square(s - 2, p.0[0] - lo - 1, p.0[2] - lo - 1);
                    Point::new([a + lo + 1, p.0[1], c + lo + 1])
                }
                Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                    let (a, b) = predecessor_in_square(s - 2, p.0[0] - lo - 1, p.0[1] - lo - 1);
                    Point::new([a + lo + 1, b + lo + 1, p.0[2]])
                }
            };
        }
        // First cell of its segment: previous non-empty segment's last
        // cell, else the previous layer's last cell.
        if s > 1 {
            let pos = self
                .order
                .iter()
                .position(|&g| g == seg)
                .expect("segment not in order");
            for &g in self.order[..pos].iter().rev() {
                if let Some(last) = self.segment_last_cell(t, g) {
                    return last;
                }
            }
        }
        debug_assert!(t > 1);
        for &g in self.order.iter().rev() {
            if let Some(last) = self.segment_last_cell(t - 1, g) {
                return last;
            }
        }
        unreachable!("no non-empty segment before index {idx}")
    }

    /// Enumerates the (few) jump targets: for every layer and segment, the
    /// segment's first cell, kept only when its curve predecessor is not a
    /// grid neighbor. At most `10 · side/2` cells.
    fn jump_targets(&self) -> Option<Vec<Point<3>>> {
        let mut out = Vec::new();
        for t in 1..=self.universe.layer_count() {
            let segs: &[Segment3D] = if self.universe.layer_side(t) == 1 {
                &[Segment3D::LowFaceI]
            } else {
                &self.order
            };
            for &seg in segs {
                let Some(first) = self.segment_first_cell(t, seg) else {
                    continue;
                };
                let idx = self.index_unchecked(first);
                if idx == 0 {
                    continue; // the curve start has no predecessor
                }
                let pred = self.point_unchecked(idx - 1);
                if !pred.is_neighbor(&first) {
                    out.push(first);
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::verify;

    #[test]
    fn icbrt_exact_values() {
        assert_eq!(icbrt(0), 0);
        assert_eq!(icbrt(1), 1);
        assert_eq!(icbrt(7), 1);
        assert_eq!(icbrt(8), 2);
        assert_eq!(icbrt(26), 2);
        assert_eq!(icbrt(27), 3);
        assert_eq!(icbrt(u64::MAX), 2_642_245);
        for r in [5u64, 100, 1023, 1 << 20] {
            assert_eq!(icbrt(r * r * r), r);
            assert_eq!(icbrt(r * r * r - 1), r - 1);
            assert_eq!(icbrt(r * r * r + 1), r);
        }
    }

    #[test]
    fn segment_sizes_match_paper_v_vector() {
        // V(1)=V(2)=s², V(3)=V(5)=V(6)=V(8)=s−2, V(4)=V(7)=V(9)=V(10)=(s−2)².
        for s in 2..=10u32 {
            let sizes: Vec<u64> = Segment3D::ALL.iter().map(|g| g.size(s)).collect();
            let s64 = u64::from(s);
            assert_eq!(sizes[0], s64 * s64);
            assert_eq!(sizes[1], s64 * s64);
            for i in [2usize, 4, 5, 7] {
                assert_eq!(sizes[i], s64 - 2);
            }
            for i in [3usize, 6, 8, 9] {
                assert_eq!(sizes[i], (s64 - 2) * (s64 - 2));
            }
            // A layer contains s³ − (s−2)³ cells.
            let total: u64 = sizes.iter().sum();
            assert_eq!(total, s64.pow(3) - (s64 - 2).pow(3));
        }
    }

    #[test]
    fn bijective_for_small_sides_even_and_odd() {
        for side in 1..=9 {
            verify::bijection(&Onion3D::new(side).unwrap())
                .unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn layers_are_visited_in_order() {
        let o = Onion3D::new(8).unwrap();
        let u = o.universe();
        let mut last = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(layer >= last, "layer decreased at {idx}");
            last = layer;
        }
    }

    #[test]
    fn segments_are_visited_in_paper_order_within_layer() {
        let o = Onion3D::new(10).unwrap();
        let u = o.universe();
        for t in 1..=u.layer_count() {
            let mut last_pos = 0usize;
            let start = u.cells_before_layer(t);
            let end = if t == u.layer_count() {
                u.cell_count()
            } else {
                u.cells_before_layer(t + 1)
            };
            for idx in start..end {
                let (tt, seg, _) = o.triple_key(o.point_unchecked(idx));
                assert_eq!(tt, t);
                let pos = Segment3D::ALL.iter().position(|&g| g == seg).unwrap();
                assert!(pos >= last_pos, "segment order violated at index {idx}");
                last_pos = pos;
            }
        }
    }

    #[test]
    fn triple_key_roundtrips_through_k1_k2() {
        // The paper's O(α) = K1(t') + K2(t', g') + r' equals index_unchecked.
        let o = Onion3D::new(6).unwrap();
        let u = o.universe();
        for p in u.iter_cells() {
            let (t, seg, r) = o.triple_key(p);
            let s = u.layer_side(t);
            let k2: u64 = Segment3D::ALL
                .iter()
                .take_while(|&&g| g != seg)
                .map(|g| g.size(s))
                .sum();
            assert_eq!(u.cells_before_layer(t) + k2 + r, o.index_unchecked(p));
        }
    }

    #[test]
    fn jump_targets_are_exact_small_sides() {
        for side in 2..=8 {
            let o = Onion3D::new(side).unwrap();
            verify::jump_targets_exact(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn jump_count_is_bounded_by_segments() {
        let o = Onion3D::new(8).unwrap();
        let jumps = verify::discontinuities(&o);
        // At most 10 segment starts per layer (layer transitions included).
        assert!(jumps <= 10 * 4, "jumps = {jumps}");
        assert_eq!(jumps, o.jump_targets().unwrap().len() as u64);
    }

    #[test]
    fn roundtrip_on_large_side() {
        let o = Onion3D::new(512).unwrap();
        let n = o.universe().cell_count();
        for idx in [0, 1, 12345, n / 3, n / 2, n - 2, n - 1] {
            let p = o.point_unchecked(idx);
            assert_eq!(o.index_unchecked(p), idx, "idx {idx}");
        }
        for p in [
            Point::new([0, 0, 0]),
            Point::new([511, 0, 0]),
            Point::new([200, 300, 400]),
            Point::new([255, 256, 255]),
        ] {
            assert_eq!(o.point_unchecked(o.index_unchecked(p)), p);
        }
    }

    #[test]
    fn start_is_origin() {
        let o = Onion3D::new(8).unwrap();
        assert_eq!(o.start(), Point::new([0, 0, 0]));
    }

    /// §VI-A's "any permutation" remark: a reshuffled segment order remains
    /// a valid layer-sequential bijection with exact jump targets.
    #[test]
    fn permuted_segment_order_is_bijective() {
        let order = [
            Segment3D::PlaneLowK,
            Segment3D::HighFaceI,
            Segment3D::LineHighJHighK,
            Segment3D::PlaneLowJ,
            Segment3D::LowFaceI,
            Segment3D::LineLowJLowK,
            Segment3D::PlaneHighK,
            Segment3D::LineLowJHighK,
            Segment3D::PlaneHighJ,
            Segment3D::LineHighJLowK,
        ];
        for side in [2u32, 4, 6, 7] {
            let o = Onion3D::with_segment_order(side, order).unwrap();
            verify::bijection(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
            verify::jump_targets_exact(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
        // Layer order is preserved regardless of the permutation.
        let o = Onion3D::with_segment_order(6, order).unwrap();
        let u = o.universe();
        let mut last = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(layer >= last);
            last = layer;
        }
    }

    #[test]
    fn rejects_non_permutation_order() {
        let bad = [Segment3D::LowFaceI; 10];
        assert!(Onion3D::with_segment_order(4, bad).is_err());
    }

    fn check_stepping(o: &Onion3D) {
        let n = o.universe().cell_count();
        for idx in 0..n {
            let p = o.point_unchecked(idx);
            if idx + 1 < n {
                assert_eq!(
                    o.successor_unchecked(p, idx),
                    o.point_unchecked(idx + 1),
                    "successor at {idx} (side {})",
                    o.universe().side()
                );
            }
            if idx > 0 {
                assert_eq!(
                    o.predecessor_unchecked(p, idx),
                    o.point_unchecked(idx - 1),
                    "predecessor at {idx} (side {})",
                    o.universe().side()
                );
            }
        }
    }

    #[test]
    fn successor_predecessor_match_unrank_exhaustively() {
        for side in 1..=8 {
            check_stepping(&Onion3D::new(side).unwrap());
        }
    }

    #[test]
    fn stepping_respects_custom_segment_order() {
        let order = [
            Segment3D::PlaneLowK,
            Segment3D::HighFaceI,
            Segment3D::LineHighJHighK,
            Segment3D::PlaneLowJ,
            Segment3D::LowFaceI,
            Segment3D::LineLowJLowK,
            Segment3D::PlaneHighK,
            Segment3D::LineLowJHighK,
            Segment3D::PlaneHighJ,
            Segment3D::LineHighJLowK,
        ];
        for side in [2u32, 5, 6, 7] {
            check_stepping(&Onion3D::with_segment_order(side, order).unwrap());
        }
    }

    #[test]
    fn segment_last_cell_matches_first_plus_size() {
        let o = Onion3D::new(10).unwrap();
        for t in 1..=o.universe().layer_count() {
            let s = o.universe().layer_side(t);
            for seg in Segment3D::ALL {
                let (first, last) = (o.segment_first_cell(t, seg), o.segment_last_cell(t, seg));
                assert_eq!(first.is_some(), last.is_some(), "t={t} {seg:?}");
                let (Some(first), Some(last)) = (first, last) else {
                    continue;
                };
                assert_eq!(
                    o.index_unchecked(last),
                    o.index_unchecked(first) + seg.size(s) - 1,
                    "t={t} {seg:?}"
                );
            }
        }
    }

    #[test]
    fn batch_overrides_match_scalar() {
        let o = Onion3D::new(7).unwrap();
        let points: Vec<Point<3>> = o.universe().iter_cells().collect();
        let mut indices = Vec::new();
        o.fill_indices(&points, &mut indices);
        assert_eq!(
            indices,
            points
                .iter()
                .map(|&p| o.index_unchecked(p))
                .collect::<Vec<_>>()
        );
        let mut back = Vec::new();
        o.fill_points(&indices, &mut back);
        assert_eq!(back, points);
    }
}
