//! The three-dimensional onion curve (§VI of the paper).
//!
//! Cells are ordered layer by layer (`S(1), S(2), …`); within layer `t` the
//! ten segments `S1(t) → … → S10(t)` of §VI-A are visited in order. Line
//! segments are ordered by their free coordinate; square segments are
//! ordered by the two-dimensional onion curve on their free coordinates
//! (lowest-numbered free dimension first), exactly as the paper prescribes
//! ("the natural order induced by the line … or the order given by the
//! two-dimensional onion curve").
//!
//! Coordinates `(i, j, k)` of the paper are dimensions 0, 1, 2 here.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::fastmath::icbrt_fast;
use crate::onion2d::{
    for_each_in_square_walk, last_in_square, predecessor_in_square, rank_in_square,
    successor_in_square, unrank_in_square,
};
use crate::point::Point;
use crate::universe::Universe;

/// Segment identifier within a layer (the paper's `g ∈ {1, …, 10}`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Segment3D {
    /// `S1`: the full face `i = t−1`.
    LowFaceI,
    /// `S2`: the full face `i = 2m−t`.
    HighFaceI,
    /// `S3`: the line `j = t−1, k = t−1`.
    LineLowJLowK,
    /// `S4`: the plane `j = t−1` (interior `i, k`).
    PlaneLowJ,
    /// `S5`: the line `j = t−1, k = 2m−t`.
    LineLowJHighK,
    /// `S6`: the line `j = 2m−t, k = t−1`.
    LineHighJLowK,
    /// `S7`: the plane `j = 2m−t` (interior `i, k`).
    PlaneHighJ,
    /// `S8`: the line `j = 2m−t, k = 2m−t`.
    LineHighJHighK,
    /// `S9`: the plane `k = t−1` (interior `i, j`).
    PlaneLowK,
    /// `S10`: the plane `k = 2m−t` (interior `i, j`).
    PlaneHighK,
}

impl Segment3D {
    /// All ten segments in curve order.
    pub const ALL: [Segment3D; 10] = [
        Segment3D::LowFaceI,
        Segment3D::HighFaceI,
        Segment3D::LineLowJLowK,
        Segment3D::PlaneLowJ,
        Segment3D::LineLowJHighK,
        Segment3D::LineHighJLowK,
        Segment3D::PlaneHighJ,
        Segment3D::LineHighJHighK,
        Segment3D::PlaneLowK,
        Segment3D::PlaneHighK,
    ];

    /// Number of cells of the segment in a layer whose remaining sub-cube
    /// has side `s` (the paper's `V_{t'}(g)` with `s = 2m − 2t' + 2`).
    #[inline]
    pub fn size(self, s: u32) -> u64 {
        let s = u64::from(s);
        let inner = s.saturating_sub(2); // zero for the degenerate s ≤ 2 layers
        match self {
            Segment3D::LowFaceI | Segment3D::HighFaceI => s * s,
            Segment3D::LineLowJLowK
            | Segment3D::LineLowJHighK
            | Segment3D::LineHighJLowK
            | Segment3D::LineHighJHighK => inner,
            Segment3D::PlaneLowJ
            | Segment3D::PlaneHighJ
            | Segment3D::PlaneLowK
            | Segment3D::PlaneHighK => inner * inner,
        }
    }
}

/// The three-dimensional onion curve over a `side × side × side` universe.
///
/// Any `side ≥ 1` is supported (the paper assumes an even side `2m`; odd
/// sides terminate in a single central cell).
///
/// The curve is layer-sequential but not fully continuous: it jumps at
/// segment boundaries. Those finitely many jump targets are enumerable via
/// [`SpaceFillingCurve::jump_targets`], which keeps the fast boundary-scan
/// clustering algorithm exact.
#[derive(Clone, Copy, Debug)]
pub struct Onion3D {
    universe: Universe<3>,
    /// Order in which the ten segments of a layer are visited. The paper
    /// (§VI-A) notes the clustering bound only needs layer-sequentiality:
    /// "we can actually adopt any permutation" — this field is the ablation
    /// knob for that remark.
    order: [Segment3D; 10],
}

impl Onion3D {
    /// Creates the onion curve for a `side × side × side` universe, with
    /// the paper's segment order `S1 → … → S10`.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        Ok(Onion3D {
            universe: Universe::new(side)?,
            order: Segment3D::ALL,
        })
    }

    /// Creates the curve with a custom intra-layer segment order — the
    /// paper's "any permutation" remark, used by the segment-order ablation
    /// experiment.
    ///
    /// # Errors
    /// [`SfcError::DimensionUnsupported`] if `order` is not a permutation
    /// of all ten segments.
    pub fn with_segment_order(side: u32, order: [Segment3D; 10]) -> Result<Self, SfcError> {
        for seg in Segment3D::ALL {
            if !order.contains(&seg) {
                return Err(SfcError::DimensionUnsupported { dims: 3 });
            }
        }
        Ok(Onion3D {
            universe: Universe::new(side)?,
            order,
        })
    }

    /// The intra-layer segment visiting order.
    pub fn segment_order(&self) -> [Segment3D; 10] {
        self.order
    }

    /// Layer, remaining-sub-cube side, and segment of a cell: the triple key
    /// *without* the in-segment rank. This is the stepping fast path's
    /// classifier — pure coordinate comparisons, no [`rank_in_square`].
    #[inline]
    fn segment_of(&self, p: Point<3>) -> (u32, u32, Segment3D) {
        let side = self.universe.side();
        let t = self.universe.layer_of(p);
        let s = side - 2 * (t - 1);
        if s == 1 {
            return (t, s, Segment3D::LowFaceI);
        }
        let (a, b, c) = (p.0[0] - (t - 1), p.0[1] - (t - 1), p.0[2] - (t - 1));
        let e = s - 1;
        let seg = if a == 0 {
            Segment3D::LowFaceI
        } else if a == e {
            Segment3D::HighFaceI
        } else if b == 0 {
            if c == 0 {
                Segment3D::LineLowJLowK
            } else if c == e {
                Segment3D::LineLowJHighK
            } else {
                Segment3D::PlaneLowJ
            }
        } else if b == e {
            if c == 0 {
                Segment3D::LineHighJLowK
            } else if c == e {
                Segment3D::LineHighJHighK
            } else {
                Segment3D::PlaneHighJ
            }
        } else if c == 0 {
            Segment3D::PlaneLowK
        } else {
            debug_assert_eq!(c, e, "cell not on the layer shell");
            Segment3D::PlaneHighK
        };
        (t, s, seg)
    }

    /// Layer (1-based), segment, and in-segment rank of a cell — the paper's
    /// triple key `(t', g', r')`.
    pub fn triple_key(&self, p: Point<3>) -> (u32, Segment3D, u64) {
        let (t, s, seg) = self.segment_of(p);
        if s == 1 {
            return (t, seg, 0);
        }
        let (a, b, c) = (p.0[0] - (t - 1), p.0[1] - (t - 1), p.0[2] - (t - 1));
        let r = match seg {
            Segment3D::LowFaceI | Segment3D::HighFaceI => rank_in_square(s, b, c),
            Segment3D::LineLowJLowK
            | Segment3D::LineLowJHighK
            | Segment3D::LineHighJLowK
            | Segment3D::LineHighJHighK => u64::from(a - 1),
            Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => rank_in_square(s - 2, a - 1, c - 1),
            Segment3D::PlaneLowK | Segment3D::PlaneHighK => rank_in_square(s - 2, a - 1, b - 1),
        };
        (t, seg, r)
    }

    /// Layer (1-based) and remaining-sub-cube side holding curve position
    /// `idx`: the smallest `s` of the universe's parity with `s³ ≥ n − idx`.
    /// Branch-free around [`icbrt_fast`], so [`Self::fill_points`] can run it
    /// across lanes.
    #[inline]
    fn locate_layer(&self, idx: u64) -> (u32, u32) {
        let side = self.universe.side();
        let rem = self.universe.cell_count() - idx;
        let mut s = icbrt_fast(rem) as u32;
        s += u32::from(u64::from(s).pow(3) < rem);
        s += (s ^ side) & 1;
        debug_assert!(s >= 1 && s <= side);
        ((side - s) / 2 + 1, s)
    }

    /// Decodes in-layer position `local` of layer `t` (remaining side `s`):
    /// the segment scan of the paper's inverse mapping.
    fn unrank_in_layer(&self, t: u32, s: u32, mut local: u64) -> Point<3> {
        let lo = t - 1;
        if s == 1 {
            return Point::new([lo, lo, lo]);
        }
        let hi = lo + s - 1;
        for seg in self.order {
            let size = seg.size(s);
            if local >= size {
                local -= size;
                continue;
            }
            let p = match seg {
                Segment3D::LowFaceI | Segment3D::HighFaceI => {
                    let (b, c) = unrank_in_square(s, local);
                    let a = if seg == Segment3D::LowFaceI { lo } else { hi };
                    Point::new([a, b + lo, c + lo])
                }
                Segment3D::LineLowJLowK => Point::new([lo + 1 + local as u32, lo, lo]),
                Segment3D::LineLowJHighK => Point::new([lo + 1 + local as u32, lo, hi]),
                Segment3D::LineHighJLowK => Point::new([lo + 1 + local as u32, hi, lo]),
                Segment3D::LineHighJHighK => Point::new([lo + 1 + local as u32, hi, hi]),
                Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                    let (a, c) = unrank_in_square(s - 2, local);
                    let b = if seg == Segment3D::PlaneLowJ { lo } else { hi };
                    Point::new([a + lo + 1, b, c + lo + 1])
                }
                Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                    let (a, b) = unrank_in_square(s - 2, local);
                    let c = if seg == Segment3D::PlaneLowK { lo } else { hi };
                    Point::new([a + lo + 1, b + lo + 1, c])
                }
            };
            return p;
        }
        unreachable!("position {local} not inside layer {t}")
    }

    /// Emits the `take` cells of segment `seg` in layer `t` (remaining side
    /// `s ≥ 2`) starting at in-segment rank `r`, as counted runs: lines are
    /// one straight run, faces and planes run the 2D square walk
    /// ([`for_each_in_square_walk`]) over their free coordinates.
    fn emit_segment(
        &self,
        t: u32,
        s: u32,
        seg: Segment3D,
        r: u64,
        take: usize,
        out: &mut Vec<Point<3>>,
    ) {
        let lo = t - 1;
        let hi = lo + s - 1;
        match seg {
            Segment3D::LowFaceI | Segment3D::HighFaceI => {
                let a = if seg == Segment3D::LowFaceI { lo } else { hi };
                for_each_in_square_walk(s, r, take, |b, c| {
                    out.push(Point::new([a, b + lo, c + lo]));
                });
            }
            Segment3D::LineLowJLowK
            | Segment3D::LineLowJHighK
            | Segment3D::LineHighJLowK
            | Segment3D::LineHighJHighK => {
                let (j, k) = match seg {
                    Segment3D::LineLowJLowK => (lo, lo),
                    Segment3D::LineLowJHighK => (lo, hi),
                    Segment3D::LineHighJLowK => (hi, lo),
                    _ => (hi, hi),
                };
                let x0 = lo + 1 + r as u32;
                for i in 0..take as u32 {
                    out.push(Point::new([x0 + i, j, k]));
                }
            }
            Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                let b = if seg == Segment3D::PlaneLowJ { lo } else { hi };
                for_each_in_square_walk(s - 2, r, take, |a, c| {
                    out.push(Point::new([a + lo + 1, b, c + lo + 1]));
                });
            }
            Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                let c = if seg == Segment3D::PlaneLowK { lo } else { hi };
                for_each_in_square_walk(s - 2, r, take, |a, b| {
                    out.push(Point::new([a + lo + 1, b + lo + 1, c]));
                });
            }
        }
    }

    /// First cell (in curve order) of segment `seg` in layer `t`, if the
    /// segment is non-empty.
    fn segment_first_cell(&self, t: u32, seg: Segment3D) -> Option<Point<3>> {
        let side = self.universe.side();
        let s = side - 2 * (t - 1);
        if seg.size(s) == 0 {
            return None;
        }
        let lo = t - 1;
        let hi = lo + s - 1;
        // In-segment rank 0 cells; squares start at their onion origin (0,0).
        let p = match seg {
            Segment3D::LowFaceI => Point::new([lo, lo, lo]),
            Segment3D::HighFaceI => Point::new([hi, lo, lo]),
            Segment3D::LineLowJLowK => Point::new([lo + 1, lo, lo]),
            Segment3D::PlaneLowJ => Point::new([lo + 1, lo, lo + 1]),
            Segment3D::LineLowJHighK => Point::new([lo + 1, lo, hi]),
            Segment3D::LineHighJLowK => Point::new([lo + 1, hi, lo]),
            Segment3D::PlaneHighJ => Point::new([lo + 1, hi, lo + 1]),
            Segment3D::LineHighJHighK => Point::new([lo + 1, hi, hi]),
            Segment3D::PlaneLowK => Point::new([lo + 1, lo + 1, lo]),
            Segment3D::PlaneHighK => Point::new([lo + 1, lo + 1, hi]),
        };
        Some(p)
    }

    /// Last cell (in curve order) of segment `seg` in layer `t`, if the
    /// segment is non-empty. Closed-form (`O(1)`): square segments end at
    /// [`last_in_square`] of their face, lines at their highest free
    /// coordinate.
    fn segment_last_cell(&self, t: u32, seg: Segment3D) -> Option<Point<3>> {
        let side = self.universe.side();
        let s = side - 2 * (t - 1);
        if seg.size(s) == 0 {
            return None;
        }
        let lo = t - 1;
        let hi = lo + s - 1;
        let p = match seg {
            Segment3D::LowFaceI | Segment3D::HighFaceI => {
                let (b, c) = last_in_square(s);
                let a = if seg == Segment3D::LowFaceI { lo } else { hi };
                Point::new([a, b + lo, c + lo])
            }
            Segment3D::LineLowJLowK => Point::new([hi - 1, lo, lo]),
            Segment3D::LineLowJHighK => Point::new([hi - 1, lo, hi]),
            Segment3D::LineHighJLowK => Point::new([hi - 1, hi, lo]),
            Segment3D::LineHighJHighK => Point::new([hi - 1, hi, hi]),
            Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                let (a, c) = last_in_square(s - 2);
                let b = if seg == Segment3D::PlaneLowJ { lo } else { hi };
                Point::new([a + lo + 1, b, c + lo + 1])
            }
            Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                let (a, b) = last_in_square(s - 2);
                let c = if seg == Segment3D::PlaneLowK { lo } else { hi };
                Point::new([a + lo + 1, b + lo + 1, c])
            }
        };
        Some(p)
    }
}

impl SpaceFillingCurve<3> for Onion3D {
    fn universe(&self) -> Universe<3> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<3>) -> u64 {
        let (t, seg, r) = self.triple_key(p);
        let offset = self.universe.cells_before_layer(t); // paper's K1(t)
        let s = self.universe.layer_side(t);
        if s == 1 {
            // Odd side: the central layer is one cell; the face segments
            // coincide there, so skip the K2 accumulation.
            return offset;
        }
        let mut base = 0u64; // paper's K2(t, g)
        for g in self.order {
            if g == seg {
                break;
            }
            base += g.size(s);
        }
        offset + base + r
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<3> {
        // Locate the layer: cells at positions >= idx fill the sub-cube of
        // the smallest side `s` (parity of `side`) with s³ ≥ n − idx.
        let (t, s) = self.locate_layer(idx);
        let local = idx - self.universe.cells_before_layer(t);
        self.unrank_in_layer(t, s, local)
    }

    fn name(&self) -> &str {
        "onion"
    }

    fn is_continuous(&self) -> bool {
        false // jumps at segment boundaries; see `jump_targets`
    }

    /// Batch forward mapping: statically dispatched triple-key ranking.
    fn fill_indices(&self, points: &[Point<3>], out: &mut Vec<u64>) {
        out.reserve(points.len());
        for &p in points {
            out.push(Onion3D::index_unchecked(self, p));
        }
    }

    /// Lane-batched inverse mapping: layer location (the cube-root-carrying
    /// part) runs branch-free across chunks of eight indices so the FPU
    /// pipelines the root computations, then the segment scans decode each
    /// lane.
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<3>>) {
        out.reserve(indices.len());
        const LANES: usize = 8;
        let mut layer = [(0u32, 0u32); LANES];
        for chunk in indices.chunks(LANES) {
            for (lane, &idx) in layer.iter_mut().zip(chunk) {
                *lane = self.locate_layer(idx);
            }
            for (&(t, s), &idx) in layer.iter().zip(chunk) {
                let local = idx - self.universe.cells_before_layer(t);
                out.push(self.unrank_in_layer(t, s, local));
            }
        }
    }

    /// Run-emitting walk: one `locate_layer` (cube root) for the whole span,
    /// then segments stream out as counted runs — straight lines, and square
    /// perimeter walks for faces/planes — instead of per-cell stepping.
    fn fill_walk(&self, start_idx: u64, count: usize, out: &mut Vec<Point<3>>) {
        if count == 0 {
            return;
        }
        debug_assert!(start_idx + count as u64 <= self.universe.cell_count());
        out.reserve(count);
        let (mut t, mut s) = self.locate_layer(start_idx);
        let mut local = start_idx - self.universe.cells_before_layer(t);
        let mut remaining = count;
        'walk: while remaining > 0 {
            if s == 1 {
                // Central cell of an odd-sided cube: the curve's last cell.
                let lo = t - 1;
                out.push(Point::new([lo, lo, lo]));
                remaining -= 1;
                debug_assert_eq!(remaining, 0, "walk ran past the last cell");
                break;
            }
            for seg in self.order {
                let size = seg.size(s);
                if local >= size {
                    local -= size;
                    continue;
                }
                let take = remaining.min((size - local) as usize);
                self.emit_segment(t, s, seg, local, take, out);
                remaining -= take;
                if remaining == 0 {
                    break 'walk;
                }
                local = 0;
            }
            debug_assert!(s > 2, "walk ran past the last layer");
            t += 1;
            s -= 2;
            local = 0;
        }
    }

    /// `O(1)` segment walk: steps within the current segment by square
    /// perimeter geometry or along the line's free axis, and crosses
    /// segment/layer boundaries by closed-form first-cell lookup — no
    /// integer cube root, no `isqrt`.
    fn successor_unchecked(&self, p: Point<3>, idx: u64) -> Point<3> {
        debug_assert_eq!(Onion3D::index_unchecked(self, p), idx);
        debug_assert!(idx + 1 < self.universe.cell_count());
        // Segment classification is pure coordinate comparisons, and "not
        // the segment's last cell" is a closed-form point equality — the
        // common in-segment step never ranks (no `rank_in_square`).
        let (t, s, seg) = self.segment_of(p);
        let lo = t - 1;
        if s > 1 && self.segment_last_cell(t, seg) != Some(p) {
            return match seg {
                Segment3D::LowFaceI | Segment3D::HighFaceI => {
                    let (b, c) = successor_in_square(s, p.0[1] - lo, p.0[2] - lo);
                    Point::new([p.0[0], b + lo, c + lo])
                }
                Segment3D::LineLowJLowK
                | Segment3D::LineLowJHighK
                | Segment3D::LineHighJLowK
                | Segment3D::LineHighJHighK => Point::new([p.0[0] + 1, p.0[1], p.0[2]]),
                Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                    let (a, c) = successor_in_square(s - 2, p.0[0] - lo - 1, p.0[2] - lo - 1);
                    Point::new([a + lo + 1, p.0[1], c + lo + 1])
                }
                Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                    let (a, b) = successor_in_square(s - 2, p.0[0] - lo - 1, p.0[1] - lo - 1);
                    Point::new([a + lo + 1, b + lo + 1, p.0[2]])
                }
            };
        }
        // Segment exhausted (or single-cell layer): next non-empty segment
        // of this layer, else the first segment of the next layer.
        if s > 1 {
            let pos = self
                .order
                .iter()
                .position(|&g| g == seg)
                .expect("segment not in order");
            for &g in &self.order[pos + 1..] {
                if let Some(first) = self.segment_first_cell(t, g) {
                    return first;
                }
            }
        }
        let t2 = t + 1;
        debug_assert!(t2 <= self.universe.layer_count());
        for &g in &self.order {
            if let Some(first) = self.segment_first_cell(t2, g) {
                return first;
            }
        }
        unreachable!("no non-empty segment after index {idx}")
    }

    /// `O(1)` reverse segment walk (inverse of
    /// [`Self::successor_unchecked`]).
    fn predecessor_unchecked(&self, p: Point<3>, idx: u64) -> Point<3> {
        debug_assert_eq!(Onion3D::index_unchecked(self, p), idx);
        debug_assert!(idx >= 1);
        // Mirror of `successor_unchecked`: rank-free classification plus a
        // closed-form first-cell equality test.
        let (t, s, seg) = self.segment_of(p);
        let lo = t - 1;
        if s > 1 && self.segment_first_cell(t, seg) != Some(p) {
            return match seg {
                Segment3D::LowFaceI | Segment3D::HighFaceI => {
                    let (b, c) = predecessor_in_square(s, p.0[1] - lo, p.0[2] - lo);
                    Point::new([p.0[0], b + lo, c + lo])
                }
                Segment3D::LineLowJLowK
                | Segment3D::LineLowJHighK
                | Segment3D::LineHighJLowK
                | Segment3D::LineHighJHighK => Point::new([p.0[0] - 1, p.0[1], p.0[2]]),
                Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                    let (a, c) = predecessor_in_square(s - 2, p.0[0] - lo - 1, p.0[2] - lo - 1);
                    Point::new([a + lo + 1, p.0[1], c + lo + 1])
                }
                Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                    let (a, b) = predecessor_in_square(s - 2, p.0[0] - lo - 1, p.0[1] - lo - 1);
                    Point::new([a + lo + 1, b + lo + 1, p.0[2]])
                }
            };
        }
        // First cell of its segment: previous non-empty segment's last
        // cell, else the previous layer's last cell.
        if s > 1 {
            let pos = self
                .order
                .iter()
                .position(|&g| g == seg)
                .expect("segment not in order");
            for &g in self.order[..pos].iter().rev() {
                if let Some(last) = self.segment_last_cell(t, g) {
                    return last;
                }
            }
        }
        debug_assert!(t > 1);
        for &g in self.order.iter().rev() {
            if let Some(last) = self.segment_last_cell(t - 1, g) {
                return last;
            }
        }
        unreachable!("no non-empty segment before index {idx}")
    }

    /// Enumerates the (few) jump targets: for every layer and segment, the
    /// segment's first cell, kept only when its curve predecessor is not a
    /// grid neighbor. At most `10 · side/2` cells.
    fn jump_targets(&self) -> Option<Vec<Point<3>>> {
        let mut out = Vec::new();
        for t in 1..=self.universe.layer_count() {
            let segs: &[Segment3D] = if self.universe.layer_side(t) == 1 {
                &[Segment3D::LowFaceI]
            } else {
                &self.order
            };
            for &seg in segs {
                let Some(first) = self.segment_first_cell(t, seg) else {
                    continue;
                };
                let idx = self.index_unchecked(first);
                if idx == 0 {
                    continue; // the curve start has no predecessor
                }
                let pred = self.point_unchecked(idx - 1);
                if !pred.is_neighbor(&first) {
                    out.push(first);
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::verify;

    /// The segment-run `fill_walk` must agree with the scalar unrank loop
    /// for every start position and a spread of window lengths, for both
    /// cube parities.
    #[test]
    fn fill_walk_matches_unrank_windows() {
        for side in [1u32, 2, 3, 4, 5, 6, 7] {
            let o = Onion3D::new(side).unwrap();
            let n = o.universe().cell_count();
            let all: Vec<Point<3>> = (0..n).map(|i| o.point_unchecked(i)).collect();
            for start in 0..n {
                for len in [0, 1, 2, 11, n - start] {
                    let len = len.min(n - start) as usize;
                    let mut got = Vec::new();
                    o.fill_walk(start, len, &mut got);
                    assert_eq!(
                        got.as_slice(),
                        &all[start as usize..start as usize + len],
                        "side {side} start {start} len {len}"
                    );
                }
            }
        }
    }

    /// `fill_walk` honors a permuted segment order, not just the default.
    #[test]
    fn fill_walk_respects_segment_order() {
        let mut order = Segment3D::ALL;
        order.reverse();
        let o = Onion3D::with_segment_order(6, order).unwrap();
        let n = o.universe().cell_count();
        let all: Vec<Point<3>> = (0..n).map(|i| o.point_unchecked(i)).collect();
        for start in [0, 1, 35, 99, n - 1] {
            let len = (n - start) as usize;
            let mut got = Vec::new();
            o.fill_walk(start, len, &mut got);
            assert_eq!(got.as_slice(), &all[start as usize..], "start {start}");
        }
    }

    #[test]
    fn segment_sizes_match_paper_v_vector() {
        // V(1)=V(2)=s², V(3)=V(5)=V(6)=V(8)=s−2, V(4)=V(7)=V(9)=V(10)=(s−2)².
        for s in 2..=10u32 {
            let sizes: Vec<u64> = Segment3D::ALL.iter().map(|g| g.size(s)).collect();
            let s64 = u64::from(s);
            assert_eq!(sizes[0], s64 * s64);
            assert_eq!(sizes[1], s64 * s64);
            for i in [2usize, 4, 5, 7] {
                assert_eq!(sizes[i], s64 - 2);
            }
            for i in [3usize, 6, 8, 9] {
                assert_eq!(sizes[i], (s64 - 2) * (s64 - 2));
            }
            // A layer contains s³ − (s−2)³ cells.
            let total: u64 = sizes.iter().sum();
            assert_eq!(total, s64.pow(3) - (s64 - 2).pow(3));
        }
    }

    #[test]
    fn bijective_for_small_sides_even_and_odd() {
        for side in 1..=9 {
            verify::bijection(&Onion3D::new(side).unwrap())
                .unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn layers_are_visited_in_order() {
        let o = Onion3D::new(8).unwrap();
        let u = o.universe();
        let mut last = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(layer >= last, "layer decreased at {idx}");
            last = layer;
        }
    }

    #[test]
    fn segments_are_visited_in_paper_order_within_layer() {
        let o = Onion3D::new(10).unwrap();
        let u = o.universe();
        for t in 1..=u.layer_count() {
            let mut last_pos = 0usize;
            let start = u.cells_before_layer(t);
            let end = if t == u.layer_count() {
                u.cell_count()
            } else {
                u.cells_before_layer(t + 1)
            };
            for idx in start..end {
                let (tt, seg, _) = o.triple_key(o.point_unchecked(idx));
                assert_eq!(tt, t);
                let pos = Segment3D::ALL.iter().position(|&g| g == seg).unwrap();
                assert!(pos >= last_pos, "segment order violated at index {idx}");
                last_pos = pos;
            }
        }
    }

    #[test]
    fn triple_key_roundtrips_through_k1_k2() {
        // The paper's O(α) = K1(t') + K2(t', g') + r' equals index_unchecked.
        let o = Onion3D::new(6).unwrap();
        let u = o.universe();
        for p in u.iter_cells() {
            let (t, seg, r) = o.triple_key(p);
            let s = u.layer_side(t);
            let k2: u64 = Segment3D::ALL
                .iter()
                .take_while(|&&g| g != seg)
                .map(|g| g.size(s))
                .sum();
            assert_eq!(u.cells_before_layer(t) + k2 + r, o.index_unchecked(p));
        }
    }

    #[test]
    fn jump_targets_are_exact_small_sides() {
        for side in 2..=8 {
            let o = Onion3D::new(side).unwrap();
            verify::jump_targets_exact(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn jump_count_is_bounded_by_segments() {
        let o = Onion3D::new(8).unwrap();
        let jumps = verify::discontinuities(&o);
        // At most 10 segment starts per layer (layer transitions included).
        assert!(jumps <= 10 * 4, "jumps = {jumps}");
        assert_eq!(jumps, o.jump_targets().unwrap().len() as u64);
    }

    #[test]
    fn roundtrip_on_large_side() {
        let o = Onion3D::new(512).unwrap();
        let n = o.universe().cell_count();
        for idx in [0, 1, 12345, n / 3, n / 2, n - 2, n - 1] {
            let p = o.point_unchecked(idx);
            assert_eq!(o.index_unchecked(p), idx, "idx {idx}");
        }
        for p in [
            Point::new([0, 0, 0]),
            Point::new([511, 0, 0]),
            Point::new([200, 300, 400]),
            Point::new([255, 256, 255]),
        ] {
            assert_eq!(o.point_unchecked(o.index_unchecked(p)), p);
        }
    }

    #[test]
    fn start_is_origin() {
        let o = Onion3D::new(8).unwrap();
        assert_eq!(o.start(), Point::new([0, 0, 0]));
    }

    /// §VI-A's "any permutation" remark: a reshuffled segment order remains
    /// a valid layer-sequential bijection with exact jump targets.
    #[test]
    fn permuted_segment_order_is_bijective() {
        let order = [
            Segment3D::PlaneLowK,
            Segment3D::HighFaceI,
            Segment3D::LineHighJHighK,
            Segment3D::PlaneLowJ,
            Segment3D::LowFaceI,
            Segment3D::LineLowJLowK,
            Segment3D::PlaneHighK,
            Segment3D::LineLowJHighK,
            Segment3D::PlaneHighJ,
            Segment3D::LineHighJLowK,
        ];
        for side in [2u32, 4, 6, 7] {
            let o = Onion3D::with_segment_order(side, order).unwrap();
            verify::bijection(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
            verify::jump_targets_exact(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
        // Layer order is preserved regardless of the permutation.
        let o = Onion3D::with_segment_order(6, order).unwrap();
        let u = o.universe();
        let mut last = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(layer >= last);
            last = layer;
        }
    }

    #[test]
    fn rejects_non_permutation_order() {
        let bad = [Segment3D::LowFaceI; 10];
        assert!(Onion3D::with_segment_order(4, bad).is_err());
    }

    fn check_stepping(o: &Onion3D) {
        let n = o.universe().cell_count();
        for idx in 0..n {
            let p = o.point_unchecked(idx);
            if idx + 1 < n {
                assert_eq!(
                    o.successor_unchecked(p, idx),
                    o.point_unchecked(idx + 1),
                    "successor at {idx} (side {})",
                    o.universe().side()
                );
            }
            if idx > 0 {
                assert_eq!(
                    o.predecessor_unchecked(p, idx),
                    o.point_unchecked(idx - 1),
                    "predecessor at {idx} (side {})",
                    o.universe().side()
                );
            }
        }
    }

    #[test]
    fn successor_predecessor_match_unrank_exhaustively() {
        for side in 1..=8 {
            check_stepping(&Onion3D::new(side).unwrap());
        }
    }

    #[test]
    fn stepping_respects_custom_segment_order() {
        let order = [
            Segment3D::PlaneLowK,
            Segment3D::HighFaceI,
            Segment3D::LineHighJHighK,
            Segment3D::PlaneLowJ,
            Segment3D::LowFaceI,
            Segment3D::LineLowJLowK,
            Segment3D::PlaneHighK,
            Segment3D::LineLowJHighK,
            Segment3D::PlaneHighJ,
            Segment3D::LineHighJLowK,
        ];
        for side in [2u32, 5, 6, 7] {
            check_stepping(&Onion3D::with_segment_order(side, order).unwrap());
        }
    }

    #[test]
    fn segment_last_cell_matches_first_plus_size() {
        let o = Onion3D::new(10).unwrap();
        for t in 1..=o.universe().layer_count() {
            let s = o.universe().layer_side(t);
            for seg in Segment3D::ALL {
                let (first, last) = (o.segment_first_cell(t, seg), o.segment_last_cell(t, seg));
                assert_eq!(first.is_some(), last.is_some(), "t={t} {seg:?}");
                let (Some(first), Some(last)) = (first, last) else {
                    continue;
                };
                assert_eq!(
                    o.index_unchecked(last),
                    o.index_unchecked(first) + seg.size(s) - 1,
                    "t={t} {seg:?}"
                );
            }
        }
    }

    #[test]
    fn batch_overrides_match_scalar() {
        let o = Onion3D::new(7).unwrap();
        let points: Vec<Point<3>> = o.universe().iter_cells().collect();
        let mut indices = Vec::new();
        o.fill_indices(&points, &mut indices);
        assert_eq!(
            indices,
            points
                .iter()
                .map(|&p| o.index_unchecked(p))
                .collect::<Vec<_>>()
        );
        let mut back = Vec::new();
        o.fill_points(&indices, &mut back);
        assert_eq!(back, points);
    }
}
