//! The three-dimensional onion curve (§VI of the paper).
//!
//! Cells are ordered layer by layer (`S(1), S(2), …`); within layer `t` the
//! ten segments `S1(t) → … → S10(t)` of §VI-A are visited in order. Line
//! segments are ordered by their free coordinate; square segments are
//! ordered by the two-dimensional onion curve on their free coordinates
//! (lowest-numbered free dimension first), exactly as the paper prescribes
//! ("the natural order induced by the line … or the order given by the
//! two-dimensional onion curve").
//!
//! Coordinates `(i, j, k)` of the paper are dimensions 0, 1, 2 here.

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::onion2d::{rank_in_square, unrank_in_square};
use crate::point::Point;
use crate::universe::Universe;

/// Integer cube root: the largest `r` with `r³ ≤ x`.
#[inline]
pub(crate) fn icbrt(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).cbrt() as u64;
    // Float rounding can be off by one in either direction; fix up exactly
    // in u128 so the cube can never overflow.
    while r > 0 && u128::from(r).pow(3) > u128::from(x) {
        r -= 1;
    }
    while u128::from(r + 1).pow(3) <= u128::from(x) {
        r += 1;
    }
    r
}

/// Segment identifier within a layer (the paper's `g ∈ {1, …, 10}`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Segment3D {
    /// `S1`: the full face `i = t−1`.
    LowFaceI,
    /// `S2`: the full face `i = 2m−t`.
    HighFaceI,
    /// `S3`: the line `j = t−1, k = t−1`.
    LineLowJLowK,
    /// `S4`: the plane `j = t−1` (interior `i, k`).
    PlaneLowJ,
    /// `S5`: the line `j = t−1, k = 2m−t`.
    LineLowJHighK,
    /// `S6`: the line `j = 2m−t, k = t−1`.
    LineHighJLowK,
    /// `S7`: the plane `j = 2m−t` (interior `i, k`).
    PlaneHighJ,
    /// `S8`: the line `j = 2m−t, k = 2m−t`.
    LineHighJHighK,
    /// `S9`: the plane `k = t−1` (interior `i, j`).
    PlaneLowK,
    /// `S10`: the plane `k = 2m−t` (interior `i, j`).
    PlaneHighK,
}

impl Segment3D {
    /// All ten segments in curve order.
    pub const ALL: [Segment3D; 10] = [
        Segment3D::LowFaceI,
        Segment3D::HighFaceI,
        Segment3D::LineLowJLowK,
        Segment3D::PlaneLowJ,
        Segment3D::LineLowJHighK,
        Segment3D::LineHighJLowK,
        Segment3D::PlaneHighJ,
        Segment3D::LineHighJHighK,
        Segment3D::PlaneLowK,
        Segment3D::PlaneHighK,
    ];

    /// Number of cells of the segment in a layer whose remaining sub-cube
    /// has side `s` (the paper's `V_{t'}(g)` with `s = 2m − 2t' + 2`).
    #[inline]
    pub fn size(self, s: u32) -> u64 {
        let s = u64::from(s);
        let inner = s.saturating_sub(2); // zero for the degenerate s ≤ 2 layers
        match self {
            Segment3D::LowFaceI | Segment3D::HighFaceI => s * s,
            Segment3D::LineLowJLowK
            | Segment3D::LineLowJHighK
            | Segment3D::LineHighJLowK
            | Segment3D::LineHighJHighK => inner,
            Segment3D::PlaneLowJ
            | Segment3D::PlaneHighJ
            | Segment3D::PlaneLowK
            | Segment3D::PlaneHighK => inner * inner,
        }
    }
}

/// The three-dimensional onion curve over a `side × side × side` universe.
///
/// Any `side ≥ 1` is supported (the paper assumes an even side `2m`; odd
/// sides terminate in a single central cell).
///
/// The curve is layer-sequential but not fully continuous: it jumps at
/// segment boundaries. Those finitely many jump targets are enumerable via
/// [`SpaceFillingCurve::jump_targets`], which keeps the fast boundary-scan
/// clustering algorithm exact.
#[derive(Clone, Copy, Debug)]
pub struct Onion3D {
    universe: Universe<3>,
    /// Order in which the ten segments of a layer are visited. The paper
    /// (§VI-A) notes the clustering bound only needs layer-sequentiality:
    /// "we can actually adopt any permutation" — this field is the ablation
    /// knob for that remark.
    order: [Segment3D; 10],
}

impl Onion3D {
    /// Creates the onion curve for a `side × side × side` universe, with
    /// the paper's segment order `S1 → … → S10`.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        Ok(Onion3D {
            universe: Universe::new(side)?,
            order: Segment3D::ALL,
        })
    }

    /// Creates the curve with a custom intra-layer segment order — the
    /// paper's "any permutation" remark, used by the segment-order ablation
    /// experiment.
    ///
    /// # Errors
    /// [`SfcError::DimensionUnsupported`] if `order` is not a permutation
    /// of all ten segments.
    pub fn with_segment_order(side: u32, order: [Segment3D; 10]) -> Result<Self, SfcError> {
        for seg in Segment3D::ALL {
            if !order.contains(&seg) {
                return Err(SfcError::DimensionUnsupported { dims: 3 });
            }
        }
        Ok(Onion3D {
            universe: Universe::new(side)?,
            order,
        })
    }

    /// The intra-layer segment visiting order.
    pub fn segment_order(&self) -> [Segment3D; 10] {
        self.order
    }

    /// Layer (1-based), segment, and in-segment rank of a cell — the paper's
    /// triple key `(t', g', r')`.
    pub fn triple_key(&self, p: Point<3>) -> (u32, Segment3D, u64) {
        let side = self.universe.side();
        let t = self.universe.layer_of(p);
        let s = side - 2 * (t - 1);
        let (a, b, c) = (p.0[0] - (t - 1), p.0[1] - (t - 1), p.0[2] - (t - 1));
        if s == 1 {
            return (t, Segment3D::LowFaceI, 0);
        }
        let e = s - 1;
        let (seg, r) = if a == 0 {
            (Segment3D::LowFaceI, rank_in_square(s, b, c))
        } else if a == e {
            (Segment3D::HighFaceI, rank_in_square(s, b, c))
        } else if b == 0 {
            if c == 0 {
                (Segment3D::LineLowJLowK, u64::from(a - 1))
            } else if c == e {
                (Segment3D::LineLowJHighK, u64::from(a - 1))
            } else {
                (Segment3D::PlaneLowJ, rank_in_square(s - 2, a - 1, c - 1))
            }
        } else if b == e {
            if c == 0 {
                (Segment3D::LineHighJLowK, u64::from(a - 1))
            } else if c == e {
                (Segment3D::LineHighJHighK, u64::from(a - 1))
            } else {
                (Segment3D::PlaneHighJ, rank_in_square(s - 2, a - 1, c - 1))
            }
        } else if c == 0 {
            (Segment3D::PlaneLowK, rank_in_square(s - 2, a - 1, b - 1))
        } else {
            debug_assert_eq!(c, e, "cell not on the layer shell");
            (Segment3D::PlaneHighK, rank_in_square(s - 2, a - 1, b - 1))
        };
        (t, seg, r)
    }

    /// First cell (in curve order) of segment `seg` in layer `t`, if the
    /// segment is non-empty.
    fn segment_first_cell(&self, t: u32, seg: Segment3D) -> Option<Point<3>> {
        let side = self.universe.side();
        let s = side - 2 * (t - 1);
        if seg.size(s) == 0 {
            return None;
        }
        let lo = t - 1;
        let hi = lo + s - 1;
        // In-segment rank 0 cells; squares start at their onion origin (0,0).
        let p = match seg {
            Segment3D::LowFaceI => Point::new([lo, lo, lo]),
            Segment3D::HighFaceI => Point::new([hi, lo, lo]),
            Segment3D::LineLowJLowK => Point::new([lo + 1, lo, lo]),
            Segment3D::PlaneLowJ => Point::new([lo + 1, lo, lo + 1]),
            Segment3D::LineLowJHighK => Point::new([lo + 1, lo, hi]),
            Segment3D::LineHighJLowK => Point::new([lo + 1, hi, lo]),
            Segment3D::PlaneHighJ => Point::new([lo + 1, hi, lo + 1]),
            Segment3D::LineHighJHighK => Point::new([lo + 1, hi, hi]),
            Segment3D::PlaneLowK => Point::new([lo + 1, lo + 1, lo]),
            Segment3D::PlaneHighK => Point::new([lo + 1, lo + 1, hi]),
        };
        Some(p)
    }
}

impl SpaceFillingCurve<3> for Onion3D {
    fn universe(&self) -> Universe<3> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<3>) -> u64 {
        let (t, seg, r) = self.triple_key(p);
        let offset = self.universe.cells_before_layer(t); // paper's K1(t)
        let s = self.universe.layer_side(t);
        if s == 1 {
            // Odd side: the central layer is one cell; the face segments
            // coincide there, so skip the K2 accumulation.
            return offset;
        }
        let mut base = 0u64; // paper's K2(t, g)
        for g in self.order {
            if g == seg {
                break;
            }
            base += g.size(s);
        }
        offset + base + r
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<3> {
        let side = self.universe.side();
        let n = self.universe.cell_count();
        // Locate the layer: cells at positions >= idx fill the sub-cube of
        // the smallest side `s` (parity of `side`) with s³ ≥ n − idx.
        let rem = n - idx;
        let mut s = icbrt(rem) as u32;
        if u64::from(s).pow(3) < rem {
            s += 1;
        }
        if (s % 2) != (side % 2) {
            s += 1;
        }
        debug_assert!(s >= 1 && s <= side);
        let t = (side - s) / 2 + 1;
        let mut local = idx - self.universe.cells_before_layer(t);
        let lo = t - 1;
        if s == 1 {
            return Point::new([lo, lo, lo]);
        }
        let hi = lo + s - 1;
        for seg in self.order {
            let size = seg.size(s);
            if local >= size {
                local -= size;
                continue;
            }
            let p = match seg {
                Segment3D::LowFaceI | Segment3D::HighFaceI => {
                    let (b, c) = unrank_in_square(s, local);
                    let a = if seg == Segment3D::LowFaceI { lo } else { hi };
                    Point::new([a, b + lo, c + lo])
                }
                Segment3D::LineLowJLowK => Point::new([lo + 1 + local as u32, lo, lo]),
                Segment3D::LineLowJHighK => Point::new([lo + 1 + local as u32, lo, hi]),
                Segment3D::LineHighJLowK => Point::new([lo + 1 + local as u32, hi, lo]),
                Segment3D::LineHighJHighK => Point::new([lo + 1 + local as u32, hi, hi]),
                Segment3D::PlaneLowJ | Segment3D::PlaneHighJ => {
                    let (a, c) = unrank_in_square(s - 2, local);
                    let b = if seg == Segment3D::PlaneLowJ { lo } else { hi };
                    Point::new([a + lo + 1, b, c + lo + 1])
                }
                Segment3D::PlaneLowK | Segment3D::PlaneHighK => {
                    let (a, b) = unrank_in_square(s - 2, local);
                    let c = if seg == Segment3D::PlaneLowK { lo } else { hi };
                    Point::new([a + lo + 1, b + lo + 1, c])
                }
            };
            return p;
        }
        unreachable!("index {idx} not inside layer {t}")
    }

    fn name(&self) -> &str {
        "onion"
    }

    fn is_continuous(&self) -> bool {
        false // jumps at segment boundaries; see `jump_targets`
    }

    /// Enumerates the (few) jump targets: for every layer and segment, the
    /// segment's first cell, kept only when its curve predecessor is not a
    /// grid neighbor. At most `10 · side/2` cells.
    fn jump_targets(&self) -> Option<Vec<Point<3>>> {
        let mut out = Vec::new();
        for t in 1..=self.universe.layer_count() {
            let segs: &[Segment3D] = if self.universe.layer_side(t) == 1 {
                &[Segment3D::LowFaceI]
            } else {
                &self.order
            };
            for &seg in segs {
                let Some(first) = self.segment_first_cell(t, seg) else {
                    continue;
                };
                let idx = self.index_unchecked(first);
                if idx == 0 {
                    continue; // the curve start has no predecessor
                }
                let pred = self.point_unchecked(idx - 1);
                if !pred.is_neighbor(&first) {
                    out.push(first);
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::verify;

    #[test]
    fn icbrt_exact_values() {
        assert_eq!(icbrt(0), 0);
        assert_eq!(icbrt(1), 1);
        assert_eq!(icbrt(7), 1);
        assert_eq!(icbrt(8), 2);
        assert_eq!(icbrt(26), 2);
        assert_eq!(icbrt(27), 3);
        assert_eq!(icbrt(u64::MAX), 2_642_245);
        for r in [5u64, 100, 1023, 1 << 20] {
            assert_eq!(icbrt(r * r * r), r);
            assert_eq!(icbrt(r * r * r - 1), r - 1);
            assert_eq!(icbrt(r * r * r + 1), r);
        }
    }

    #[test]
    fn segment_sizes_match_paper_v_vector() {
        // V(1)=V(2)=s², V(3)=V(5)=V(6)=V(8)=s−2, V(4)=V(7)=V(9)=V(10)=(s−2)².
        for s in 2..=10u32 {
            let sizes: Vec<u64> = Segment3D::ALL.iter().map(|g| g.size(s)).collect();
            let s64 = u64::from(s);
            assert_eq!(sizes[0], s64 * s64);
            assert_eq!(sizes[1], s64 * s64);
            for i in [2usize, 4, 5, 7] {
                assert_eq!(sizes[i], s64 - 2);
            }
            for i in [3usize, 6, 8, 9] {
                assert_eq!(sizes[i], (s64 - 2) * (s64 - 2));
            }
            // A layer contains s³ − (s−2)³ cells.
            let total: u64 = sizes.iter().sum();
            assert_eq!(total, s64.pow(3) - (s64 - 2).pow(3));
        }
    }

    #[test]
    fn bijective_for_small_sides_even_and_odd() {
        for side in 1..=9 {
            verify::bijection(&Onion3D::new(side).unwrap())
                .unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn layers_are_visited_in_order() {
        let o = Onion3D::new(8).unwrap();
        let u = o.universe();
        let mut last = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(layer >= last, "layer decreased at {idx}");
            last = layer;
        }
    }

    #[test]
    fn segments_are_visited_in_paper_order_within_layer() {
        let o = Onion3D::new(10).unwrap();
        let u = o.universe();
        for t in 1..=u.layer_count() {
            let mut last_pos = 0usize;
            let start = u.cells_before_layer(t);
            let end = if t == u.layer_count() {
                u.cell_count()
            } else {
                u.cells_before_layer(t + 1)
            };
            for idx in start..end {
                let (tt, seg, _) = o.triple_key(o.point_unchecked(idx));
                assert_eq!(tt, t);
                let pos = Segment3D::ALL.iter().position(|&g| g == seg).unwrap();
                assert!(pos >= last_pos, "segment order violated at index {idx}");
                last_pos = pos;
            }
        }
    }

    #[test]
    fn triple_key_roundtrips_through_k1_k2() {
        // The paper's O(α) = K1(t') + K2(t', g') + r' equals index_unchecked.
        let o = Onion3D::new(6).unwrap();
        let u = o.universe();
        for p in u.iter_cells() {
            let (t, seg, r) = o.triple_key(p);
            let s = u.layer_side(t);
            let k2: u64 = Segment3D::ALL
                .iter()
                .take_while(|&&g| g != seg)
                .map(|g| g.size(s))
                .sum();
            assert_eq!(u.cells_before_layer(t) + k2 + r, o.index_unchecked(p));
        }
    }

    #[test]
    fn jump_targets_are_exact_small_sides() {
        for side in 2..=8 {
            let o = Onion3D::new(side).unwrap();
            verify::jump_targets_exact(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn jump_count_is_bounded_by_segments() {
        let o = Onion3D::new(8).unwrap();
        let jumps = verify::discontinuities(&o);
        // At most 10 segment starts per layer (layer transitions included).
        assert!(jumps <= 10 * 4, "jumps = {jumps}");
        assert_eq!(jumps, o.jump_targets().unwrap().len() as u64);
    }

    #[test]
    fn roundtrip_on_large_side() {
        let o = Onion3D::new(512).unwrap();
        let n = o.universe().cell_count();
        for idx in [0, 1, 12345, n / 3, n / 2, n - 2, n - 1] {
            let p = o.point_unchecked(idx);
            assert_eq!(o.index_unchecked(p), idx, "idx {idx}");
        }
        for p in [
            Point::new([0, 0, 0]),
            Point::new([511, 0, 0]),
            Point::new([200, 300, 400]),
            Point::new([255, 256, 255]),
        ] {
            assert_eq!(o.point_unchecked(o.index_unchecked(p)), p);
        }
    }

    #[test]
    fn start_is_origin() {
        let o = Onion3D::new(8).unwrap();
        assert_eq!(o.start(), Point::new([0, 0, 0]));
    }

    /// §VI-A's "any permutation" remark: a reshuffled segment order remains
    /// a valid layer-sequential bijection with exact jump targets.
    #[test]
    fn permuted_segment_order_is_bijective() {
        let order = [
            Segment3D::PlaneLowK,
            Segment3D::HighFaceI,
            Segment3D::LineHighJHighK,
            Segment3D::PlaneLowJ,
            Segment3D::LowFaceI,
            Segment3D::LineLowJLowK,
            Segment3D::PlaneHighK,
            Segment3D::LineLowJHighK,
            Segment3D::PlaneHighJ,
            Segment3D::LineHighJLowK,
        ];
        for side in [2u32, 4, 6, 7] {
            let o = Onion3D::with_segment_order(side, order).unwrap();
            verify::bijection(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
            verify::jump_targets_exact(&o).unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
        // Layer order is preserved regardless of the permutation.
        let o = Onion3D::with_segment_order(6, order).unwrap();
        let u = o.universe();
        let mut last = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(layer >= last);
            last = layer;
        }
    }

    #[test]
    fn rejects_non_permutation_order() {
        let bad = [Segment3D::LowFaceI; 10];
        assert!(Onion3D::with_segment_order(4, bad).is_err());
    }
}
