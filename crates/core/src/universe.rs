//! The discrete `D`-dimensional universe of the paper: a cube of
//! `side × side × …` cells.

use crate::error::SfcError;
use crate::point::Point;

/// A `D`-dimensional cubic grid of `side^D` cells with coordinates in
/// `0..side` along each dimension.
///
/// The paper's universe `U` has `n` cells of dimensions
/// `d√n × d√n × … × d√n`; here `side = d√n` and `n = side^D`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Universe<const D: usize> {
    side: u32,
}

impl<const D: usize> Universe<D> {
    /// Creates a universe of the given side length.
    ///
    /// # Errors
    /// * [`SfcError::ZeroSide`] if `side == 0`;
    /// * [`SfcError::UniverseTooLarge`] if `side^D >= 2^63`;
    /// * [`SfcError::DimensionUnsupported`] if `D == 0`.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        if D == 0 {
            return Err(SfcError::DimensionUnsupported { dims: 0 });
        }
        if side == 0 {
            return Err(SfcError::ZeroSide);
        }
        let mut n: u64 = 1;
        for _ in 0..D {
            n = n
                .checked_mul(u64::from(side))
                .filter(|&v| v <= (1 << 63))
                .ok_or(SfcError::UniverseTooLarge { side, dims: D })?;
        }
        Ok(Universe { side })
    }

    /// The side length along every dimension.
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// The number of cells `n = side^D`.
    #[inline]
    pub fn cell_count(&self) -> u64 {
        let mut n: u64 = 1;
        for _ in 0..D {
            n *= u64::from(self.side);
        }
        n
    }

    /// Whether the point lies inside the universe.
    #[inline]
    pub fn contains(&self, p: Point<D>) -> bool {
        p.0.iter().all(|&c| c < self.side)
    }

    /// The paper's `∇(α)`: 1-based L∞ distance of `p` to the boundary.
    #[inline]
    pub fn layer_of(&self, p: Point<D>) -> u32 {
        p.boundary_distance(self.side)
    }

    /// Number of onion layers: `ceil(side / 2)`.
    ///
    /// The paper assumes an even side with `m = side / 2` layers; odd sides
    /// add a final single-cell (2D/3D) central layer.
    #[inline]
    pub fn layer_count(&self) -> u32 {
        self.side.div_ceil(2)
    }

    /// Side length of the sub-cube occupied by layers `t..` (1-based `t`):
    /// `side − 2(t−1)`.
    #[inline]
    pub fn layer_side(&self, t: u32) -> u32 {
        debug_assert!(t >= 1 && t <= self.layer_count());
        self.side - 2 * (t - 1)
    }

    /// Number of cells in layers `1..t`, i.e. strictly closer to the boundary
    /// than layer `t`: `side^D − (side − 2(t−1))^D`.
    #[inline]
    pub fn cells_before_layer(&self, t: u32) -> u64 {
        let s = u64::from(self.layer_side(t));
        let mut inner: u64 = 1;
        for _ in 0..D {
            inner *= s;
        }
        self.cell_count() - inner
    }

    /// Iterates over every cell in row-major order (dimension 0 fastest).
    pub fn iter_cells(&self) -> CellIter<D> {
        CellIter {
            side: self.side,
            next: Some(Point::new([0; D])),
        }
    }

    /// Whether the side length is a power of two (required by Hilbert,
    /// Morton, and Gray-code curves).
    #[inline]
    pub fn side_is_power_of_two(&self) -> bool {
        self.side.is_power_of_two()
    }

    /// `log2(side)` for power-of-two sides.
    #[inline]
    pub fn side_bits(&self) -> u32 {
        debug_assert!(self.side_is_power_of_two());
        self.side.trailing_zeros()
    }
}

/// Row-major iterator over all cells of a universe. See
/// [`Universe::iter_cells`].
#[derive(Clone, Debug)]
pub struct CellIter<const D: usize> {
    side: u32,
    next: Option<Point<D>>,
}

impl<const D: usize> Iterator for CellIter<D> {
    type Item = Point<D>;

    fn next(&mut self) -> Option<Point<D>> {
        let current = self.next?;
        let mut succ = current;
        let mut dim = 0;
        loop {
            if dim == D {
                self.next = None;
                break;
            }
            if succ.0[dim] + 1 < self.side {
                succ.0[dim] += 1;
                self.next = Some(succ);
                break;
            }
            succ.0[dim] = 0;
            dim += 1;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_side() {
        assert_eq!(Universe::<2>::new(0), Err(SfcError::ZeroSide));
    }

    #[test]
    fn rejects_oversized_universe() {
        // (2^31)² = 2^62 fits; (2^32 − 1)² ≈ 2^64 does not.
        assert!(Universe::<2>::new(1 << 31).is_ok());
        assert!(matches!(
            Universe::<2>::new(u32::MAX),
            Err(SfcError::UniverseTooLarge { .. })
        ));
        assert!(matches!(
            Universe::<3>::new(u32::MAX),
            Err(SfcError::UniverseTooLarge { .. })
        ));
        assert!(Universe::<3>::new(1 << 21).is_ok()); // 2^63 cells exactly
        assert!(matches!(
            Universe::<3>::new((1 << 21) + 1),
            Err(SfcError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn cell_count_is_side_to_the_d() {
        assert_eq!(Universe::<2>::new(8).unwrap().cell_count(), 64);
        assert_eq!(Universe::<3>::new(4).unwrap().cell_count(), 64);
        assert_eq!(Universe::<4>::new(3).unwrap().cell_count(), 81);
    }

    #[test]
    fn layer_bookkeeping_even_side() {
        let u = Universe::<2>::new(8).unwrap();
        assert_eq!(u.layer_count(), 4);
        assert_eq!(u.layer_side(1), 8);
        assert_eq!(u.layer_side(4), 2);
        assert_eq!(u.cells_before_layer(1), 0);
        assert_eq!(u.cells_before_layer(2), 64 - 36); // outer ring has 28 cells
        assert_eq!(u.cells_before_layer(4), 64 - 4);
    }

    #[test]
    fn layer_bookkeeping_odd_side() {
        let u = Universe::<2>::new(5).unwrap();
        assert_eq!(u.layer_count(), 3);
        assert_eq!(u.layer_side(3), 1); // central single cell
        assert_eq!(u.cells_before_layer(3), 24);
    }

    #[test]
    fn cells_before_layer_matches_paper_k1_in_3d() {
        // Paper §VI-A: K1(t') = 24 m² (t'-1) − 24 m (t'-1)² + 8 (t'-1)³ with
        // side = 2m.
        let side = 10u64;
        let m = side / 2;
        let u = Universe::<3>::new(side as u32).unwrap();
        for t in 1..=u.layer_count() {
            let tp = u64::from(t) - 1;
            let k1 = 24 * m * m * tp + 8 * tp * tp * tp - 24 * m * tp * tp;
            assert_eq!(u.cells_before_layer(t), k1, "layer {t}");
        }
    }

    #[test]
    fn iter_cells_visits_every_cell_once() {
        let u = Universe::<3>::new(3).unwrap();
        let cells: Vec<_> = u.iter_cells().collect();
        assert_eq!(cells.len(), 27);
        let mut dedup = cells.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 27);
        assert!(cells.iter().all(|&p| u.contains(p)));
        // Row-major: dimension 0 varies fastest.
        assert_eq!(cells[0], Point::new([0, 0, 0]));
        assert_eq!(cells[1], Point::new([1, 0, 0]));
        assert_eq!(cells[3], Point::new([0, 1, 0]));
        assert_eq!(cells[9], Point::new([0, 0, 1]));
    }

    #[test]
    fn power_of_two_helpers() {
        let u = Universe::<2>::new(16).unwrap();
        assert!(u.side_is_power_of_two());
        assert_eq!(u.side_bits(), 4);
        assert!(!Universe::<2>::new(12).unwrap().side_is_power_of_two());
    }
}
