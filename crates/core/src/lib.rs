//! # onion-core
//!
//! Core abstractions and the **onion curve** from *Xu, Nguyen, Tirthapura,
//! "Onion Curve: A Space Filling Curve with Near-Optimal Clustering"*
//! (ICDE 2018).
//!
//! A space-filling curve (SFC) is a bijection `π : U → {0, …, n−1}` from a
//! discrete `D`-dimensional cube of `n` cells to a line. The onion curve
//! orders cells by increasing distance from the universe boundary ("layer by
//! layer"), which gives it provably near-optimal *clustering*: rectangular
//! queries decompose into few contiguous index runs, regardless of query
//! side length.
//!
//! This crate provides:
//! * [`Point`], [`Universe`] — the discrete grid model;
//! * [`SpaceFillingCurve`] — the object-safe curve trait, with curve walks
//!   and verification utilities;
//! * [`Onion2D`], [`Onion3D`] — the paper's curves, closed-form in both
//!   directions;
//! * [`OnionNd`] — the paper's proposed higher-dimensional extension.
//!
//! Baseline curves (Hilbert, Z/Morton, Gray-code, …) live in the
//! `sfc-baselines` crate; clustering analysis in `sfc-clustering`.
//!
//! ## Example
//!
//! ```
//! use onion_core::{Onion2D, Point, SpaceFillingCurve};
//!
//! let curve = Onion2D::new(8).unwrap();
//! let idx = curve.index_of(Point::new([3, 4])).unwrap();
//! assert_eq!(curve.point_of(idx).unwrap(), Point::new([3, 4]));
//! // The curve starts at the origin and spirals inward layer by layer.
//! assert_eq!(curve.start(), Point::new([0, 0]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod point;
mod universe;

pub mod curve;
pub mod fastmath;
pub mod onion2d;
pub mod onion3d;
pub mod onion_nd;

pub use curve::{edges, CurveStepper, CurveWalk, SpaceFillingCurve};
pub use error::SfcError;
pub use fastmath::{icbrt_fast, iroot_fast, isqrt_fast};
pub use onion2d::Onion2D;
pub use onion3d::{Onion3D, Segment3D};
pub use onion_nd::OnionNd;
pub use point::{NeighborIter, Point};
pub use universe::{CellIter, Universe};
