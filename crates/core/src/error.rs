//! Error type shared by all curve constructors and checked accessors.

use std::fmt;

/// Errors produced by curve construction and checked index/point conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SfcError {
    /// The universe side length was zero.
    ZeroSide,
    /// `side^D` does not fit in the supported index range (2^63).
    UniverseTooLarge {
        /// Requested side length.
        side: u32,
        /// Dimensionality of the universe.
        dims: usize,
    },
    /// The curve requires a power-of-two side length (e.g. Hilbert, Morton).
    SideNotPowerOfTwo {
        /// Offending side length.
        side: u32,
    },
    /// A point lies outside the universe.
    PointOutOfBounds {
        /// Offending coordinates (formatted).
        point: String,
        /// Universe side length.
        side: u32,
    },
    /// A one-dimensional index is `>= side^D`.
    IndexOutOfBounds {
        /// Offending index.
        index: u64,
        /// Number of cells in the universe.
        cells: u64,
    },
    /// The requested dimensionality is not supported by this component.
    DimensionUnsupported {
        /// Offending dimensionality.
        dims: usize,
    },
    /// A durable-storage operation failed (WAL append, snapshot I/O,
    /// corrupt persisted state). Carries the formatted cause: the error
    /// type stays `Clone + Eq` and the workspace stays free of non-std
    /// dependencies, at the price of not exposing the `io::ErrorKind`.
    Storage {
        /// What the storage layer was doing, with the underlying cause.
        context: String,
    },
    /// A server refused the request before processing it (admission cap
    /// hit, draining for shutdown). The request was **not** executed, so
    /// retrying after backoff is safe for every verb — including writes.
    Unavailable {
        /// Why the server turned the request away.
        context: String,
    },
    /// A client-side deadline elapsed before the response arrived. The
    /// request may still complete on the server; only idempotent
    /// requests should be reissued.
    DeadlineExceeded {
        /// What the client was waiting for, and for how long.
        context: String,
    },
    /// The transport failed at a clean frame boundary (connection
    /// refused/reset, peer closed between frames). No partial response
    /// was in flight.
    ConnectionLost {
        /// What the transport was doing when the connection died.
        context: String,
    },
    /// The connection died **mid-frame**: bytes past a frame boundary had
    /// accumulated when the peer vanished, so a response (or epoch) was
    /// partially delivered. Distinct from [`SfcError::ConnectionLost`] so
    /// retry logic can tell a torn stream from a clean close.
    TornFrame {
        /// How much of the frame had arrived.
        context: String,
    },
    /// A non-idempotent request (a write) failed after it was sent: the
    /// transport died between send and response, so the server may or
    /// may not have executed it. Never auto-retried — the caller must
    /// decide (re-read, use a receipt, or accept at-most-once).
    AmbiguousWrite {
        /// The write verb and the transport failure that orphaned it.
        context: String,
    },
    /// An epoch catch-up asked for history the transactor's checkpoint
    /// has already truncated. Terminal for resume-from-epoch: the
    /// subscriber must bootstrap from a snapshot instead of the WAL.
    EpochTruncated {
        /// The epoch the subscriber wanted to resume after (exclusive).
        requested: u64,
        /// The oldest epoch the WAL can still replay *from* (exclusive):
        /// resuming is only possible for `requested >= horizon`.
        horizon: u64,
    },
}

impl SfcError {
    /// Stable numeric code identifying the variant, for wire protocols and
    /// logs. Codes are append-only: a variant keeps its code forever, and
    /// new variants take the next free number — so a client built against
    /// an older release still classifies errors from a newer server.
    pub fn code(&self) -> u16 {
        match self {
            SfcError::ZeroSide => 1,
            SfcError::UniverseTooLarge { .. } => 2,
            SfcError::SideNotPowerOfTwo { .. } => 3,
            SfcError::PointOutOfBounds { .. } => 4,
            SfcError::IndexOutOfBounds { .. } => 5,
            SfcError::DimensionUnsupported { .. } => 6,
            SfcError::Storage { .. } => 7,
            SfcError::Unavailable { .. } => 8,
            SfcError::DeadlineExceeded { .. } => 9,
            SfcError::ConnectionLost { .. } => 10,
            SfcError::TornFrame { .. } => 11,
            SfcError::AmbiguousWrite { .. } => 12,
            SfcError::EpochTruncated { .. } => 13,
        }
    }

    /// Whether a request that failed with this error is safe to reissue
    /// verbatim, *for any verb*: the failure guarantees the server never
    /// executed the request. Idempotent requests may additionally retry
    /// on [`ConnectionLost`](Self::ConnectionLost) /
    /// [`TornFrame`](Self::TornFrame) (the request may have executed,
    /// but re-executing is harmless); writes must not — that ambiguity
    /// is exactly what [`AmbiguousWrite`](Self::AmbiguousWrite) names.
    pub fn is_pre_execution(&self) -> bool {
        matches!(self, SfcError::Unavailable { .. })
    }

    /// Whether this error is a transport-level failure (the connection
    /// died), as opposed to a typed answer the server produced.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            SfcError::ConnectionLost { .. } | SfcError::TornFrame { .. }
        )
    }
}

impl fmt::Display for SfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfcError::ZeroSide => write!(f, "universe side length must be at least 1"),
            SfcError::UniverseTooLarge { side, dims } => {
                write!(f, "universe {side}^{dims} exceeds the supported 2^63 cells")
            }
            SfcError::SideNotPowerOfTwo { side } => {
                write!(f, "curve requires a power-of-two side length, got {side}")
            }
            SfcError::PointOutOfBounds { point, side } => {
                write!(f, "point {point} outside universe of side {side}")
            }
            SfcError::IndexOutOfBounds { index, cells } => {
                write!(f, "index {index} outside universe of {cells} cells")
            }
            SfcError::DimensionUnsupported { dims } => {
                write!(f, "dimensionality {dims} not supported by this component")
            }
            SfcError::Storage { context } => write!(f, "storage failure: {context}"),
            SfcError::Unavailable { context } => write!(f, "server unavailable: {context}"),
            SfcError::DeadlineExceeded { context } => write!(f, "deadline exceeded: {context}"),
            SfcError::ConnectionLost { context } => write!(f, "connection lost: {context}"),
            SfcError::TornFrame { context } => write!(f, "connection torn mid-frame: {context}"),
            SfcError::AmbiguousWrite { context } => {
                write!(f, "write outcome unknown: {context}")
            }
            SfcError::EpochTruncated { requested, horizon } => write!(
                f,
                "epoch {requested} is behind the checkpoint horizon {horizon}: \
                 the WAL no longer holds that history, bootstrap from a snapshot"
            ),
        }
    }
}

impl std::error::Error for SfcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = SfcError::UniverseTooLarge { side: 7, dims: 21 };
        assert!(e.to_string().contains("7^21"));
        let e = SfcError::SideNotPowerOfTwo { side: 12 };
        assert!(e.to_string().contains("12"));
        let e = SfcError::IndexOutOfBounds {
            index: 99,
            cells: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            SfcError::ZeroSide,
            SfcError::UniverseTooLarge { side: 7, dims: 21 },
            SfcError::SideNotPowerOfTwo { side: 12 },
            SfcError::PointOutOfBounds {
                point: "(1, 2)".into(),
                side: 4,
            },
            SfcError::IndexOutOfBounds {
                index: 99,
                cells: 64,
            },
            SfcError::DimensionUnsupported { dims: 5 },
            SfcError::Storage {
                context: "io".into(),
            },
            SfcError::Unavailable {
                context: "busy".into(),
            },
            SfcError::DeadlineExceeded {
                context: "recv".into(),
            },
            SfcError::ConnectionLost {
                context: "reset".into(),
            },
            SfcError::TornFrame {
                context: "3 bytes buffered".into(),
            },
            SfcError::AmbiguousWrite {
                context: "Insert".into(),
            },
            SfcError::EpochTruncated {
                requested: 3,
                horizon: 9,
            },
        ];
        let codes: Vec<u16> = all.iter().map(SfcError::code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
    }

    #[test]
    fn retry_classification_is_conservative() {
        let busy = SfcError::Unavailable {
            context: "cap".into(),
        };
        assert!(busy.is_pre_execution());
        assert!(!busy.is_transport());
        let lost = SfcError::ConnectionLost {
            context: "reset".into(),
        };
        let torn = SfcError::TornFrame {
            context: "5 bytes".into(),
        };
        assert!(lost.is_transport() && torn.is_transport());
        assert!(!lost.is_pre_execution() && !torn.is_pre_execution());
        // A tripped deadline is neither: the request may be executing.
        let late = SfcError::DeadlineExceeded {
            context: "recv".into(),
        };
        assert!(!late.is_pre_execution() && !late.is_transport());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SfcError::ZeroSide);
    }
}
