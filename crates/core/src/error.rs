//! Error type shared by all curve constructors and checked accessors.

use std::fmt;

/// Errors produced by curve construction and checked index/point conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SfcError {
    /// The universe side length was zero.
    ZeroSide,
    /// `side^D` does not fit in the supported index range (2^63).
    UniverseTooLarge {
        /// Requested side length.
        side: u32,
        /// Dimensionality of the universe.
        dims: usize,
    },
    /// The curve requires a power-of-two side length (e.g. Hilbert, Morton).
    SideNotPowerOfTwo {
        /// Offending side length.
        side: u32,
    },
    /// A point lies outside the universe.
    PointOutOfBounds {
        /// Offending coordinates (formatted).
        point: String,
        /// Universe side length.
        side: u32,
    },
    /// A one-dimensional index is `>= side^D`.
    IndexOutOfBounds {
        /// Offending index.
        index: u64,
        /// Number of cells in the universe.
        cells: u64,
    },
    /// The requested dimensionality is not supported by this component.
    DimensionUnsupported {
        /// Offending dimensionality.
        dims: usize,
    },
    /// A durable-storage operation failed (WAL append, snapshot I/O,
    /// corrupt persisted state). Carries the formatted cause: the error
    /// type stays `Clone + Eq` and the workspace stays free of non-std
    /// dependencies, at the price of not exposing the `io::ErrorKind`.
    Storage {
        /// What the storage layer was doing, with the underlying cause.
        context: String,
    },
}

impl SfcError {
    /// Stable numeric code identifying the variant, for wire protocols and
    /// logs. Codes are append-only: a variant keeps its code forever, and
    /// new variants take the next free number — so a client built against
    /// an older release still classifies errors from a newer server.
    pub fn code(&self) -> u16 {
        match self {
            SfcError::ZeroSide => 1,
            SfcError::UniverseTooLarge { .. } => 2,
            SfcError::SideNotPowerOfTwo { .. } => 3,
            SfcError::PointOutOfBounds { .. } => 4,
            SfcError::IndexOutOfBounds { .. } => 5,
            SfcError::DimensionUnsupported { .. } => 6,
            SfcError::Storage { .. } => 7,
        }
    }
}

impl fmt::Display for SfcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfcError::ZeroSide => write!(f, "universe side length must be at least 1"),
            SfcError::UniverseTooLarge { side, dims } => {
                write!(f, "universe {side}^{dims} exceeds the supported 2^63 cells")
            }
            SfcError::SideNotPowerOfTwo { side } => {
                write!(f, "curve requires a power-of-two side length, got {side}")
            }
            SfcError::PointOutOfBounds { point, side } => {
                write!(f, "point {point} outside universe of side {side}")
            }
            SfcError::IndexOutOfBounds { index, cells } => {
                write!(f, "index {index} outside universe of {cells} cells")
            }
            SfcError::DimensionUnsupported { dims } => {
                write!(f, "dimensionality {dims} not supported by this component")
            }
            SfcError::Storage { context } => write!(f, "storage failure: {context}"),
        }
    }
}

impl std::error::Error for SfcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = SfcError::UniverseTooLarge { side: 7, dims: 21 };
        assert!(e.to_string().contains("7^21"));
        let e = SfcError::SideNotPowerOfTwo { side: 12 };
        assert!(e.to_string().contains("12"));
        let e = SfcError::IndexOutOfBounds {
            index: 99,
            cells: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            SfcError::ZeroSide,
            SfcError::UniverseTooLarge { side: 7, dims: 21 },
            SfcError::SideNotPowerOfTwo { side: 12 },
            SfcError::PointOutOfBounds {
                point: "(1, 2)".into(),
                side: 4,
            },
            SfcError::IndexOutOfBounds {
                index: 99,
                cells: 64,
            },
            SfcError::DimensionUnsupported { dims: 5 },
            SfcError::Storage {
                context: "io".into(),
            },
        ];
        let codes: Vec<u16> = all.iter().map(SfcError::code).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SfcError::ZeroSide);
    }
}
