//! The space-filling-curve abstraction.

use crate::error::SfcError;
use crate::point::Point;
use crate::universe::Universe;

/// A space-filling curve: a bijection `π : U → {0, 1, …, n−1}` over a
/// `D`-dimensional universe `U` of `n` cells.
///
/// Implementors provide the unchecked conversions; the checked wrappers and
/// start/end accessors are derived. The trait is object safe, so experiment
/// code can hold heterogeneous `Box<dyn SpaceFillingCurve<D>>` collections.
pub trait SpaceFillingCurve<const D: usize> {
    /// The universe this curve fills.
    fn universe(&self) -> Universe<D>;

    /// Maps a cell to its curve index. `p` must lie inside the universe.
    fn index_unchecked(&self, p: Point<D>) -> u64;

    /// Maps a curve index to its cell. `idx` must be `< n`.
    fn point_unchecked(&self, idx: u64) -> Point<D>;

    /// A short human-readable name, e.g. `"onion"`, `"hilbert"`.
    fn name(&self) -> &str;

    /// Whether consecutive curve positions are always grid neighbors
    /// (the paper's Definition 1). Continuity enables the fast
    /// boundary-scan clustering algorithm.
    fn is_continuous(&self) -> bool {
        false
    }

    /// Cells, other than the curve start, whose predecessor on the curve is
    /// *not* a grid neighbor ("jump targets").
    ///
    /// * Continuous curves return `Some(vec![])`.
    /// * Curves with a small, known set of discontinuities (e.g. the 3D
    ///   onion curve's segment boundaries) enumerate them, which still
    ///   enables boundary-scan clustering.
    /// * Curves with pervasive jumps return `None`.
    fn jump_targets(&self) -> Option<Vec<Point<D>>> {
        if self.is_continuous() {
            Some(Vec::new())
        } else {
            None
        }
    }

    /// Checked version of [`Self::index_unchecked`].
    fn index_of(&self, p: Point<D>) -> Result<u64, SfcError> {
        let u = self.universe();
        if !u.contains(p) {
            return Err(SfcError::PointOutOfBounds {
                point: p.to_string(),
                side: u.side(),
            });
        }
        Ok(self.index_unchecked(p))
    }

    /// Checked version of [`Self::point_unchecked`].
    fn point_of(&self, idx: u64) -> Result<Point<D>, SfcError> {
        let cells = self.universe().cell_count();
        if idx >= cells {
            return Err(SfcError::IndexOutOfBounds { index: idx, cells });
        }
        Ok(self.point_unchecked(idx))
    }

    /// The first cell of the curve, `π⁻¹(0)` (the paper's `π_s`).
    fn start(&self) -> Point<D> {
        self.point_unchecked(0)
    }

    /// The final cell of the curve, `π⁻¹(n−1)` (the paper's `π_e`).
    fn end(&self) -> Point<D> {
        self.point_unchecked(self.universe().cell_count() - 1)
    }

    /// Batch forward mapping: appends `π(p)` for every point of `points` to
    /// `out`, in order.
    ///
    /// The default is the scalar loop. Curves override it to hoist per-call
    /// setup out of the loop and — crucially for `Box<dyn
    /// SpaceFillingCurve>` callers — replace one virtual dispatch *per cell*
    /// with one per *batch*, letting the mapping kernel inline.
    fn fill_indices(&self, points: &[Point<D>], out: &mut Vec<u64>) {
        out.reserve(points.len());
        for &p in points {
            out.push(self.index_unchecked(p));
        }
    }

    /// Batch inverse mapping: appends `π⁻¹(idx)` for every index of
    /// `indices` to `out`, in order. See [`Self::fill_indices`].
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<D>>) {
        out.reserve(indices.len());
        for &idx in indices {
            out.push(self.point_unchecked(idx));
        }
    }

    /// Batch walk: appends the `count` consecutive cells `π⁻¹(start_idx),
    /// …, π⁻¹(start_idx + count − 1)` to `out`, in curve order.
    ///
    /// The default unranks the first cell and advances with
    /// [`Self::successor_unchecked`]. Curves whose order decomposes into
    /// straight runs (the onion family: ring edges, layer segments)
    /// override it to emit whole runs as counted loops — no per-cell
    /// classification at all — which is what makes the buffered
    /// [`CurveWalk`] fast.
    ///
    /// Callers must guarantee `start_idx + count ≤ n`.
    fn fill_walk(&self, start_idx: u64, count: usize, out: &mut Vec<Point<D>>) {
        if count == 0 {
            return;
        }
        debug_assert!(start_idx + count as u64 <= self.universe().cell_count());
        out.reserve(count);
        let mut p = self.point_unchecked(start_idx);
        out.push(p);
        for idx in start_idx..start_idx + (count as u64 - 1) {
            p = self.successor_unchecked(p, idx);
            out.push(p);
        }
    }

    /// The cell following `p` on the curve: `π⁻¹(idx + 1)`, where
    /// `idx = π(p)` is supplied by the caller.
    ///
    /// The default re-unranks. Curves with geometric structure (the onion
    /// family) override it with an `O(1)` walk — adds and compares only, no
    /// integer square/cube roots — which is what makes [`CurveStepper`]
    /// fast.
    ///
    /// Callers must guarantee `idx == π(p)` and `idx + 1 < n`.
    fn successor_unchecked(&self, p: Point<D>, idx: u64) -> Point<D> {
        debug_assert_eq!(self.index_unchecked(p), idx, "successor: idx must be π(p)");
        self.point_unchecked(idx + 1)
    }

    /// The cell preceding `p` on the curve: `π⁻¹(idx − 1)`, where
    /// `idx = π(p)` is supplied by the caller. See
    /// [`Self::successor_unchecked`].
    ///
    /// Callers must guarantee `idx == π(p)` and `idx ≥ 1`.
    fn predecessor_unchecked(&self, p: Point<D>, idx: u64) -> Point<D> {
        debug_assert_eq!(
            self.index_unchecked(p),
            idx,
            "predecessor: idx must be π(p)"
        );
        self.point_unchecked(idx - 1)
    }
}

/// Forwards every method (including the batch and stepping overrides — a
/// forwarding impl that fell back to the defaults would silently lose a
/// curve's specialized kernels).
macro_rules! forward_sfc_impl {
    () => {
        fn universe(&self) -> Universe<D> {
            (**self).universe()
        }
        fn index_unchecked(&self, p: Point<D>) -> u64 {
            (**self).index_unchecked(p)
        }
        fn point_unchecked(&self, idx: u64) -> Point<D> {
            (**self).point_unchecked(idx)
        }
        fn name(&self) -> &str {
            (**self).name()
        }
        fn is_continuous(&self) -> bool {
            (**self).is_continuous()
        }
        fn jump_targets(&self) -> Option<Vec<Point<D>>> {
            (**self).jump_targets()
        }
        fn fill_indices(&self, points: &[Point<D>], out: &mut Vec<u64>) {
            (**self).fill_indices(points, out)
        }
        fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<D>>) {
            (**self).fill_points(indices, out)
        }
        fn fill_walk(&self, start_idx: u64, count: usize, out: &mut Vec<Point<D>>) {
            (**self).fill_walk(start_idx, count, out)
        }
        fn successor_unchecked(&self, p: Point<D>, idx: u64) -> Point<D> {
            (**self).successor_unchecked(p, idx)
        }
        fn predecessor_unchecked(&self, p: Point<D>, idx: u64) -> Point<D> {
            (**self).predecessor_unchecked(p, idx)
        }
    };
}

impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> SpaceFillingCurve<D> for &C {
    forward_sfc_impl!();
}

impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> SpaceFillingCurve<D> for Box<C> {
    forward_sfc_impl!();
}

/// Incremental cursor over curve positions: holds the current `(cell,
/// index)` pair and advances via [`SpaceFillingCurve::successor_unchecked`],
/// so stepping a curve with a geometric successor (the onion family) costs
/// `O(1)` adds/compares instead of a full unrank per position.
///
/// This is the sanctioned hot-path primitive for anything that visits curve
/// positions in order — [`CurveWalk`], [`edges`], and the clustering crate's
/// exact-average walk are all built on it.
#[derive(Clone, Debug)]
pub struct CurveStepper<'a, C: ?Sized, const D: usize> {
    curve: &'a C,
    point: Point<D>,
    index: u64,
    cells: u64,
}

impl<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> CurveStepper<'a, C, D> {
    /// Positions the cursor at the curve start, `π⁻¹(0)`.
    pub fn new(curve: &'a C) -> Self {
        Self::starting_at(curve, 0)
    }

    /// Positions the cursor at an arbitrary index (one unrank, then `O(1)`
    /// steps).
    ///
    /// # Panics
    /// If `idx` is outside the curve.
    pub fn starting_at(curve: &'a C, idx: u64) -> Self {
        let cells = curve.universe().cell_count();
        assert!(
            idx < cells,
            "stepper start {idx} outside curve of {cells} cells"
        );
        CurveStepper {
            point: curve.point_unchecked(idx),
            index: idx,
            curve,
            cells,
        }
    }

    /// The current cell.
    #[inline]
    pub fn point(&self) -> Point<D> {
        self.point
    }

    /// The current curve index.
    #[inline]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Whether the cursor sits on the final curve position.
    #[inline]
    pub fn at_end(&self) -> bool {
        self.index + 1 >= self.cells
    }

    /// Advances one position. Returns `false` (and stays put) at the curve
    /// end.
    #[inline]
    pub fn advance(&mut self) -> bool {
        if self.at_end() {
            return false;
        }
        self.point = self.curve.successor_unchecked(self.point, self.index);
        self.index += 1;
        true
    }
}

/// Cells fetched per [`SpaceFillingCurve::fill_walk`] refill of a
/// [`CurveWalk`] buffer: large enough to amortize the per-chunk call (one
/// virtual dispatch per chunk for `dyn` callers) and let run-emitting
/// walks run whole edges, small enough that the buffer stays in L1.
const WALK_CHUNK: usize = 1024;

/// Iterator over the cells of a curve in curve order (`π⁻¹(0), π⁻¹(1), …`).
///
/// Pulls cells in `WALK_CHUNK`-sized batches through
/// [`SpaceFillingCurve::fill_walk`], so full walks of onion curves cost a
/// counted run-emission loop per ring edge or segment — not even a
/// classification per cell — and other curves still amortize dispatch to
/// one call per chunk.
#[derive(Clone, Debug)]
pub struct CurveWalk<'a, C: ?Sized, const D: usize> {
    curve: &'a C,
    cells: u64,
    /// Next curve index to fetch into the buffer.
    next_idx: u64,
    buf: Vec<Point<D>>,
    /// Read cursor into `buf`.
    pos: usize,
}

impl<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> CurveWalk<'a, C, D> {
    /// Creates a walk over the whole curve.
    pub fn new(curve: &'a C) -> Self {
        CurveWalk {
            cells: curve.universe().cell_count(),
            curve,
            next_idx: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> Iterator for CurveWalk<'a, C, D> {
    type Item = Point<D>;

    #[inline]
    fn next(&mut self) -> Option<Point<D>> {
        if self.pos == self.buf.len() {
            if self.next_idx >= self.cells {
                return None;
            }
            let take = (self.cells - self.next_idx).min(WALK_CHUNK as u64) as usize;
            self.buf.clear();
            self.curve.fill_walk(self.next_idx, take, &mut self.buf);
            debug_assert_eq!(
                self.buf.len(),
                take,
                "fill_walk must append exactly `count` cells"
            );
            self.next_idx += take as u64;
            self.pos = 0;
        }
        let p = self.buf[self.pos];
        self.pos += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.cells - self.next_idx) as usize + (self.buf.len() - self.pos);
        (rem, Some(rem))
    }
}

impl<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> ExactSizeIterator
    for CurveWalk<'a, C, D>
{
}

/// Iterates the directed edges `E(π) = {(π⁻¹(i), π⁻¹(i+1))}` of a curve
/// (§II of the paper). Each step performs one inverse-mapping call.
pub fn edges<const D: usize, C: SpaceFillingCurve<D> + ?Sized>(
    curve: &C,
) -> impl Iterator<Item = (Point<D>, Point<D>)> + '_ {
    let mut walk = CurveWalk::new(curve);
    let mut prev = walk.next();
    std::iter::from_fn(move || {
        let a = prev?;
        let b = walk.next()?;
        prev = Some(b);
        Some((a, b))
    })
}

/// Verification helpers used by tests throughout the workspace.
pub mod verify {
    use super::*;

    /// Exhaustively checks that the curve is a bijection: every cell maps to
    /// a distinct in-range index and `point ∘ index = id`.
    ///
    /// Intended for tests on small universes (walks all `n` cells).
    pub fn bijection<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> Result<(), String> {
        let u = curve.universe();
        let n = u.cell_count();
        let mut seen = vec![false; n as usize];
        for p in u.iter_cells() {
            let idx = curve.index_unchecked(p);
            if idx >= n {
                return Err(format!(
                    "{}: index {idx} of {p} out of range {n}",
                    curve.name()
                ));
            }
            if seen[idx as usize] {
                return Err(format!(
                    "{}: index {idx} assigned twice (at {p})",
                    curve.name()
                ));
            }
            seen[idx as usize] = true;
            let back = curve.point_unchecked(idx);
            if back != p {
                return Err(format!(
                    "{}: roundtrip failed: {p} -> {idx} -> {back}",
                    curve.name()
                ));
            }
        }
        Ok(())
    }

    /// Counts positions `i` where `π⁻¹(i)` and `π⁻¹(i+1)` are not grid
    /// neighbors. Zero for continuous curves.
    pub fn discontinuities<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> u64 {
        edges(curve).filter(|(a, b)| !a.is_neighbor(b)).count() as u64
    }

    /// Checks that [`SpaceFillingCurve::jump_targets`] is sound and complete:
    /// it contains exactly the non-start cells whose predecessor is not a
    /// neighbor.
    pub fn jump_targets_exact<const D: usize, C: SpaceFillingCurve<D>>(
        curve: &C,
    ) -> Result<(), String> {
        let Some(mut declared) = curve.jump_targets() else {
            return Ok(()); // nothing declared, nothing to verify
        };
        declared.sort();
        let mut actual: Vec<Point<D>> = edges(curve)
            .filter(|(a, b)| !a.is_neighbor(b))
            .map(|(_, b)| b)
            .collect();
        actual.sort();
        if declared == actual {
            Ok(())
        } else {
            Err(format!(
                "{}: declared {} jump targets, observed {}",
                curve.name(),
                declared.len(),
                actual.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row-major toy curve for exercising the trait's provided methods.
    struct Toy {
        u: Universe<2>,
    }

    impl SpaceFillingCurve<2> for Toy {
        fn universe(&self) -> Universe<2> {
            self.u
        }
        fn index_unchecked(&self, p: Point<2>) -> u64 {
            u64::from(p.0[1]) * u64::from(self.u.side()) + u64::from(p.0[0])
        }
        fn point_unchecked(&self, idx: u64) -> Point<2> {
            let s = u64::from(self.u.side());
            Point::new([(idx % s) as u32, (idx / s) as u32])
        }
        fn name(&self) -> &str {
            "toy-row-major"
        }
    }

    fn toy() -> Toy {
        Toy {
            u: Universe::new(4).unwrap(),
        }
    }

    #[test]
    fn checked_accessors_reject_out_of_range() {
        let c = toy();
        assert!(matches!(
            c.index_of(Point::new([4, 0])),
            Err(SfcError::PointOutOfBounds { .. })
        ));
        assert!(matches!(
            c.point_of(16),
            Err(SfcError::IndexOutOfBounds { .. })
        ));
        assert_eq!(c.index_of(Point::new([3, 3])).unwrap(), 15);
    }

    #[test]
    fn start_and_end() {
        let c = toy();
        assert_eq!(c.start(), Point::new([0, 0]));
        assert_eq!(c.end(), Point::new([3, 3]));
    }

    #[test]
    fn walk_visits_in_curve_order() {
        let c = toy();
        let walk: Vec<_> = CurveWalk::new(&c).collect();
        assert_eq!(walk.len(), 16);
        assert_eq!(walk[0], Point::new([0, 0]));
        assert_eq!(walk[5], Point::new([1, 1]));
    }

    #[test]
    fn edges_has_n_minus_one_entries() {
        let c = toy();
        assert_eq!(edges(&c).count(), 15);
    }

    #[test]
    fn row_major_discontinuities_at_row_ends() {
        let c = toy();
        // Row-major on a 4×4 grid jumps at the end of each of the first 3 rows.
        assert_eq!(verify::discontinuities(&c), 3);
    }

    #[test]
    fn bijection_check_passes_for_toy() {
        verify::bijection(&toy()).unwrap();
    }

    #[test]
    fn trait_is_object_safe() {
        let c: Box<dyn SpaceFillingCurve<2>> = Box::new(toy());
        assert_eq!(c.index_unchecked(Point::new([1, 0])), 1);
        assert_eq!(c.name(), "toy-row-major");
        // Blanket impls let boxed curves be used generically too.
        verify::bijection(&c).unwrap();
    }

    #[test]
    fn batch_defaults_match_scalar() {
        let c = toy();
        let points: Vec<Point<2>> = c.universe().iter_cells().collect();
        let mut indices = Vec::new();
        c.fill_indices(&points, &mut indices);
        let expect: Vec<u64> = points.iter().map(|&p| c.index_unchecked(p)).collect();
        assert_eq!(indices, expect);
        let mut back = Vec::new();
        c.fill_points(&indices, &mut back);
        assert_eq!(back, points);
        // Appending semantics: a second fill extends rather than clears.
        c.fill_indices(&points[..2], &mut indices);
        assert_eq!(indices.len(), points.len() + 2);
    }

    #[test]
    fn stepper_visits_every_position() {
        let c = toy();
        let mut stepper = CurveStepper::new(&c);
        for idx in 0..16u64 {
            assert_eq!(stepper.index(), idx);
            assert_eq!(stepper.point(), c.point_unchecked(idx));
            assert_eq!(stepper.advance(), idx + 1 < 16);
        }
        assert!(stepper.at_end());
        assert_eq!(stepper.index(), 15);
    }

    #[test]
    fn stepper_starting_mid_curve() {
        let c = toy();
        let mut stepper = CurveStepper::starting_at(&c, 10);
        assert_eq!(stepper.point(), c.point_unchecked(10));
        assert!(stepper.advance());
        assert_eq!(stepper.point(), c.point_unchecked(11));
    }

    #[test]
    fn default_successor_predecessor_roundtrip() {
        let c = toy();
        for idx in 1..15u64 {
            let p = c.point_unchecked(idx);
            assert_eq!(c.successor_unchecked(p, idx), c.point_unchecked(idx + 1));
            assert_eq!(c.predecessor_unchecked(p, idx), c.point_unchecked(idx - 1));
        }
    }

    #[test]
    fn walk_size_hint_is_exact() {
        let c = toy();
        let mut walk = CurveWalk::new(&c);
        assert_eq!(walk.len(), 16);
        walk.next();
        assert_eq!(walk.len(), 15);
        assert_eq!(walk.by_ref().count(), 15);
    }
}
