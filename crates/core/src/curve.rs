//! The space-filling-curve abstraction.

use crate::error::SfcError;
use crate::point::Point;
use crate::universe::Universe;

/// A space-filling curve: a bijection `π : U → {0, 1, …, n−1}` over a
/// `D`-dimensional universe `U` of `n` cells.
///
/// Implementors provide the unchecked conversions; the checked wrappers and
/// start/end accessors are derived. The trait is object safe, so experiment
/// code can hold heterogeneous `Box<dyn SpaceFillingCurve<D>>` collections.
pub trait SpaceFillingCurve<const D: usize> {
    /// The universe this curve fills.
    fn universe(&self) -> Universe<D>;

    /// Maps a cell to its curve index. `p` must lie inside the universe.
    fn index_unchecked(&self, p: Point<D>) -> u64;

    /// Maps a curve index to its cell. `idx` must be `< n`.
    fn point_unchecked(&self, idx: u64) -> Point<D>;

    /// A short human-readable name, e.g. `"onion"`, `"hilbert"`.
    fn name(&self) -> &str;

    /// Whether consecutive curve positions are always grid neighbors
    /// (the paper's Definition 1). Continuity enables the fast
    /// boundary-scan clustering algorithm.
    fn is_continuous(&self) -> bool {
        false
    }

    /// Cells, other than the curve start, whose predecessor on the curve is
    /// *not* a grid neighbor ("jump targets").
    ///
    /// * Continuous curves return `Some(vec![])`.
    /// * Curves with a small, known set of discontinuities (e.g. the 3D
    ///   onion curve's segment boundaries) enumerate them, which still
    ///   enables boundary-scan clustering.
    /// * Curves with pervasive jumps return `None`.
    fn jump_targets(&self) -> Option<Vec<Point<D>>> {
        if self.is_continuous() {
            Some(Vec::new())
        } else {
            None
        }
    }

    /// Checked version of [`Self::index_unchecked`].
    fn index_of(&self, p: Point<D>) -> Result<u64, SfcError> {
        let u = self.universe();
        if !u.contains(p) {
            return Err(SfcError::PointOutOfBounds {
                point: p.to_string(),
                side: u.side(),
            });
        }
        Ok(self.index_unchecked(p))
    }

    /// Checked version of [`Self::point_unchecked`].
    fn point_of(&self, idx: u64) -> Result<Point<D>, SfcError> {
        let cells = self.universe().cell_count();
        if idx >= cells {
            return Err(SfcError::IndexOutOfBounds { index: idx, cells });
        }
        Ok(self.point_unchecked(idx))
    }

    /// The first cell of the curve, `π⁻¹(0)` (the paper's `π_s`).
    fn start(&self) -> Point<D> {
        self.point_unchecked(0)
    }

    /// The final cell of the curve, `π⁻¹(n−1)` (the paper's `π_e`).
    fn end(&self) -> Point<D> {
        self.point_unchecked(self.universe().cell_count() - 1)
    }
}

impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> SpaceFillingCurve<D> for &C {
    fn universe(&self) -> Universe<D> {
        (**self).universe()
    }
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        (**self).index_unchecked(p)
    }
    fn point_unchecked(&self, idx: u64) -> Point<D> {
        (**self).point_unchecked(idx)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn is_continuous(&self) -> bool {
        (**self).is_continuous()
    }
    fn jump_targets(&self) -> Option<Vec<Point<D>>> {
        (**self).jump_targets()
    }
}

impl<const D: usize, C: SpaceFillingCurve<D> + ?Sized> SpaceFillingCurve<D> for Box<C> {
    fn universe(&self) -> Universe<D> {
        (**self).universe()
    }
    fn index_unchecked(&self, p: Point<D>) -> u64 {
        (**self).index_unchecked(p)
    }
    fn point_unchecked(&self, idx: u64) -> Point<D> {
        (**self).point_unchecked(idx)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn is_continuous(&self) -> bool {
        (**self).is_continuous()
    }
    fn jump_targets(&self) -> Option<Vec<Point<D>>> {
        (**self).jump_targets()
    }
}

/// Iterator over the cells of a curve in curve order (`π⁻¹(0), π⁻¹(1), …`).
#[derive(Clone, Debug)]
pub struct CurveWalk<'a, C: ?Sized, const D: usize> {
    curve: &'a C,
    next: u64,
    cells: u64,
}

impl<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> CurveWalk<'a, C, D> {
    /// Creates a walk over the whole curve.
    pub fn new(curve: &'a C) -> Self {
        let cells = curve.universe().cell_count();
        CurveWalk {
            curve,
            next: 0,
            cells,
        }
    }
}

impl<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> Iterator for CurveWalk<'a, C, D> {
    type Item = Point<D>;

    #[inline]
    fn next(&mut self) -> Option<Point<D>> {
        if self.next >= self.cells {
            return None;
        }
        let p = self.curve.point_unchecked(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.cells - self.next) as usize;
        (rem, Some(rem))
    }
}

impl<'a, const D: usize, C: SpaceFillingCurve<D> + ?Sized> ExactSizeIterator
    for CurveWalk<'a, C, D>
{
}

/// Iterates the directed edges `E(π) = {(π⁻¹(i), π⁻¹(i+1))}` of a curve
/// (§II of the paper). Each step performs one inverse-mapping call.
pub fn edges<const D: usize, C: SpaceFillingCurve<D> + ?Sized>(
    curve: &C,
) -> impl Iterator<Item = (Point<D>, Point<D>)> + '_ {
    let mut walk = CurveWalk::new(curve);
    let mut prev = walk.next();
    std::iter::from_fn(move || {
        let a = prev?;
        let b = walk.next()?;
        prev = Some(b);
        Some((a, b))
    })
}

/// Verification helpers used by tests throughout the workspace.
pub mod verify {
    use super::*;

    /// Exhaustively checks that the curve is a bijection: every cell maps to
    /// a distinct in-range index and `point ∘ index = id`.
    ///
    /// Intended for tests on small universes (walks all `n` cells).
    pub fn bijection<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> Result<(), String> {
        let u = curve.universe();
        let n = u.cell_count();
        let mut seen = vec![false; n as usize];
        for p in u.iter_cells() {
            let idx = curve.index_unchecked(p);
            if idx >= n {
                return Err(format!("{}: index {idx} of {p} out of range {n}", curve.name()));
            }
            if seen[idx as usize] {
                return Err(format!("{}: index {idx} assigned twice (at {p})", curve.name()));
            }
            seen[idx as usize] = true;
            let back = curve.point_unchecked(idx);
            if back != p {
                return Err(format!(
                    "{}: roundtrip failed: {p} -> {idx} -> {back}",
                    curve.name()
                ));
            }
        }
        Ok(())
    }

    /// Counts positions `i` where `π⁻¹(i)` and `π⁻¹(i+1)` are not grid
    /// neighbors. Zero for continuous curves.
    pub fn discontinuities<const D: usize, C: SpaceFillingCurve<D>>(curve: &C) -> u64 {
        edges(curve)
            .filter(|(a, b)| !a.is_neighbor(b))
            .count() as u64
    }

    /// Checks that [`SpaceFillingCurve::jump_targets`] is sound and complete:
    /// it contains exactly the non-start cells whose predecessor is not a
    /// neighbor.
    pub fn jump_targets_exact<const D: usize, C: SpaceFillingCurve<D>>(
        curve: &C,
    ) -> Result<(), String> {
        let Some(mut declared) = curve.jump_targets() else {
            return Ok(()); // nothing declared, nothing to verify
        };
        declared.sort();
        let mut actual: Vec<Point<D>> = edges(curve)
            .filter(|(a, b)| !a.is_neighbor(b))
            .map(|(_, b)| b)
            .collect();
        actual.sort();
        if declared == actual {
            Ok(())
        } else {
            Err(format!(
                "{}: declared {} jump targets, observed {}",
                curve.name(),
                declared.len(),
                actual.len()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Row-major toy curve for exercising the trait's provided methods.
    struct Toy {
        u: Universe<2>,
    }

    impl SpaceFillingCurve<2> for Toy {
        fn universe(&self) -> Universe<2> {
            self.u
        }
        fn index_unchecked(&self, p: Point<2>) -> u64 {
            u64::from(p.0[1]) * u64::from(self.u.side()) + u64::from(p.0[0])
        }
        fn point_unchecked(&self, idx: u64) -> Point<2> {
            let s = u64::from(self.u.side());
            Point::new([(idx % s) as u32, (idx / s) as u32])
        }
        fn name(&self) -> &str {
            "toy-row-major"
        }
    }

    fn toy() -> Toy {
        Toy {
            u: Universe::new(4).unwrap(),
        }
    }

    #[test]
    fn checked_accessors_reject_out_of_range() {
        let c = toy();
        assert!(matches!(
            c.index_of(Point::new([4, 0])),
            Err(SfcError::PointOutOfBounds { .. })
        ));
        assert!(matches!(
            c.point_of(16),
            Err(SfcError::IndexOutOfBounds { .. })
        ));
        assert_eq!(c.index_of(Point::new([3, 3])).unwrap(), 15);
    }

    #[test]
    fn start_and_end() {
        let c = toy();
        assert_eq!(c.start(), Point::new([0, 0]));
        assert_eq!(c.end(), Point::new([3, 3]));
    }

    #[test]
    fn walk_visits_in_curve_order() {
        let c = toy();
        let walk: Vec<_> = CurveWalk::new(&c).collect();
        assert_eq!(walk.len(), 16);
        assert_eq!(walk[0], Point::new([0, 0]));
        assert_eq!(walk[5], Point::new([1, 1]));
    }

    #[test]
    fn edges_has_n_minus_one_entries() {
        let c = toy();
        assert_eq!(edges(&c).count(), 15);
    }

    #[test]
    fn row_major_discontinuities_at_row_ends() {
        let c = toy();
        // Row-major on a 4×4 grid jumps at the end of each of the first 3 rows.
        assert_eq!(verify::discontinuities(&c), 3);
    }

    #[test]
    fn bijection_check_passes_for_toy() {
        verify::bijection(&toy()).unwrap();
    }

    #[test]
    fn trait_is_object_safe() {
        let c: Box<dyn SpaceFillingCurve<2>> = Box::new(toy());
        assert_eq!(c.index_unchecked(Point::new([1, 0])), 1);
        assert_eq!(c.name(), "toy-row-major");
        // Blanket impls let boxed curves be used generically too.
        verify::bijection(&c).unwrap();
    }
}
