//! Grid cells of a `D`-dimensional universe.

use std::fmt;

/// A cell of a `D`-dimensional grid, identified by its integer coordinates.
///
/// Coordinates are `u32`, matching the paper's discrete universe of
/// `side × side × …` cells with coordinates in `0..side`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Point<const D: usize>(pub [u32; D]);

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Point([0; D])
    }
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    #[inline]
    pub const fn new(coords: [u32; D]) -> Self {
        Point(coords)
    }

    /// Returns the coordinate along `dim`.
    #[inline]
    pub fn coord(&self, dim: usize) -> u32 {
        self.0[dim]
    }

    /// Returns the coordinate array.
    #[inline]
    pub fn coords(&self) -> [u32; D] {
        self.0
    }

    /// Returns a copy with the coordinate along `dim` replaced by `value`.
    #[inline]
    pub fn with_coord(mut self, dim: usize, value: u32) -> Self {
        self.0[dim] = value;
        self
    }

    /// Moves the point by `delta` along `dim`, staying inside `0..side`.
    ///
    /// Returns `None` if the move would leave the universe.
    #[inline]
    pub fn step(&self, dim: usize, delta: i64, side: u32) -> Option<Self> {
        let c = i64::from(self.0[dim]) + delta;
        if c < 0 || c >= i64::from(side) {
            return None;
        }
        let mut out = *self;
        out.0[dim] = c as u32;
        Some(out)
    }

    /// Whether `other` differs from `self` by exactly 1 along exactly one
    /// dimension (the paper's "neighbor" relation, Definition 1 context).
    #[inline]
    pub fn is_neighbor(&self, other: &Self) -> bool {
        let mut diff_dims = 0usize;
        let mut unit = true;
        for d in 0..D {
            let a = self.0[d];
            let b = other.0[d];
            if a != b {
                diff_dims += 1;
                if a.abs_diff(b) != 1 {
                    unit = false;
                }
            }
        }
        diff_dims == 1 && unit
    }

    /// Iterates over the grid neighbors of the point inside `0..side` along
    /// every dimension. Yields at most `2*D` points, without allocating.
    #[inline]
    pub fn neighbors(&self, side: u32) -> NeighborIter<D> {
        NeighborIter {
            center: *self,
            side,
            next: 0,
        }
    }

    /// The paper's boundary distance `∇(α)`: the 1-based L∞ distance of the
    /// cell to the boundary of a universe with side length `side`,
    /// `∇(α) = min_i min(x_i + 1, side − x_i)`.
    #[inline]
    pub fn boundary_distance(&self, side: u32) -> u32 {
        let mut best = u32::MAX;
        for d in 0..D {
            let x = self.0[d];
            best = best.min(x + 1).min(side - x);
        }
        best
    }
}

impl<const D: usize> fmt::Display for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

impl<const D: usize> From<[u32; D]> for Point<D> {
    #[inline]
    fn from(coords: [u32; D]) -> Self {
        Point(coords)
    }
}

/// Iterator over in-bounds grid neighbors of a point. See [`Point::neighbors`].
#[derive(Clone, Debug)]
pub struct NeighborIter<const D: usize> {
    center: Point<D>,
    side: u32,
    next: usize,
}

impl<const D: usize> Iterator for NeighborIter<D> {
    type Item = Point<D>;

    #[inline]
    fn next(&mut self) -> Option<Point<D>> {
        while self.next < 2 * D {
            let dim = self.next / 2;
            let delta = if self.next.is_multiple_of(2) { -1 } else { 1 };
            self.next += 1;
            if let Some(p) = self.center.step(dim, delta, self.side) {
                return Some(p);
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(2 * D - self.next.min(2 * D)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new([3u32, 7]).to_string(), "(3, 7)");
        assert_eq!(Point::new([1u32, 2, 3]).to_string(), "(1, 2, 3)");
    }

    #[test]
    fn step_respects_bounds() {
        let p = Point::new([0u32, 5]);
        assert_eq!(p.step(0, -1, 8), None);
        assert_eq!(p.step(0, 1, 8), Some(Point::new([1, 5])));
        assert_eq!(p.step(1, 3, 8), None); // 5 + 3 = 8 is out of range
        assert_eq!(p.step(1, 2, 8), Some(Point::new([0, 7])));
    }

    #[test]
    fn neighbor_relation_is_symmetric_and_unit() {
        let a = Point::new([2u32, 2]);
        assert!(a.is_neighbor(&Point::new([1, 2])));
        assert!(a.is_neighbor(&Point::new([2, 3])));
        assert!(!a.is_neighbor(&Point::new([1, 1]))); // diagonal
        assert!(!a.is_neighbor(&Point::new([4, 2]))); // distance 2
        assert!(!a.is_neighbor(&a)); // not its own neighbor
    }

    #[test]
    fn corner_has_d_neighbors() {
        let corner = Point::new([0u32, 0, 0]);
        let n: Vec<_> = corner.neighbors(4).collect();
        assert_eq!(n.len(), 3);
        for p in &n {
            assert!(corner.is_neighbor(p));
        }
    }

    #[test]
    fn interior_cell_has_2d_neighbors() {
        let p = Point::new([2u32, 2]);
        let n: Vec<_> = p.neighbors(5).collect();
        assert_eq!(n.len(), 4);
    }

    #[test]
    fn boundary_distance_matches_paper_definition() {
        // 8×8 universe: ∇ of a corner is 1, of the center 4.
        assert_eq!(Point::new([0u32, 0]).boundary_distance(8), 1);
        assert_eq!(Point::new([7u32, 3]).boundary_distance(8), 1);
        assert_eq!(Point::new([3u32, 3]).boundary_distance(8), 4);
        assert_eq!(Point::new([4u32, 4]).boundary_distance(8), 4);
        // 3D
        assert_eq!(Point::new([1u32, 2, 3]).boundary_distance(8), 2);
    }

    #[test]
    fn with_coord_replaces_single_dimension() {
        let p = Point::new([1u32, 2, 3]).with_coord(1, 9);
        assert_eq!(p, Point::new([1, 9, 3]));
    }
}
