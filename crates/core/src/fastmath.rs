//! Exact integer roots via the FPU, shared by the onion curves' unrank
//! kernels.
//!
//! Every function here returns the *exact* floor root for every `u64` input:
//! the FPU supplies a candidate within a few units of the true root in one
//! or two instructions, and an integer fixup (exact in `u128`, so powers can
//! never overflow) settles the boundary cases. The fixup loops run at most
//! once on the dominant `< 2^53` path, where the `u64 → f64` conversion is
//! lossless and `sqrt` is correctly rounded.
//!
//! These sit on the unrank hot path — one root per
//! [`crate::onion2d::unrank_in_square`] / 3D layer location — which is what
//! bulk inverse mapping (`fill_points`) is made of, so `Onion2D/3D/ND`
//! lane-batch them across chunks of indices to let the FPU pipeline the
//! root instructions.

/// Integer square root: the largest `r` with `r² ≤ x`.
///
/// `f64` sqrt is a single instruction, so this beats the software
/// `u64::isqrt` loop severalfold.
#[inline]
pub fn isqrt_fast(x: u64) -> u64 {
    if x < (1u64 << 53) {
        // The conversion is exact and `sqrt` is correctly rounded, so the
        // truncated candidate is within one of the floor root — one
        // branch fixes it, and every square here fits u64. This is the
        // path every realistic universe takes (sides up to ~2²⁶).
        let mut r = (x as f64).sqrt() as u64;
        if r * r > x {
            r -= 1;
        } else if (r + 1) * (r + 1) <= x {
            r += 1;
        }
        r
    } else {
        // Huge inputs: the u64→f64 conversion itself rounds, so the
        // candidate can be several ulps off; fix up exactly in u128 so
        // the square can never overflow.
        let mut r = (x as f64).sqrt() as u64;
        while r > 0 && u128::from(r) * u128::from(r) > u128::from(x) {
            r -= 1;
        }
        while u128::from(r + 1) * u128::from(r + 1) <= u128::from(x) {
            r += 1;
        }
        r
    }
}

/// Integer cube root: the largest `r` with `r³ ≤ x`.
#[inline]
pub fn icbrt_fast(x: u64) -> u64 {
    if x == 0 {
        return 0;
    }
    let mut r = (x as f64).cbrt() as u64;
    // Float rounding can be off by one in either direction; fix up exactly
    // in u128 so the cube can never overflow.
    while r > 0 && u128::from(r).pow(3) > u128::from(x) {
        r -= 1;
    }
    while u128::from(r + 1).pow(3) <= u128::from(x) {
        r += 1;
    }
    r
}

/// Whether `base^d > x`, computed without overflow (early exit keeps the
/// accumulator within `x · base < 2^128`).
#[inline]
fn pow_gt(base: u64, d: u32, x: u64) -> bool {
    let mut acc = 1u128;
    for _ in 0..d {
        acc *= u128::from(base);
        if acc > u128::from(x) {
            return true;
        }
    }
    false
}

/// Integer `d`-th root: the largest `r` with `r^d ≤ x` (`d ≥ 1`).
///
/// Dispatches to [`isqrt_fast`] / [`icbrt_fast`] for the common dimensions;
/// higher roots take an `x^(1/d)` FPU candidate plus the exact fixup.
#[inline]
pub fn iroot_fast(x: u64, d: u32) -> u64 {
    debug_assert!(d >= 1, "0th root is undefined");
    match d {
        1 => x,
        2 => isqrt_fast(x),
        3 => icbrt_fast(x),
        _ => {
            if x == 0 {
                return 0;
            }
            let mut r = (x as f64).powf(1.0 / f64::from(d)) as u64;
            while r > 0 && pow_gt(r, d, x) {
                r -= 1;
            }
            while !pow_gt(r + 1, d, x) {
                r += 1;
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_fast_exact_values() {
        assert_eq!(isqrt_fast(0), 0);
        assert_eq!(isqrt_fast(1), 1);
        assert_eq!(isqrt_fast(3), 1);
        assert_eq!(isqrt_fast(4), 2);
        assert_eq!(isqrt_fast(u64::MAX), (1u64 << 32) - 1);
        for r in [1u64, 2, 1000, 1 << 20, (1 << 32) - 2] {
            assert_eq!(isqrt_fast(r * r), r);
            assert_eq!(isqrt_fast(r * r - 1), r - 1);
            assert_eq!(isqrt_fast(r * r + 1), r);
        }
        // Agreement with the software root across a dense small range and
        // a coarse sweep of the full domain.
        for x in 0..4096u64 {
            assert_eq!(isqrt_fast(x), x.isqrt());
        }
        for x in (0..u64::MAX - (1 << 58)).step_by(1 << 58) {
            assert_eq!(isqrt_fast(x), x.isqrt());
        }
    }

    #[test]
    fn isqrt_fast_u64_boundaries() {
        // Around the 2^53 exact-conversion cliff and the top of the domain.
        for x in (1u64 << 53) - 64..(1u64 << 53) + 64 {
            assert_eq!(isqrt_fast(x), x.isqrt(), "x = {x}");
        }
        for x in u64::MAX - 64..=u64::MAX {
            assert_eq!(isqrt_fast(x), x.isqrt(), "x = {x}");
        }
        // Around every power-of-two square root boundary.
        for b in 1..32u32 {
            let r = 1u64 << b;
            for x in [r * r - 1, r * r, r * r + 1] {
                assert_eq!(isqrt_fast(x), x.isqrt(), "x = {x}");
            }
        }
    }

    #[test]
    fn icbrt_fast_exact_values() {
        assert_eq!(icbrt_fast(0), 0);
        assert_eq!(icbrt_fast(1), 1);
        assert_eq!(icbrt_fast(7), 1);
        assert_eq!(icbrt_fast(8), 2);
        assert_eq!(icbrt_fast(26), 2);
        assert_eq!(icbrt_fast(27), 3);
        assert_eq!(icbrt_fast(u64::MAX), 2_642_245);
        for r in [5u64, 100, 1023, 1 << 20] {
            assert_eq!(icbrt_fast(r * r * r), r);
            assert_eq!(icbrt_fast(r * r * r - 1), r - 1);
            assert_eq!(icbrt_fast(r * r * r + 1), r);
        }
    }

    #[test]
    fn icbrt_fast_u64_boundaries() {
        // Every cube boundary of the achievable root range (≤ 2_642_245),
        // sampled geometrically, plus the top of the domain.
        let mut r = 1u64;
        while r <= 2_642_245 {
            let c = r * r * r;
            assert_eq!(icbrt_fast(c - 1), r - 1, "r = {r}");
            assert_eq!(icbrt_fast(c), r, "r = {r}");
            assert_eq!(icbrt_fast(c + 1), r, "r = {r}");
            r = (r * 3) / 2 + 1;
        }
        let top = 2_642_245u64;
        assert_eq!(icbrt_fast(top * top * top), top);
        assert_eq!(icbrt_fast(top * top * top - 1), top - 1);
        for x in u64::MAX - 16..=u64::MAX {
            assert_eq!(icbrt_fast(x), top, "x = {x}");
        }
    }

    #[test]
    fn iroot_fast_matches_brute_force() {
        let brute = |x: u64, d: u32| -> u64 {
            let mut r = 0u64;
            while !pow_gt(r + 1, d, x) {
                r += 1;
            }
            r
        };
        for d in 1..=8u32 {
            for x in 0..512u64 {
                assert_eq!(iroot_fast(x, d), brute(x, d), "x = {x}, d = {d}");
            }
        }
        // Exact powers and their neighbors across dimensions.
        for d in 4..=10u32 {
            for r in 1..=16u64 {
                let p = r.pow(d);
                assert_eq!(iroot_fast(p, d), r, "r = {r}, d = {d}");
                assert_eq!(iroot_fast(p - 1, d), r - 1, "r = {r}, d = {d}");
                assert_eq!(iroot_fast(p + 1, d), r, "r = {r}, d = {d}");
            }
        }
    }

    #[test]
    fn iroot_fast_u64_boundaries() {
        assert_eq!(iroot_fast(u64::MAX, 1), u64::MAX);
        for d in 2..=16u32 {
            let r = iroot_fast(u64::MAX, d);
            assert!(!pow_gt(r, d, u64::MAX), "r^d must not exceed the input");
            assert!(pow_gt(r + 1, d, u64::MAX), "root must be maximal (d = {d})");
        }
        assert_eq!(iroot_fast(u64::MAX, 64), 1);
        assert_eq!(iroot_fast(u64::MAX, 2), (1u64 << 32) - 1);
        assert_eq!(iroot_fast(0, 7), 0);
        assert_eq!(iroot_fast(1, 7), 1);
    }
}
