//! The two-dimensional onion curve (§III of the paper).
//!
//! The curve orders cells layer by layer: all of layer `S(1)` (the cells at
//! boundary distance 1), then `S(2)`, and so on. Within a layer, the
//! perimeter of the remaining sub-square is walked bottom row → right column
//! → top row (right to left) → left column (top to bottom), matching the
//! recursive definition `O_j` and Figure 3 of the paper.
//!
//! Both directions are closed-form `O(1)` (the inverse uses an integer
//! square root to locate the layer).

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::fastmath::isqrt_fast;
use crate::point::Point;
use crate::universe::Universe;

/// All-ones mask when `cond` holds, all-zeros otherwise — the select
/// primitive of the branch-free kernels below.
#[inline(always)]
fn mask64(cond: bool) -> u64 {
    u64::from(cond).wrapping_neg()
}

/// Rank of cell `(u, v)` under the onion order of a full `s × s` square.
///
/// This is the paper's `O_s(u, v)`; it is exposed so the 3D curve can order
/// its square faces with it. Branch-free: the four perimeter rules are
/// computed as masked candidates and merged, so bulk keying loops over this
/// kernel carry no data-dependent branches and auto-vectorize.
#[inline]
pub fn rank_in_square(s: u32, u: u32, v: u32) -> u64 {
    debug_assert!(u < s && v < s, "({u},{v}) outside {s}x{s} square");
    // Layer of the cell inside the square and the side of the sub-square
    // formed by the remaining layers.
    let t = (u + 1).min(s - u).min(v + 1).min(s - v);
    let inner = s - 2 * (t - 1);
    let offset = u64::from(s) * u64::from(s) - u64::from(inner) * u64::from(inner);
    let (lu, lv) = (u64::from(u - (t - 1)), u64::from(v - (t - 1)));
    // Perimeter rules 1–4 as a priority chain of masked selects. The
    // single central cell of an odd side (inner == 1) falls out of rule 1:
    // lu = lv = 0 gives k = 0.
    let p = u64::from(inner) - 1;
    let m_bottom = mask64(lv == 0); // rule 1: x1
    let m_right = mask64(lu == p); // rule 2: j−1+x2
    let m_top = mask64(lv == p); // rule 3: 3j−3−x1
    let k_top_left = ((3 * p - lu) & m_top) | ((4 * p - lv) & !m_top);
    let k_chain = ((p + lv) & m_right) | (k_top_left & !m_right);
    let k = (lu & m_bottom) | (k_chain & !m_bottom);
    offset + k
}

/// Smallest ring side `inner` (parity of `s`) whose sub-square holds the
/// trailing `rem ≥ 1` cells: the least `inner ≡ s (mod 2)` with
/// `inner² ≥ rem`. Branch-free ceil + parity fixup around [`isqrt_fast`].
#[inline(always)]
fn ring_side(s: u32, rem: u64) -> u32 {
    let r = isqrt_fast(rem);
    let mut inner = r as u32 + u32::from(r * r < rem);
    inner += (inner ^ s) & 1;
    inner
}

/// Inverse of [`rank_in_square`]: the cell of an `s × s` square holding onion
/// rank `k`.
#[inline]
pub fn unrank_in_square(s: u32, k: u64) -> (u32, u32) {
    let n = u64::from(s) * u64::from(s);
    debug_assert!(k < n, "rank {k} outside {s}x{s} square");
    // Cells at positions >= k number n − k; they fill the sub-square of the
    // smallest side `inner` (same parity as s) with inner² ≥ n − k.
    let inner = ring_side(s, n - k);
    debug_assert!(inner >= 1 && inner <= s);
    let t = (s - inner) / 2 + 1;
    let local = k - (n - u64::from(inner) * u64::from(inner));
    let (lu, lv) = unrank_in_perimeter(inner, local);
    (lu + (t - 1), lv + (t - 1))
}

/// Successor of `(u, v)` in the onion order of a full `s × s` square, as
/// pure perimeter geometry: `O(1)` adds and compares, no integer square
/// root. `(u, v)` must not be the square's last cell.
///
/// This is the kernel behind [`crate::CurveStepper`] for the 2D curve (and,
/// via face/plane walks, the 3D curve): a full-curve walk costs one add per
/// cell instead of one `isqrt`-carrying unrank per cell.
#[inline]
pub fn successor_in_square(s: u32, u: u32, v: u32) -> (u32, u32) {
    debug_assert!(u < s && v < s, "({u},{v}) outside {s}x{s} square");
    let t = (u + 1).min(s - u).min(v + 1).min(s - v);
    let lo = t - 1;
    let e = s - 2 * lo - 1; // ring side minus one; 0 only for the last cell
    let (lu, lv) = (u - lo, v - lo);
    // Branchy on purpose: every caller steps sequentially, so the edge
    // tests stay on one arm for a whole edge and the predictor eats them.
    // (A branch-free select variant measured 2x *slower* on full walks —
    // flat select cost beats mispredicts only on unpredictable inputs,
    // which is why `rank_in_square`/`unrank_in_perimeter` are the
    // branch-free ones.)
    if lv == 0 && lu < e {
        return (u + 1, v); // bottom row, walking right
    }
    if lu == e && lv < e {
        return (u, v + 1); // right column, walking up
    }
    if lv == e && lu > 0 {
        return (u - 1, v); // top row, walking left
    }
    if lu == 0 && lv > 1 {
        return (u, v - 1); // left column, walking down
    }
    // Ring exhausted (local (0, 1), or (0, 0) on a single-cell ring):
    // enter the next ring at its bottom-left corner.
    debug_assert!(
        lu == 0 && lv <= 1,
        "successor of the last cell of a {s}x{s} square"
    );
    (lo + 1, lo + 1)
}

/// Predecessor of `(u, v)` in the onion order of a full `s × s` square
/// (inverse of [`successor_in_square`]). `(u, v)` must not be the square's
/// first cell `(0, 0)`.
#[inline]
pub fn predecessor_in_square(s: u32, u: u32, v: u32) -> (u32, u32) {
    debug_assert!(u < s && v < s, "({u},{v}) outside {s}x{s} square");
    debug_assert!(u != 0 || v != 0, "predecessor of the first cell");
    let t = (u + 1).min(s - u).min(v + 1).min(s - v);
    let lo = t - 1;
    let e = s - 2 * lo - 1;
    let (lu, lv) = (u - lo, v - lo);
    // Branchy for the same predictability reason as
    // [`successor_in_square`]. `lv == 0` covers both the bottom row (came
    // from the left) and a ring's first cell (the previous ring ended at
    // its local (0, 1) = absolute (lo − 1, lo)): both step to (u − 1, v).
    if lv == 0 {
        return (u - 1, v); // bottom row / ring entry: from the left
    }
    if lu == e {
        return (u, v - 1); // right column: from below
    }
    if lv == e {
        return (u + 1, v); // top row: from the right
    }
    (u, v + 1) // left column: from above
}

/// The last cell (highest rank) of an `s × s` square under the onion order:
/// the centre for odd `s`, the inner 2×2 ring's final cell for even `s`.
#[inline]
pub fn last_in_square(s: u32) -> (u32, u32) {
    debug_assert!(s >= 1);
    if s % 2 == 1 {
        ((s - 1) / 2, (s - 1) / 2)
    } else {
        (s / 2 - 1, s / 2)
    }
}

/// Decodes a perimeter position of an `s × s` ring (`0 ≤ k < 4s−4`, or the
/// single cell when `s == 1`).
///
/// Branch-free except the degenerate single-cell ring: the four perimeter
/// edges are masked candidates merged with selects, so the batched unrank
/// loop in [`Onion2D::fill_points`] stays straight-line code.
#[inline]
fn unrank_in_perimeter(s: u32, k: u64) -> (u32, u32) {
    if s == 1 {
        debug_assert_eq!(k, 0);
        return (0, 0);
    }
    let p = u64::from(s) - 1;
    debug_assert!(k < 4 * p);
    // Edge selects; the wrapping subtractions only land in unselected
    // candidates (k ≤ p implies k − p wraps, but m0 kills that term).
    let m0 = mask64(k <= p); // bottom row: (k, 0)
    let m1 = mask64(k <= 2 * p); // right column: (p, k − p)
    let m2 = mask64(k <= 3 * p); // top row: (3p − k, p); else left column
    let u = (k & m0) | (p & !m0 & m1) | ((3 * p).wrapping_sub(k) & !m1 & m2);
    let v = (k.wrapping_sub(p) & !m0 & m1) | (p & !m1 & m2) | ((4 * p).wrapping_sub(k) & !m2);
    (u as u32, v as u32)
}

/// Emits up to `take` cells of the ring with side `inner` anchored at
/// `(lo, lo)`, starting from perimeter position `k`, stopping at the ring's
/// end; returns the count emitted. Each edge is a counted run of one
/// incrementing coordinate — no per-cell classification.
#[inline]
fn emit_ring_from(
    lo: u32,
    inner: u32,
    mut k: u64,
    take: usize,
    f: &mut impl FnMut(u32, u32),
) -> usize {
    if inner == 1 {
        f(lo, lo);
        return 1;
    }
    let p = u64::from(inner) - 1;
    debug_assert!(k < 4 * p);
    let mut left = take.min((4 * p - k) as usize);
    let taken = left;
    // Bottom edge: positions k ∈ [0, p] → (lo + k, lo).
    if k <= p && left > 0 {
        let run = left.min((p - k + 1) as usize);
        let x0 = lo + k as u32;
        for i in 0..run as u32 {
            f(x0 + i, lo);
        }
        k += run as u64;
        left -= run;
    }
    // Right edge: k ∈ [p+1, 2p] → (lo + p, lo + (k − p)).
    if k <= 2 * p && left > 0 {
        let run = left.min((2 * p - k + 1) as usize);
        let x = lo + p as u32;
        let y0 = lo + (k - p) as u32;
        for i in 0..run as u32 {
            f(x, y0 + i);
        }
        k += run as u64;
        left -= run;
    }
    // Top edge: k ∈ [2p+1, 3p] → (lo + (3p − k), lo + p).
    if k <= 3 * p && left > 0 {
        let run = left.min((3 * p - k + 1) as usize);
        let x0 = lo + (3 * p - k) as u32;
        let y = lo + p as u32;
        for i in 0..run as u32 {
            f(x0 - i, y);
        }
        k += run as u64;
        left -= run;
    }
    // Left edge: k ∈ [3p+1, 4p−1] → (lo, lo + (4p − k)).
    if left > 0 {
        let y0 = lo + (4 * p - k) as u32;
        for i in 0..left as u32 {
            f(lo, y0 - i);
        }
    }
    taken
}

/// Calls `f(u, v)` for the `take` cells of ranks `rank, rank + 1, …` of the
/// onion order of a full `s × s` square — the run-emitting walk behind
/// [`SpaceFillingCurve::fill_walk`] for the 2D curve and the 3D curve's
/// face/plane segments. One ring location per ring, then counted edge runs.
///
/// `rank + take` must not exceed `s²`.
pub(crate) fn for_each_in_square_walk(s: u32, rank: u64, take: usize, mut f: impl FnMut(u32, u32)) {
    let n = u64::from(s) * u64::from(s);
    debug_assert!(rank + take as u64 <= n);
    let mut k = rank;
    let mut left = take;
    while left > 0 {
        let inner = ring_side(s, n - k);
        let lo = (s - inner) / 2;
        let ring_start = n - u64::from(inner) * u64::from(inner);
        let taken = emit_ring_from(lo, inner, k - ring_start, left, &mut f);
        k += taken as u64;
        left -= taken;
    }
}

/// The two-dimensional onion curve over a `side × side` universe.
///
/// Any `side ≥ 1` is supported. The paper assumes an even side; for odd sides
/// the innermost layer is the single central cell, and all structural
/// properties (layer-sequential order, continuity) are preserved.
///
/// ```
/// use onion_core::{Onion2D, Point, SpaceFillingCurve};
///
/// let onion = Onion2D::new(4).unwrap();
/// // Figure 3 of the paper: the outer ring is numbered 0..=11 starting at
/// // the origin, then the inner 2×2 square 12..=15.
/// assert_eq!(onion.index_of(Point::new([0, 0])).unwrap(), 0);
/// assert_eq!(onion.index_of(Point::new([3, 0])).unwrap(), 3);
/// assert_eq!(onion.index_of(Point::new([0, 1])).unwrap(), 11);
/// assert_eq!(onion.index_of(Point::new([1, 1])).unwrap(), 12);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Onion2D {
    universe: Universe<2>,
}

impl Onion2D {
    /// Creates the onion curve for a `side × side` universe.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        Ok(Onion2D {
            universe: Universe::new(side)?,
        })
    }
}

impl SpaceFillingCurve<2> for Onion2D {
    fn universe(&self) -> Universe<2> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<2>) -> u64 {
        rank_in_square(self.universe.side(), p.0[0], p.0[1])
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<2> {
        let (x, y) = unrank_in_square(self.universe.side(), idx);
        Point::new([x, y])
    }

    fn name(&self) -> &str {
        "onion"
    }

    /// The 2D onion curve is continuous (§V-A of the paper): perimeter walks
    /// are continuous and each layer's last cell `(t−1, t)` neighbors the
    /// next layer's first cell `(t, t)`.
    fn is_continuous(&self) -> bool {
        true
    }

    /// Batch forward mapping with the side hoisted and the rank kernel
    /// statically dispatched (one virtual call per batch for `dyn` callers).
    /// The plain push loop is the measured optimum for this kernel: an
    /// exact-size `extend` and an eight-wide lane buffer were both ~40%
    /// slower (the branch-free rank is ~3 ns/cell, so any restructuring
    /// overhead dwarfs what it saves, and the u32-pair → u64 shape defeats
    /// the loop vectorizer either way).
    fn fill_indices(&self, points: &[Point<2>], out: &mut Vec<u64>) {
        let s = self.universe.side();
        out.reserve(points.len());
        for p in points {
            out.push(rank_in_square(s, p.0[0], p.0[1]));
        }
    }

    /// Batch inverse mapping: the scalar unrank kernel with the side hoisted
    /// and the per-cell virtual call amortized to one per batch. Fancier
    /// bodies were tried and measured *slower* on random indices: an
    /// explicit two-phase lane split (the lane buffer spill cost more than
    /// it saved — out-of-order execution already overlaps the `sqrt`s of
    /// independent iterations), and a fully branch-free inline fixup chain
    /// (three data-dependent multiply/compare fixups on the critical path
    /// lose to `isqrt_fast`'s almost-never-taken predicted branches).
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<2>>) {
        let s = self.universe.side();
        out.reserve(indices.len());
        for &idx in indices {
            let (x, y) = unrank_in_square(s, idx);
            out.push(Point::new([x, y]));
        }
    }

    /// Run-emitting batched walk: one ring location per ring, then counted
    /// edge runs (see `for_each_in_square_walk`) — the per-cell cost is a
    /// push, not a classification.
    fn fill_walk(&self, start_idx: u64, count: usize, out: &mut Vec<Point<2>>) {
        debug_assert!(start_idx + count as u64 <= self.universe.cell_count());
        out.reserve(count);
        for_each_in_square_walk(self.universe.side(), start_idx, count, |x, y| {
            out.push(Point::new([x, y]));
        });
    }

    /// `O(1)` perimeter walk — no `isqrt` (see [`successor_in_square`]).
    #[inline]
    fn successor_unchecked(&self, p: Point<2>, idx: u64) -> Point<2> {
        debug_assert_eq!(self.index_unchecked(p), idx);
        debug_assert!(idx + 1 < self.universe.cell_count());
        let (x, y) = successor_in_square(self.universe.side(), p.0[0], p.0[1]);
        Point::new([x, y])
    }

    /// `O(1)` reverse perimeter walk (see [`predecessor_in_square`]).
    #[inline]
    fn predecessor_unchecked(&self, p: Point<2>, idx: u64) -> Point<2> {
        debug_assert_eq!(self.index_unchecked(p), idx);
        debug_assert!(idx >= 1);
        let (x, y) = predecessor_in_square(self.universe.side(), p.0[0], p.0[1]);
        Point::new([x, y])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::verify;

    /// The run-emitting `fill_walk` must agree with the scalar unrank loop
    /// for every start position and a spread of window lengths.
    #[test]
    fn fill_walk_matches_unrank_windows() {
        for side in [1u32, 2, 3, 4, 5, 8, 9, 16] {
            let o = Onion2D::new(side).unwrap();
            let n = o.universe().cell_count();
            let all: Vec<Point<2>> = (0..n).map(|i| o.point_unchecked(i)).collect();
            for start in 0..n {
                for len in [0, 1, 2, 7, n - start] {
                    let len = len.min(n - start) as usize;
                    let mut got = Vec::new();
                    o.fill_walk(start, len, &mut got);
                    assert_eq!(
                        got.as_slice(),
                        &all[start as usize..start as usize + len],
                        "side {side} start {start} len {len}"
                    );
                }
            }
        }
    }

    /// Figure 3 (left): the 2×2 onion curve.
    #[test]
    fn figure3_order_2x2() {
        let o = Onion2D::new(2).unwrap();
        assert_eq!(o.index_unchecked(Point::new([0, 0])), 0);
        assert_eq!(o.index_unchecked(Point::new([1, 0])), 1);
        assert_eq!(o.index_unchecked(Point::new([1, 1])), 2);
        assert_eq!(o.index_unchecked(Point::new([0, 1])), 3);
    }

    /// Figure 3 (right): the 4×4 onion curve, all sixteen positions.
    #[test]
    fn figure3_order_4x4() {
        let expect: [((u32, u32), u64); 16] = [
            ((0, 0), 0),
            ((1, 0), 1),
            ((2, 0), 2),
            ((3, 0), 3),
            ((3, 1), 4),
            ((3, 2), 5),
            ((3, 3), 6),
            ((2, 3), 7),
            ((1, 3), 8),
            ((0, 3), 9),
            ((0, 2), 10),
            ((0, 1), 11),
            ((1, 1), 12),
            ((2, 1), 13),
            ((2, 2), 14),
            ((1, 2), 15),
        ];
        let o = Onion2D::new(4).unwrap();
        for ((x, y), idx) in expect {
            assert_eq!(o.index_unchecked(Point::new([x, y])), idx, "cell ({x},{y})");
            assert_eq!(o.point_unchecked(idx), Point::new([x, y]), "index {idx}");
        }
    }

    #[test]
    fn bijective_for_small_sides_even_and_odd() {
        for side in 1..=17 {
            verify::bijection(&Onion2D::new(side).unwrap())
                .unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn continuous_for_small_sides() {
        for side in 1..=17 {
            let o = Onion2D::new(side).unwrap();
            assert_eq!(verify::discontinuities(&o), 0, "side {side}");
        }
    }

    #[test]
    fn layers_are_visited_in_order() {
        let side = 12;
        let o = Onion2D::new(side).unwrap();
        let u = o.universe();
        let mut last_layer = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(
                layer >= last_layer,
                "layer decreased at index {idx}: {last_layer} -> {layer}"
            );
            last_layer = layer;
        }
    }

    #[test]
    fn layer_offsets_match_universe_bookkeeping() {
        let side = 10;
        let o = Onion2D::new(side).unwrap();
        let u = o.universe();
        for t in 1..=u.layer_count() {
            // The first cell of layer t is its bottom-left corner (t−1, t−1).
            let first = Point::new([t - 1, t - 1]);
            assert_eq!(o.index_unchecked(first), u.cells_before_layer(t));
        }
    }

    #[test]
    fn roundtrip_on_large_side() {
        let o = Onion2D::new(1 << 15).unwrap();
        let n = o.universe().cell_count();
        for idx in [0, 1, 12345, n / 2, n - 2, n - 1] {
            let p = o.point_unchecked(idx);
            assert_eq!(o.index_unchecked(p), idx);
        }
        for p in [
            Point::new([0, 0]),
            Point::new([(1 << 15) - 1, 0]),
            Point::new([777, 12_001]),
            Point::new([(1 << 14), (1 << 14)]),
        ] {
            assert_eq!(o.point_unchecked(o.index_unchecked(p)), p);
        }
    }

    #[test]
    fn start_is_origin_end_is_center() {
        let o = Onion2D::new(8).unwrap();
        assert_eq!(o.start(), Point::new([0, 0]));
        // Even side: the curve ends on the innermost 2×2 ring's left-top
        // cell, local (0,1) of the central square at (3,3)..(4,4) => (3,4).
        assert_eq!(o.end(), Point::new([3, 4]));
        let o = Onion2D::new(9).unwrap();
        assert_eq!(o.end(), Point::new([4, 4])); // odd side: exact center
    }

    #[test]
    fn rank_helpers_are_inverses_exhaustively() {
        for s in 1..=9u32 {
            for k in 0..u64::from(s) * u64::from(s) {
                let (u, v) = unrank_in_square(s, k);
                assert_eq!(rank_in_square(s, u, v), k, "s={s} k={k}");
            }
        }
    }

    #[test]
    fn square_successor_predecessor_match_unrank_exhaustively() {
        for s in 1..=12u32 {
            let n = u64::from(s) * u64::from(s);
            for k in 0..n {
                let (u, v) = unrank_in_square(s, k);
                if k + 1 < n {
                    assert_eq!(
                        successor_in_square(s, u, v),
                        unrank_in_square(s, k + 1),
                        "s={s} k={k}"
                    );
                }
                if k > 0 {
                    assert_eq!(
                        predecessor_in_square(s, u, v),
                        unrank_in_square(s, k - 1),
                        "s={s} k={k}"
                    );
                }
            }
            assert_eq!(last_in_square(s), unrank_in_square(s, n - 1), "s={s}");
        }
    }

    #[test]
    fn batch_overrides_match_scalar() {
        let o = Onion2D::new(13).unwrap();
        let points: Vec<Point<2>> = o.universe().iter_cells().collect();
        let mut indices = Vec::new();
        o.fill_indices(&points, &mut indices);
        assert_eq!(
            indices,
            points
                .iter()
                .map(|&p| o.index_unchecked(p))
                .collect::<Vec<_>>()
        );
        let mut back = Vec::new();
        o.fill_points(&indices, &mut back);
        assert_eq!(back, points);
    }

    #[test]
    fn stepper_walk_matches_unrank_walk() {
        for side in [1u32, 2, 5, 8, 9] {
            let o = Onion2D::new(side).unwrap();
            let n = o.universe().cell_count();
            let mut stepper = crate::CurveStepper::new(&o);
            for idx in 0..n {
                assert_eq!(
                    stepper.point(),
                    o.point_unchecked(idx),
                    "side={side} idx={idx}"
                );
                stepper.advance();
            }
        }
    }
}
