//! The two-dimensional onion curve (§III of the paper).
//!
//! The curve orders cells layer by layer: all of layer `S(1)` (the cells at
//! boundary distance 1), then `S(2)`, and so on. Within a layer, the
//! perimeter of the remaining sub-square is walked bottom row → right column
//! → top row (right to left) → left column (top to bottom), matching the
//! recursive definition `O_j` and Figure 3 of the paper.
//!
//! Both directions are closed-form `O(1)` (the inverse uses an integer
//! square root to locate the layer).

use crate::curve::SpaceFillingCurve;
use crate::error::SfcError;
use crate::point::Point;
use crate::universe::Universe;

/// Rank of cell `(u, v)` under the onion order of a full `s × s` square.
///
/// This is the paper's `O_s(u, v)`; it is exposed so the 3D curve can order
/// its square faces with it.
#[inline]
pub fn rank_in_square(s: u32, u: u32, v: u32) -> u64 {
    debug_assert!(u < s && v < s, "({u},{v}) outside {s}x{s} square");
    // Layer of the cell inside the square and the side of the sub-square
    // formed by the remaining layers.
    let t = (u + 1).min(s - u).min(v + 1).min(s - v);
    let inner = s - 2 * (t - 1);
    let offset = u64::from(s) * u64::from(s) - u64::from(inner) * u64::from(inner);
    let (lu, lv) = (u - (t - 1), v - (t - 1));
    if inner == 1 {
        return offset; // single central cell (odd side)
    }
    let p = u64::from(inner) - 1;
    let k = if lv == 0 {
        u64::from(lu) // bottom row, rule 1: x1
    } else if u64::from(lu) == p {
        p + u64::from(lv) // right column, rule 2: j−1+x2
    } else if u64::from(lv) == p {
        3 * p - u64::from(lu) // top row, rule 3: 3j−3−x1
    } else {
        debug_assert_eq!(lu, 0);
        4 * p - u64::from(lv) // left column, rule 4: 4j−4−x2
    };
    offset + k
}

/// Integer square root: the largest `r` with `r² ≤ x`, via the FPU plus
/// an exact fixup (the same trick as the 3D curve's cube root). `f64`
/// sqrt is a single instruction, so this beats the software
/// `u64::isqrt` loop severalfold — and it sits on the unrank hot path,
/// one call per [`unrank_in_square`], which is what bulk inverse
/// mapping (`fill_points`) is made of.
#[inline]
pub(crate) fn isqrt_fast(x: u64) -> u64 {
    if x < (1u64 << 53) {
        // The conversion is exact and `sqrt` is correctly rounded, so the
        // truncated candidate is within one of the floor root — one
        // branch fixes it, and every square here fits u64. This is the
        // path every realistic universe takes (sides up to ~2²⁶).
        let mut r = (x as f64).sqrt() as u64;
        if r * r > x {
            r -= 1;
        } else if (r + 1) * (r + 1) <= x {
            r += 1;
        }
        r
    } else {
        // Huge inputs: the u64→f64 conversion itself rounds, so the
        // candidate can be several ulps off; fix up exactly in u128 so
        // the square can never overflow.
        let mut r = (x as f64).sqrt() as u64;
        while r > 0 && u128::from(r) * u128::from(r) > u128::from(x) {
            r -= 1;
        }
        while u128::from(r + 1) * u128::from(r + 1) <= u128::from(x) {
            r += 1;
        }
        r
    }
}

/// Inverse of [`rank_in_square`]: the cell of an `s × s` square holding onion
/// rank `k`.
#[inline]
pub fn unrank_in_square(s: u32, k: u64) -> (u32, u32) {
    let n = u64::from(s) * u64::from(s);
    debug_assert!(k < n, "rank {k} outside {s}x{s} square");
    // Cells at positions >= k number n − k; they fill the sub-square of the
    // smallest side `inner` (same parity as s) with inner² ≥ n − k.
    let rem = n - k;
    let mut inner = isqrt_fast(rem) as u32;
    if u64::from(inner) * u64::from(inner) < rem {
        inner += 1;
    }
    if (inner % 2) != (s % 2) {
        inner += 1;
    }
    debug_assert!(inner >= 1 && inner <= s);
    let t = (s - inner) / 2 + 1;
    let local = k - (n - u64::from(inner) * u64::from(inner));
    let (lu, lv) = unrank_in_perimeter(inner, local);
    (lu + (t - 1), lv + (t - 1))
}

/// Successor of `(u, v)` in the onion order of a full `s × s` square, as
/// pure perimeter geometry: `O(1)` adds and compares, no integer square
/// root. `(u, v)` must not be the square's last cell.
///
/// This is the kernel behind [`crate::CurveStepper`] for the 2D curve (and,
/// via face/plane walks, the 3D curve): a full-curve walk costs one add per
/// cell instead of one `isqrt`-carrying unrank per cell.
#[inline]
pub fn successor_in_square(s: u32, u: u32, v: u32) -> (u32, u32) {
    debug_assert!(u < s && v < s, "({u},{v}) outside {s}x{s} square");
    let t = (u + 1).min(s - u).min(v + 1).min(s - v);
    let lo = t - 1;
    let e = s - 2 * lo - 1; // ring side minus one; 0 only for the last cell
    let (lu, lv) = (u - lo, v - lo);
    if lv == 0 && lu < e {
        (u + 1, v) // bottom row, walking right
    } else if lu == e && lv < e {
        (u, v + 1) // right column, walking up
    } else if lv == e && lu > 0 && e > 0 {
        (u - 1, v) // top row, walking left
    } else if lu == 0 && lv > 1 {
        (u, v - 1) // left column, walking down
    } else {
        // Ring exhausted at local (0, 1) (or (0, 0) for a 2×2 ring's end):
        // enter the next ring at its bottom-left corner.
        debug_assert!(
            lu == 0 && lv == 1 && e >= 2,
            "successor of the last cell of a {s}x{s} square"
        );
        (lo + 1, lo + 1)
    }
}

/// Predecessor of `(u, v)` in the onion order of a full `s × s` square
/// (inverse of [`successor_in_square`]). `(u, v)` must not be the square's
/// first cell `(0, 0)`.
#[inline]
pub fn predecessor_in_square(s: u32, u: u32, v: u32) -> (u32, u32) {
    debug_assert!(u < s && v < s, "({u},{v}) outside {s}x{s} square");
    debug_assert!(u != 0 || v != 0, "predecessor of the first cell");
    let t = (u + 1).min(s - u).min(v + 1).min(s - v);
    let lo = t - 1;
    let e = s - 2 * lo - 1;
    let (lu, lv) = (u - lo, v - lo);
    if lu == 0 && lv == 0 {
        // First cell of its ring: the previous ring ends at its local
        // (0, 1), i.e. absolute (lo − 1, lo).
        (u - 1, v)
    } else if lv == 0 {
        (u - 1, v) // bottom row: came from the left
    } else if lu == e {
        (u, v - 1) // right column: came from below
    } else if lv == e {
        (u + 1, v) // top row: came from the right
    } else {
        debug_assert_eq!(lu, 0);
        (u, v + 1) // left column: came from above
    }
}

/// The last cell (highest rank) of an `s × s` square under the onion order:
/// the centre for odd `s`, the inner 2×2 ring's final cell for even `s`.
#[inline]
pub fn last_in_square(s: u32) -> (u32, u32) {
    debug_assert!(s >= 1);
    if s % 2 == 1 {
        ((s - 1) / 2, (s - 1) / 2)
    } else {
        (s / 2 - 1, s / 2)
    }
}

/// Decodes a perimeter position of an `s × s` ring (`0 ≤ k < 4s−4`, or the
/// single cell when `s == 1`).
#[inline]
fn unrank_in_perimeter(s: u32, k: u64) -> (u32, u32) {
    if s == 1 {
        debug_assert_eq!(k, 0);
        return (0, 0);
    }
    let p = u64::from(s) - 1;
    debug_assert!(k < 4 * p);
    if k <= p {
        (k as u32, 0)
    } else if k <= 2 * p {
        (p as u32, (k - p) as u32)
    } else if k <= 3 * p {
        ((3 * p - k) as u32, p as u32)
    } else {
        (0, (4 * p - k) as u32)
    }
}

/// The two-dimensional onion curve over a `side × side` universe.
///
/// Any `side ≥ 1` is supported. The paper assumes an even side; for odd sides
/// the innermost layer is the single central cell, and all structural
/// properties (layer-sequential order, continuity) are preserved.
///
/// ```
/// use onion_core::{Onion2D, Point, SpaceFillingCurve};
///
/// let onion = Onion2D::new(4).unwrap();
/// // Figure 3 of the paper: the outer ring is numbered 0..=11 starting at
/// // the origin, then the inner 2×2 square 12..=15.
/// assert_eq!(onion.index_of(Point::new([0, 0])).unwrap(), 0);
/// assert_eq!(onion.index_of(Point::new([3, 0])).unwrap(), 3);
/// assert_eq!(onion.index_of(Point::new([0, 1])).unwrap(), 11);
/// assert_eq!(onion.index_of(Point::new([1, 1])).unwrap(), 12);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Onion2D {
    universe: Universe<2>,
}

impl Onion2D {
    /// Creates the onion curve for a `side × side` universe.
    pub fn new(side: u32) -> Result<Self, SfcError> {
        Ok(Onion2D {
            universe: Universe::new(side)?,
        })
    }
}

impl SpaceFillingCurve<2> for Onion2D {
    fn universe(&self) -> Universe<2> {
        self.universe
    }

    #[inline]
    fn index_unchecked(&self, p: Point<2>) -> u64 {
        rank_in_square(self.universe.side(), p.0[0], p.0[1])
    }

    #[inline]
    fn point_unchecked(&self, idx: u64) -> Point<2> {
        let (x, y) = unrank_in_square(self.universe.side(), idx);
        Point::new([x, y])
    }

    fn name(&self) -> &str {
        "onion"
    }

    /// The 2D onion curve is continuous (§V-A of the paper): perimeter walks
    /// are continuous and each layer's last cell `(t−1, t)` neighbors the
    /// next layer's first cell `(t, t)`.
    fn is_continuous(&self) -> bool {
        true
    }

    /// Batch forward mapping with the side hoisted and the rank kernel
    /// statically dispatched (one virtual call per batch for `dyn` callers).
    fn fill_indices(&self, points: &[Point<2>], out: &mut Vec<u64>) {
        let s = self.universe.side();
        out.reserve(points.len());
        for p in points {
            out.push(rank_in_square(s, p.0[0], p.0[1]));
        }
    }

    /// Batch inverse mapping (see [`Self::fill_indices`]).
    fn fill_points(&self, indices: &[u64], out: &mut Vec<Point<2>>) {
        let s = self.universe.side();
        out.reserve(indices.len());
        for &idx in indices {
            let (x, y) = unrank_in_square(s, idx);
            out.push(Point::new([x, y]));
        }
    }

    /// `O(1)` perimeter walk — no `isqrt` (see [`successor_in_square`]).
    #[inline]
    fn successor_unchecked(&self, p: Point<2>, idx: u64) -> Point<2> {
        debug_assert_eq!(self.index_unchecked(p), idx);
        debug_assert!(idx + 1 < self.universe.cell_count());
        let (x, y) = successor_in_square(self.universe.side(), p.0[0], p.0[1]);
        Point::new([x, y])
    }

    /// `O(1)` reverse perimeter walk (see [`predecessor_in_square`]).
    #[inline]
    fn predecessor_unchecked(&self, p: Point<2>, idx: u64) -> Point<2> {
        debug_assert_eq!(self.index_unchecked(p), idx);
        debug_assert!(idx >= 1);
        let (x, y) = predecessor_in_square(self.universe.side(), p.0[0], p.0[1]);
        Point::new([x, y])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::verify;

    #[test]
    fn isqrt_fast_exact_values() {
        assert_eq!(isqrt_fast(0), 0);
        assert_eq!(isqrt_fast(1), 1);
        assert_eq!(isqrt_fast(3), 1);
        assert_eq!(isqrt_fast(4), 2);
        assert_eq!(isqrt_fast(u64::MAX), (1u64 << 32) - 1);
        for r in [1u64, 2, 1000, 1 << 20, (1 << 32) - 2] {
            assert_eq!(isqrt_fast(r * r), r);
            assert_eq!(isqrt_fast(r * r - 1), r - 1);
            assert_eq!(isqrt_fast(r * r + 1), r);
        }
        // Agreement with the software root across a dense small range and
        // a coarse sweep of the full domain.
        for x in 0..4096u64 {
            assert_eq!(isqrt_fast(x), x.isqrt());
        }
        for x in (0..u64::MAX - (1 << 58)).step_by(1 << 58) {
            assert_eq!(isqrt_fast(x), x.isqrt());
        }
    }

    /// Figure 3 (left): the 2×2 onion curve.
    #[test]
    fn figure3_order_2x2() {
        let o = Onion2D::new(2).unwrap();
        assert_eq!(o.index_unchecked(Point::new([0, 0])), 0);
        assert_eq!(o.index_unchecked(Point::new([1, 0])), 1);
        assert_eq!(o.index_unchecked(Point::new([1, 1])), 2);
        assert_eq!(o.index_unchecked(Point::new([0, 1])), 3);
    }

    /// Figure 3 (right): the 4×4 onion curve, all sixteen positions.
    #[test]
    fn figure3_order_4x4() {
        let expect: [((u32, u32), u64); 16] = [
            ((0, 0), 0),
            ((1, 0), 1),
            ((2, 0), 2),
            ((3, 0), 3),
            ((3, 1), 4),
            ((3, 2), 5),
            ((3, 3), 6),
            ((2, 3), 7),
            ((1, 3), 8),
            ((0, 3), 9),
            ((0, 2), 10),
            ((0, 1), 11),
            ((1, 1), 12),
            ((2, 1), 13),
            ((2, 2), 14),
            ((1, 2), 15),
        ];
        let o = Onion2D::new(4).unwrap();
        for ((x, y), idx) in expect {
            assert_eq!(o.index_unchecked(Point::new([x, y])), idx, "cell ({x},{y})");
            assert_eq!(o.point_unchecked(idx), Point::new([x, y]), "index {idx}");
        }
    }

    #[test]
    fn bijective_for_small_sides_even_and_odd() {
        for side in 1..=17 {
            verify::bijection(&Onion2D::new(side).unwrap())
                .unwrap_or_else(|e| panic!("side {side}: {e}"));
        }
    }

    #[test]
    fn continuous_for_small_sides() {
        for side in 1..=17 {
            let o = Onion2D::new(side).unwrap();
            assert_eq!(verify::discontinuities(&o), 0, "side {side}");
        }
    }

    #[test]
    fn layers_are_visited_in_order() {
        let side = 12;
        let o = Onion2D::new(side).unwrap();
        let u = o.universe();
        let mut last_layer = 1;
        for idx in 0..u.cell_count() {
            let layer = u.layer_of(o.point_unchecked(idx));
            assert!(
                layer >= last_layer,
                "layer decreased at index {idx}: {last_layer} -> {layer}"
            );
            last_layer = layer;
        }
    }

    #[test]
    fn layer_offsets_match_universe_bookkeeping() {
        let side = 10;
        let o = Onion2D::new(side).unwrap();
        let u = o.universe();
        for t in 1..=u.layer_count() {
            // The first cell of layer t is its bottom-left corner (t−1, t−1).
            let first = Point::new([t - 1, t - 1]);
            assert_eq!(o.index_unchecked(first), u.cells_before_layer(t));
        }
    }

    #[test]
    fn roundtrip_on_large_side() {
        let o = Onion2D::new(1 << 15).unwrap();
        let n = o.universe().cell_count();
        for idx in [0, 1, 12345, n / 2, n - 2, n - 1] {
            let p = o.point_unchecked(idx);
            assert_eq!(o.index_unchecked(p), idx);
        }
        for p in [
            Point::new([0, 0]),
            Point::new([(1 << 15) - 1, 0]),
            Point::new([777, 12_001]),
            Point::new([(1 << 14), (1 << 14)]),
        ] {
            assert_eq!(o.point_unchecked(o.index_unchecked(p)), p);
        }
    }

    #[test]
    fn start_is_origin_end_is_center() {
        let o = Onion2D::new(8).unwrap();
        assert_eq!(o.start(), Point::new([0, 0]));
        // Even side: the curve ends on the innermost 2×2 ring's left-top
        // cell, local (0,1) of the central square at (3,3)..(4,4) => (3,4).
        assert_eq!(o.end(), Point::new([3, 4]));
        let o = Onion2D::new(9).unwrap();
        assert_eq!(o.end(), Point::new([4, 4])); // odd side: exact center
    }

    #[test]
    fn rank_helpers_are_inverses_exhaustively() {
        for s in 1..=9u32 {
            for k in 0..u64::from(s) * u64::from(s) {
                let (u, v) = unrank_in_square(s, k);
                assert_eq!(rank_in_square(s, u, v), k, "s={s} k={k}");
            }
        }
    }

    #[test]
    fn square_successor_predecessor_match_unrank_exhaustively() {
        for s in 1..=12u32 {
            let n = u64::from(s) * u64::from(s);
            for k in 0..n {
                let (u, v) = unrank_in_square(s, k);
                if k + 1 < n {
                    assert_eq!(
                        successor_in_square(s, u, v),
                        unrank_in_square(s, k + 1),
                        "s={s} k={k}"
                    );
                }
                if k > 0 {
                    assert_eq!(
                        predecessor_in_square(s, u, v),
                        unrank_in_square(s, k - 1),
                        "s={s} k={k}"
                    );
                }
            }
            assert_eq!(last_in_square(s), unrank_in_square(s, n - 1), "s={s}");
        }
    }

    #[test]
    fn batch_overrides_match_scalar() {
        let o = Onion2D::new(13).unwrap();
        let points: Vec<Point<2>> = o.universe().iter_cells().collect();
        let mut indices = Vec::new();
        o.fill_indices(&points, &mut indices);
        assert_eq!(
            indices,
            points
                .iter()
                .map(|&p| o.index_unchecked(p))
                .collect::<Vec<_>>()
        );
        let mut back = Vec::new();
        o.fill_points(&indices, &mut back);
        assert_eq!(back, points);
    }

    #[test]
    fn stepper_walk_matches_unrank_walk() {
        for side in [1u32, 2, 5, 8, 9] {
            let o = Onion2D::new(side).unwrap();
            let n = o.universe().cell_count();
            let mut stepper = crate::CurveStepper::new(&o);
            for idx in 0..n {
                assert_eq!(
                    stepper.point(),
                    o.point_unchecked(idx),
                    "side={side} idx={idx}"
                );
                stepper.advance();
            }
        }
    }
}
