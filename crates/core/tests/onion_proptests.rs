//! Property tests of the onion curves' closed-form rank functions.

use onion_core::curve::verify;
use onion_core::onion2d::{rank_in_square, unrank_in_square};
use onion_core::{Onion2D, Onion3D, OnionNd, Point, SpaceFillingCurve, Universe};
use proptest::prelude::*;

proptest! {
    /// rank ∘ unrank = id on random squares of either parity.
    #[test]
    fn square_rank_roundtrip(s in 1u32..=600, seed in any::<u64>()) {
        let n = u64::from(s) * u64::from(s);
        let k = seed % n;
        let (u, v) = unrank_in_square(s, k);
        prop_assert!(u < s && v < s);
        prop_assert_eq!(rank_in_square(s, u, v), k);
    }

    /// The rank respects the layer structure: inner layers rank higher.
    #[test]
    fn square_rank_orders_layers(s in 2u32..=120, a in any::<(u32, u32)>(), b in any::<(u32, u32)>()) {
        let pa = (a.0 % s, a.1 % s);
        let pb = (b.0 % s, b.1 % s);
        let layer = |(x, y): (u32, u32)| (x + 1).min(s - x).min(y + 1).min(s - y);
        prop_assume!(layer(pa) < layer(pb));
        prop_assert!(rank_in_square(s, pa.0, pa.1) < rank_in_square(s, pb.0, pb.1));
    }

    /// 2D onion curve: forward then inverse round-trips on random cells of
    /// large universes (beyond what exhaustive tests can cover).
    #[test]
    fn onion2d_roundtrip_large(bits in 10u32..=15, x in any::<u32>(), y in any::<u32>()) {
        let side = (1u32 << bits) + 1; // odd sides too
        let o = Onion2D::new(side).unwrap();
        let p = Point::new([x % side, y % side]);
        prop_assert_eq!(o.point_unchecked(o.index_unchecked(p)), p);
    }

    /// 2D onion curve is continuous at every randomly probed position.
    #[test]
    fn onion2d_continuous_at_random_positions(side in 2u32..=4000, seed in any::<u64>()) {
        let o = Onion2D::new(side).unwrap();
        let n = o.universe().cell_count();
        let idx = seed % (n - 1);
        let a = o.point_unchecked(idx);
        let b = o.point_unchecked(idx + 1);
        prop_assert!(a.is_neighbor(&b), "jump at {idx}: {a} -> {b}");
    }

    /// 3D onion curve round-trips on random cells of large universes.
    #[test]
    fn onion3d_roundtrip_large(side in 2u32..=700, c in any::<(u32, u32, u32)>()) {
        let o = Onion3D::new(side).unwrap();
        let p = Point::new([c.0 % side, c.1 % side, c.2 % side]);
        prop_assert_eq!(o.point_unchecked(o.index_unchecked(p)), p);
    }

    /// 3D onion curve: layer offsets match the K1 polynomial for any even
    /// side (the paper's `24m²t' − 24mt'² + 8t'³` with t' = t − 1).
    #[test]
    fn onion3d_k1_polynomial(m in 1u32..=40) {
        let side = 2 * m;
        let u = Universe::<3>::new(side).unwrap();
        for t in 1..=u.layer_count() {
            let tp = u64::from(t - 1);
            let m64 = u64::from(m);
            let k1 = 24 * m64 * m64 * tp + 8 * tp.pow(3) - 24 * m64 * tp * tp;
            prop_assert_eq!(u.cells_before_layer(t), k1);
        }
    }

    /// OnionNd agrees with the universe's layer bookkeeping in 5 dimensions.
    #[test]
    fn onion_nd_layer_offsets_5d(side in 1u32..=9, seed in any::<u64>()) {
        let o = OnionNd::<5>::new(side).unwrap();
        let u = o.universe();
        let idx = seed % u.cell_count();
        let p = o.point_unchecked(idx);
        let t = u.layer_of(p);
        // The index lies within the layer's slab of the curve.
        prop_assert!(idx >= u.cells_before_layer(t));
        if t < u.layer_count() {
            prop_assert!(idx < u.cells_before_layer(t + 1));
        }
    }
}

/// Exhaustive bijection checks on a sample of odd/even sides beyond the
/// in-crate unit tests.
#[test]
fn bijection_sample_of_sides() {
    for side in [10u32, 13, 20, 25] {
        verify::bijection(&Onion2D::new(side).unwrap()).unwrap();
    }
    for side in [10u32, 11] {
        verify::bijection(&Onion3D::new(side).unwrap()).unwrap();
    }
}
