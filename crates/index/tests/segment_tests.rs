//! Integration tests of the bulk-built [`SegmentTree`] durable format:
//! equivalence with the live [`BPlusTree`] over random key sets
//! (duplicates included), survival across reopen from the raw file,
//! rejection of unsorted input and oversized entries, and corruption
//! detection through the per-page checksums.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_index::{BPlusTree, FileStore, PageStore, SegmentTree, DEFAULT_NODE_CAPACITY};
use std::path::{Path, PathBuf};

/// A fresh per-test directory under cargo's target tmpdir (inside the
/// workspace, wiped with `target/`).
fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Sorted random entries with duplicate runs; values encode insertion
/// order so duplicate ordering is checkable.
fn entries(seed: u64, count: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..count)
        .map(|_| rng.random_range(0..count as u64 / 2 + 1))
        .collect();
    keys.sort_unstable();
    keys.into_iter()
        .enumerate()
        .map(|(i, k)| (k, (k << 20) | i as u64))
        .collect()
}

fn build_segment(dir: &Path, name: &str, es: &[(u64, u64)]) -> SegmentTree<u64> {
    let store = FileStore::create(&dir.join(name), 256).unwrap();
    SegmentTree::build(store, 8, es.iter().copied()).unwrap()
}

#[test]
fn segment_matches_live_tree_on_gets_and_scans() {
    let dir = test_dir("segment-vs-live");
    for seed in [1u64, 7, 42] {
        let es = entries(seed, 600);
        let seg = build_segment(&dir, &format!("s{seed}.seg"), &es);
        let live = BPlusTree::bulk_load(es.clone(), DEFAULT_NODE_CAPACITY);
        assert_eq!(seg.len(), es.len() as u64);

        // Point gets return the newest duplicate, exactly like the tree.
        let max_key = es.last().unwrap().0;
        for key in 0..=max_key + 2 {
            assert_eq!(
                seg.get(key).unwrap(),
                live.get(key).copied(),
                "get({key}) seed {seed}"
            );
            assert_eq!(
                seg.count(key).unwrap() as usize,
                es.iter().filter(|&&(k, _)| k == key).count(),
                "count({key})"
            );
        }

        // Range scans emit identical entries in identical order
        // (oldest-to-newest within a duplicate run).
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        for _ in 0..40 {
            let a = rng.random_range(0..=max_key + 3);
            let b = rng.random_range(0..=max_key + 3);
            let (lo, hi) = (a.min(b), a.max(b));
            let mut from_seg = Vec::new();
            seg.scan(lo, hi, &mut |k, v, _| from_seg.push((k, *v)))
                .unwrap();
            let mut from_live = Vec::new();
            live.scan_range(lo, hi, &mut |_| {}, &mut |k, v| from_live.push((k, *v)));
            assert_eq!(from_seg, from_live, "scan [{lo}, {hi}] seed {seed}");
        }

        // `dup` indexes the duplicate run oldest-first.
        for &(k, _) in es.iter().take(50) {
            let run: Vec<u64> = es
                .iter()
                .filter(|&&(ek, _)| ek == k)
                .map(|&(_, v)| v)
                .collect();
            for (i, v) in run.iter().enumerate() {
                assert_eq!(seg.dup(k, i as u32).unwrap(), Some(*v), "dup({k}, {i})");
            }
            assert_eq!(seg.dup(k, run.len() as u32).unwrap(), None);
        }
    }
}

#[test]
fn segment_survives_reopen_from_the_raw_file() {
    let dir = test_dir("segment-reopen");
    let es = entries(9, 400);
    let path = dir.join("reopen.seg");
    {
        let store = FileStore::create(&path, 128).unwrap();
        let seg = SegmentTree::build(store, 4, es.iter().copied()).unwrap();
        assert_eq!(seg.len(), es.len() as u64);
        // Dropped here: only the bytes on disk survive.
    }
    let reopened = SegmentTree::open(FileStore::open(&path, 128).unwrap(), 4).unwrap();
    assert_eq!(reopened.len(), es.len() as u64);
    let mut streamed = Vec::new();
    reopened
        .stream(&mut |k, v: &u64, _| streamed.push((k, *v)))
        .unwrap();
    assert_eq!(streamed, es, "full stream equals the build input");
    // A tiny leaf cache still answers everything (just slower).
    let tiny = SegmentTree::open(FileStore::open(&path, 128).unwrap(), 1).unwrap();
    for &(k, _) in es.iter().step_by(17) {
        assert_eq!(tiny.get(k).unwrap(), reopened.get(k).unwrap());
    }
}

#[test]
fn scan_stats_report_real_io_and_cache_hits() {
    let dir = test_dir("segment-stats");
    let es: Vec<(u64, u64)> = (0..2000u64).map(|k| (k, k * 3)).collect();
    let seg = build_segment(&dir, "stats.seg", &es);
    let cold = seg.scan(0, 1999, &mut |_, _, _| {}).unwrap();
    assert!(cold.pages > 1, "dataset spans pages");
    assert!(cold.real_reads > 0, "cold scan touches the medium");
    // The full scan left the trailing leaves resident in the (8-page)
    // pool, so a small head scan is cold again but repeating it is warm.
    let first = seg.scan(0, 50, &mut |_, _, _| {}).unwrap();
    let warm_small = seg.scan(0, 50, &mut |_, _, _| {}).unwrap();
    // `pages`/`real_reads` count store fetches; warmed leaves show up as
    // `cache_hits` instead.
    assert_eq!(warm_small.real_reads, 0, "warm rescan: {warm_small:?}");
    assert_eq!(
        warm_small.cache_hits,
        first.pages + first.cache_hits,
        "every leaf of the repeat scan is resident"
    );
    // The store's own counters are the ground truth the stats mirror.
    assert!(seg.store().stats().reads >= cold.real_reads);
}

#[test]
fn build_rejects_unsorted_input() {
    let dir = test_dir("segment-unsorted");
    let store = FileStore::create(&dir.join("unsorted.seg"), 128).unwrap();
    let err = SegmentTree::build(store, 4, vec![(5u64, 0u64), (1, 1)]).unwrap_err();
    assert!(
        err.to_string().contains("not sorted"),
        "unexpected error: {err}"
    );
    // Equal keys are fine (duplicates), strictly descending is not.
    let store = FileStore::create(&dir.join("dups.seg"), 128).unwrap();
    SegmentTree::build(store, 4, vec![(1u64, 0u64), (1, 1), (2, 2)]).unwrap();
}

#[test]
fn build_rejects_entries_larger_than_a_page() {
    let dir = test_dir("segment-oversized");
    let store = FileStore::create(&dir.join("big.seg"), 64).unwrap();
    let huge = vec![0u8; 200];
    let err = SegmentTree::build(store, 4, vec![(1u64, huge)]).unwrap_err();
    assert!(err.to_string().contains("page"), "unexpected error: {err}");
}

#[test]
fn empty_segment_round_trips() {
    let dir = test_dir("segment-empty");
    let path = dir.join("empty.seg");
    let seg: SegmentTree<u64> =
        SegmentTree::build(FileStore::create(&path, 128).unwrap(), 4, Vec::new()).unwrap();
    assert!(seg.is_empty());
    assert_eq!(seg.get(0).unwrap(), None);
    let stats = seg.scan(0, u64::MAX, &mut |_, _, _| {}).unwrap();
    assert_eq!(stats.pages, 0);
    let reopened: SegmentTree<u64> =
        SegmentTree::open(FileStore::open(&path, 128).unwrap(), 4).unwrap();
    assert!(reopened.is_empty());
}

#[test]
fn corrupted_leaf_page_is_detected_by_its_checksum() {
    let dir = test_dir("segment-corrupt");
    let es = entries(3, 300);
    let path = dir.join("corrupt.seg");
    {
        let store = FileStore::create(&path, 128).unwrap();
        SegmentTree::build(store, 4, es.iter().copied()).unwrap();
    }
    // Flip one byte inside the first leaf page (page 1; page 0 is the
    // header).
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.seek(SeekFrom::Start(128 + 40)).unwrap();
        f.write_all(&[0xFF]).unwrap();
    }
    // Open succeeds (it validates the header and fence pages eagerly);
    // the leaf checksum fires on first read of the damaged page.
    let seg = SegmentTree::<u64>::open(FileStore::open(&path, 128).unwrap(), 4).unwrap();
    let err = seg
        .scan(0, u64::MAX, &mut |_, _, _| {})
        .expect_err("scan crosses the flipped byte");
    assert!(
        err.to_string().contains("checksum"),
        "unexpected error: {err}"
    );
    // Point reads of the damaged leaf fail the same way.
    assert!(seg.get(es[0].0).is_err());
}

#[test]
fn wrong_magic_and_page_size_are_rejected_on_open() {
    let dir = test_dir("segment-magic");
    let path = dir.join("magic.seg");
    {
        let store = FileStore::create(&path, 128).unwrap();
        SegmentTree::build(store, 4, vec![(1u64, 2u64)]).unwrap();
    }
    // Opening with a mismatched page size shreds the header layout.
    assert!(SegmentTree::<u64>::open(FileStore::open(&path, 256).unwrap(), 4).is_err());
    // A non-segment file is rejected outright.
    let junk = dir.join("junk.seg");
    std::fs::write(&junk, vec![0u8; 512]).unwrap();
    assert!(SegmentTree::<u64>::open(FileStore::open(&junk, 128).unwrap(), 4).is_err());
}
