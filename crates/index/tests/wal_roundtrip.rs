//! Durability-layer round trips at the index level: WAL framing against
//! byte-level damage, snapshot round trips across backends and shard
//! counts, and the persist/restore hooks feeding them.

use onion_core::{Onion2D, Point};
use sfc_clustering::RectQuery;
use sfc_index::{
    read_snapshot, write_snapshot, BatchOp, DiskModel, QueryOptions, Record, ShardedTable, Wal,
    WAL_MAGIC,
};
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_ops(n: u64) -> Vec<BatchOp<2, u64>> {
    (0..n)
        .map(|i| {
            let p = Point::new([(i % 13) as u32, (i % 7) as u32]);
            match i % 3 {
                0 => BatchOp::Insert(p, i),
                1 => BatchOp::Update(p, i * 10),
                _ => BatchOp::Delete(p),
            }
        })
        .collect()
}

#[test]
fn wal_replays_epochs_in_order_and_continues_appending() {
    let dir = test_dir("wal-replay");
    let path = dir.join("wal.log");
    let (mut wal, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert!(frames.is_empty());
    assert!(wal.is_empty());
    wal.append_epoch(1, &sample_ops(5)).unwrap();
    wal.append_epoch(2, &sample_ops(3)).unwrap();
    assert_eq!(wal.last_epoch(), 2);
    drop(wal);

    // Reopen, replay, and keep committing — numbering carries on.
    let (mut wal, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert_eq!(frames.len(), 2);
    assert_eq!((frames[0].epoch, frames[1].epoch), (1, 2));
    assert_eq!(frames[0].ops, sample_ops(5));
    assert_eq!(frames[1].ops, sample_ops(3));
    wal.append_epoch(3, &sample_ops(1)).unwrap();
    drop(wal);
    let (_, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert_eq!(frames.len(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_is_truncated_and_overwritten_by_the_next_commit() {
    let dir = test_dir("wal-torn");
    let path = dir.join("wal.log");
    let (mut wal, _) = Wal::open::<2, u64>(&path).unwrap();
    wal.append_epoch(1, &sample_ops(4)).unwrap();
    let committed = wal.len();
    wal.append_epoch(2, &sample_ops(4)).unwrap();
    drop(wal);

    // Tear the second frame a few bytes past its header.
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(committed + 5).unwrap();
    drop(file);

    let (mut wal, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert_eq!(frames.len(), 1, "the torn frame is gone");
    assert_eq!(wal.len(), committed, "valid prefix ends before the tear");
    // Truncation is lazy: a read-only open leaves the damaged bytes on
    // disk for inspection...
    assert_eq!(
        std::fs::metadata(&path).unwrap().len(),
        committed + 5,
        "read-only opens preserve the torn tail"
    );
    // ...and the first append cuts them off before writing; epoch 2 can
    // be recommitted immediately.
    wal.append_epoch(2, &sample_ops(2)).unwrap();
    drop(wal);
    let (_, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert_eq!(frames.len(), 2);
    assert_eq!(frames[1].ops, sample_ops(2));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn frame_header_damage_stops_replay_but_destroys_nothing_on_open() {
    // A frame *header* (len/crc) is the one region no checksum vouches
    // for: damage there strands every later frame. Replay must stop at
    // the damage — prefix semantics — while a read-only open leaves the
    // stranded (intact!) frames on disk rather than truncating them.
    let dir = test_dir("wal-header-damage");
    let path = dir.join("wal.log");
    let (mut wal, _) = Wal::open::<2, u64>(&path).unwrap();
    wal.append_epoch(1, &sample_ops(4)).unwrap();
    let first_end = wal.len();
    wal.append_epoch(2, &sample_ops(4)).unwrap();
    wal.append_epoch(3, &sample_ops(4)).unwrap();
    drop(wal);

    let mut bytes = std::fs::read(&path).unwrap();
    bytes[first_end as usize] ^= 0x10; // frame 2's length field
    std::fs::write(&path, &bytes).unwrap();

    let (wal, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert_eq!(frames.len(), 1, "replay stops at the damaged header");
    assert_eq!(wal.len(), first_end);
    drop(wal);
    assert_eq!(
        std::fs::read(&path).unwrap(),
        bytes,
        "no byte was destroyed by opening — frames 2 and 3 remain for repair"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn foreign_files_are_refused_not_truncated() {
    let dir = test_dir("wal-foreign");
    let path = dir.join("wal.log");
    std::fs::write(&path, b"definitely not a WAL, but 8+ bytes long").unwrap();
    let err = Wal::open::<2, u64>(&path).unwrap_err();
    assert!(err.to_string().contains("bad magic"), "{err}");
    // The file was left alone.
    assert!(std::fs::read(&path).unwrap().starts_with(b"definitely"));
    // A file shorter than the magic is fair game: it cannot hold data.
    let stub = dir.join("stub.log");
    std::fs::write(&stub, &WAL_MAGIC[..3]).unwrap();
    let (wal, frames) = Wal::open::<2, u64>(&stub).unwrap();
    assert!(frames.is_empty());
    assert!(wal.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn live_logs_are_locked_against_second_openers() {
    let dir = test_dir("wal-lock");
    let path = dir.join("wal.log");
    let (mut wal, _) = Wal::open::<2, u64>(&path).unwrap();
    wal.append_epoch(1, &sample_ops(2)).unwrap();
    // A second engine (same or another process) must be refused while
    // the first is serving — silent interleaved appends would corrupt
    // fsync-acknowledged frames.
    let err = Wal::open::<2, u64>(&path).unwrap_err();
    assert!(err.to_string().contains("locking WAL"), "{err}");
    drop(wal); // releases the OS lock (as would a crash)
    let (_, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert_eq!(frames.len(), 1, "nothing was lost to the refused opener");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mistyped_opens_error_instead_of_truncating() {
    let dir = test_dir("wal-mistyped");
    let path = dir.join("wal.log");
    let (mut wal, _) = Wal::open::<2, String>(&path).unwrap();
    wal.append_epoch(
        1,
        &[BatchOp::Insert(Point::new([1, 2]), "hello".to_string())],
    )
    .unwrap();
    drop(wal);
    // The frame is intact (CRC passes) but holds Strings, not u64s:
    // that is a caller mistake, not a torn tail — refuse, don't destroy.
    let before = std::fs::read(&path).unwrap();
    let err = Wal::open::<2, u64>(&path).unwrap_err();
    assert!(err.to_string().contains("does not decode"), "{err}");
    assert_eq!(std::fs::read(&path).unwrap(), before, "file untouched");
    // The right type still replays everything.
    let (_, frames) = Wal::open::<2, String>(&path).unwrap();
    assert_eq!(frames.len(), 1);
    assert_eq!(
        frames[0].ops,
        vec![BatchOp::Insert(Point::new([1, 2]), "hello".to_string())]
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rollback_last_uncommits_exactly_one_frame() {
    let dir = test_dir("wal-rollback");
    let path = dir.join("wal.log");
    let (mut wal, _) = Wal::open::<2, u64>(&path).unwrap();
    wal.append_epoch(1, &sample_ops(3)).unwrap();
    let len_after_first = wal.len();
    wal.append_epoch(2, &sample_ops(5)).unwrap();
    wal.rollback_last().unwrap();
    assert_eq!(wal.len(), len_after_first);
    assert_eq!(wal.last_epoch(), 1);
    // Only the most recent append is undoable; a second undo errors.
    assert!(wal.rollback_last().is_err());
    // Epoch 2 can now be recommitted with different contents.
    wal.append_epoch(2, &sample_ops(1)).unwrap();
    drop(wal);
    let (_, frames) = Wal::open::<2, u64>(&path).unwrap();
    assert_eq!(frames.len(), 2);
    assert_eq!(frames[1].ops, sample_ops(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
#[should_panic(expected = "strictly increasing")]
fn non_monotonic_epochs_are_rejected() {
    let dir = test_dir("wal-monotonic");
    let (mut wal, _) = Wal::open::<2, u64>(&dir.join("wal.log")).unwrap();
    wal.append_epoch(5, &sample_ops(1)).unwrap();
    let _ = wal.append_epoch(5, &sample_ops(1));
}

fn dense_table(side: u32, shards: usize) -> ShardedTable<Onion2D, u64, 2> {
    let records: Vec<(Point<2>, u64)> = (0..side)
        .flat_map(|x| (0..side).map(move |y| (Point::new([x, y]), u64::from(x * 100 + y))))
        .collect();
    ShardedTable::build(
        Onion2D::new(side).unwrap(),
        records,
        DiskModel::ssd(),
        shards,
    )
    .unwrap()
}

#[test]
fn snapshot_round_trips_across_shard_counts_and_backends() {
    let dir = test_dir("snapshot-roundtrip");
    let side = 16u32;
    let source = dense_table(side, 3);
    // Mutate through the batch path so the snapshot sees a lived-in
    // table (duplicates included).
    source
        .apply_batch(vec![
            BatchOp::Insert(Point::new([2, 2]), 999),
            BatchOp::Delete(Point::new([5, 5])),
            BatchOp::Update(Point::new([7, 7]), 42),
        ])
        .unwrap();
    let path = dir.join("snapshot.bin");
    write_snapshot(&path, 17, &source).unwrap();

    let (epoch, entries) = read_snapshot::<2, u64>(&path).unwrap().unwrap();
    assert_eq!(epoch, 17);
    assert_eq!(entries.len(), source.len());
    assert!(
        entries.windows(2).all(|w| w[0].0 <= w[1].0),
        "snapshot entries arrive in curve order"
    );

    let queries = [
        RectQuery::new([0, 0], [side, side]).unwrap(),
        RectQuery::new([1, 1], [9, 6]).unwrap(),
    ];
    let reference: Vec<Vec<Record<2, u64>>> = queries
        .iter()
        .map(|q| {
            source
                .query_rect(q, &QueryOptions::default())
                .unwrap()
                .records
        })
        .collect();
    // Restore into different shard counts and the paged backend: same
    // records, same order, every time.
    for shards in [1usize, 2, 5] {
        let target: ShardedTable<Onion2D, u64, 2> = ShardedTable::build(
            Onion2D::new(side).unwrap(),
            Vec::new(),
            DiskModel::ssd(),
            shards,
        )
        .unwrap();
        target.restore_entries(entries.clone()).unwrap();
        assert_eq!(target.len(), source.len(), "{shards} shards");
        for (q, expect) in queries.iter().zip(&reference) {
            assert_eq!(
                &target
                    .query_rect(q, &QueryOptions::default())
                    .unwrap()
                    .records,
                expect,
                "{shards} shards"
            );
        }
    }
    let paged = ShardedTable::build_paged(
        Onion2D::new(side).unwrap(),
        Vec::new(),
        DiskModel::ssd(),
        2,
        64,
    )
    .unwrap();
    paged.restore_entries(entries).unwrap();
    for (q, expect) in queries.iter().zip(&reference) {
        assert_eq!(
            &paged
                .query_rect(q, &QueryOptions::default())
                .unwrap()
                .records,
            expect,
            "paged"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_snapshots_are_reported_not_applied() {
    let dir = test_dir("snapshot-corrupt");
    let path = dir.join("snapshot.bin");
    assert!(
        read_snapshot::<2, u64>(&path).unwrap().is_none(),
        "missing is fine"
    );
    write_snapshot(&path, 1, &dense_table(8, 2)).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    let err = read_snapshot::<2, u64>(&path).unwrap_err();
    assert!(err.to_string().contains("checksum"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn restore_rejects_keys_outside_the_universe() {
    let table: ShardedTable<Onion2D, u64, 2> =
        ShardedTable::build(Onion2D::new(4).unwrap(), Vec::new(), DiskModel::ssd(), 2).unwrap();
    let bogus = vec![(
        999u64, // 4x4 universe has 16 cells
        Record {
            point: Point::new([0, 0]),
            value: 1u64,
        },
    )];
    assert!(table.restore_entries(bogus).is_err());
    assert!(table.is_empty(), "nothing applied");
    // Unsorted entries are a reportable error too (never a panic — a
    // durable engine's open must be able to surface them).
    let rec = |x: u32, v: u64| Record {
        point: Point::new([x, 0]),
        value: v,
    };
    let unsorted = vec![(9u64, rec(1, 1)), (3u64, rec(2, 2))];
    let err = table.restore_entries(unsorted).unwrap_err();
    assert!(err.to_string().contains("curve-key order"), "{err}");
    assert!(table.is_empty(), "nothing applied");
}
