//! Engine-level properties of the layered storage engine:
//!
//! * the table and sharding layers are `Send + Sync` (checked at compile
//!   time) and actually serve concurrent readers;
//! * insert/delete sequences preserve every B+-tree structural invariant
//!   and agree with a naive sorted-multiset model;
//! * sharded queries return exactly the single-table results for **every**
//!   registry curve, across shard counts, backends, and write traffic.

use onion_core::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::{curve_2d, CURVE_NAMES};
use sfc_clustering::{RectQuery, ScratchPool};
use sfc_index::{
    BPlusTree, BatchOp, DiskModel, MemoryBackend, PagedBackend, QueryOptions, Record, SfcTable,
    ShardedTable,
};
use sfc_workloads::zipf_points;

/// Compile-time `Send + Sync` assertions: the engine's whole read path must
/// be shareable across threads. (This is the satellite guarantee that the
/// old `RefCell`-scratch table could not provide.)
#[test]
fn engine_types_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SfcTable<onion_core::Onion2D, u64, 2>>();
    assert_send_sync::<SfcTable<onion_core::Onion2D, u64, 2, PagedBackend<Record<2, u64>>>>();
    assert_send_sync::<ShardedTable<onion_core::Onion2D, u64, 2>>();
    assert_send_sync::<ShardedTable<onion_core::Onion2D, u64, 2, PagedBackend<Record<2, u64>>>>();
    assert_send_sync::<MemoryBackend<u64>>();
    assert_send_sync::<PagedBackend<u64>>();
    assert_send_sync::<BPlusTree<u64>>();
    assert_send_sync::<ScratchPool<2>>();
    // Registry curves are handed out thread-safe, so dyn-curve tables are
    // shareable too.
    assert_send_sync::<SfcTable<sfc_baselines::DynCurve<2>, u64, 2>>();
    assert_send_sync::<ShardedTable<sfc_baselines::DynCurve<2>, u64, 2>>();
}

/// Concurrent readers on one shared table: every thread sees the full,
/// correct result set.
#[test]
fn concurrent_queries_on_shared_table() {
    let side = 32u32;
    let mut records = Vec::new();
    for x in 0..side {
        for y in 0..side {
            records.push((Point::new([x, y]), x * 1000 + y));
        }
    }
    let table = SfcTable::build(
        onion_core::Onion2D::new(side).unwrap(),
        records,
        DiskModel::ssd(),
    )
    .unwrap();
    let queries = [
        RectQuery::new([0, 0], [32, 32]).unwrap(),
        RectQuery::new([3, 5], [9, 11]).unwrap(),
        RectQuery::new([20, 0], [12, 32]).unwrap(),
        RectQuery::new([31, 31], [1, 1]).unwrap(),
    ];
    let expected: Vec<Vec<Record<2, u32>>> = queries
        .iter()
        .map(|q| {
            table
                .query_rect(q, &QueryOptions::default())
                .unwrap()
                .records
        })
        .collect();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                for (q, expect) in queries.iter().zip(&expected) {
                    let got = table
                        .query_rect(q, &QueryOptions::default())
                        .unwrap()
                        .records;
                    assert_eq!(&got, expect);
                }
            });
        }
    });
}

/// Paged sharded tables return the same rows as a plain single table for
/// every registry curve — the backend changes the cost model, the shards
/// change the execution, neither may change the answers.
#[test]
fn paged_sharded_equals_single_for_every_registry_curve() {
    let side = 16u32;
    let mut rng = StdRng::seed_from_u64(7);
    let records: Vec<(Point<2>, u64)> = zipf_points::<2, _>(side, 400, 0.8, &mut rng)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, i as u64))
        .collect();
    let model = DiskModel {
        page_size: 16,
        seek_us: 8_000.0,
        transfer_us: 100.0,
    };
    let queries = [
        RectQuery::new([0, 0], [side, side]).unwrap(),
        RectQuery::new([3, 5], [9, 8]).unwrap(),
        RectQuery::new([0, 14], [16, 2]).unwrap(),
    ];
    for name in CURVE_NAMES {
        let single =
            SfcTable::build(curve_2d(name, side).unwrap(), records.clone(), model).unwrap();
        let paged_sharded =
            ShardedTable::build_paged(curve_2d(name, side).unwrap(), records.clone(), model, 4, 32)
                .unwrap();
        for q in &queries {
            let expect = single
                .query_rect(q, &QueryOptions::default())
                .unwrap()
                .records;
            // Cold and warm pools must both return the exact rows.
            let cold = paged_sharded
                .query_rect(q, &QueryOptions::default())
                .unwrap();
            let warm = paged_sharded
                .query_rect(q, &QueryOptions::default())
                .unwrap();
            assert_eq!(cold.records, expect, "{name} cold {q:?}");
            assert_eq!(warm.records, expect, "{name} warm {q:?}");
            assert!(
                warm.io.cache_hits >= cold.io.cache_hits,
                "{name} warm run hits the pools at least as often {q:?}"
            );
        }
    }
}

proptest! {
    /// Random insert/delete interleavings preserve the B+-tree invariants
    /// and match a sorted-multiset model (stable among duplicates: inserts
    /// append after equal keys, removals take the first).
    #[test]
    fn btree_writes_preserve_invariants(seed in any::<u64>(), capacity in 2usize..9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree: BPlusTree<u32> = BPlusTree::new(capacity);
        let mut model: Vec<(u64, u32)> = Vec::new();
        for step in 0..400u32 {
            let key = u64::from(rng.random_range(0..48u32)); // dense: duplicates happen
            if rng.random_range(0..3u32) == 0 {
                let got = tree.remove(key);
                let expect = model
                    .iter()
                    .position(|&(k, _)| k == key)
                    .map(|i| model.remove(i).1);
                prop_assert_eq!(got, expect, "remove {} at step {}", key, step);
            } else {
                tree.insert(key, step);
                let pos = model.partition_point(|&(k, _)| k <= key);
                model.insert(pos, (key, step));
            }
        }
        tree.check_invariants().map_err(|e| format!("invariants: {e}"))?;
        prop_assert_eq!(tree.len(), model.len());
        let got: Vec<(u64, u32)> = tree.iter().map(|(k, &v)| (k, v)).collect();
        prop_assert_eq!(got, model);
    }

    /// For every registry curve: a sharded table answers rectangle queries
    /// exactly like the unsharded table, before and after write traffic,
    /// across shard counts — including on Zipf-skewed data where shards are
    /// badly imbalanced.
    #[test]
    fn sharded_equals_single_for_every_registry_curve(
        seed in any::<u64>(),
        shards in 2usize..7,
    ) {
        let side = 16u32; // power of two: every registry curve accepts it
        let mut rng = StdRng::seed_from_u64(seed);
        let points = zipf_points::<2, _>(side, 300, 0.8, &mut rng).points;
        let records: Vec<(Point<2>, u64)> = points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        for name in CURVE_NAMES {
            let single = SfcTable::build(
                curve_2d(name, side).unwrap(),
                records.clone(),
                DiskModel::hdd(),
            )
            .unwrap();
            let sharded = ShardedTable::build(
                curve_2d(name, side).unwrap(),
                records.clone(),
                DiskModel::hdd(),
                shards,
            )
            .unwrap();
            prop_assert_eq!(sharded.len(), single.len());
            let queries = [
                RectQuery::new([0, 0], [side, side]).unwrap(),
                RectQuery::from_corners(
                    Point::new([rng.random_range(0..side), rng.random_range(0..side)]),
                    Point::new([rng.random_range(0..side), rng.random_range(0..side)]),
                ),
                RectQuery::new([0, 0], [1, 1]).unwrap(),
            ];
            for q in &queries {
                let a = single.query_rect(q, &QueryOptions::default()).unwrap();
                let b = sharded.query_rect(q, &QueryOptions::default()).unwrap();
                prop_assert_eq!(
                    &a.records, &b.records,
                    "{} shards={} {:?}", name, shards, q
                );
                prop_assert_eq!(a.io.entries, b.io.entries);
            }
            let batch = sharded.query_rect_batch(&queries).unwrap();
            for (q, res) in queries.iter().zip(&batch) {
                prop_assert_eq!(
                    &res.records,
                    &single.query_rect(q, &QueryOptions::default()).unwrap().records,
                    "batch {} {:?}", name, q
                );
            }
        }
    }

    /// Write traffic routes identically through both layers for every
    /// registry curve: after the same inserts/deletes/updates, sharded and
    /// single tables stay equal.
    #[test]
    fn writes_keep_sharded_and_single_in_sync(seed in any::<u64>(), shards in 2usize..6) {
        let side = 16u32;
        for name in CURVE_NAMES {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut single: SfcTable<_, u64, 2> =
                SfcTable::new(curve_2d(name, side).unwrap(), DiskModel::ssd());
            let mut sharded: ShardedTable<_, u64, 2> = ShardedTable::build(
                curve_2d(name, side).unwrap(),
                Vec::new(),
                DiskModel::ssd(),
                shards,
            )
            .unwrap();
            for step in 0..200u64 {
                let p = Point::new([rng.random_range(0..side), rng.random_range(0..side)]);
                match rng.random_range(0..4u32) {
                    0 => {
                        prop_assert_eq!(
                            single.delete(p).unwrap(),
                            sharded.delete(p).unwrap(),
                            "{} delete", name
                        );
                    }
                    1 => {
                        prop_assert_eq!(
                            single.update(p, step).unwrap(),
                            sharded.update(p, step).unwrap(),
                            "{} update", name
                        );
                    }
                    _ => {
                        single.insert(p, step).unwrap();
                        sharded.insert(p, step).unwrap();
                    }
                }
            }
            prop_assert_eq!(single.len(), sharded.len());
            let q = RectQuery::new([0, 0], [side, side]).unwrap();
            prop_assert_eq!(
                single.query_rect(&q, &QueryOptions::default()).unwrap().records,
                sharded.query_rect(&q, &QueryOptions::default()).unwrap().records,
                "{}", name
            );
        }
    }

    /// The paged backend changes the cost accounting, never the answers:
    /// query results match the memory backend's, and replaying a workload
    /// converts transfers into cache hits without touching results.
    #[test]
    fn paged_backend_answers_match_memory_backend(seed in any::<u64>()) {
        let side = 32u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let points = zipf_points::<2, _>(side, 500, 0.6, &mut rng).points;
        let records: Vec<(Point<2>, u64)> = points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect();
        let model = DiskModel { page_size: 32, seek_us: 8_000.0, transfer_us: 100.0 };
        let mem = SfcTable::build(
            curve_2d("onion", side).unwrap(),
            records.clone(),
            model,
        )
        .unwrap();
        let paged = SfcTable::build_paged(
            curve_2d("onion", side).unwrap(),
            records,
            model,
            128,
        )
        .unwrap();
        for _ in 0..8 {
            let q = RectQuery::from_corners(
                Point::new([rng.random_range(0..side), rng.random_range(0..side)]),
                Point::new([rng.random_range(0..side), rng.random_range(0..side)]),
            );
            let a = mem.query_rect(&q, &QueryOptions::default()).unwrap();
            let cold = paged.query_rect(&q, &QueryOptions::default()).unwrap();
            let warm = paged.query_rect(&q, &QueryOptions::default()).unwrap();
            prop_assert_eq!(&a.records, &cold.records, "{:?}", q);
            prop_assert_eq!(&a.records, &warm.records, "{:?}", q);
            prop_assert_eq!(a.io.seeks, cold.io.seeks);
            // The replay is fully absorbed by a pool larger than the table.
            prop_assert_eq!(warm.io.pages, 0, "{:?}", q);
            prop_assert_eq!(warm.io.cache_hits, cold.io.pages + cold.io.cache_hits);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// The parallel epoch apply is observationally identical to the
    /// serial reference: for every registry curve and 1/2/5 shards, a
    /// batch large enough to cross `apply_batch`'s thread threshold
    /// returns the same displaced payloads (in submission order) and
    /// lands both tables on the same record count and full-scan state as
    /// [`ShardedTable::apply_batch_serial`] — including adversarial
    /// same-point op chains, whose submission order parallelism must
    /// never reorder.
    #[test]
    fn parallel_apply_matches_serial_for_every_curve(seed in any::<u64>()) {
        let side = 16u32;
        let mut rng = StdRng::seed_from_u64(seed);
        // Well above the 1024-op parallel threshold, with heavy same-point
        // traffic (the universe has only 256 cells).
        let ops: Vec<BatchOp<2, u64>> = (0..2048)
            .map(|i| {
                let p = Point::new([
                    rng.random_range(0..side),
                    rng.random_range(0..side),
                ]);
                match rng.random_range(0..10u32) {
                    0..=4 => BatchOp::Insert(p, i),
                    5..=7 => BatchOp::Update(p, 1_000_000 + i),
                    _ => BatchOp::Delete(p),
                }
            })
            .collect();
        for name in CURVE_NAMES {
            for shards in [1usize, 2, 5] {
                let parallel: ShardedTable<_, u64, 2> = ShardedTable::build(
                    curve_2d(name, side).unwrap(),
                    Vec::new(),
                    DiskModel::ssd(),
                    shards,
                )
                .unwrap();
                let serial: ShardedTable<_, u64, 2> = ShardedTable::build(
                    curve_2d(name, side).unwrap(),
                    Vec::new(),
                    DiskModel::ssd(),
                    shards,
                )
                .unwrap();
                let par_results = parallel.apply_batch_parallel(ops.clone()).unwrap();
                let ser_results = serial.apply_batch_serial(ops.clone()).unwrap();
                prop_assert_eq!(
                    &par_results,
                    &ser_results,
                    "{} at {} shards: displaced payloads",
                    name,
                    shards
                );
                prop_assert_eq!(parallel.len(), serial.len(), "{} record count", name);
                let q = RectQuery::new([0, 0], [side, side]).unwrap();
                prop_assert_eq!(
                    parallel.query_rect(&q, &QueryOptions::default()).unwrap().records,
                    serial.query_rect(&q, &QueryOptions::default()).unwrap().records,
                    "{} at {} shards: full-scan state",
                    name,
                    shards
                );
            }
        }
    }
}
