//! Backend-equivalence suite for the disk-resident [`FileBackend`]: for
//! every registry curve and several shard counts, a file-backed sharded
//! table must return byte-identical query results to the in-memory and
//! paged backends — the storage medium may never change an answer. Also
//! covers snapshot restore into a *different* shard count and a mutation
//! stream exercising the segment-overlay write path.

use onion_core::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sfc_baselines::{curve_2d, CURVE_NAMES};
use sfc_clustering::RectQuery;
use sfc_index::{BatchOp, DiskModel, QueryOptions, Record, SfcTable, ShardedTable, StoreConfig};
use sfc_workloads::zipf_points;
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Tight store: small pages and a 4-page pool, so any dataset of real
/// size is genuinely re-read from the file rather than served resident.
fn tight_store() -> StoreConfig {
    StoreConfig {
        page_size: 256,
        pool_pages: 4,
    }
}

fn model() -> DiskModel {
    DiskModel {
        page_size: 16,
        seek_us: 8_000.0,
        transfer_us: 100.0,
    }
}

fn dataset(seed: u64, side: u32, count: usize) -> Vec<(Point<2>, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    zipf_points::<2, _>(side, count, 0.8, &mut rng)
        .points
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, (i as u64) << 8 | 0x5a))
        .collect()
}

fn queries(side: u32) -> Vec<RectQuery<2>> {
    vec![
        RectQuery::new([0, 0], [side, side]).unwrap(),
        RectQuery::new([2, 3], [7, 9]).unwrap(),
        RectQuery::new([side - 4, 0], [4, side]).unwrap(),
        RectQuery::new([5, 5], [1, 1]).unwrap(),
    ]
}

/// The core equivalence matrix: every registry curve × 1/2/5 shards,
/// memory vs paged vs file-backed, identical records for every query.
#[test]
fn file_backend_matches_memory_for_every_registry_curve_and_shard_count() {
    let dir = test_dir("stored-equivalence");
    let side = 16u32;
    let records = dataset(11, side, 320);
    let qs = queries(side);
    for name in CURVE_NAMES {
        let single =
            SfcTable::build(curve_2d(name, side).unwrap(), records.clone(), model()).unwrap();
        for shards in [1usize, 2, 5] {
            let mem = ShardedTable::build(
                curve_2d(name, side).unwrap(),
                records.clone(),
                model(),
                shards,
            )
            .unwrap();
            let stored = ShardedTable::build_stored(
                curve_2d(name, side).unwrap(),
                records.clone(),
                model(),
                shards,
                &dir.join(format!("{name}-{shards}")),
                tight_store(),
            )
            .unwrap();
            assert_eq!(stored.len(), records.len());
            for q in &qs {
                let expect = single
                    .query_rect(q, &QueryOptions::default())
                    .unwrap()
                    .records;
                let from_mem = mem.query_rect(q, &QueryOptions::default()).unwrap().records;
                let cold = stored.query_rect(q, &QueryOptions::default()).unwrap();
                let warm = stored.query_rect(q, &QueryOptions::default()).unwrap();
                assert_eq!(from_mem, expect, "{name}/{shards} memory {q:?}");
                assert_eq!(cold.records, expect, "{name}/{shards} stored cold {q:?}");
                assert_eq!(warm.records, expect, "{name}/{shards} stored warm {q:?}");
            }
            // The file backend reports *real* I/O; simulated backends
            // must report none.
            let full = RectQuery::new([0, 0], [side, side]).unwrap();
            let real = stored
                .query_rect(&full, &QueryOptions::default())
                .unwrap()
                .io;
            assert!(real.real_reads > 0, "{name}/{shards} disk scan reads pages");
            let simulated = mem.query_rect(&full, &QueryOptions::default()).unwrap().io;
            assert_eq!(
                simulated.real_reads, 0,
                "{name}/{shards} memory is simulated"
            );
        }
    }
}

/// Point gets through the owned-guard path agree with the memory backend
/// for hits, misses, and out-of-universe errors.
#[test]
fn stored_point_gets_match_memory() {
    let dir = test_dir("stored-gets");
    let side = 16u32;
    let records = dataset(23, side, 250);
    let name = CURVE_NAMES[0];
    let mem =
        ShardedTable::build(curve_2d(name, side).unwrap(), records.clone(), model(), 3).unwrap();
    let stored = ShardedTable::build_stored(
        curve_2d(name, side).unwrap(),
        records.clone(),
        model(),
        3,
        &dir,
        tight_store(),
    )
    .unwrap();
    for x in 0..side {
        for y in 0..side {
            let p = Point::new([x, y]);
            let a = mem.get(p).unwrap().map(|g| g.value);
            let b = stored.get(p).unwrap().map(|g| g.value);
            assert_eq!(a, b, "get({x},{y})");
        }
    }
    let outside = Point::new([side + 1, 0]);
    assert!(stored.get(outside).is_err());
    assert!(mem.get(outside).is_err());
}

/// A snapshot persisted from a stored table restores into a stored table
/// with a *different* shard count — and into a memory table — without
/// changing a single answer.
#[test]
fn stored_snapshot_restores_into_a_different_shard_count() {
    let dir = test_dir("stored-reshard");
    let side = 16u32;
    let records = dataset(31, side, 300);
    let name = "onion";
    let source = ShardedTable::build_stored(
        curve_2d(name, side).unwrap(),
        records.clone(),
        model(),
        2,
        &dir.join("src"),
        tight_store(),
    )
    .unwrap();
    // Persist every shard in curve-key order — the snapshot stream.
    let snap = source.snapshot();
    let mut entries: Vec<(u64, Record<2, u64>)> = Vec::new();
    for shard in 0..source.shard_count() {
        snap.persist_shard(shard, &mut |k, rec| entries.push((k, *rec)))
            .unwrap();
    }
    assert_eq!(entries.len(), records.len());
    assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "curve order");

    // Restore into five file-backed shards and into three memory shards.
    let wider = ShardedTable::build_stored(
        curve_2d(name, side).unwrap(),
        Vec::new(),
        model(),
        5,
        &dir.join("dst"),
        tight_store(),
    )
    .unwrap();
    wider.restore_entries(entries.clone()).unwrap();
    let mem = ShardedTable::build(curve_2d(name, side).unwrap(), Vec::new(), model(), 3).unwrap();
    mem.restore_entries(entries).unwrap();

    assert_eq!(wider.len(), records.len());
    assert_eq!(mem.len(), records.len());
    for q in &queries(side) {
        let expect = source
            .query_rect(q, &QueryOptions::default())
            .unwrap()
            .records;
        assert_eq!(
            wider
                .query_rect(q, &QueryOptions::default())
                .unwrap()
                .records,
            expect,
            "restored 2→5 stored shards {q:?}"
        );
        assert_eq!(
            mem.query_rect(q, &QueryOptions::default()).unwrap().records,
            expect,
            "restored 2→3 memory shards {q:?}"
        );
    }
}

/// A mixed mutation stream (inserts, updates, deletes — exercising the
/// segment base, the overlay tree, and the per-key base edits) keeps the
/// file-backed table in lockstep with the memory backend.
#[test]
fn mutation_stream_keeps_stored_and_memory_in_lockstep() {
    let dir = test_dir("stored-mutations");
    let side = 16u32;
    let records = dataset(47, side, 200);
    let name = "hilbert";
    let mem =
        ShardedTable::build(curve_2d(name, side).unwrap(), records.clone(), model(), 3).unwrap();
    let stored = ShardedTable::build_stored(
        curve_2d(name, side).unwrap(),
        records,
        model(),
        3,
        &dir,
        tight_store(),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for round in 0..12 {
        let batch: Vec<BatchOp<2, u64>> = (0..40)
            .map(|_| {
                let p = Point::new([rng.random_range(0..side), rng.random_range(0..side)]);
                match rng.random_range(0..10) {
                    0..=4 => BatchOp::Insert(p, rng.random_range(0..1u64 << 32)),
                    5..=7 => BatchOp::Update(p, rng.random_range(0..1u64 << 32)),
                    _ => BatchOp::Delete(p),
                }
            })
            .collect();
        let a = mem.apply_batch(batch.clone()).unwrap();
        let b = stored.apply_batch(batch).unwrap();
        assert_eq!(a, b, "round {round}: batch results diverge");
        assert_eq!(mem.len(), stored.len(), "round {round}: sizes diverge");
        let full = RectQuery::new([0, 0], [side, side]).unwrap();
        assert_eq!(
            mem.query_rect(&full, &QueryOptions::default())
                .unwrap()
                .records,
            stored
                .query_rect(&full, &QueryOptions::default())
                .unwrap()
                .records,
            "round {round}: full scans diverge"
        );
    }
    // Compaction folds the overlay back into fresh segment generations
    // without changing any answer.
    stored.compact_shards().unwrap();
    let full = RectQuery::new([0, 0], [side, side]).unwrap();
    assert_eq!(
        mem.query_rect(&full, &QueryOptions::default())
            .unwrap()
            .records,
        stored
            .query_rect(&full, &QueryOptions::default())
            .unwrap()
            .records,
        "post-compaction scans diverge"
    );
}
