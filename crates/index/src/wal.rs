//! Durability: an epoch-framed write-ahead log and point-in-time
//! snapshots of table contents in curve order.
//!
//! The serving layer (`sfc-engine`) applies writes in *epochs* — batches
//! sorted into curve-key order and pushed through
//! [`ShardedTable::apply_batch`](crate::ShardedTable::apply_batch). That
//! batch is exactly the right unit of logging: this module persists each
//! epoch as one checksummed frame, appended in epoch order (singly or in
//! batched groups, synced inline or by the serving layer's sync
//! pipeline), so a crash at any instant loses at most the writes of
//! epochs that were never acknowledged as flushed — what survives is
//! always an epoch-boundary prefix. Recovery is `snapshot + WAL suffix`:
//! restore the last snapshot (entries in global curve order, sectioned by
//! the writing table's [`partition_universe`](crate::partition_universe)
//! partitions), then re-apply every WAL frame with a later epoch.
//!
//! ## On-disk formats
//!
//! Both files start with an 8-byte magic. Integers are little-endian.
//!
//! **WAL** (`SFCWAL01`): a sequence of frames, each
//! `[payload_len: u32][crc32(payload): u32][payload]` with
//! `payload = [epoch: u64][op_count: u32][ops…]`. Epochs are strictly
//! increasing. The trailing frame of a crashed process may be *torn*
//! (short or checksum-mismatched): replay stops at the first invalid
//! frame and truncates the file there, so the recovered state is always
//! a prefix of fully committed epochs — never a half-applied one.
//!
//! **Snapshot** (`SFCSNP01`): `[crc32(body): u32][body]` with
//! `body = [epoch: u64][shard_count: u32]` followed by one section per
//! shard: `[partition lo: u64][hi: u64][entry_count: u64][entries…]`,
//! each entry `[key: u64][point][value]`. Sections are written in shard
//! order, so concatenating them yields the whole table in curve-key
//! order — which is why a snapshot taken at one shard count restores
//! cleanly into any other ([`ShardedTable::restore_entries`]
//! re-partitions). Snapshots are written to a temporary file and
//! `rename`d into place, so a crash mid-snapshot leaves the previous
//! snapshot intact.
//!
//! Values cross the disk boundary through [`WalCodec`], a minimal
//! explicit byte codec (no serde — the workspace is dependency-free);
//! implementations ship for the integer primitives, `bool`, `String`,
//! `Vec<u8>`, `f64`, and the spatial types ([`Point`], [`Record`],
//! [`BatchOp`]).
//!
//! ```
//! use sfc_index::{BatchOp, Wal};
//! use onion_core::Point;
//!
//! let dir = std::env::temp_dir().join(format!("sfc-wal-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("wal.log");
//! # let _ = std::fs::remove_file(&path);
//!
//! // Commit two epochs, "crash" (drop), and replay them back.
//! let (mut wal, replayed) = Wal::open::<2, u64>(&path).unwrap();
//! assert!(replayed.is_empty());
//! wal.append_epoch(1, &[BatchOp::Insert(Point::new([1, 2]), 10u64)]).unwrap();
//! wal.append_epoch(2, &[BatchOp::<2, u64>::Delete(Point::new([1, 2]))]).unwrap();
//! drop(wal);
//!
//! let (_wal, replayed) = Wal::open::<2, u64>(&path).unwrap();
//! assert_eq!(replayed.len(), 2);
//! assert_eq!(replayed[0].epoch, 1);
//! assert_eq!(replayed[0].ops, vec![BatchOp::Insert(Point::new([1, 2]), 10u64)]);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::backend::Backend;
use crate::plan::QueryPlan;
use crate::shard::{BatchOp, ShardedTable};
use crate::table::Record;
use onion_core::{Point, SfcError, SpaceFillingCurve};
use sfc_clustering::RectQuery;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening a WAL file (format version 01).
pub const WAL_MAGIC: [u8; 8] = *b"SFCWAL01";
/// Magic bytes opening a snapshot file (format version 01).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SFCSNP01";

// ---------------------------------------------------------------------------
// Checksum
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup tables for the
/// slicing-by-8 algorithm, built at compile time: `TABLES[0]` is the
/// classic one-lookup-per-byte table (used for the tail), and
/// `TABLES[k][i]` extends it by `k` zero bytes, so eight lookups advance
/// the CRC over eight message bytes at once. Checksumming is the single
/// biggest CPU cost of committing an epoch frame (the write itself is
/// one buffered syscall), so the ~6x over byte-at-a-time shows up
/// directly in `engine/wal_commit`.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE) of `bytes` — the frame checksum. Strong enough to catch
/// torn writes and bit rot in a frame; not a cryptographic digest.
/// Slicing-by-8: eight table lookups per eight bytes, with the classic
/// per-byte update on the unaligned tail.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4-byte slice")) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4-byte slice"));
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------------

/// A bounded read cursor over a decoded frame's bytes. Every read is
/// checked: running off the end yields `None`, which the replay path
/// treats as a torn/corrupt frame.
pub struct WalCursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> WalCursor<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(bytes: &'a [u8]) -> Self {
        WalCursor { bytes, at: 0 }
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let slice = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(slice)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// Byte codec for values crossing the durability boundary (WAL frames and
/// snapshot entries).
///
/// The contract is the usual round-trip law: `decode(encode(v)) == v`,
/// with `decode` consuming exactly the bytes `encode` produced. `decode`
/// returns `None` on malformed input (replay treats that as a torn
/// frame). Implementations ship for the integer primitives, `bool`,
/// `f64`, `String`, `Vec<u8>`, and the spatial types; applications
/// implement it for their own payload types to use the durable engine.
pub trait WalCodec: Sized {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one value, consuming exactly its encoding from the cursor.
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self>;
}

macro_rules! impl_wal_codec_int {
    ($($t:ty),*) => {$(
        impl WalCodec for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
                Some(<$t>::from_le_bytes(
                    cur.take(std::mem::size_of::<$t>())?.try_into().ok()?,
                ))
            }
        }
    )*};
}

impl_wal_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

impl WalCodec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        match cur.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl WalCodec for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        Some(f64::from_bits(cur.u64()?))
    }
}

impl WalCodec for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_cur: &mut WalCursor<'_>) -> Option<Self> {
        Some(())
    }
}

impl WalCodec for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self);
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        let len = cur.u32()? as usize;
        Some(cur.take(len)?.to_vec())
    }
}

impl WalCodec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        let len = cur.u32()? as usize;
        String::from_utf8(cur.take(len)?.to_vec()).ok()
    }
}

impl<const D: usize> WalCodec for Point<D> {
    fn encode(&self, buf: &mut Vec<u8>) {
        for c in self.0 {
            c.encode(buf);
        }
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        let mut coords = [0u32; D];
        for c in &mut coords {
            *c = cur.u32()?;
        }
        Some(Point::new(coords))
    }
}

impl<const D: usize, V: WalCodec> WalCodec for Record<D, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.point.encode(buf);
        self.value.encode(buf);
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        Some(Record {
            point: Point::decode(cur)?,
            value: V::decode(cur)?,
        })
    }
}

/// Op tags of the WAL frame encoding (one byte per op).
const OP_INSERT: u8 = 0;
const OP_UPDATE: u8 = 1;
const OP_DELETE: u8 = 2;

impl<const D: usize, V: WalCodec> WalCodec for BatchOp<D, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            BatchOp::Insert(p, v) => {
                buf.push(OP_INSERT);
                p.encode(buf);
                v.encode(buf);
            }
            BatchOp::Update(p, v) => {
                buf.push(OP_UPDATE);
                p.encode(buf);
                v.encode(buf);
            }
            BatchOp::Delete(p) => {
                buf.push(OP_DELETE);
                p.encode(buf);
            }
        }
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        match cur.u8()? {
            OP_INSERT => Some(BatchOp::Insert(Point::decode(cur)?, V::decode(cur)?)),
            OP_UPDATE => Some(BatchOp::Update(Point::decode(cur)?, V::decode(cur)?)),
            OP_DELETE => Some(BatchOp::Delete(Point::decode(cur)?)),
            _ => None,
        }
    }
}

/// Errors cross the durability boundary too — a replica or a remote
/// client must see exactly the failure the transactor produced. The
/// encoding leads with [`SfcError::code`] (the stable per-variant `u16`),
/// then the variant's fields; an unknown code decodes to `None`, so a
/// client built before a new variant treats it as a torn frame rather
/// than mis-classifying it.
impl WalCodec for SfcError {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.code().encode(buf);
        match self {
            SfcError::ZeroSide => {}
            SfcError::UniverseTooLarge { side, dims } => {
                side.encode(buf);
                (*dims as u64).encode(buf);
            }
            SfcError::SideNotPowerOfTwo { side } => side.encode(buf),
            SfcError::PointOutOfBounds { point, side } => {
                point.encode(buf);
                side.encode(buf);
            }
            SfcError::IndexOutOfBounds { index, cells } => {
                index.encode(buf);
                cells.encode(buf);
            }
            SfcError::DimensionUnsupported { dims } => (*dims as u64).encode(buf),
            SfcError::Storage { context }
            | SfcError::Unavailable { context }
            | SfcError::DeadlineExceeded { context }
            | SfcError::ConnectionLost { context }
            | SfcError::TornFrame { context }
            | SfcError::AmbiguousWrite { context } => context.encode(buf),
            SfcError::EpochTruncated { requested, horizon } => {
                requested.encode(buf);
                horizon.encode(buf);
            }
        }
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        match u16::decode(cur)? {
            1 => Some(SfcError::ZeroSide),
            2 => Some(SfcError::UniverseTooLarge {
                side: cur.u32()?,
                dims: usize::try_from(cur.u64()?).ok()?,
            }),
            3 => Some(SfcError::SideNotPowerOfTwo { side: cur.u32()? }),
            4 => Some(SfcError::PointOutOfBounds {
                point: String::decode(cur)?,
                side: cur.u32()?,
            }),
            5 => Some(SfcError::IndexOutOfBounds {
                index: cur.u64()?,
                cells: cur.u64()?,
            }),
            6 => Some(SfcError::DimensionUnsupported {
                dims: usize::try_from(cur.u64()?).ok()?,
            }),
            7 => Some(SfcError::Storage {
                context: String::decode(cur)?,
            }),
            8 => Some(SfcError::Unavailable {
                context: String::decode(cur)?,
            }),
            9 => Some(SfcError::DeadlineExceeded {
                context: String::decode(cur)?,
            }),
            10 => Some(SfcError::ConnectionLost {
                context: String::decode(cur)?,
            }),
            11 => Some(SfcError::TornFrame {
                context: String::decode(cur)?,
            }),
            12 => Some(SfcError::AmbiguousWrite {
                context: String::decode(cur)?,
            }),
            13 => Some(SfcError::EpochTruncated {
                requested: cur.u64()?,
                horizon: cur.u64()?,
            }),
            _ => None,
        }
    }
}

/// Queries ride the wire as `lo + side_lengths`; decoding re-validates
/// through [`RectQuery::new`], so a frame carrying a degenerate rectangle
/// is rejected as malformed instead of constructing an invalid query.
impl<const D: usize> WalCodec for RectQuery<D> {
    fn encode(&self, buf: &mut Vec<u8>) {
        for c in self.lo() {
            c.encode(buf);
        }
        for l in self.side_lengths() {
            l.encode(buf);
        }
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        let mut lo = [0u32; D];
        for c in &mut lo {
            *c = cur.u32()?;
        }
        let mut len = [0u32; D];
        for l in &mut len {
            *l = cur.u32()?;
        }
        RectQuery::new(lo, len).ok()
    }
}

impl WalCodec for (u64, u64) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        Some((cur.u64()?, cur.u64()?))
    }
}

/// Encodes a length-prefixed sequence of codec values — the list idiom
/// shared by every composite frame (`[count: u32][items…]`).
pub fn encode_seq<T: WalCodec>(items: &[T], buf: &mut Vec<u8>) {
    (items.len() as u32).encode(buf);
    for item in items {
        item.encode(buf);
    }
}

/// Decodes a sequence written by [`encode_seq`]. The pre-allocation is
/// clamped to the bytes actually remaining, so a hostile length prefix
/// cannot force a huge reservation before the per-item decodes fail.
pub fn decode_seq<T: WalCodec>(cur: &mut WalCursor<'_>) -> Option<Vec<T>> {
    let len = cur.u32()? as usize;
    let mut out = Vec::with_capacity(len.min(cur.remaining()));
    for _ in 0..len {
        out.push(T::decode(cur)?);
    }
    Some(out)
}

/// Plans are wire values so `Explain` can answer remotely: the chosen
/// ranges plus the cost-model numbers that justified them.
impl WalCodec for QueryPlan {
    fn encode(&self, buf: &mut Vec<u8>) {
        encode_seq(&self.ranges, buf);
        (self.clusters as u64).encode(buf);
        self.extra_cells.encode(buf);
        self.hit_rate.encode(buf);
        self.est_full_us.encode(buf);
        self.est_chosen_us.encode(buf);
        self.shard_skew.encode(buf);
    }
    fn decode(cur: &mut WalCursor<'_>) -> Option<Self> {
        Some(QueryPlan {
            ranges: decode_seq(cur)?,
            clusters: usize::try_from(cur.u64()?).ok()?,
            extra_cells: cur.u64()?,
            hit_rate: f64::decode(cur)?,
            est_full_us: f64::decode(cur)?,
            est_chosen_us: f64::decode(cur)?,
            shard_skew: f64::decode(cur)?,
        })
    }
}

/// Formats an [`SfcError::Storage`] with a context line and the cause.
pub(crate) fn storage_err(context: &str, cause: impl std::fmt::Display) -> SfcError {
    SfcError::Storage {
        context: format!("{context}: {cause}"),
    }
}

// ---------------------------------------------------------------------------
// The write-ahead log
// ---------------------------------------------------------------------------

/// One committed epoch read back from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochFrame<const D: usize, V> {
    /// The epoch number the frame committed (strictly increasing within a
    /// log, 1-based — matching `Engine::epoch()` after the apply).
    pub epoch: u64,
    /// The epoch's writes, in submission order.
    pub ops: Vec<BatchOp<D, V>>,
}

/// Encodes one epoch's frame payload — `[epoch][op_count][ops…]` — into a
/// caller-owned buffer (cleared first). Exposed so the serving layer can
/// hold it as a plain `fn` pointer — the engine's shared flush path then
/// commits frames (via [`Wal::append_payload`]) without carrying a
/// `WalCodec` bound on every engine method — and so a reused buffer makes
/// steady-state commits allocation-free.
pub fn encode_epoch_payload_into<const D: usize, V: WalCodec>(
    epoch: u64,
    ops: &[BatchOp<D, V>],
    payload: &mut Vec<u8>,
) {
    payload.clear();
    payload.reserve(16 + ops.len() * (1 + D * 4 + 8));
    epoch.encode(payload);
    (ops.len() as u32).encode(payload);
    for op in ops {
        op.encode(payload);
    }
}

/// [`encode_epoch_payload_into`] into a fresh allocation.
pub fn encode_epoch_payload<const D: usize, V: WalCodec>(
    epoch: u64,
    ops: &[BatchOp<D, V>],
) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_epoch_payload_into(epoch, ops, &mut payload);
    payload
}

/// Decodes a frame payload; `None` if it is malformed or has trailing
/// garbage (both are treated as corruption by replay).
fn decode_epoch_payload<const D: usize, V: WalCodec>(payload: &[u8]) -> Option<EpochFrame<D, V>> {
    let mut cur = WalCursor::new(payload);
    let epoch = cur.u64()?;
    let count = cur.u32()? as usize;
    let mut ops = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        ops.push(BatchOp::decode(&mut cur)?);
    }
    if cur.remaining() != 0 {
        return None;
    }
    Some(EpochFrame { epoch, ops })
}

/// An append-only, checksummed, epoch-framed write-ahead log.
///
/// See the [module docs](self) for the on-disk format and the
/// torn-tail policy. A `Wal` is single-writer by construction (`&mut
/// self` appends); the serving layer serializes commits under its epoch
/// gate and wraps the log in a `Mutex`.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Byte length of the valid prefix (header + fully committed frames).
    /// A failed append truncates back to this, so one bad write never
    /// strands later frames behind garbage.
    valid_len: u64,
    /// Highest epoch committed or replayed; appends must exceed it.
    last_epoch: u64,
    /// `(valid_len, last_epoch)` before the most recent append — the
    /// undo record [`Self::rollback_last`] restores when a committed
    /// frame's in-memory application fails and the caller needs the log
    /// to match the table again.
    undo: Option<(u64, u64)>,
    /// Whether bytes past `valid_len` (a torn or damaged tail found at
    /// open) are still physically present. They are truncated lazily,
    /// right before the first append overwrites them — so an open that
    /// never writes preserves the damaged bytes for inspection instead
    /// of destroying possible evidence (a frame *header* corruption,
    /// which no checksum vouches for, strands every later frame behind
    /// it; eager truncation would delete those intact frames for good).
    dirty_tail: bool,
    /// Whether a [`Self::rollback_last`] failed on its truncation I/O
    /// and must be completed before the next append (its undo record is
    /// still in `undo`). Keeps the watermark honest across a rollback
    /// whose own I/O failed: the next append retries the rollback
    /// instead of asserting on the stale `last_epoch`.
    pending_rollback: bool,
    /// Reusable frame assembly buffer (`[len][crc][payload]`), so every
    /// append is one contiguous `write_all` with no per-commit
    /// allocation once the buffer has grown to the working frame size.
    frame_buf: Vec<u8>,
}

impl Wal {
    /// Opens (or creates) the log at `path`, replaying every fully
    /// committed epoch in order. A torn or corrupt tail — the signature
    /// of a crash mid-append: a short frame, or one whose checksum does
    /// not match — ends the replay; everything before it is returned and
    /// the log is positioned for appending. The damaged bytes themselves
    /// are left on disk until the first append overwrites them, so an
    /// open that only reads never destroys material an operator might
    /// want to inspect (e.g. intact frames stranded behind a corrupted
    /// frame *header*, which no checksum can vouch for).
    ///
    /// The opener takes an OS advisory lock on the file (released when
    /// the `Wal` drops, or automatically when the process dies — so a
    /// crash never wedges the directory) to keep a second engine from
    /// appending over committed frames.
    ///
    /// Damage the checksum *vouches for* is refused, not truncated: a
    /// CRC-valid frame that fails typed decoding (a log written with a
    /// different value type or dimensionality) or breaks epoch
    /// monotonicity is not a torn tail — truncating it would destroy
    /// committed data on a mistyped open, so it errors like a bad magic
    /// does.
    ///
    /// # Errors
    /// On I/O failure, if another live process holds the log, or if the
    /// file exists but is not (or is no longer) a readable WAL: bad
    /// magic, or an intact frame that cannot be decoded as `(D, V)`.
    pub fn open<const D: usize, V: WalCodec>(
        path: &Path,
    ) -> Result<(Wal, Vec<EpochFrame<D, V>>), SfcError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| storage_err("opening WAL", format_args!("{}: {e}", path.display())))?;
        file.try_lock().map_err(|e| {
            storage_err(
                "locking WAL",
                format_args!(
                    "{}: {e} (is another engine serving this directory?)",
                    path.display()
                ),
            )
        })?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| storage_err("reading WAL", e))?;

        if bytes.len() < WAL_MAGIC.len() {
            // New (or torn before the header finished): start fresh.
            file.set_len(0)
                .map_err(|e| storage_err("resetting WAL", e))?;
            file.seek(SeekFrom::Start(0))
                .map_err(|e| storage_err("seeking WAL", e))?;
            file.write_all(&WAL_MAGIC)
                .map_err(|e| storage_err("writing WAL header", e))?;
            file.sync_all()
                .map_err(|e| storage_err("syncing WAL header", e))?;
            return Ok((
                Wal {
                    file,
                    path: path.to_path_buf(),
                    valid_len: WAL_MAGIC.len() as u64,
                    last_epoch: 0,
                    undo: None,
                    pending_rollback: false,
                    dirty_tail: false,
                    frame_buf: Vec::new(),
                },
                Vec::new(),
            ));
        }
        if bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(storage_err(
                "opening WAL",
                format_args!("{} is not a WAL file (bad magic)", path.display()),
            ));
        }

        // Replay the valid prefix frame by frame.
        let mut frames: Vec<EpochFrame<D, V>> = Vec::new();
        let mut at = WAL_MAGIC.len();
        let mut last_epoch = 0u64;
        // Each iteration consumes one intact frame; the first torn or
        // corrupt one (including a clean EOF) ends the replay.
        while let Some(header) = bytes.get(at..at + 8) {
            let len = u32::from_le_bytes(header[..4].try_into().expect("8-byte slice")) as usize;
            let crc = u32::from_le_bytes(header[4..].try_into().expect("8-byte slice"));
            let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
                break; // torn payload
            };
            if crc32(payload) != crc {
                break; // torn or corrupted payload
            }
            // From here the checksum vouches for the bytes: failures are
            // not crash damage but a foreign or mistyped log, and
            // truncating those would destroy committed data — refuse.
            let Some(frame) = decode_epoch_payload::<D, V>(payload) else {
                return Err(storage_err(
                    "replaying WAL",
                    format_args!(
                        "{}: intact frame at byte {at} does not decode — \
                         was this log written with a different value type \
                         or dimensionality?",
                        path.display()
                    ),
                ));
            };
            if frame.epoch <= last_epoch {
                return Err(storage_err(
                    "replaying WAL",
                    format_args!(
                        "{}: intact frame at byte {at} breaks epoch \
                         monotonicity ({} after {last_epoch}) — not a log \
                         this build wrote",
                        path.display(),
                        frame.epoch
                    ),
                ));
            }
            last_epoch = frame.epoch;
            frames.push(frame);
            at += 8 + len;
        }

        // Position at the end of the valid prefix; a torn tail beyond it
        // is left on disk until the first append (see `dirty_tail`).
        let valid_len = at as u64;
        file.seek(SeekFrom::Start(valid_len))
            .map_err(|e| storage_err("seeking WAL", e))?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                valid_len,
                last_epoch,
                undo: None,
                pending_rollback: false,
                dirty_tail: valid_len < bytes.len() as u64,
                frame_buf: Vec::new(),
            },
            frames,
        ))
    }

    /// Commits one epoch: frames, checksums, appends, and syncs the
    /// batch. When this returns `Ok`, the epoch is durable — this call is
    /// the commit point of the serving layer's flush.
    ///
    /// # Errors
    /// On I/O failure; the file is truncated back to its last valid
    /// length so the failed frame never corrupts the log.
    ///
    /// # Panics
    /// If `epoch` is not strictly greater than every previously
    /// committed epoch (the log would become ambiguous to replay).
    pub fn append_epoch<const D: usize, V: WalCodec>(
        &mut self,
        epoch: u64,
        ops: &[BatchOp<D, V>],
    ) -> Result<(), SfcError> {
        self.append_payload(epoch, &encode_epoch_payload(epoch, ops))
    }

    /// [`Self::append_epoch`] with the payload pre-encoded by
    /// [`encode_epoch_payload_into`] (the serving layer's
    /// monomorphization-friendly entry point; `epoch` must match the one
    /// encoded in `payload`, which `append_epoch` guarantees for its own
    /// calls).
    ///
    /// # Errors
    /// As for [`Self::append_epoch`].
    ///
    /// # Panics
    /// As for [`Self::append_epoch`].
    pub fn append_payload(&mut self, epoch: u64, payload: &[u8]) -> Result<(), SfcError> {
        self.append_payload_unsynced(epoch, payload)?;
        if let Err(e) = self.file.sync_data() {
            // Roll the file back to the last committed frame; best-effort,
            // and replay would stop at the torn frame anyway.
            let (len, last) = self.undo.take().expect("append just set the undo record");
            let _ = self.file.set_len(len);
            let _ = self.file.seek(SeekFrom::Start(len));
            self.valid_len = len;
            self.last_epoch = last;
            return Err(storage_err(
                "syncing epoch to WAL",
                format_args!("{}: {e}", self.path.display()),
            ));
        }
        Ok(())
    }

    /// Appends one epoch frame **without syncing it**: the frame is
    /// written (one contiguous `write_all` from a reused buffer — no
    /// allocation, no userspace buffering to lose on drop) but is not yet
    /// durable. The caller owns the commit point: the epoch survives a
    /// crash only once a subsequent [`File::sync_data`] on
    /// [`Self::sync_handle`] (or a synced append) returns — which is how
    /// the serving layer overlaps the encode and apply of epoch `N+1`
    /// with the fsync of epoch `N` while keeping the synced-append commit
    /// point for everything `flush` acknowledges.
    ///
    /// Append order is frame order, so syncing the file at any instant
    /// makes a *prefix* of appended epochs durable — pipelining never
    /// reorders the log.
    ///
    /// # Errors
    /// On I/O failure; the file is truncated back to its last valid
    /// length so the failed frame never corrupts the log.
    ///
    /// # Panics
    /// If `epoch` is not strictly greater than every previously appended
    /// epoch (the log would become ambiguous to replay).
    pub fn append_payload_unsynced(&mut self, epoch: u64, payload: &[u8]) -> Result<(), SfcError> {
        // A rollback that failed on its I/O leaves the frame on disk and
        // the epoch watermark advanced; completing it here (or erroring
        // again, cleanly) is what lets a retried flush re-commit the same
        // epoch number without tripping the monotonicity assert below.
        if self.pending_rollback {
            self.rollback_last()?;
        }
        assert!(
            epoch > self.last_epoch,
            "WAL epochs must be strictly increasing: {epoch} after {}",
            self.last_epoch
        );
        if u32::try_from(payload.len()).is_err() {
            // The frame length field is u32; silently wrapping it would
            // fsync-acknowledge an epoch that replay can only see as a
            // torn tail. Refuse instead: the caller can flush smaller
            // epochs.
            return Err(storage_err(
                "committing epoch to WAL",
                format_args!(
                    "epoch {epoch} payload is {} bytes, over the 4 GiB frame limit",
                    payload.len()
                ),
            ));
        }
        // First write after recovering past a damaged tail: cut the dead
        // bytes off now, so the new frame lands on a clean edge instead
        // of a prefix of garbage a crash mid-write could splice with.
        if self.dirty_tail {
            self.file
                .set_len(self.valid_len)
                .and_then(|_| self.file.sync_all())
                .map_err(|e| storage_err("truncating torn WAL tail", e))?;
            self.dirty_tail = false;
        }
        self.frame_buf.clear();
        self.frame_buf.reserve(8 + payload.len());
        (payload.len() as u32).encode(&mut self.frame_buf);
        crc32(payload).encode(&mut self.frame_buf);
        self.frame_buf.extend_from_slice(payload);
        if let Err(e) = self.file.write_all(&self.frame_buf) {
            // Roll the file back to the last committed frame; best-effort,
            // and replay would stop at the torn frame anyway.
            let _ = self.file.set_len(self.valid_len);
            let _ = self.file.seek(SeekFrom::Start(self.valid_len));
            return Err(storage_err(
                "committing epoch to WAL",
                format_args!("{}: {e}", self.path.display()),
            ));
        }
        self.undo = Some((self.valid_len, self.last_epoch));
        self.valid_len += self.frame_buf.len() as u64;
        self.last_epoch = epoch;
        Ok(())
    }

    /// Appends a whole group of epoch frames with **one** buffered write
    /// — the batched form of [`Self::append_payload_unsynced`] a sync
    /// pipeline drains its queue with, paying one syscall (and one inode
    /// touch) per fsync group instead of per epoch. Frames land in slice
    /// order; epochs must be strictly increasing across the group and
    /// past every previously appended epoch.
    ///
    /// On success the undo record covers the group's *last* frame, so a
    /// subsequent [`Self::rollback_last`] removes exactly the newest
    /// epoch — the same contract as appending one frame at a time.
    ///
    /// # Errors
    /// On I/O failure (the file is truncated back to its last valid
    /// length — the whole group rolls back) or an over-limit frame.
    ///
    /// # Panics
    /// If any epoch breaks strict monotonicity.
    pub fn append_payloads_unsynced(&mut self, group: &[(u64, Vec<u8>)]) -> Result<(), SfcError> {
        if group.is_empty() {
            return Ok(());
        }
        if self.pending_rollback {
            self.rollback_last()?;
        }
        let mut last = self.last_epoch;
        for (epoch, payload) in group {
            assert!(
                *epoch > last,
                "WAL epochs must be strictly increasing: {epoch} after {last}"
            );
            last = *epoch;
            if u32::try_from(payload.len()).is_err() {
                return Err(storage_err(
                    "committing epoch to WAL",
                    format_args!(
                        "epoch {epoch} payload is {} bytes, over the 4 GiB frame limit",
                        payload.len()
                    ),
                ));
            }
        }
        if self.dirty_tail {
            self.file
                .set_len(self.valid_len)
                .and_then(|_| self.file.sync_all())
                .map_err(|e| storage_err("truncating torn WAL tail", e))?;
            self.dirty_tail = false;
        }
        self.frame_buf.clear();
        let mut last_frame_at = 0usize;
        let mut prev_epoch = self.last_epoch;
        for (i, (epoch, payload)) in group.iter().enumerate() {
            if i + 1 == group.len() {
                last_frame_at = self.frame_buf.len();
            } else {
                prev_epoch = *epoch;
            }
            (payload.len() as u32).encode(&mut self.frame_buf);
            crc32(payload).encode(&mut self.frame_buf);
            self.frame_buf.extend_from_slice(payload);
        }
        if let Err(e) = self.file.write_all(&self.frame_buf) {
            let _ = self.file.set_len(self.valid_len);
            let _ = self.file.seek(SeekFrom::Start(self.valid_len));
            return Err(storage_err(
                "committing epoch group to WAL",
                format_args!("{}: {e}", self.path.display()),
            ));
        }
        self.undo = Some((self.valid_len + last_frame_at as u64, prev_epoch));
        self.valid_len += self.frame_buf.len() as u64;
        self.last_epoch = last;
        Ok(())
    }

    /// A second handle to the log file, for offloading `sync_data` to a
    /// dedicated thread (both handles share one open file description, so
    /// a sync through either covers every byte appended through the
    /// other). The advisory lock is per file description and stays held.
    ///
    /// # Errors
    /// On I/O failure duplicating the descriptor.
    pub fn sync_handle(&self) -> Result<File, SfcError> {
        self.file
            .try_clone()
            .map_err(|e| storage_err("cloning WAL handle", e))
    }

    /// Un-commits the most recent [`Self::append_epoch`]: truncates the
    /// frame away and restores the previous epoch watermark. The serving
    /// layer calls this when a committed epoch's in-memory application
    /// fails, so the log never holds an epoch the table does not — and a
    /// retried flush can re-commit the same epoch number cleanly.
    ///
    /// If the truncation itself fails, the undo record is *kept*: the
    /// rollback stays pending and the next append completes it first (or
    /// fails with the same error) — a double failure degrades to clean,
    /// retryable errors, never to an inconsistent watermark.
    ///
    /// # Errors
    /// On I/O failure (retryable — see above), or if there is no append
    /// to undo (nothing appended since open, or already undone).
    pub fn rollback_last(&mut self) -> Result<(), SfcError> {
        let Some((len, epoch)) = self.undo else {
            return Err(storage_err(
                "rolling back WAL",
                "no committed frame to undo",
            ));
        };
        let truncate = self
            .file
            .set_len(len)
            .and_then(|_| self.file.seek(SeekFrom::Start(len)))
            .and_then(|_| self.file.sync_all());
        if let Err(e) = truncate {
            self.pending_rollback = true;
            return Err(storage_err("rolling back WAL", e));
        }
        self.undo = None;
        self.pending_rollback = false;
        self.valid_len = len;
        self.last_epoch = epoch;
        Ok(())
    }

    /// Discards every committed frame (keeping the header) — the
    /// compaction step after a snapshot has absorbed the log. Epoch
    /// numbering continues from where it was; it never restarts.
    ///
    /// # Errors
    /// On I/O failure.
    pub fn reset(&mut self) -> Result<(), SfcError> {
        let header = WAL_MAGIC.len() as u64;
        self.file
            .set_len(header)
            .map_err(|e| storage_err("compacting WAL", e))?;
        self.file
            .seek(SeekFrom::Start(header))
            .map_err(|e| storage_err("seeking WAL", e))?;
        self.file
            .sync_all()
            .map_err(|e| storage_err("syncing compacted WAL", e))?;
        self.valid_len = header;
        self.undo = None;
        self.dirty_tail = false;
        Ok(())
    }

    /// Re-reads every committed frame from the open (and advisory-locked)
    /// handle — the time-travel fallback's source: a `snapshot + frame
    /// prefix` replay reconstructs any epoch the log still covers, without
    /// a second `open` fighting this process's own file lock. Reads
    /// exactly the valid prefix (`[0, len())`), so a torn tail left for
    /// inspection is never touched, and reposition the handle at the
    /// append point afterwards.
    ///
    /// Callers serialize this against appends and [`Self::reset`] (the
    /// durable layer holds its WAL mutex across the call), so the prefix
    /// read is of a quiescent file.
    ///
    /// # Errors
    /// On I/O failure, or if an intact frame no longer decodes as
    /// `(D, V)` — the mistyped-log refusal of [`Self::open`].
    pub fn read_frames<const D: usize, V: WalCodec>(
        &mut self,
    ) -> Result<Vec<EpochFrame<D, V>>, SfcError> {
        let header = WAL_MAGIC.len() as u64;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| storage_err("seeking WAL", e))?;
        let mut bytes = vec![0u8; self.valid_len as usize];
        self.file
            .read_exact(&mut bytes)
            .map_err(|e| storage_err("re-reading WAL prefix", e))?;
        self.file
            .seek(SeekFrom::Start(self.valid_len))
            .map_err(|e| storage_err("seeking WAL", e))?;
        let mut frames: Vec<EpochFrame<D, V>> = Vec::new();
        let mut at = header as usize;
        while let Some(frame_header) = bytes.get(at..at + 8) {
            let len =
                u32::from_le_bytes(frame_header[..4].try_into().expect("8-byte slice")) as usize;
            let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
                break;
            };
            let Some(frame) = decode_epoch_payload::<D, V>(payload) else {
                return Err(storage_err(
                    "re-reading WAL prefix",
                    format_args!(
                        "{}: committed frame at byte {at} does not decode as this engine's \
                         value type",
                        self.path.display()
                    ),
                ));
            };
            frames.push(frame);
            at += 8 + len;
        }
        Ok(frames)
    }

    /// Byte length of the valid prefix (header plus appended frames).
    /// After a synced append ([`Self::append_epoch`]) returns, everything
    /// up to this offset survives any crash — the number the crash-point
    /// tests key on. Frames appended with
    /// [`Self::append_payload_unsynced`] are counted as soon as they are
    /// written; they survive once the pipeline's next sync returns.
    pub fn len(&self) -> u64 {
        self.valid_len
    }

    /// Whether the log holds no committed frames.
    pub fn is_empty(&self) -> bool {
        self.valid_len <= WAL_MAGIC.len() as u64
    }

    /// Highest epoch committed to (or replayed from) this log.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Writes a point-in-time snapshot of `table` at `epoch` to `path`,
/// atomically (temporary file + rename): a crash mid-write leaves the
/// previous snapshot untouched. Entries are streamed shard by shard via
/// [`Backend::persist`], so the file holds the whole table in curve-key
/// order, sectioned by the table's partitions.
///
/// # Errors
/// On I/O failure.
pub fn write_snapshot<const D: usize, C, V, B>(
    path: &Path,
    epoch: u64,
    table: &ShardedTable<C, V, D, B>,
) -> Result<(), SfcError>
where
    C: SpaceFillingCurve<D>,
    V: Clone + WalCodec,
    B: Backend<Record<D, V>>,
{
    let parts = table.partitions().to_vec();
    let mut body = Vec::new();
    epoch.encode(&mut body);
    (parts.len() as u32).encode(&mut body);
    for (shard, part) in parts.iter().enumerate() {
        part.lo.encode(&mut body);
        part.hi.encode(&mut body);
        // Patch the count in after streaming the section.
        let count_at = body.len();
        0u64.encode(&mut body);
        let mut count = 0u64;
        table.persist_shard(shard, &mut |key, rec| {
            key.encode(&mut body);
            rec.encode(&mut body);
            count += 1;
        })?;
        body[count_at..count_at + 8].copy_from_slice(&count.to_le_bytes());
    }

    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp).map_err(|e| storage_err("creating snapshot temp file", e))?;
    file.write_all(&SNAPSHOT_MAGIC)
        .and_then(|()| file.write_all(&crc32(&body).to_le_bytes()))
        .and_then(|()| file.write_all(&body))
        .and_then(|()| file.sync_all())
        .map_err(|e| storage_err("writing snapshot", e))?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(|e| storage_err("publishing snapshot", e))?;
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A decoded snapshot: the epoch it captured and every keyed record in
/// curve-key order (shard sections concatenated).
pub type SnapshotContents<const D: usize, V> = (u64, Vec<(u64, Record<D, V>)>);

/// Reads a snapshot back: the epoch it was taken at and every entry in
/// curve-key order (shard sections concatenated). Returns `Ok(None)` if
/// no snapshot exists at `path`.
///
/// # Errors
/// On I/O failure, or if the file is corrupt (bad magic, checksum
/// mismatch, malformed body). Unlike the WAL's torn tail, a damaged
/// snapshot is not recoverable-by-prefix — it is reported, not silently
/// truncated.
pub fn read_snapshot<const D: usize, V: WalCodec>(
    path: &Path,
) -> Result<Option<SnapshotContents<D, V>>, SfcError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(storage_err("reading snapshot", e)),
    };
    let corrupt = |what: &str| {
        storage_err(
            "decoding snapshot",
            format_args!("{}: {what}", path.display()),
        )
    };
    if bytes.len() < 12 || bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    let body = &bytes[12..];
    if crc32(body) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut cur = WalCursor::new(body);
    let mut next = || -> Option<SnapshotContents<D, V>> {
        let epoch = cur.u64()?;
        let shards = cur.u32()?;
        let mut entries = Vec::new();
        for _ in 0..shards {
            let _lo = cur.u64()?;
            let _hi = cur.u64()?;
            let count = cur.u64()?;
            for _ in 0..count {
                entries.push((cur.u64()?, Record::decode(&mut cur)?));
            }
        }
        (cur.remaining() == 0).then_some((epoch, entries))
    };
    next().map(Some).ok_or_else(|| corrupt("malformed body"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value. A self-consistent but
        // IEEE-incompatible implementation would reject every log written
        // by a previous build, so these pins are load-bearing.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Longer vectors spanning several 8-byte slices plus an odd tail,
        // exercising every lane of the slicing-by-8 tables (reference
        // values from zlib's crc32).
        let bytes: Vec<u8> = (0u8..37).collect();
        assert_eq!(crc32(&bytes), 0x8222_EFE9);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn codec_round_trips_primitives() {
        let mut buf = Vec::new();
        42u64.encode(&mut buf);
        (-7i32).encode(&mut buf);
        true.encode(&mut buf);
        String::from("curve").encode(&mut buf);
        vec![1u8, 2, 3].encode(&mut buf);
        1.5f64.encode(&mut buf);
        Point::new([3u32, 4, 5]).encode(&mut buf);
        let mut cur = WalCursor::new(&buf);
        assert_eq!(u64::decode(&mut cur), Some(42));
        assert_eq!(i32::decode(&mut cur), Some(-7));
        assert_eq!(bool::decode(&mut cur), Some(true));
        assert_eq!(String::decode(&mut cur), Some("curve".into()));
        assert_eq!(Vec::<u8>::decode(&mut cur), Some(vec![1, 2, 3]));
        assert_eq!(f64::decode(&mut cur), Some(1.5));
        assert_eq!(Point::<3>::decode(&mut cur), Some(Point::new([3, 4, 5])));
        assert_eq!(cur.remaining(), 0);
        assert_eq!(u8::decode(&mut cur), None, "reads past the end fail");
    }

    #[test]
    fn batch_op_round_trips() {
        let ops: Vec<BatchOp<2, String>> = vec![
            BatchOp::Insert(Point::new([1, 2]), "a".into()),
            BatchOp::Update(Point::new([3, 4]), "b".into()),
            BatchOp::Delete(Point::new([5, 6])),
        ];
        let payload = encode_epoch_payload(9, &ops);
        let frame = decode_epoch_payload::<2, String>(&payload).unwrap();
        assert_eq!(frame.epoch, 9);
        assert_eq!(frame.ops, ops);
        // Trailing garbage is malformed, not silently ignored.
        let mut noisy = payload.clone();
        noisy.push(0);
        assert!(decode_epoch_payload::<2, String>(&noisy).is_none());
        // A bad op tag is malformed (the first op's tag sits right after
        // the 8-byte epoch and 4-byte count).
        let mut bad = payload;
        bad[12] = 0xFF;
        assert!(decode_epoch_payload::<2, String>(&bad).is_none());
    }
}
